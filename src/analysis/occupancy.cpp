#include "src/analysis/occupancy.h"

#include <numeric>
#include <stdexcept>

#include "src/grid/ring.h"

namespace levy::analysis {

flight_occupancy::flight_occupancy(double alpha, std::int64_t radius, std::uint64_t cap)
    : jumps_(alpha), radius_(radius), cap_(cap), side_(2 * radius + 1) {
    if (radius < 1 || radius > 64) {
        throw std::invalid_argument("flight_occupancy: radius must be in [1, 64]");
    }
    mass_.assign(static_cast<std::size_t>(side_ * side_), 0.0);
    scratch_.assign(mass_.size(), 0.0);
    mass_[index(origin)] = 1.0;

    // Conditional pmf under the cap, for distances relevant to the window
    // (anything farther than 4R from an in-window node leaks wholesale).
    const std::int64_t max_d = 4 * radius_;
    const double cap_mass =
        cap_ == kNoCap ? 1.0 : 1.0 - jumps_.tail(cap_ + 1);
    pmf_.assign(static_cast<std::size_t>(max_d) + 1, 0.0);
    for (std::int64_t d = 0; d <= max_d; ++d) {
        if (cap_ != kNoCap && static_cast<std::uint64_t>(d) > cap_) break;
        pmf_[static_cast<std::size_t>(d)] = jumps_.pmf(static_cast<std::uint64_t>(d)) / cap_mass;
    }
}

std::size_t flight_occupancy::index(point u) const {
    return static_cast<std::size_t>((u.y + radius_) * side_ + (u.x + radius_));
}

double flight_occupancy::in_window_mass() const {
    return std::accumulate(mass_.begin(), mass_.end(), 0.0);
}

double flight_occupancy::probability(point u) const {
    if (!inside(u)) return 0.0;
    return mass_[index(u)];
}

void flight_occupancy::step() {
    std::fill(scratch_.begin(), scratch_.end(), 0.0);
    const std::int64_t max_d = 4 * radius_;
    // Mass beyond max_d (or beyond the cap) from any source leaks entirely.
    double tail_mass = cap_ == kNoCap
                           ? jumps_.tail(static_cast<std::uint64_t>(max_d) + 1)
                           : 0.0;
    if (cap_ != kNoCap && static_cast<std::uint64_t>(max_d) < cap_) {
        const double cap_mass = 1.0 - jumps_.tail(cap_ + 1);
        tail_mass = (jumps_.tail(static_cast<std::uint64_t>(max_d) + 1) -
                     jumps_.tail(cap_ + 1)) /
                    cap_mass;
    }

    double leaked = 0.0;
    for (std::int64_t y = -radius_; y <= radius_; ++y) {
        for (std::int64_t x = -radius_; x <= radius_; ++x) {
            const point u{x, y};
            const double m = mass_[index(u)];
            if (m < 1e-18) {
                leaked += m;  // negligible mass: drop it, keep the books exact
                continue;
            }
            scratch_[index(u)] += m * pmf_[0];  // the 1/2 atom at d = 0
            for (std::int64_t d = 1; d <= max_d; ++d) {
                const double pd = pmf_[static_cast<std::size_t>(d)];
                // levylint:allow(float-equality) pmf_ entries beyond the cap are exactly 0
                if (pd == 0.0) break;
                const double share = m * pd / static_cast<double>(ring_size(d));
                for (std::uint64_t j = 0; j < ring_size(d); ++j) {
                    const point v = ring_node(u, d, j);
                    if (inside(v)) {
                        scratch_[index(v)] += share;
                    } else {
                        leaked += share;
                    }
                }
            }
            leaked += m * tail_mass;
        }
    }
    mass_.swap(scratch_);
    escaped_ += leaked;
    ++steps_;
    origin_visits_ += mass_[index(origin)];
}

void flight_occupancy::advance(std::uint64_t n) {
    for (std::uint64_t i = 0; i < n; ++i) step();
}

}  // namespace levy::analysis
