#pragma once

#include <cstdint>
#include <vector>

#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"

namespace levy::analysis {

/// Exact occupancy distribution of a Lévy flight on Z², computed by dynamic
/// programming (repeated exact convolution with the jump kernel) on the box
/// Q_R(0). Probability mass that jumps outside the window is tracked as
/// `escaped` and never returns (an upper truncation — the true in-window
/// occupancies are *at least* the computed values minus nothing, and at most
/// computed + escaped; for small t and R ≫ typical displacement the gap is
/// tiny and is reported so tests can bound it).
///
/// This gives noise-free verification of occupancy statements that Monte
/// Carlo can only approximate: Lemma 3.9 (monotonicity), the visit counts of
/// Lemma 4.13 (E[Z₀(t)] = Σ_s P(L_s = 0)), and the dihedral symmetry of the
/// law. Cost per step is O(R² · Σ_{d≤2R} 4d) = O(R⁴) — fine for R ≲ 32.
class flight_occupancy {
public:
    /// Window radius R (L∞), exponent α > 1, optional jump cap as in the
    /// capped flight of Lemma 4.5.
    flight_occupancy(double alpha, std::int64_t radius, std::uint64_t cap = kNoCap);

    /// Advance the distribution by one exact flight step.
    void step();

    /// Advance by n steps.
    void advance(std::uint64_t n);

    /// P(L_t = u ∧ the flight never left Q_R). 0 outside the window.
    [[nodiscard]] double probability(point u) const;

    /// Mass that has left the window up to now (monotone nondecreasing).
    [[nodiscard]] double escaped() const noexcept { return escaped_; }

    /// Σ_u probability(u); equals 1 − escaped() up to rounding.
    [[nodiscard]] double in_window_mass() const;

    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
    [[nodiscard]] std::int64_t radius() const noexcept { return radius_; }
    [[nodiscard]] double alpha() const noexcept { return jumps_.alpha(); }

    /// E[Z₀(t)] accumulated so far: Σ_{s=1..t} P(L_s = 0) (lower bound via
    /// the never-escaped trajectory mass) — the a_t(α) of Lemma 4.13.
    [[nodiscard]] double expected_origin_visits() const noexcept { return origin_visits_; }

private:
    [[nodiscard]] std::size_t index(point u) const;
    [[nodiscard]] bool inside(point u) const noexcept {
        return linf_norm(u) <= radius_;
    }

    jump_distribution jumps_;
    std::int64_t radius_;
    std::uint64_t cap_;
    std::int64_t side_;                 // 2R+1
    std::vector<double> mass_;          // row-major over Q_R
    std::vector<double> scratch_;
    double escaped_ = 0.0;
    double origin_visits_ = 0.0;
    std::uint64_t steps_ = 0;
    // Precomputed: pmf(d) for d = 0..2R and the stay-put correction.
    std::vector<double> pmf_;
};

}  // namespace levy::analysis
