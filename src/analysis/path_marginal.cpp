#include "src/analysis/path_marginal.h"

#include <cmath>
#include <map>
#include <stdexcept>

#include "src/grid/ring.h"

namespace levy::analysis {
namespace {

__extension__ typedef __int128 int128;

// Mirror of direct_path_stepper's decision at state (px, py) of a path with
// axis budgets (adx, ady), total d: returns -1 for a forced/closer x-step,
// +1 for y-step, 0 for an exact tie.
int decide(std::int64_t px, std::int64_t py, std::int64_t adx, std::int64_t ady,
           std::int64_t d) {
    if (px == adx) return +1;
    if (py == ady) return -1;
    const int128 i1 = px + py + 1;
    const int128 ex = static_cast<int128>(d) * px - i1 * adx;
    const int128 ey = static_cast<int128>(d) * py - i1 * ady;
    if (ex < ey) return -1;
    if (ey < ex) return +1;
    return 0;
}

}  // namespace

std::vector<node_mass> path_node_law(point from, point to, std::int64_t i) {
    const point delta = to - from;
    const std::int64_t adx = abs64(delta.x), ady = abs64(delta.y);
    const std::int64_t d = adx + ady;
    if (i < 0 || i > d) throw std::invalid_argument("path_node_law: i out of range");
    const std::int64_t sx = delta.x < 0 ? -1 : 1;
    const std::int64_t sy = delta.y < 0 ? -1 : 1;

    // DP over (px, py) states; px + py = current step, so a map keyed by px
    // suffices. Ties split mass in half.
    std::map<std::int64_t, double> states;  // px -> probability
    states[0] = 1.0;
    for (std::int64_t s = 0; s < i; ++s) {
        std::map<std::int64_t, double> next;
        for (const auto& [px, p] : states) {
            const std::int64_t py = s - px;
            switch (decide(px, py, adx, ady, d)) {
                case -1: next[px + 1] += p; break;
                case +1: next[px] += p; break;
                default:
                    next[px + 1] += p / 2.0;
                    next[px] += p / 2.0;
            }
        }
        states.swap(next);
    }
    std::vector<node_mass> out;
    out.reserve(states.size());
    for (const auto& [px, p] : states) {
        const std::int64_t py = i - px;
        out.push_back({{from.x + sx * px, from.y + sy * py}, p});
    }
    return out;
}

std::vector<double> lemma32_marginal(std::int64_t d, std::int64_t i) {
    if (d < 2 || i < 1 || i >= d) {
        throw std::invalid_argument("lemma32_marginal: need 1 <= i < d, d >= 2");
    }
    std::vector<double> marginal(ring_size(i), 0.0);
    const double v_weight = 1.0 / static_cast<double>(ring_size(d));
    for (std::uint64_t j = 0; j < ring_size(d); ++j) {
        const point v = ring_node(origin, d, j);
        for (const auto& [node, p] : path_node_law(origin, v, i)) {
            marginal[ring_index(origin, node)] += v_weight * p;
        }
    }
    return marginal;
}

lemma32_band lemma32_bounds(std::int64_t d, std::int64_t i) {
    const double id = static_cast<double>(i) / static_cast<double>(d);
    const double di = static_cast<double>(d) / static_cast<double>(i);
    return {id * std::floor(di) / (4.0 * static_cast<double>(i)),
            id * std::ceil(di) / (4.0 * static_cast<double>(i))};
}

}  // namespace levy::analysis
