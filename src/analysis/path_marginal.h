#pragma once

#include <cstdint>
#include <vector>

#include "src/grid/point.h"

namespace levy::analysis {

/// Exact distributions over direct paths (Def. 3.1), computed by dynamic
/// programming on the Bresenham decision automaton: the only randomness in
/// a direct path is the fair bit consumed at each exact tie, so the law of
/// the i-th node is a small discrete distribution we can enumerate — giving
/// noise-free verification of Lemma 3.2.

/// One support point of an intermediate-node law.
struct node_mass {
    point node;
    double probability;
};

/// Exact law of u_i on a uniformly random direct path from `from` to `to`
/// (fixed endpoints). Requires 0 <= i <= ‖to − from‖₁.
[[nodiscard]] std::vector<node_mass> path_node_law(point from, point to, std::int64_t i);

/// Exact law of u_i when the destination v is uniform on R_d(0) and the
/// direct path 0 → v is uniform (the mixture of Lemma 3.2). Returned as
/// probabilities indexed by ring index on R_i(0) (size 4i). Requires
/// 1 <= i < d.
[[nodiscard]] std::vector<double> lemma32_marginal(std::int64_t d, std::int64_t i);

/// The Lemma 3.2 band for given (d, i):
///   lo = (i/d)·⌊d/i⌋/(4i),   hi = (i/d)·⌈d/i⌉/(4i).
struct lemma32_band {
    double lo = 0.0;
    double hi = 0.0;
};
[[nodiscard]] lemma32_band lemma32_bounds(std::int64_t d, std::int64_t i);

}  // namespace levy::analysis
