#include "src/smallworld/kleinberg_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/grid/ring.h"
#include "src/rng/splitmix64.h"

namespace levy::smallworld {

kleinberg_grid::kleinberg_grid(std::int64_t n, double beta, std::uint64_t seed)
    : n_(n), beta_(beta), seed_(seed) {
    if (n < 4) throw std::invalid_argument("kleinberg_grid: n must be >= 4");
    if (!(beta > 0.0)) throw std::invalid_argument("kleinberg_grid: beta must be > 0");
    distance_cdf_.resize(static_cast<std::size_t>(n - 1));
    double acc = 0.0;
    for (std::int64_t d = 1; d < n; ++d) {
        // One contact at lattice distance d: 4d candidate nodes, each with
        // weight d^{-β}.
        acc += 4.0 * static_cast<double>(d) * std::pow(static_cast<double>(d), -beta);
        distance_cdf_[static_cast<std::size_t>(d - 1)] = acc;
    }
    for (auto& c : distance_cdf_) c /= acc;
    distance_cdf_.back() = 1.0;
}

std::int64_t kleinberg_grid::distance(point u, point v) const noexcept {
    const auto axis = [this](std::int64_t a, std::int64_t b) {
        std::int64_t diff = (a - b) % n_;
        if (diff < 0) diff += n_;
        return std::min(diff, n_ - diff);
    };
    return axis(u.x, v.x) + axis(u.y, v.y);
}

point kleinberg_grid::wrap(point u) const noexcept {
    const auto m = [this](std::int64_t a) {
        std::int64_t r = a % n_;
        return r < 0 ? r + n_ : r;
    };
    return {m(u.x), m(u.y)};
}

point kleinberg_grid::contact(point u) const {
    const point cu = wrap(u);
    rng g = rng::seeded(mix64(seed_, static_cast<std::uint64_t>(cu.x * n_ + cu.y)));
    const double r = g.uniform();
    const auto it = std::upper_bound(distance_cdf_.begin(), distance_cdf_.end(), r);
    const auto d = static_cast<std::int64_t>(it - distance_cdf_.begin()) + 1;
    return wrap(sample_ring(cu, d, g));
}

std::array<point, 4> kleinberg_grid::grid_neighbors(point u) const noexcept {
    const point cu = wrap(u);
    return {wrap(cu + point{1, 0}), wrap(cu + point{-1, 0}), wrap(cu + point{0, 1}),
            wrap(cu + point{0, -1})};
}

point kleinberg_grid::random_node(rng& g) const {
    return {g.uniform_int(0, n_ - 1), g.uniform_int(0, n_ - 1)};
}

}  // namespace levy::smallworld
