#pragma once

#include <cstdint>

#include "src/smallworld/kleinberg_grid.h"

namespace levy::smallworld {

/// Result of one greedy route.
struct routing_result {
    bool delivered = false;
    std::uint64_t hops = 0;
};

/// Kleinberg's decentralized greedy routing: from `s`, repeatedly forward to
/// the neighbor (grid or long-range) closest to `t` in torus L1 distance,
/// until `t` is reached or `max_hops` expire. On the torus a grid neighbor
/// always strictly decreases the distance, so delivery is guaranteed given
/// enough hops; `max_hops` only guards pathological budgets.
[[nodiscard]] routing_result greedy_route(const kleinberg_grid& graph, point s, point t,
                                          std::uint64_t max_hops);

}  // namespace levy::smallworld
