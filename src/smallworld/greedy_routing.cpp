#include "src/smallworld/greedy_routing.h"

namespace levy::smallworld {

routing_result greedy_route(const kleinberg_grid& graph, point s, point t,
                            std::uint64_t max_hops) {
    point current = graph.wrap(s);
    const point goal = graph.wrap(t);
    routing_result out;
    while (current != goal && out.hops < max_hops) {
        point best = current;
        std::int64_t best_dist = graph.distance(current, goal);
        for (const point v : graph.grid_neighbors(current)) {
            const std::int64_t d = graph.distance(v, goal);
            if (d < best_dist) {
                best_dist = d;
                best = v;
            }
        }
        const point lr = graph.contact(current);
        if (graph.distance(lr, goal) < best_dist) {
            best = lr;
        }
        current = best;
        ++out.hops;
    }
    out.delivered = current == goal;
    return out;
}

}  // namespace levy::smallworld
