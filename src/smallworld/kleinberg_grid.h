#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy::smallworld {

/// Kleinberg's small-world lattice (paper §2, [24]): an n×n torus where each
/// node u has its four grid neighbors plus one long-range contact chosen
/// with probability proportional to dist(u, v)^{-β}. The paper points out
/// the structural kinship with Lévy walks — the long-range contact law is
/// the jump law of a Lévy walk with exponent β − 1 (footnote 4: β = α + d − 1,
/// d = 2) — and that greedy routing is optimized by exactly one exponent
/// (β = 2), mirroring the unique optimal α of Corollary 4.2.
///
/// Contacts are materialized lazily and deterministically: node u's contact
/// is a pure function of (graph seed, u), so the graph is consistent across
/// queries without Θ(n²) memory. Contact distances are drawn from the
/// Z²-ring law P(d) ∝ 4d·d^{-β} truncated at n−1 and the offset wrapped
/// onto the torus — the standard simulation practice; for d ≤ n/2 this is
/// exactly Kleinberg's model, beyond that wrap-around aliases a negligible
/// mass of far contacts.
class kleinberg_grid {
public:
    /// n ≥ 4, β > 0.
    kleinberg_grid(std::int64_t n, double beta, std::uint64_t seed);

    [[nodiscard]] std::int64_t n() const noexcept { return n_; }
    [[nodiscard]] double beta() const noexcept { return beta_; }

    /// Torus L1 distance.
    [[nodiscard]] std::int64_t distance(point u, point v) const noexcept;

    /// Canonical coordinates in [0, n)².
    [[nodiscard]] point wrap(point u) const noexcept;

    /// The node's long-range contact (deterministic per node).
    [[nodiscard]] point contact(point u) const;

    /// Grid neighbors on the torus (always 4).
    [[nodiscard]] std::array<point, 4> grid_neighbors(point u) const noexcept;

    /// Uniform random node.
    [[nodiscard]] point random_node(rng& g) const;

private:
    std::int64_t n_;
    double beta_;
    std::uint64_t seed_;
    std::vector<double> distance_cdf_;  // cdf over contact distance 1..n-1
};

}  // namespace levy::smallworld
