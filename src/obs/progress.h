#pragma once

#include <cstdint>
#include <string>

#include "src/obs/json.h"

namespace levy::obs {

/// --- Live run progress (--progress[=SECS]) --------------------------------
///
/// A long Monte-Carlo sweep is a black box until its final table lands;
/// this module turns the metrics registry into a heartbeat. A *sampler
/// thread* wakes every `interval_seconds`, snapshots the registry counters
/// the Monte-Carlo driver already maintains (`mc.trials_planned`,
/// `mc.trials_completed`), and prints one line to **stderr** — so stdout
/// stays byte-identical with and without the flag (the resume-determinism
/// CI job diffs stdout). The hot path is untouched: trial completion is the
/// same one relaxed shard increment the registry always does; all reading,
/// rate math, and formatting happen on the sampler thread.
///
/// The reporter is observability, never results: timings are wall-clock and
/// schedule-dependent by nature, which is why they only ever land on stderr
/// and in /progress scrapes, never in tables or CSVs.

struct progress_config {
    double interval_seconds = 2.0;
    /// Prefix for every line (the experiment id in the benches).
    std::string label;
};

/// One consistent reading of the run's in-flight state.
struct progress_snapshot {
    std::string label;
    std::string phase;                      ///< most recent LEVY_SPAN name; "" = none
    std::uint64_t planned = 0;              ///< trials announced by started phases
    std::uint64_t completed = 0;
    std::uint64_t censored = 0;             ///< watchdog-truncated trials
    double elapsed_seconds = 0.0;
    double trials_per_sec = 0.0;            ///< windowed on the sampler, else cumulative
    double eta_seconds = -1.0;              ///< < 0: unknown (no rate yet)
    double checkpoint_age_seconds = -1.0;   ///< < 0: no checkpoint flush yet
};

/// Start the sampler thread. Throws std::logic_error when already running;
/// requires interval_seconds > 0.
void start_progress(const progress_config& cfg);

/// Stop the sampler and emit one final line (so a SIGTERM-cancelled run
/// still reports where it stopped — run_main calls this on the cancellation
/// path before exiting 130). Safe to call when inactive.
void stop_progress();

[[nodiscard]] bool progress_active() noexcept;

/// Monotonic seconds since the first call in this process (steady clock).
/// Shared timebase for checkpoint-age gauges and progress arithmetic.
[[nodiscard]] double monotonic_seconds() noexcept;

/// Record the phase name shown in progress lines; called by every LEVY_SPAN
/// constructor (one relaxed load when progress is off). Best-effort.
void note_progress_phase(const char* name) noexcept;

/// Assemble a snapshot from the registry + Monte-Carlo metrics right now.
/// Works with or without the sampler running (the /progress endpoint uses
/// it on scrape). Cumulative rate; the sampler substitutes a windowed one.
[[nodiscard]] progress_snapshot snapshot_progress();

/// "progress [E6]: 1120/5760 trials (19.4%) | 3210 trials/s | ..." —
/// pure formatting, exposed for tests.
[[nodiscard]] std::string format_progress_line(const progress_snapshot& s);

/// The /progress JSON document (insertion-ordered keys, deterministic
/// serialization for a fixed snapshot).
[[nodiscard]] json progress_to_json(const progress_snapshot& s);

/// Registry metric names the Monte-Carlo driver feeds (also what /metrics
/// exports); centralized so the driver and this reader cannot drift apart.
inline constexpr const char* kTrialsPlannedCounter = "mc.trials_planned";
inline constexpr const char* kTrialsCompletedCounter = "mc.trials_completed";
inline constexpr const char* kCheckpointFlushGauge = "checkpoint.last_flush_seconds";

}  // namespace levy::obs
