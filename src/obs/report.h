#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/obs/json.h"
#include "src/sim/monte_carlo.h"

namespace levy::obs {

/// --- Structured bench results sink ----------------------------------------
///
/// `begin_report` opens the process-wide report for one experiment and
/// installs a stats::text_table print observer, so every table a bench
/// prints is also captured as structured rows — benches need no changes
/// beyond passing their experiment id to run_main. `write_report` builds
/// the schema-v1 document and lands it through the crash-safe writer
/// (tmp + fsync + rename), so a killed run never leaves a torn JSON.
///
/// Schema v1 (validated by `validate_bench_json` and `levyreport --check`):
///
///   {
///     "schema": "levy-bench",
///     "version": 1,
///     "experiment": "E12",
///     "git_describe": "<git describe --always --dirty, or 'unknown'>",
///     "options": { "<flag>": "<value>", ... },
///     "rows": [ { "table": 0, "values": { "<column>": "<cell>", ... } } ],
///     "metrics": {
///       "trials": N, "wall_seconds": s, "busy_seconds": s,
///       "max_workers": W, "trials_per_sec": r,
///       "utilization": u | null,       // null when no parallel work ran
///       "censored": C,
///       "counters": { "<name>": N, ... },
///       "gauges": { "<name>": v, ... },
///       "per_phase_spans": [ { "name": "...", "count": N,
///                              "wall_seconds": s, "busy_seconds": s } ]
///     },
///     "interrupted": true        // only present on a cancelled (SIGTERM)
///                                // run whose partial document was flushed
///   }
///
/// Compatibility rule: within version 1, fields are only ever *added*;
/// consumers must ignore unknown keys. Removing or re-typing a field bumps
/// "version".

/// Open the report and start capturing printed tables. Options are
/// (flag, value) pairs as the user would re-type them.
void begin_report(const std::string& experiment,
                  std::vector<std::pair<std::string, std::string>> options);

[[nodiscard]] bool report_active() noexcept;

/// Build the schema-v1 document from everything captured since
/// begin_report, plus the run's Monte-Carlo metrics, the obs registry
/// snapshot, and per-phase span aggregates. With `interrupted` the document
/// is marked as a partial result of a cancelled run (additive field, still
/// schema v1 — see the compatibility rule).
[[nodiscard]] json build_report(const sim::run_metrics& m, bool interrupted = false);

/// build_report + atomic write of `dump(2)` to `path`. Throws
/// std::runtime_error on I/O failure.
void write_report(const std::string& path, const sim::run_metrics& m,
                  bool interrupted = false);

/// Close the report and uninstall the table observer (write_report does
/// not, so a bench may write to several sinks). Safe when inactive.
void end_report();

/// Validate a parsed document against schema v1. Returns one message per
/// problem; empty means valid. Unknown keys are allowed (see the
/// compatibility rule above).
[[nodiscard]] std::vector<std::string> validate_bench_json(const json& doc);

}  // namespace levy::obs
