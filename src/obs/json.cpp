#include "src/obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace levy::obs {
namespace {

[[noreturn]] void kind_error(const char* want, json::kind got) {
    static const char* names[] = {"null", "boolean", "number", "string", "array", "object"};
    throw std::runtime_error(std::string("json: expected ") + want + ", have " +
                             names[static_cast<int>(got)]);
}

void append_number(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";  // JSON has no Inf/NaN; null is the conventional stand-in
        return;
    }
    // Integers in the exactly-representable range print without a fraction,
    // so counters and trial counts stay grep-able integers on disk.
    // levylint:allow(float-equality) intentional exact check: floor(v) == v
    // is the definition of "integral", no tolerance wanted
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        const auto r = std::to_chars(buf, buf + sizeof(buf),
                                     static_cast<long long>(v));
        out.append(buf, r.ptr);
        return;
    }
    char buf[64];
    const auto r = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, r.ptr);
}

class parser {
public:
    explicit parser(const std::string& text) : s_(text) {}

    json run() {
        json v = value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " +
                                 what);
    }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool literal(const char* word) {
        const std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(pos_, n, word) != 0) return false;
        pos_ += n;
        return true;
    }

    json value() {
        skip_ws();
        switch (peek()) {
            case '{': return object();
            case '[': return array();
            case '"': return json(string());
            case 't':
                if (!literal("true")) fail("bad literal");
                return json(true);
            case 'f':
                if (!literal("false")) fail("bad literal");
                return json(false);
            case 'n':
                if (!literal("null")) fail("bad literal");
                return json(nullptr);
            default: return number();
        }
    }

    json number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        double v = 0.0;
        const auto r = std::from_chars(s_.data() + start, s_.data() + pos_, v);
        if (r.ec != std::errc{} || r.ptr != s_.data() + pos_ || pos_ == start) {
            pos_ = start;
            fail("malformed number");
        }
        return json(v);
    }

    void append_codepoint(std::string& out, unsigned cp) {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) fail("unterminated string");
            const char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("short \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') {
                            cp |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            fail("bad hex digit in \\u escape");
                        }
                    }
                    append_codepoint(out, cp);
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    json array() {
        expect('[');
        json out = json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push_back(value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == ']') return out;
            if (c != ',') fail("expected ',' or ']'");
        }
    }

    json object() {
        expect('{');
        json out = json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skip_ws();
            std::string key = string();
            skip_ws();
            expect(':');
            out.set(key, value());
            skip_ws();
            const char c = peek();
            ++pos_;
            if (c == '}') return out;
            if (c != ',') fail("expected ',' or '}'");
        }
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

}  // namespace

json json::array() {
    json j;
    j.kind_ = kind::array;
    return j;
}

json json::object() {
    json j;
    j.kind_ = kind::object;
    return j;
}

bool json::as_bool() const {
    if (kind_ != kind::boolean) kind_error("boolean", kind_);
    return bool_;
}

double json::as_number() const {
    if (kind_ != kind::number) kind_error("number", kind_);
    return num_;
}

const std::string& json::as_string() const {
    if (kind_ != kind::string) kind_error("string", kind_);
    return str_;
}

std::size_t json::size() const noexcept {
    if (kind_ == kind::array) return arr_.size();
    if (kind_ == kind::object) return obj_.size();
    return 0;
}

const json& json::at(std::size_t i) const {
    if (kind_ != kind::array) kind_error("array", kind_);
    if (i >= arr_.size()) throw std::out_of_range("json: array index out of range");
    return arr_[i];
}

void json::push_back(json v) {
    if (kind_ == kind::null) kind_ = kind::array;
    if (kind_ != kind::array) kind_error("array", kind_);
    arr_.push_back(std::move(v));
}

const json& json::at(const std::string& key) const {
    const json* p = find(key);
    if (p == nullptr) throw std::runtime_error("json: missing key \"" + key + "\"");
    return *p;
}

const json* json::find(const std::string& key) const noexcept {
    if (kind_ != kind::object) return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key) return &v;
    }
    return nullptr;
}

bool json::contains(const std::string& key) const noexcept { return find(key) != nullptr; }

void json::set(const std::string& key, json v) {
    if (kind_ == kind::null) kind_ = kind::object;
    if (kind_ != kind::object) kind_error("object", kind_);
    for (auto& [k, existing] : obj_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, json>>& json::members() const {
    if (kind_ != kind::object) kind_error("object", kind_);
    return obj_;
}

const std::vector<json>& json::elements() const {
    if (kind_ != kind::array) kind_error("array", kind_);
    return arr_;
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void json::dump_to(std::string& out, int indent, int depth) const {
    const auto newline = [&](int d) {
        if (indent <= 0) return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (kind_) {
        case kind::null: out += "null"; break;
        case kind::boolean: out += bool_ ? "true" : "false"; break;
        case kind::number: append_number(out, num_); break;
        case kind::string:
            out += '"';
            out += json_escape(str_);
            out += '"';
            break;
        case kind::array: {
            out += '[';
            for (std::size_t i = 0; i < arr_.size(); ++i) {
                if (i != 0) out += ',';
                newline(depth + 1);
                arr_[i].dump_to(out, indent, depth + 1);
            }
            if (!arr_.empty()) newline(depth);
            out += ']';
            break;
        }
        case kind::object: {
            out += '{';
            for (std::size_t i = 0; i < obj_.size(); ++i) {
                if (i != 0) out += ',';
                newline(depth + 1);
                out += '"';
                out += json_escape(obj_[i].first);
                out += "\":";
                if (indent > 0) out += ' ';
                obj_[i].second.dump_to(out, indent, depth + 1);
            }
            if (!obj_.empty()) newline(depth);
            out += '}';
            break;
        }
    }
}

std::string json::dump(int indent) const {
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

json json::parse(const std::string& text) { return parser(text).run(); }

}  // namespace levy::obs
