#include "src/obs/metrics.h"

#include <array>
#include <atomic>
#include <bit>
#include <memory>
#include <mutex>

#include "src/core/contracts.h"

namespace levy::obs {

// Handle factories: the only way to mint a non-default handle, kept out of
// the public class API so slot indices stay an implementation detail.
counter make_counter_handle(std::size_t slot) noexcept { return counter(slot); }
histogram_metric make_histogram_handle(std::size_t base, const histogram_spec& spec) noexcept {
    return {base, spec};
}

namespace {

/// One thread's private slot arena. Relaxed atomics rather than plain
/// integers so a concurrent snapshot is race-free (TSan-clean) — on the
/// owning thread an uncontended relaxed fetch_add costs about as much as a
/// plain add.
struct shard {
    std::array<std::atomic<std::uint64_t>, kShardSlots> slots{};
};

struct metric_entry {
    std::size_t base = 0;
    histogram_spec spec;  ///< meaningful for histograms only
};

struct registry_state {
    mutable std::mutex m;
    std::vector<std::unique_ptr<shard>> shards;
    std::size_t next_slot = 0;
    std::map<std::string, metric_entry> counters;
    std::map<std::string, metric_entry> histograms;
    std::map<std::string, double> gauges;

    std::size_t allocate_locked(std::size_t slots) {
        LEVY_PRECONDITION(next_slot + slots <= kShardSlots,
                          "obs registry: shard slot arena exhausted (too many metrics)");
        const std::size_t base = next_slot;
        next_slot += slots;
        return base;
    }
};

/// Intentionally leaked: persistent pool workers may still increment shard
/// slots during static destruction, so the arena must outlive every
/// static-destruction order.
registry_state& state() {
    static registry_state* s = new registry_state;
    return *s;
}

/// The calling thread's shard, registered (and owned) by the registry on
/// first use so it outlives the thread and its counts survive in snapshots.
shard& tl_shard() {
    thread_local shard* s = nullptr;
    if (s == nullptr) {
        registry_state& st = state();
        std::lock_guard lk(st.m);
        st.shards.push_back(std::make_unique<shard>());
        s = st.shards.back().get();
    }
    return *s;
}

}  // namespace

counter get_counter(const std::string& name) {
    LEVY_PRECONDITION(!name.empty(), "obs::get_counter: name must be non-empty");
    registry_state& st = state();
    std::lock_guard lk(st.m);
    LEVY_PRECONDITION(st.histograms.count(name) == 0,
                      "obs::get_counter: name already registered as a histogram: " + name);
    auto it = st.counters.find(name);
    if (it == st.counters.end()) {
        it = st.counters.emplace(name, metric_entry{st.allocate_locked(1), {}}).first;
    }
    return make_counter_handle(it->second.base);
}

histogram_metric get_histogram(const std::string& name, const histogram_spec& spec) {
    LEVY_PRECONDITION(!name.empty(), "obs::get_histogram: name must be non-empty");
    if (spec.kind == histogram_spec::scale::linear) {
        LEVY_PRECONDITION(spec.hi > spec.lo && spec.bins >= 1,
                          "obs::get_histogram: linear spec needs hi > lo and bins >= 1");
    }
    registry_state& st = state();
    std::lock_guard lk(st.m);
    LEVY_PRECONDITION(st.counters.count(name) == 0,
                      "obs::get_histogram: name already registered as a counter: " + name);
    auto it = st.histograms.find(name);
    if (it == st.histograms.end()) {
        it = st.histograms.emplace(name, metric_entry{st.allocate_locked(spec.slots()), spec})
                 .first;
    } else {
        LEVY_PRECONDITION(it->second.spec == spec,
                          "obs::get_histogram: layout mismatch for re-registered histogram: " +
                              name);
    }
    return make_histogram_handle(it->second.base, spec);
}

void set_gauge(const std::string& name, double value) {
    LEVY_PRECONDITION(!name.empty(), "obs::set_gauge: name must be non-empty");
    registry_state& st = state();
    std::lock_guard lk(st.m);
    st.gauges[name] = value;
}

metrics_view snapshot_metrics() {
    registry_state& st = state();
    std::lock_guard lk(st.m);
    const auto sum_slot = [&](std::size_t slot) {
        std::uint64_t total = 0;
        for (const auto& s : st.shards) {
            total += s->slots[slot].load(std::memory_order_relaxed);
        }
        return total;
    };
    metrics_view out;
    for (const auto& [name, entry] : st.counters) {
        out.counters.emplace(name, sum_slot(entry.base));
    }
    for (const auto& [name, entry] : st.histograms) {
        histogram_snapshot h;
        h.spec = entry.spec;
        h.buckets.resize(entry.spec.slots());
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
            h.buckets[i] = sum_slot(entry.base + i);
        }
        out.histograms.emplace(name, std::move(h));
    }
    out.gauges = st.gauges;
    return out;
}

void reset_metrics_registry() {
    registry_state& st = state();
    std::lock_guard lk(st.m);
    for (const auto& s : st.shards) {
        for (auto& slot : s->slots) slot.store(0, std::memory_order_relaxed);
    }
    st.gauges.clear();
}

void counter::add(std::uint64_t n) const {
    tl_shard().slots[slot_].fetch_add(n, std::memory_order_relaxed);
}

void histogram_metric::observe(double value) const {
    if (spec_.kind == histogram_spec::scale::log2) {
        observe_u64(value <= 0.0 ? 0 : static_cast<std::uint64_t>(value));
        return;
    }
    std::size_t slot = base_;  // underflow
    if (value >= spec_.lo) {
        const double width = (spec_.hi - spec_.lo) / static_cast<double>(spec_.bins);
        const double rel = (value - spec_.lo) / width;
        slot = rel >= static_cast<double>(spec_.bins)
                   ? base_ + spec_.bins + 1  // overflow (value == hi lands here too)
                   : base_ + 1 + static_cast<std::size_t>(rel);
    }
    tl_shard().slots[slot].fetch_add(1, std::memory_order_relaxed);
}

void histogram_metric::observe_u64(std::uint64_t value) const {
    if (spec_.kind == histogram_spec::scale::linear) {
        observe(static_cast<double>(value));
        return;
    }
    const std::size_t slot =
        value == 0 ? base_ : base_ + static_cast<std::size_t>(std::bit_width(value));
    tl_shard().slots[slot].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t histogram_snapshot::total() const noexcept {
    std::uint64_t t = 0;
    for (const std::uint64_t b : buckets) t += b;
    return t;
}

}  // namespace levy::obs
