#include "src/obs/progress.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <stdexcept>
// levylint:allow(raw-thread) sampler thread: observability only — it never
// runs trial work, so it cannot perturb the (seed, trial index) contract.
#include <thread>

#include "src/core/contracts.h"
#include "src/obs/metrics.h"
#include "src/sim/monte_carlo.h"

namespace levy::obs {
namespace {

using clock = std::chrono::steady_clock;

/// Fast-path flag for note_progress_phase (one relaxed load when off).
std::atomic<bool> g_phase_hook{false};

struct progress_state {
    std::mutex m;
    std::condition_variable cv;
    bool running = false;
    bool stop_requested = false;
    progress_config cfg;
    double started_at = 0.0;  ///< monotonic_seconds at start
    std::string phase;
    // Sampler window for the live rate.
    std::uint64_t prev_completed = 0;
    double prev_time = 0.0;
    std::thread sampler;  // levylint:allow(raw-thread) see file header note
};

/// Leaked like the metrics registry: note_progress_phase may run during
/// static destruction (spans on pool workers).
progress_state& state() {
    static progress_state* s = new progress_state;
    return *s;
}

void emit_line(const progress_snapshot& snap) {
    const std::string line = format_progress_line(snap) + "\n";
    // One fputs so concurrent stderr writers cannot interleave mid-line.
    std::fputs(line.c_str(), stderr);
}

/// Registry + Monte-Carlo half of a snapshot: everything that does not
/// need the progress-state mutex (so both the locked sampler and the
/// public entry point can share it without recursive locking).
progress_snapshot snapshot_counters() {
    progress_snapshot snap;
    const metrics_view view = snapshot_metrics();
    if (const auto it = view.counters.find(kTrialsPlannedCounter); it != view.counters.end()) {
        snap.planned = it->second;
    }
    if (const auto it = view.counters.find(kTrialsCompletedCounter);
        it != view.counters.end()) {
        snap.completed = it->second;
    }
    const double now = monotonic_seconds();
    if (const auto it = view.gauges.find(kCheckpointFlushGauge); it != view.gauges.end()) {
        snap.checkpoint_age_seconds = now - it->second;
        if (snap.checkpoint_age_seconds < 0.0) snap.checkpoint_age_seconds = 0.0;
    }
    snap.censored = sim::metrics_snapshot().censored;
    return snap;
}

/// Cumulative rate + ETA from whatever elapsed time the snapshot carries.
void derive_rate(progress_snapshot& snap) {
    if (snap.elapsed_seconds > 0.0 && snap.completed > 0) {
        snap.trials_per_sec = static_cast<double>(snap.completed) / snap.elapsed_seconds;
        if (snap.planned > snap.completed) {
            snap.eta_seconds =
                static_cast<double>(snap.planned - snap.completed) / snap.trials_per_sec;
        }
    }
}

/// Windowed rate/ETA refinement + line emission; called with the state
/// locked so the window fields stay consistent.
void sample_locked(progress_state& st) {
    progress_snapshot snap = snapshot_counters();
    const double now = monotonic_seconds();
    snap.label = st.cfg.label;
    snap.phase = st.phase;
    snap.elapsed_seconds = now - st.started_at;
    derive_rate(snap);
    const double dt = now - st.prev_time;
    if (dt > 0.0 && snap.completed >= st.prev_completed) {
        const double windowed =
            static_cast<double>(snap.completed - st.prev_completed) / dt;
        if (windowed > 0.0) {
            snap.trials_per_sec = windowed;
            if (snap.planned > snap.completed) {
                snap.eta_seconds =
                    static_cast<double>(snap.planned - snap.completed) / windowed;
            }
        }
    }
    st.prev_completed = snap.completed;
    st.prev_time = now;
    emit_line(snap);
}

void sampler_loop() {
    progress_state& st = state();
    std::unique_lock lk(st.m);
    while (!st.stop_requested) {
        const auto interval = std::chrono::duration<double>(st.cfg.interval_seconds);
        st.cv.wait_for(lk, interval, [&] { return st.stop_requested; });
        if (st.stop_requested) break;
        sample_locked(st);
    }
}

std::string fmt_duration(double seconds) {
    if (seconds < 0.0) return "?";
    auto total = static_cast<std::uint64_t>(seconds + 0.5);
    std::ostringstream out;
    if (total >= 3600) {
        out << total / 3600 << "h" << (total % 3600) / 60 << "m";
    } else if (total >= 60) {
        out << total / 60 << "m" << total % 60 << "s";
    } else {
        out << total << "s";
    }
    return out.str();
}

}  // namespace

double monotonic_seconds() noexcept {
    static const clock::time_point epoch = clock::now();
    return std::chrono::duration<double>(clock::now() - epoch).count();
}

void note_progress_phase(const char* name) noexcept {
    if (!g_phase_hook.load(std::memory_order_relaxed)) return;
    try {
        progress_state& st = state();
        std::lock_guard lk(st.m);
        st.phase = name;
    } catch (...) {
        // Best-effort: losing a phase label must never take down a trial.
    }
}

bool progress_active() noexcept {
    return g_phase_hook.load(std::memory_order_relaxed);
}

void start_progress(const progress_config& cfg) {
    LEVY_PRECONDITION(cfg.interval_seconds > 0.0,
                      "start_progress: interval_seconds must be positive");
    progress_state& st = state();
    std::unique_lock lk(st.m);
    if (st.running) throw std::logic_error("start_progress: reporter already running");
    st.running = true;
    st.stop_requested = false;
    st.cfg = cfg;
    st.started_at = monotonic_seconds();
    st.phase.clear();
    st.prev_completed = snapshot_counters().completed;
    st.prev_time = st.started_at;
    g_phase_hook.store(true, std::memory_order_relaxed);
    // levylint:allow(raw-thread) observability sampler; never runs trial work
    st.sampler = std::thread(sampler_loop);
}

void stop_progress() {
    progress_state& st = state();
    std::unique_lock lk(st.m);
    if (!st.running) return;
    st.stop_requested = true;
    st.cv.notify_all();
    // levylint:allow(raw-thread) moving the sampler handle out for join; not trial work
    std::thread sampler = std::move(st.sampler);
    lk.unlock();
    if (sampler.joinable()) sampler.join();
    lk.lock();
    // Final line: where the run actually ended (SIGTERM path included).
    sample_locked(st);
    st.running = false;
    g_phase_hook.store(false, std::memory_order_relaxed);
}

progress_snapshot snapshot_progress() {
    progress_snapshot snap = snapshot_counters();
    const double now = monotonic_seconds();
    {
        progress_state& st = state();
        std::lock_guard lk(st.m);
        snap.label = st.cfg.label;
        snap.phase = st.phase;
        snap.elapsed_seconds = st.running ? now - st.started_at : now;
    }
    derive_rate(snap);
    return snap;
}

std::string format_progress_line(const progress_snapshot& s) {
    std::ostringstream out;
    out << "progress";
    if (!s.label.empty()) out << " [" << s.label << "]";
    out << ": " << s.completed;
    if (s.planned > 0) {
        out << "/" << s.planned << " trials";
        const double pct =
            100.0 * static_cast<double>(s.completed) / static_cast<double>(s.planned);
        out << " (" << std::fixed;
        out.precision(1);
        out << pct << "%)";
    } else {
        out << " trials";
    }
    out.precision(0);
    out << " | " << std::llround(s.trials_per_sec) << " trials/s";
    if (!s.phase.empty()) out << " | phase " << s.phase;
    if (s.censored > 0) out << " | " << s.censored << " censored";
    if (s.checkpoint_age_seconds >= 0.0) {
        out.precision(1);
        out << " | ckpt " << s.checkpoint_age_seconds << "s ago";
    }
    out << " | ETA " << fmt_duration(s.eta_seconds);
    out << " | elapsed " << fmt_duration(s.elapsed_seconds);
    return out.str();
}

json progress_to_json(const progress_snapshot& s) {
    json doc = json::object();
    doc.set("label", s.label);
    doc.set("phase", s.phase);
    doc.set("planned", s.planned);
    doc.set("completed", s.completed);
    doc.set("censored", s.censored);
    doc.set("elapsed_seconds", s.elapsed_seconds);
    doc.set("trials_per_sec", s.trials_per_sec);
    doc.set("eta_seconds", s.eta_seconds < 0.0 ? json(nullptr) : json(s.eta_seconds));
    doc.set("checkpoint_age_seconds",
            s.checkpoint_age_seconds < 0.0 ? json(nullptr) : json(s.checkpoint_age_seconds));
    return doc;
}

}  // namespace levy::obs
