#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace levy::obs {

/// Bucket layout of a registry histogram, fixed at registration so shards
/// can be merged bucket-by-bucket.
///
///   linear: `bins` equal-width buckets over [lo, hi), plus an underflow
///           and an overflow bucket (same convention as stats::histogram).
///   log2:   64 power-of-two buckets for positive integer observations
///           (bucket b holds [2^b, 2^{b+1})), plus a zero bucket — the
///           shape used for latencies in nanoseconds and step counts.
struct histogram_spec {
    enum class scale : std::uint8_t { linear, log2 };
    scale kind = scale::log2;
    double lo = 0.0;
    double hi = 1.0;
    std::size_t bins = 1;  ///< linear only; log2 always has 64 + zero

    [[nodiscard]] std::size_t slots() const noexcept {
        return kind == scale::log2 ? 65 : bins + 2;  // +underflow +overflow
    }
    [[nodiscard]] bool operator==(const histogram_spec&) const noexcept = default;
};

/// A named monotonic counter. Handles are cheap value types (a slot index);
/// `add` is the hot path: one relaxed atomic increment on the calling
/// thread's private shard — no contention, no locks. (The very first use on
/// a thread allocates that thread's shard, so `add` is not noexcept.)
class counter {
public:
    counter() = default;
    void add(std::uint64_t n = 1) const;

private:
    friend counter make_counter_handle(std::size_t) noexcept;
    explicit counter(std::size_t slot) : slot_(slot) {}
    std::size_t slot_ = 0;
};

/// A named histogram with the fixed layout of its `histogram_spec`.
class histogram_metric {
public:
    histogram_metric() = default;
    /// Linear histograms: bucket by value (the top edge `hi` overflows,
    /// matching stats::histogram's half-open bins). Log2 histograms:
    /// `observe_u64` takes the non-negative integer magnitude (e.g.
    /// nanoseconds); `observe` truncates.
    void observe(double value) const;
    void observe_u64(std::uint64_t value) const;

private:
    friend histogram_metric make_histogram_handle(std::size_t, const histogram_spec&) noexcept;
    histogram_metric(std::size_t base, histogram_spec spec) : base_(base), spec_(spec) {}
    std::size_t base_ = 0;
    histogram_spec spec_;
};

/// Merged view of one histogram.
struct histogram_snapshot {
    histogram_spec spec;
    /// linear: [underflow, bucket 0..bins-1, overflow];
    /// log2:   [zeros, bucket 0..63].
    std::vector<std::uint64_t> buckets;
    [[nodiscard]] std::uint64_t total() const noexcept;
};

/// Everything the registry knows, merged across shards at one instant.
/// std::map keeps the output deterministically name-ordered.
struct metrics_view {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, histogram_snapshot> histograms;
};

/// --- Process-wide metrics registry ---------------------------------------
///
/// Sharding model: every thread that touches a counter or histogram lazily
/// registers one private shard — a fixed arena of relaxed atomics owned by
/// the registry (so it outlives the thread, and counts survive thread
/// exit). Increments touch only the caller's shard; `snapshot_metrics()`
/// walks all shards and sums. Integer addition commutes, so the merged
/// totals are bit-identical for any thread count or schedule — the same
/// determinism contract as the Monte-Carlo driver. Gauges are cold-path
/// (set under the registry mutex, last write wins).

/// Find-or-create a counter by name. Re-registering an existing name
/// returns the same slot; a name collision with a histogram throws.
[[nodiscard]] counter get_counter(const std::string& name);

/// Find-or-create a histogram by name. Re-registering with a different
/// spec throws (fixed layout is what makes shard merging well-defined).
[[nodiscard]] histogram_metric get_histogram(const std::string& name,
                                             const histogram_spec& spec);

void set_gauge(const std::string& name, double value);

[[nodiscard]] metrics_view snapshot_metrics();

/// Zero every shard slot and drop gauges; registrations survive (handles
/// held by callers stay valid). Test/bench-reset hook.
void reset_metrics_registry();

/// Slots available per shard; registration beyond this throws.
inline constexpr std::size_t kShardSlots = 4096;

}  // namespace levy::obs
