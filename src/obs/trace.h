#pragma once

#include <string>
#include <vector>

namespace levy::obs {

/// One completed tracing span.
struct span_record {
    std::string name;
    double start_seconds = 0.0;  ///< since collection started
    double wall_seconds = 0.0;
    /// Worker busy time accumulated by the Monte-Carlo pool while the span
    /// was open (sim::metrics_snapshot delta) — wall tells you how long a
    /// phase took, busy tells you how much of it was parallel trial work.
    double busy_seconds = 0.0;
    unsigned tid = 0;   ///< stable small per-thread index
    unsigned depth = 0; ///< nesting depth on its thread (0 = outermost)
};

/// --- Span collection ------------------------------------------------------
///
/// Off by default: `LEVY_SPAN("phase")` costs one relaxed atomic load when
/// collection is disabled. `start_span_collection()` (called by run_main
/// when --trace or --json is in effect) clears the store and starts
/// recording; completed spans land in a mutex-guarded store in completion
/// order. Span *timings* are wall-clock and therefore not deterministic,
/// but they are observability output, never experiment results.

void start_span_collection();
void stop_span_collection();
[[nodiscard]] bool collecting_spans() noexcept;

/// Completed spans, in completion order.
[[nodiscard]] std::vector<span_record> collected_spans();

/// Write every collected span as a Chrome trace-event JSON file
/// (chrome://tracing / Perfetto "X" complete events, microsecond
/// timestamps) through the crash-safe atomic writer. Throws
/// std::runtime_error on I/O failure.
void write_chrome_trace(const std::string& path);

/// RAII span: records wall/busy time from construction to destruction.
/// Inactive (and free beyond the flag check) when collection is off.
class span {
public:
    explicit span(const char* name);
    span(const span&) = delete;
    span& operator=(const span&) = delete;
    ~span();

private:
    const char* name_;
    bool active_ = false;
    unsigned depth_ = 0;
    double start_seconds_ = 0.0;
    double busy_at_start_ = 0.0;
};

}  // namespace levy::obs

#define LEVY_OBS_CONCAT_IMPL(a, b) a##b
#define LEVY_OBS_CONCAT(a, b) LEVY_OBS_CONCAT_IMPL(a, b)

/// Open a tracing span for the rest of the enclosing scope.
#define LEVY_SPAN(name) \
    ::levy::obs::span LEVY_OBS_CONCAT(levy_obs_span_, __COUNTER__)(name)
