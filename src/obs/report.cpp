#include "src/obs/report.h"

#include <map>
#include <mutex>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/checkpoint.h"
#include "src/stats/table.h"

#ifndef LEVY_GIT_DESCRIBE
#define LEVY_GIT_DESCRIBE "unknown"
#endif

namespace levy::obs {
namespace {

struct captured_table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

struct report_state {
    std::mutex m;
    bool active = false;
    std::string experiment;
    std::vector<std::pair<std::string, std::string>> options;
    std::vector<captured_table> tables;
};

report_state& state() {
    static report_state s;
    return s;
}

json number_or_null(double v, bool defined) {
    return defined ? json(v) : json(nullptr);
}

}  // namespace

void begin_report(const std::string& experiment,
                  std::vector<std::pair<std::string, std::string>> options) {
    report_state& s = state();
    std::lock_guard lk(s.m);
    s.active = true;
    s.experiment = experiment;
    s.options = std::move(options);
    s.tables.clear();
    stats::set_table_print_observer([](const stats::text_table& t) {
        report_state& st = state();
        std::lock_guard lk2(st.m);
        if (!st.active) return;
        st.tables.push_back({t.header(), t.cell_rows()});
    });
}

bool report_active() noexcept {
    report_state& s = state();
    std::lock_guard lk(s.m);
    return s.active;
}

void end_report() {
    report_state& s = state();
    std::lock_guard lk(s.m);
    s.active = false;
    s.tables.clear();
    stats::set_table_print_observer({});
}

json build_report(const sim::run_metrics& m, bool interrupted) {
    report_state& s = state();
    std::lock_guard lk(s.m);

    json doc = json::object();
    doc.set("schema", "levy-bench");
    doc.set("version", 1);
    doc.set("experiment", s.experiment);
    doc.set("git_describe", LEVY_GIT_DESCRIBE);

    json options = json::object();
    for (const auto& [flag, value] : s.options) options.set(flag, value);
    doc.set("options", std::move(options));

    json rows = json::array();
    for (std::size_t t = 0; t < s.tables.size(); ++t) {
        const captured_table& table = s.tables[t];
        for (const auto& cells : table.rows) {
            json row = json::object();
            row.set("table", t);
            json values = json::object();
            for (std::size_t c = 0; c < cells.size() && c < table.header.size(); ++c) {
                values.set(table.header[c], cells[c]);
            }
            row.set("values", std::move(values));
            rows.push_back(std::move(row));
        }
    }
    doc.set("rows", std::move(rows));

    json metrics = json::object();
    metrics.set("trials", m.trials);
    metrics.set("wall_seconds", m.wall_seconds);
    metrics.set("busy_seconds", m.busy_seconds);
    metrics.set("max_workers", m.max_workers);
    metrics.set("trials_per_sec", m.trials_per_sec());
    const bool has_capacity = m.wall_seconds * static_cast<double>(m.max_workers) > 0.0;
    metrics.set("utilization", number_or_null(m.utilization(), has_capacity));
    metrics.set("censored", m.censored);

    const metrics_view view = snapshot_metrics();
    json counters = json::object();
    for (const auto& [name, value] : view.counters) counters.set(name, value);
    metrics.set("counters", std::move(counters));
    json gauges = json::object();
    for (const auto& [name, value] : view.gauges) gauges.set(name, value);
    metrics.set("gauges", std::move(gauges));

    // Aggregate spans by name (name-sorted for output determinism); a phase
    // that runs several times reports its total wall/busy and a count.
    struct span_agg {
        std::uint64_t count = 0;
        double wall = 0.0;
        double busy = 0.0;
    };
    std::map<std::string, span_agg> by_name;
    for (const span_record& rec : collected_spans()) {
        span_agg& a = by_name[rec.name];
        ++a.count;
        a.wall += rec.wall_seconds;
        a.busy += rec.busy_seconds;
    }
    json spans = json::array();
    for (const auto& [name, agg] : by_name) {
        json span = json::object();
        span.set("name", name);
        span.set("count", agg.count);
        span.set("wall_seconds", agg.wall);
        span.set("busy_seconds", agg.busy);
        spans.push_back(std::move(span));
    }
    metrics.set("per_phase_spans", std::move(spans));

    doc.set("metrics", std::move(metrics));
    if (interrupted) doc.set("interrupted", true);
    return doc;
}

void write_report(const std::string& path, const sim::run_metrics& m, bool interrupted) {
    const std::string text = build_report(m, interrupted).dump(2) + "\n";
    sim::atomic_write_file(path, std::vector<char>(text.begin(), text.end()));
}

std::vector<std::string> validate_bench_json(const json& doc) {
    std::vector<std::string> errors;
    const auto err = [&](const std::string& msg) { errors.push_back(msg); };

    if (!doc.is_object()) {
        err("document is not a JSON object");
        return errors;
    }
    const auto require = [&](const char* key, bool ok, const char* what) {
        if (!ok) err(std::string("\"") + key + "\" " + what);
    };

    const json* schema = doc.find("schema");
    require("schema", schema != nullptr && schema->is_string() &&
                          schema->as_string() == "levy-bench",
            "must be the string \"levy-bench\"");
    const json* version = doc.find("version");
    require("version", version != nullptr && version->is_number() && version->as_number() == 1,
            "must be the number 1");
    const json* experiment = doc.find("experiment");
    require("experiment",
            experiment != nullptr && experiment->is_string() && !experiment->as_string().empty(),
            "must be a non-empty string");
    const json* git = doc.find("git_describe");
    require("git_describe", git != nullptr && git->is_string(), "must be a string");
    const json* options = doc.find("options");
    require("options", options != nullptr && options->is_object(), "must be an object");
    const json* interrupted = doc.find("interrupted");
    require("interrupted", interrupted == nullptr || interrupted->is_bool(),
            "must be a boolean when present");

    const json* rows = doc.find("rows");
    if (rows == nullptr || !rows->is_array()) {
        err("\"rows\" must be an array");
    } else {
        for (std::size_t i = 0; i < rows->size(); ++i) {
            const json& row = rows->at(i);
            if (!row.is_object() || !row.contains("values") || !row.at("values").is_object()) {
                err("rows[" + std::to_string(i) + "] must be an object with a \"values\" object");
                break;  // one message per malformed shape is enough
            }
        }
    }

    const json* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->is_object()) {
        err("\"metrics\" must be an object");
        return errors;
    }
    const auto metric_number = [&](const char* key) {
        const json* field = metrics->find(key);
        if (field == nullptr || !field->is_number()) {
            err(std::string("metrics.") + key + " must be a number");
        }
    };
    metric_number("trials");
    metric_number("trials_per_sec");
    metric_number("censored");
    const json* util = metrics->find("utilization");
    if (util == nullptr || !(util->is_number() || util->is_null())) {
        err("metrics.utilization must be a number or null");
    }
    const json* spans = metrics->find("per_phase_spans");
    if (spans == nullptr || !spans->is_array()) {
        err("metrics.per_phase_spans must be an array");
    } else {
        for (std::size_t i = 0; i < spans->size(); ++i) {
            const json& span = spans->at(i);
            const bool ok = span.is_object() && span.contains("name") &&
                            span.at("name").is_string() && span.contains("wall_seconds") &&
                            span.at("wall_seconds").is_number();
            if (!ok) {
                err("metrics.per_phase_spans[" + std::to_string(i) +
                    "] must have a string \"name\" and numeric \"wall_seconds\"");
                break;
            }
        }
    }
    return errors;
}

}  // namespace levy::obs
