#include "src/obs/exporter.h"

#include <atomic>
#include <charconv>
#include <cstring>
#include <mutex>
#include <stdexcept>
// levylint:allow(raw-thread) server thread: observability I/O only — it
// serves read-only snapshots and never runs trial work.
#include <thread>

#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/serve/http.h"
#include "src/sim/monte_carlo.h"

#define LEVY_HAVE_POSIX_SOCKETS LEVY_SERVE_HAVE_POSIX_SOCKETS
#if LEVY_HAVE_POSIX_SOCKETS
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace levy::obs {
namespace {

/// Shortest-round-trip double, matching the JSON writer's determinism.
std::string fmt_double(double v) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    if (ec != std::errc{}) return "0";
    return std::string(buf, ptr);
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

/// Inclusive upper edge of log2 snapshot slot `i` (slot 0 = zeros, slot
/// b >= 1 = [2^(b-1), 2^b)), as a Prometheus `le` label.
std::string log2_le(std::size_t slot) {
    if (slot == 0) return "0";
    if (slot >= 64) return fmt_u64(~std::uint64_t{0});
    return fmt_u64((std::uint64_t{1} << slot) - 1);
}

void append_histogram(std::string& out, const std::string& name,
                      const histogram_snapshot& h) {
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cumulative = 0;
    double sum_estimate = 0.0;
    if (h.spec.kind == histogram_spec::scale::log2) {
        for (std::size_t slot = 0; slot < h.buckets.size(); ++slot) {
            cumulative += h.buckets[slot];
            out += name + "_bucket{le=\"" + log2_le(slot) + "\"} " + fmt_u64(cumulative) +
                   "\n";
            if (slot > 0) {
                // Midpoint of [2^(slot-1), 2^slot) — a factor-2 envelope.
                sum_estimate += static_cast<double>(h.buckets[slot]) * 1.5 *
                                static_cast<double>(std::uint64_t{1} << (slot - 1));
            }
        }
    } else {
        const double width =
            (h.spec.hi - h.spec.lo) / static_cast<double>(h.spec.bins);
        // Slot 0 is underflow: folded into the first cumulative bucket (its
        // values are below every boundary). The last slot is overflow,
        // visible only in +Inf.
        cumulative = h.buckets[0];
        sum_estimate += static_cast<double>(h.buckets[0]) * h.spec.lo;
        for (std::size_t bin = 0; bin < h.spec.bins; ++bin) {
            cumulative += h.buckets[bin + 1];
            const double upper = h.spec.lo + width * static_cast<double>(bin + 1);
            out += name + "_bucket{le=\"" + fmt_double(upper) + "\"} " +
                   fmt_u64(cumulative) + "\n";
            sum_estimate += static_cast<double>(h.buckets[bin + 1]) *
                            (h.spec.lo + width * (static_cast<double>(bin) + 0.5));
        }
        sum_estimate += static_cast<double>(h.buckets[h.spec.bins + 1]) * h.spec.hi;
    }
    const std::uint64_t total = h.total();
    out += name + "_bucket{le=\"+Inf\"} " + fmt_u64(total) + "\n";
    out += name + "_sum " + fmt_double(sum_estimate) + "\n";
    out += name + "_count " + fmt_u64(total) + "\n";
}

#if LEVY_HAVE_POSIX_SOCKETS

struct exporter_state {
    std::mutex m;
    bool running = false;
    std::atomic<bool> stop{false};
    int listen_fd = -1;
    std::thread server;  // levylint:allow(raw-thread) see file header note
};

exporter_state& state() {
    static exporter_state* s = new exporter_state;  // leaked like the registry
    return *s;
}

serve::http_response route(const std::string& path) {
    serve::http_response resp;
    if (path == "/metrics") {
        resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
        resp.body = prometheus_text();
        return resp;
    }
    if (path == "/healthz") {
        resp.body = "ok\n";
        return resp;
    }
    if (path == "/progress") {
        resp.content_type = "application/json; charset=utf-8";
        resp.body = progress_to_json(snapshot_progress()).dump(2) + "\n";
        return resp;
    }
    resp.status = 404;
    resp.body = "not found\n";
    return resp;
}

void handle_connection(int fd) {
    // Shared socket hygiene (serve/http): per-recv/send timeouts plus a
    // *total* head deadline and byte bound — a silent or drip-feeding
    // scraper is cut off by the deadline, never wedging the server the way
    // a per-recv timer alone would allow.
    serve::http_limits limits;
    limits.io_timeout_seconds = 1.0;    // scrapers are local and fast;
    limits.head_deadline_seconds = 2.0; // match the old 2 s worst case
    serve::apply_socket_timeouts(fd, limits);
    serve::http_request req;
    const serve::head_status hs = serve::read_request_head(fd, limits, req);
    serve::http_response resp;
    if (hs != serve::head_status::ok) {
        if (hs == serve::head_status::closed) {  // nobody left to answer
            ::close(fd);
            return;
        }
        resp.status = hs == serve::head_status::timeout     ? 408
                      : hs == serve::head_status::too_large ? 431
                                                            : 400;
        resp.body = std::string("bad request: ") + serve::head_status_name(hs) + "\n";
    } else if (req.method != "GET") {
        resp.status = 400;
        resp.body = "bad request\n";
    } else {
        resp = route(req.path);
    }
    (void)serve::send_all(fd, serve::render_response(resp));
    ::close(fd);
}

void server_loop() {
    exporter_state& st = state();
    static const counter scrapes = get_counter("obs.scrapes");
    while (!st.stop.load(std::memory_order_acquire)) {
        pollfd pfd{};
        pfd.fd = st.listen_fd;
        pfd.events = POLLIN;
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
        if (ready <= 0) continue;  // timeout or EINTR: re-check stop
        const int conn = ::accept(st.listen_fd, nullptr, nullptr);
        if (conn < 0) continue;
        scrapes.add();
        handle_connection(conn);
    }
}

#endif  // LEVY_HAVE_POSIX_SOCKETS

}  // namespace

std::string prometheus_name(const std::string& name) {
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9' && !out.empty()) || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty()) out = "_";
    return out;
}

std::string prometheus_text() {
    const metrics_view view = snapshot_metrics();
    std::string out;
    out.reserve(4096);
    for (const auto& [name, value] : view.counters) {
        const std::string pn = "levy_" + prometheus_name(name) + "_total";
        out += "# TYPE " + pn + " counter\n";
        out += pn + " " + fmt_u64(value) + "\n";
    }
    for (const auto& [name, value] : view.gauges) {
        const std::string pn = "levy_" + prometheus_name(name);
        out += "# TYPE " + pn + " gauge\n";
        out += pn + " " + fmt_double(value) + "\n";
    }
    for (const auto& [name, hist] : view.histograms) {
        append_histogram(out, "levy_" + prometheus_name(name), hist);
    }
    // Monte-Carlo run totals, so a plain scrape sees throughput without
    // knowing the registry's counter names.
    const sim::run_metrics m = sim::metrics_snapshot();
    out += "# TYPE levy_run_trials_total counter\n";
    out += "levy_run_trials_total " + fmt_u64(m.trials) + "\n";
    out += "# TYPE levy_run_censored_total counter\n";
    out += "levy_run_censored_total " + fmt_u64(m.censored) + "\n";
    out += "# TYPE levy_run_wall_seconds gauge\n";
    out += "levy_run_wall_seconds " + fmt_double(m.wall_seconds) + "\n";
    out += "# TYPE levy_run_busy_seconds gauge\n";
    out += "levy_run_busy_seconds " + fmt_double(m.busy_seconds) + "\n";
    out += "# TYPE levy_run_max_workers gauge\n";
    out += "levy_run_max_workers " + fmt_u64(m.max_workers) + "\n";
    return out;
}

#if LEVY_HAVE_POSIX_SOCKETS

unsigned short start_metrics_exporter(unsigned short port) {
    exporter_state& st = state();
    std::lock_guard lk(st.m);
    if (st.running) throw std::logic_error("metrics exporter already running");
    const auto [fd, bound_port] = serve::listen_on(port);
    st.listen_fd = fd;
    st.stop.store(false, std::memory_order_release);
    // levylint:allow(raw-thread) observability server; never runs trial work
    st.server = std::thread(server_loop);
    st.running = true;
    return bound_port;
}

void stop_metrics_exporter() noexcept {
    exporter_state& st = state();
    std::lock_guard lk(st.m);
    if (!st.running) return;
    st.stop.store(true, std::memory_order_release);
    if (st.server.joinable()) st.server.join();
    ::close(st.listen_fd);
    st.listen_fd = -1;
    st.running = false;
}

bool metrics_exporter_active() noexcept {
    exporter_state& st = state();
    std::lock_guard lk(st.m);
    return st.running;
}

#else  // !LEVY_HAVE_POSIX_SOCKETS

unsigned short start_metrics_exporter(unsigned short) {
    throw std::runtime_error("metrics exporter requires POSIX sockets on this platform");
}
void stop_metrics_exporter() noexcept {}
bool metrics_exporter_active() noexcept { return false; }

#endif

}  // namespace levy::obs
