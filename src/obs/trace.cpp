#include "src/obs/trace.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <utility>

#include "src/obs/json.h"
#include "src/obs/progress.h"
#include "src/sim/checkpoint.h"
#include "src/sim/monte_carlo.h"

namespace levy::obs {
namespace {

using clock = std::chrono::steady_clock;

std::atomic<bool> g_collecting{false};

struct span_store {
    std::mutex m;
    std::vector<span_record> spans;
    clock::time_point epoch{};
    unsigned next_tid = 0;
};

/// Leaked for the same reason as the metrics registry: a span on a detached
/// worker may close during static destruction.
span_store& store() {
    static span_store* s = new span_store;
    return *s;
}

struct thread_state {
    unsigned tid = 0;
    bool tid_assigned = false;
    unsigned open_depth = 0;
};

thread_state& tls() {
    thread_local thread_state t;
    return t;
}

double seconds_since_epoch(clock::time_point now) {
    return std::chrono::duration<double>(now - store().epoch).count();
}

}  // namespace

void start_span_collection() {
    span_store& s = store();
    std::lock_guard lk(s.m);
    s.spans.clear();
    s.epoch = clock::now();
    g_collecting.store(true, std::memory_order_release);
}

void stop_span_collection() { g_collecting.store(false, std::memory_order_release); }

bool collecting_spans() noexcept { return g_collecting.load(std::memory_order_acquire); }

std::vector<span_record> collected_spans() {
    span_store& s = store();
    std::lock_guard lk(s.m);
    return s.spans;
}

span::span(const char* name) : name_(name) {
    // Progress lines label themselves with the innermost recently-opened
    // span; the hook is one relaxed load when --progress is off.
    note_progress_phase(name);
    if (!collecting_spans()) return;
    active_ = true;
    thread_state& t = tls();
    depth_ = t.open_depth++;
    start_seconds_ = seconds_since_epoch(clock::now());
    busy_at_start_ = sim::metrics_snapshot().busy_seconds;
}

span::~span() {
    if (!active_) return;
    // Destructors must not throw; if the store is unreachable or allocation
    // fails, losing the span is the right failure mode.
    try {
        const double end = seconds_since_epoch(clock::now());
        const double busy_end = sim::metrics_snapshot().busy_seconds;
        span_record rec;
        rec.name = name_;
        rec.start_seconds = start_seconds_;
        rec.wall_seconds = end - start_seconds_;
        rec.busy_seconds = busy_end - busy_at_start_;
        rec.depth = depth_;
        span_store& s = store();
        std::lock_guard lk(s.m);
        thread_state& t = tls();
        if (!t.tid_assigned) {
            t.tid = s.next_tid++;
            t.tid_assigned = true;
        }
        rec.tid = t.tid;
        s.spans.push_back(std::move(rec));
    } catch (...) {
        // swallow: tracing is best-effort observability
    }
    tls().open_depth = depth_;
}

void write_chrome_trace(const std::string& path) {
    json events = json::array();
    for (const span_record& rec : collected_spans()) {
        json ev = json::object();
        ev.set("name", rec.name);
        ev.set("ph", "X");  // complete event: begin timestamp + duration
        ev.set("ts", rec.start_seconds * 1e6);
        ev.set("dur", rec.wall_seconds * 1e6);
        ev.set("pid", 0);
        ev.set("tid", rec.tid);
        json args = json::object();
        args.set("busy_seconds", rec.busy_seconds);
        args.set("depth", rec.depth);
        ev.set("args", std::move(args));
        events.push_back(std::move(ev));
    }
    json doc = json::object();
    doc.set("traceEvents", std::move(events));
    doc.set("displayTimeUnit", "ms");
    const std::string text = doc.dump(2) + "\n";
    sim::atomic_write_file(path, std::vector<char>(text.begin(), text.end()));
}

}  // namespace levy::obs
