#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace levy::obs {

/// Minimal JSON document model for the observability layer: enough to emit
/// the BENCH_*.json schema and Chrome trace files, and to load them back in
/// `levyreport` — stdlib-only, no external dependency.
///
/// Determinism: objects preserve key *insertion* order (they are stored as
/// an ordered vector, not a hash map), and numbers serialize via
/// std::to_chars shortest-round-trip, so the same document always dumps to
/// the same bytes.
class json {
public:
    enum class kind { null, boolean, number, string, array, object };

    json() noexcept : kind_(kind::null) {}
    json(std::nullptr_t) noexcept : kind_(kind::null) {}
    json(bool b) noexcept : kind_(kind::boolean), bool_(b) {}
    json(double v) noexcept : kind_(kind::number), num_(v) {}
    /// Any integer type (one template rather than an overload set, so e.g.
    /// `unsigned` never faces an ambiguous int/int64/uint64 choice).
    template <class T>
        requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
    json(T v) noexcept : kind_(kind::number), num_(static_cast<double>(v)) {}
    json(std::string s) noexcept : kind_(kind::string), str_(std::move(s)) {}
    json(const char* s) : kind_(kind::string), str_(s) {}

    [[nodiscard]] static json array();
    [[nodiscard]] static json object();

    [[nodiscard]] kind type() const noexcept { return kind_; }
    [[nodiscard]] bool is_null() const noexcept { return kind_ == kind::null; }
    [[nodiscard]] bool is_bool() const noexcept { return kind_ == kind::boolean; }
    [[nodiscard]] bool is_number() const noexcept { return kind_ == kind::number; }
    [[nodiscard]] bool is_string() const noexcept { return kind_ == kind::string; }
    [[nodiscard]] bool is_array() const noexcept { return kind_ == kind::array; }
    [[nodiscard]] bool is_object() const noexcept { return kind_ == kind::object; }

    /// Value accessors; throw std::runtime_error on a kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;

    /// Array / object size; 0 for scalars.
    [[nodiscard]] std::size_t size() const noexcept;

    /// Array element access (throws std::out_of_range / kind mismatch).
    [[nodiscard]] const json& at(std::size_t i) const;
    /// Append to an array (converts a null value to an empty array first).
    void push_back(json v);

    /// Object field access: `at` throws when the key is missing, `find`
    /// returns nullptr. `set` inserts or replaces, preserving first-insert
    /// order (converts a null value to an empty object first).
    [[nodiscard]] const json& at(const std::string& key) const;
    [[nodiscard]] const json* find(const std::string& key) const noexcept;
    [[nodiscard]] bool contains(const std::string& key) const noexcept;
    void set(const std::string& key, json v);

    /// Object members, in insertion order.
    [[nodiscard]] const std::vector<std::pair<std::string, json>>& members() const;
    /// Array elements.
    [[nodiscard]] const std::vector<json>& elements() const;

    /// Serialize. `indent == 0` is compact one-line output; otherwise
    /// pretty-printed with that many spaces per level.
    [[nodiscard]] std::string dump(int indent = 0) const;

    /// Parse a complete JSON document (trailing garbage is an error).
    /// Throws std::runtime_error with a byte offset on malformed input.
    [[nodiscard]] static json parse(const std::string& text);

private:
    void dump_to(std::string& out, int indent, int depth) const;

    kind kind_ = kind::null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<json> arr_;
    std::vector<std::pair<std::string, json>> obj_;
};

/// Escape `s` as the *contents* of a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace levy::obs
