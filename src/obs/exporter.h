#pragma once

#include <cstdint>
#include <string>

namespace levy::obs {

/// --- Scrapeable metrics endpoint (--metrics-port=P) ------------------------
///
/// A minimal stdlib+POSIX HTTP/1.1 server so any running bench can be
/// watched like a production service: Prometheus scrapes `/metrics`,
/// `levytop` polls `/progress`, and orchestration liveness probes hit
/// `/healthz`. One server thread accepts connections and answers them
/// serially with bounded socket timeouts — every response is assembled from
/// a registry snapshot at scrape time, so serving is read-only and touches
/// nothing on the simulation hot path.
///
///   GET /metrics   Prometheus text exposition format, version 0.0.4:
///                  registry counters (`levy_<name>_total`), gauges, and
///                  fixed-layout histograms (cumulative `le` buckets), plus
///                  the Monte-Carlo run totals (trials, censored, busy).
///   GET /healthz   200 "ok" — liveness.
///   GET /progress  the obs::progress_snapshot as JSON (see progress.h).
///
/// Endpoints are observability output: wall-clock dependent, never part of
/// the deterministic stdout/CSV/JSON result surface.

/// Start the server on `port` (0 = let the OS pick an ephemeral port, which
/// the tests use). Returns the actually bound port. Throws
/// std::runtime_error when the socket cannot be bound and std::logic_error
/// when a server is already running.
unsigned short start_metrics_exporter(unsigned short port);

/// Shut the server down and join its thread. Safe when not running.
void stop_metrics_exporter() noexcept;

[[nodiscard]] bool metrics_exporter_active() noexcept;

/// The `/metrics` payload for the current registry + run state; exposed so
/// tests can golden-parse the exposition format without a socket.
[[nodiscard]] std::string prometheus_text();

/// Sanitize a registry metric name into the Prometheus grammar
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): every other byte becomes '_'.
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace levy::obs
