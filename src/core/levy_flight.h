#pragma once

#include <cstdint>

#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// Lévy flight on Z² (Def. 3.3): at each time step, draw a jump length d
/// from the power law of Eq. 3 and teleport to a uniform node of
/// R_d(current). A Markov chain, and a monotone radial process in the sense
/// of Def. 3.8 — the restriction of the Lévy *walk* to its jump endpoints.
///
/// An optional jump-length cap conditions every jump on d ≤ cap, which is
/// exactly the capped flight of Lemma 4.5 (cap = (t log t)^{1/(α-1)}).
class levy_flight {
public:
    /// `stream` becomes this process's private randomness source.
    levy_flight(double alpha, rng stream, point start = origin, std::uint64_t cap = kNoCap);

    /// Perform one jump (one time step) and return the new position.
    point step();

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

    /// Length of the most recent jump (0 before the first step).
    [[nodiscard]] std::uint64_t last_jump_length() const noexcept { return last_jump_; }

    [[nodiscard]] double alpha() const noexcept { return jumps_.alpha(); }
    [[nodiscard]] std::uint64_t cap() const noexcept { return cap_; }
    [[nodiscard]] const jump_distribution& jumps() const noexcept { return jumps_; }

private:
    jump_distribution jumps_;
    rng stream_;
    point pos_;
    std::uint64_t cap_;
    std::uint64_t steps_ = 0;
    std::uint64_t last_jump_ = 0;
};

}  // namespace levy
