#pragma once

#include <concepts>
#include <unordered_set>

#include "src/grid/point.h"

namespace levy {

/// Anything that can say whether a lattice node is (part of) the treasure.
template <class T>
concept target_predicate = requires(const T t, point p) {
    { t.contains(p) } -> std::convertible_to<bool>;
};

/// The paper's setting: a single unit-size target node u*.
struct point_target {
    point u;

    [[nodiscard]] constexpr bool contains(point p) const noexcept { return p == u; }
    /// ℓ = ‖u*‖₁, the distance parameter every bound is phrased in.
    [[nodiscard]] constexpr std::int64_t ell() const noexcept { return l1_norm(u); }
};

/// Extension (cf. the discussion of [18] in §2): a target of diameter D — an
/// L1 ball of radius r around a center. r = 0 degenerates to point_target.
struct disc_target {
    point center;
    std::int64_t radius = 0;

    [[nodiscard]] constexpr bool contains(point p) const noexcept {
        return l1_distance(p, center) <= radius;
    }
};

/// An arbitrary finite set of treasure nodes (sparse multi-target searches).
class set_target {
public:
    explicit set_target(std::initializer_list<point> pts) : nodes_(pts) {}

    template <class Iter>
    set_target(Iter first, Iter last) : nodes_(first, last) {}

    [[nodiscard]] bool contains(point p) const { return nodes_.contains(p); }
    [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }

private:
    std::unordered_set<point, point_hash> nodes_;
};

}  // namespace levy
