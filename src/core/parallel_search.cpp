#include "src/core/parallel_search.h"

#include "src/core/levy_walk.h"

namespace levy {

parallel_result parallel_hit(std::size_t k, const exponent_strategy& strategy, point target,
                             std::uint64_t budget, const rng& trial_stream, std::uint64_t cap) {
    parallel_result best =
        parallel_min_hit(k, target, budget, trial_stream, [&](std::size_t i, rng& stream) {
            const double alpha = strategy(i, stream);
            return levy_walk(alpha, stream, origin, cap);
        });
    if (best.hit) {
        // Re-derive the winner's exponent: strategy draws are a pure
        // function of (trial_stream, walk index), so this replays exactly
        // the value the winning walk used.
        rng walk_stream = trial_stream.substream(best.winner);
        best.winner_alpha = strategy(best.winner, walk_stream);
    }
    return best;
}

std::vector<double> strategy_exponents(std::size_t k, const exponent_strategy& strategy,
                                       const rng& trial_stream) {
    std::vector<double> alphas;
    alphas.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        rng walk_stream = trial_stream.substream(i);
        alphas.push_back(strategy(i, walk_stream));
    }
    return alphas;
}

}  // namespace levy
