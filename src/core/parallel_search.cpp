#include "src/core/parallel_search.h"

#include "src/core/levy_walk.h"

namespace levy {

parallel_result parallel_hit(std::size_t k, const exponent_strategy& strategy, point target,
                             std::uint64_t budget, rng trial_stream, std::uint64_t cap) {
    parallel_result best;
    best.time = budget;
    const point_target goal{target};
    for (std::size_t i = 0; i < k; ++i) {
        rng walk_stream = trial_stream.substream(i);
        const double alpha = strategy(i, walk_stream);
        levy_walk walk(alpha, walk_stream, origin, cap);
        // Beat the current best or don't bother: a hit at `best.time` or
        // later does not change the parallel minimum.
        const std::uint64_t remaining = best.hit ? best.time - 1 : budget;
        const hit_result r = hit_within(walk, goal, remaining);
        if (r.hit) {
            best.hit = true;
            best.time = r.time;
            best.winner = i;
            best.winner_alpha = alpha;
            if (r.time == 0) break;  // target at the origin: cannot improve
        }
    }
    return best;
}

std::vector<double> strategy_exponents(std::size_t k, const exponent_strategy& strategy,
                                       rng trial_stream) {
    std::vector<double> alphas;
    alphas.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
        rng walk_stream = trial_stream.substream(i);
        alphas.push_back(strategy(i, walk_stream));
    }
    return alphas;
}

}  // namespace levy
