#pragma once

#include <cstdint>
#include <optional>

#include "src/grid/direct_path.h"
#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// Lévy walk on Z² (Def. 3.4): an infinite sequence of jump-phases. At the
/// start of a phase, draw a jump length d and a uniform destination on
/// R_d(current) exactly as a Lévy flight would; then
///   - if d = 0, the phase lasts one step and the walk stays put;
///   - if d ≥ 1, the phase lasts d steps during which the walk traverses a
///     uniformly random direct path (Def. 3.1) to the destination.
///
/// One `step()` is one unit of time — one lattice move (or stay-put). The
/// walk therefore visits every intermediate node of a phase, which is what
/// makes its hitting behavior differ from the flight's ("non-intermittent"
/// search in the terminology of [18]; footnote 3 of the paper).
///
/// The process is not Markov on positions alone; the in-phase progress is
/// part of the state and is fully encapsulated here.
///
/// Randomness discipline: phase-level draws (the jump length's coin/Zipf
/// draws and the ring destination) come from the walk's main stream; the
/// direct path's tie-break coins come from a throwaway per-phase substream,
/// `stream.substream(phase_number)`. Substream derivation is pure (seed
/// based, consumes nothing), so the main stream's position after a phase is
/// independent of how many ties the path hit — which is what lets the
/// batched engine (sim/walk_engine) skip whole phases in O(1) while staying
/// bit-exact with this scalar loop.
class levy_walk {
public:
    /// `stream` becomes this walk's private randomness source. `cap`
    /// conditions every drawn jump length on d ≤ cap (kNoCap = off).
    levy_walk(double alpha, rng stream, point start = origin, std::uint64_t cap = kNoCap);

    /// Advance one time step and return the new position.
    point step();

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

    /// Number of jump-phases begun so far.
    [[nodiscard]] std::uint64_t phases() const noexcept { return phases_; }

    /// True while a d ≥ 1 phase is mid-traversal.
    [[nodiscard]] bool in_phase() const noexcept { return path_ && !path_->done(); }

    /// Length of the current (or most recent) phase's jump; 0 if none yet.
    [[nodiscard]] std::uint64_t current_jump_length() const noexcept { return jump_len_; }

    [[nodiscard]] double alpha() const noexcept { return jumps_.alpha(); }
    [[nodiscard]] std::uint64_t cap() const noexcept { return cap_; }
    [[nodiscard]] const jump_distribution& jumps() const noexcept { return jumps_; }

private:
    void begin_phase();

    jump_distribution jumps_;
    rng stream_;
    rng path_stream_;  // per-phase substream feeding the path's tie coins
    point pos_;
    std::uint64_t cap_;
    std::uint64_t steps_ = 0;
    std::uint64_t phases_ = 0;
    std::uint64_t jump_len_ = 0;
    std::optional<direct_path_stepper> path_;  // engaged during d >= 1 phases
};

}  // namespace levy
