#pragma once

#include <stdexcept>
#include <string>

/// Contract macros for the library's public entry points and internal
/// invariants.
///
///   LEVY_PRECONDITION(cond, msg)  — caller-facing argument validation
///   LEVY_ASSERT(cond, msg)        — internal invariant ("cannot happen")
///
/// In checked builds (LEVY_CONTRACTS == 1, the default for every preset in
/// this repo) a failed contract throws levy::contract_violation, which
/// derives from std::invalid_argument so call sites and tests that predate
/// the contract layer keep catching what they always caught. Configuring
/// with -DLEVY_CONTRACTS=OFF compiles both macros down to nothing; the
/// unevaluated sizeof keeps the condition's operands "used" so release
/// builds stay -Werror clean without sprinkling [[maybe_unused]].
///
/// Contracts guard against *programming errors* — arguments a correct
/// caller can always check for itself. Validation of genuinely external
/// input (command-line flags, files) stays a plain throw regardless of
/// build flavor; see sim/experiment.cpp.

#ifndef LEVY_CONTRACTS
#define LEVY_CONTRACTS 1
#endif

namespace levy {

/// Thrown by a failed LEVY_PRECONDITION / LEVY_ASSERT in checked builds.
class contract_violation : public std::invalid_argument {
public:
    contract_violation(const char* kind, const char* expr, const char* file, int line,
                       const std::string& msg);

    /// "precondition" or "assertion".
    [[nodiscard]] const char* kind() const noexcept { return kind_; }
    /// The stringized condition that failed.
    [[nodiscard]] const char* expression() const noexcept { return expr_; }
    [[nodiscard]] const char* file() const noexcept { return file_; }
    [[nodiscard]] int line() const noexcept { return line_; }

private:
    const char* kind_;
    const char* expr_;
    const char* file_;
    int line_;
};

namespace detail {
[[noreturn]] void contract_fail(const char* kind, const char* expr, const char* file, int line,
                                const std::string& msg);
}  // namespace detail

}  // namespace levy

#if LEVY_CONTRACTS

#define LEVY_PRECONDITION(cond, msg)                                                      \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            ::levy::detail::contract_fail("precondition", #cond, __FILE__, __LINE__, msg); \
        }                                                                                 \
    } while (false)

#define LEVY_ASSERT(cond, msg)                                                            \
    do {                                                                                  \
        if (!(cond)) {                                                                    \
            ::levy::detail::contract_fail("assertion", #cond, __FILE__, __LINE__, msg);    \
        }                                                                                 \
    } while (false)

#else

#define LEVY_PRECONDITION(cond, msg) static_cast<void>(sizeof(!(cond)))
#define LEVY_ASSERT(cond, msg) static_cast<void>(sizeof(!(cond)))

#endif
