#pragma once

#include <concepts>
#include <cstdint>

#include "src/grid/point.h"

namespace levy {

/// A discrete-time jump process on Z² (paper §3.1): anything that occupies a
/// lattice node and can advance by one time step. Lévy walks, Lévy flights
/// and all baselines model this concept, so hitting-time machinery is written
/// once against it.
///
/// `step()` advances the process by exactly one time step and returns the
/// new position; `steps()` is the number of time steps taken so far. For a
/// Lévy *walk* one time step is one lattice move (or a stay-put), while for
/// a Lévy *flight* one time step is one whole jump — exactly the two time
/// scales Defs. 3.3 and 3.4 assign them.
template <class P>
concept jump_process = requires(P p, const P cp) {
    { p.step() } -> std::convertible_to<point>;
    { cp.position() } -> std::convertible_to<point>;
    { cp.steps() } -> std::convertible_to<std::uint64_t>;
};

}  // namespace levy
