#pragma once

namespace levy::theory {

/// Closed-form predictions of the paper's theorems, used by the benchmark
/// harness to print paper-vs-measured columns. Every function returns the
/// *shape* of a Θ/O/Ω bound with its constant set to 1 — callers compare
/// scaling exponents and ratios, never absolute values.

/// t_ℓ = ℓ^{α−1}: the step budget that maximizes the super-diffusive hit
/// probability (§1.2.1; Thm 4.1 uses t = Θ(ℓ^{α−1})).
[[nodiscard]] double t_ell(double alpha, double ell);

/// Thm 1.1(a): P(τ_α = O(ℓ^{α−1})) = Ω(1 / (ℓ^{3−α} log² ℓ)), α ∈ (2,3).
[[nodiscard]] double superdiffusive_hit_prob(double alpha, double ell);

/// Thm 1.1(b): P(τ_α ≤ t) = O(t² / ℓ^{α+1}) for ℓ ≤ t = O(ℓ^{α−1}).
[[nodiscard]] double early_hit_prob(double alpha, double ell, double t);

/// Thm 1.1(c): P(τ_α < ∞) = O(log ℓ / ℓ^{3−α}), α ∈ (2,3).
[[nodiscard]] double eventual_hit_prob(double alpha, double ell);

/// Thm 1.2(a): the diffusive budget ℓ² log² ℓ that yields Ω(1/log⁴ ℓ).
[[nodiscard]] double diffusive_budget(double ell);

/// Thm 1.2(a): P(τ_α = O(ℓ² log² ℓ)) = Ω(1 / log⁴ ℓ), α ≥ 3.
[[nodiscard]] double diffusive_hit_prob(double ell);

/// Thm 1.3(a): P(τ_α = O(ℓ)) = Ω(1 / (ℓ log ℓ)), α ∈ (1,2].
[[nodiscard]] double ballistic_hit_prob(double ell);

/// Thm 1.3(b): P(τ_α < ∞) = O(log² ℓ / ℓ), α ∈ (1,2].
[[nodiscard]] double ballistic_eventual_hit_prob(double ell);

/// Thm 1.5(a): the parallel budget O((ℓ²/k) log⁶ ℓ) at α = α*(k,ℓ);
/// the `+ ℓ` accounts for the regimes of Thm 1.5(b)(c) (Eq. 1).
[[nodiscard]] double optimal_parallel_budget(double k, double ell);

/// Thm 1.6 (Eq. 2): the random-exponent budget (ℓ²/k) log⁷ ℓ + ℓ log³ ℓ.
[[nodiscard]] double random_strategy_budget(double k, double ell);

/// The universal lower bound Ω(ℓ²/k + ℓ) that applies to *every* k-agent
/// strategy (observed in [14]; quoted after Thm 1.6).
[[nodiscard]] double universal_lower_bound(double k, double ell);

/// The Thm 1.5 / Cor 4.2 planning answer as one record — the levyserve
/// `/plan` endpoint's payload. `alpha_star` is the optimal common exponent
/// 3 − log k / log ℓ clamped to [2, 3] (core/strategy.h), and the budgets
/// bracket what that fleet needs: the upper-bound budget of Thm 1.5(a) and
/// the universal Ω(ℓ²/k + ℓ) floor no strategy beats.
struct parallel_plan {
    double alpha_star = 0.0;           ///< strategy::optimal_alpha(k, ℓ)
    double alpha_star_adjusted = 0.0;  ///< + 5·log log ℓ / log ℓ correction
    double budget = 0.0;               ///< optimal_parallel_budget(k, ℓ)
    double lower_bound = 0.0;          ///< universal_lower_bound(k, ℓ)
};

/// Requires k ≥ 1 and ℓ ≥ 2 (same contract as the functions it bundles).
[[nodiscard]] parallel_plan plan_parallel_search(double k, double ell);

}  // namespace levy::theory
