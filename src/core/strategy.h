#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/rng/rng_stream.h"

namespace levy {

/// How a fleet of k walks chooses its exponents. Called once per walk with
/// the walk's index and a private random stream; returns that walk's α.
///
/// The two strategies the paper analyzes:
///   - `fixed_exponent(a)`  — all walks share one exponent (§1.2.2);
///   - `uniform_exponent()` — each walk samples α ~ U(2, 3) independently
///     (§1.2.3), the knowledge-free strategy of Theorem 1.6.
using exponent_strategy = std::function<double(std::size_t walk_index, rng& g)>;

/// Every walk uses exponent `alpha` (must be > 1).
[[nodiscard]] exponent_strategy fixed_exponent(double alpha);

/// Each walk draws α independently and uniformly from (lo, hi);
/// defaults to the paper's super-diffusive interval (2, 3).
[[nodiscard]] exponent_strategy uniform_exponent(double lo = 2.0, double hi = 3.0);

/// Deterministic diversity (ablation, bench E18): walk i gets the
/// (i mod levels)-th exponent of an evenly spaced grid inside (lo, hi) —
/// the derandomized counterpart of `uniform_exponent`. levels >= 1.
[[nodiscard]] exponent_strategy round_robin_exponent(double lo = 2.0, double hi = 3.0,
                                                     std::size_t levels = 8);

/// Each walk draws α uniformly from a finite menu (ablation: how few
/// distinct exponents suffice?). The menu must be non-empty, all > 1.
[[nodiscard]] exponent_strategy discrete_exponent(std::vector<double> menu);

/// The paper's optimal common exponent α* = 3 − log k / log ℓ (Cor. 4.2),
/// clamped to [2, 3]: below polylog ℓ walks the diffusive α = 3 is optimal,
/// above ℓ·polylog walks the ballistic α = 2 is (Thm 1.5 (b), (c)).
/// Requires k ≥ 1 and ℓ ≥ 2.
[[nodiscard]] double optimal_alpha(double k, double ell);

/// α* plus the +5·log log ℓ / log ℓ correction of Thm 1.5(a) / Cor. 4.2(a),
/// the exact exponent the upper-bound theorem is stated for. Clamped to
/// [2, 3].
[[nodiscard]] double optimal_alpha_adjusted(double k, double ell);

}  // namespace levy
