#include "src/core/levy_walk.h"

#include "src/grid/ring.h"

namespace levy {

levy_walk::levy_walk(double alpha, rng stream, point start, std::uint64_t cap)
    : jumps_(alpha, cap), stream_(stream), path_stream_(stream.substream(0)), pos_(start),
      cap_(cap) {}

void levy_walk::begin_phase() {
    ++phases_;
    jump_len_ = jumps_.sample_capped(stream_, cap_);
    if (jump_len_ == 0) {
        path_.reset();  // stay-put phase: one step at the current node
        return;
    }
    const point destination = sample_ring(pos_, static_cast<std::int64_t>(jump_len_), stream_);
    // Tie coins for this phase's path come from a substream keyed by the
    // (1-based) phase number — see the class comment for why.
    path_stream_ = stream_.substream(phases_);
    path_.emplace(pos_, destination);
}

point levy_walk::step() {
    if (!in_phase()) begin_phase();
    if (path_ && !path_->done()) {
        pos_ = path_->advance(path_stream_);
    }
    // d = 0 phases leave pos_ unchanged for exactly one step.
    ++steps_;
    return pos_;
}

}  // namespace levy
