#pragma once

#include <concepts>
#include <cstdint>

#include "src/core/hitting.h"
#include "src/core/jump_process.h"
#include "src/core/target.h"

namespace levy {

/// A jump process with observable jump-phase structure (the Lévy walk, its
/// torus variant, or anything else that alternates travel phases).
template <class P>
concept phased_process = jump_process<P> && requires(const P p) {
    { p.in_phase() } -> std::convertible_to<bool>;
};

/// Intermittent hitting (the model of [18], discussed in §2 / footnote 3 of
/// the paper): the searcher *cannot detect the target during a jump*, only
/// at the end of each jump-phase (and during stay-put phases). Footnote 3
/// notes the contrast: with unit targets or non-intermittent detection, all
/// α ≤ 2 (resp. α ≥ 2) are optimal in [18]'s setting, whereas intermittent
/// detection of diameter-D targets singles out the Cauchy exponent α = 2.
///
/// Time is still counted in lattice steps (travel is not free); only the
/// *sensing* is restricted to phase boundaries.
template <phased_process P, target_predicate T>
hit_result hit_within_intermittent(P& proc, const T& target, std::uint64_t budget) {
    if (target.contains(proc.position())) return {true, 0};
    for (std::uint64_t t = 1; t <= budget; ++t) {
        const point p = proc.step();
        const bool phase_boundary = !proc.in_phase();
        if (phase_boundary && target.contains(p)) return {true, t};
    }
    return {false, budget};
}

}  // namespace levy
