#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/strategy.h"
#include "src/core/target.h"
#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// Outcome of one parallel search: k independent Lévy walks started at the
/// origin, parallel hitting time = first step any walk visits the target
/// (Def. 3.7).
struct parallel_result {
    bool hit = false;
    /// Parallel hitting time if hit; otherwise the exhausted budget.
    std::uint64_t time = 0;
    /// Index of the first walk to hit (kNoWinner when none did).
    std::size_t winner = kNoWinner;
    /// Exponent of the winning walk (NaN when none hit).
    double winner_alpha = std::numeric_limits<double>::quiet_NaN();
    /// True when a watchdog truncated the trial below its intended budget
    /// and no walk hit — the outcome past `time` steps is unknown, not a
    /// miss (see sim::parallel_walk_config::max_steps).
    bool censored = false;

    static constexpr std::size_t kNoWinner = std::numeric_limits<std::size_t>::max();
};

/// The parallel-minimum hitting loop shared by `parallel_hit` and the bench
/// baselines: k searchers built by `make(i, stream)` (each from its private
/// substream of `trial_stream`), simulated one after another with a
/// shrinking budget — a searcher only needs to beat the best time found so
/// far, which changes nothing statistically (the searchers are independent)
/// but saves most of the work once an early one hits. `winner_alpha` is left
/// NaN; callers that know the exponents fill it in.
template <class Factory>
parallel_result parallel_min_hit(std::size_t k, point target, std::uint64_t budget,
                                 const rng& trial_stream, Factory&& make) {
    parallel_result best;
    best.time = budget;
    const point_target goal{target};
    for (std::size_t i = 0; i < k; ++i) {
        rng stream = trial_stream.substream(i);
        auto proc = make(i, stream);
        // Beat the current best or don't bother: a hit at `best.time` or
        // later does not change the parallel minimum.
        const std::uint64_t remaining = best.hit ? best.time - 1 : budget;
        const hit_result r = hit_within(proc, goal, remaining);
        if (r.hit) {
            best.hit = true;
            best.time = r.time;
            best.winner = i;
            if (r.time == 0) break;  // target at the origin: cannot improve
        }
    }
    return best;
}

/// Simulate τ^k for a point target: each of the k walks gets an exponent
/// from `strategy` and a private substream of `trial_stream`, runs for at
/// most `budget` steps, and the minimum hitting time wins.
///
/// Walks are simulated one after another with a shrinking budget (a walk
/// only needs to beat the best time found so far), which changes nothing
/// statistically — the walks are independent — but saves most of the work
/// once an early walk hits. Results are a pure function of
/// (trial_stream seed, k, strategy, target, budget).
[[nodiscard]] parallel_result parallel_hit(std::size_t k, const exponent_strategy& strategy,
                                           point target, std::uint64_t budget,
                                           const rng& trial_stream, std::uint64_t cap = kNoCap);

/// The exponents a strategy would assign to walks 0..k-1 under
/// `trial_stream` — exactly those `parallel_hit` uses. For reporting.
[[nodiscard]] std::vector<double> strategy_exponents(std::size_t k,
                                                     const exponent_strategy& strategy,
                                                     const rng& trial_stream);

}  // namespace levy
