#pragma once

#include <cstdint>
#include <unordered_set>

#include "src/grid/point.h"

namespace levy {

/// An infinite field of sparse random point targets: every lattice node is
/// independently a target with probability `density` (a Bernoulli site
/// field), decided by a hash of (seed, node) — so the field is deterministic,
/// memoryless to store, and unbounded, matching the "sparse uniformly
/// distributed targets" setting of the Lévy foraging hypothesis literature
/// the paper discusses in §2 ([38]: revisitable targets; destructive
/// foraging removes a target once found).
///
/// Mean spacing between targets is ~ 1/√density.
class random_target_field {
public:
    /// density ∈ (0, 1): per-node target probability.
    random_target_field(double density, std::uint64_t seed);

    /// Is there a (not-yet-consumed) target at `p`?
    [[nodiscard]] bool contains(point p) const;

    /// Destructive foraging: consume the target at `p` (no-op if none).
    /// After consumption, contains(p) is false.
    void consume(point p);

    /// Number of targets consumed so far.
    [[nodiscard]] std::size_t consumed() const noexcept { return eaten_.size(); }

    [[nodiscard]] double density() const noexcept { return density_; }

private:
    [[nodiscard]] bool is_target_site(point p) const;

    double density_;
    std::uint64_t seed_;
    std::uint64_t threshold_;  // hash < threshold <=> target site
    std::unordered_set<point, point_hash> eaten_;
};

}  // namespace levy
