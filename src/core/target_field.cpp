#include "src/core/target_field.h"

#include <cmath>

#include "src/core/contracts.h"
#include "src/rng/splitmix64.h"

namespace levy {

random_target_field::random_target_field(double density, std::uint64_t seed)
    : density_(density), seed_(seed) {
    LEVY_PRECONDITION(density > 0.0 && density < 1.0, "random_target_field: density must be in (0, 1)");
    // hash is uniform on [0, 2^64); the site is a target iff hash < d·2^64.
    threshold_ = static_cast<std::uint64_t>(
        density * 18446744073709551616.0 /* 2^64 */);
}

bool random_target_field::is_target_site(point p) const {
    const std::uint64_t h =
        mix64(seed_, mix64(static_cast<std::uint64_t>(p.x), static_cast<std::uint64_t>(p.y)));
    return h < threshold_;
}

bool random_target_field::contains(point p) const {
    return is_target_site(p) && !eaten_.contains(p);
}

void random_target_field::consume(point p) {
    if (is_target_site(p)) eaten_.insert(p);
}

}  // namespace levy
