#include "src/core/strategy.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace levy {

exponent_strategy fixed_exponent(double alpha) {
    LEVY_PRECONDITION(alpha > 1.0, "fixed_exponent: alpha must be > 1");
    return [alpha](std::size_t, rng&) { return alpha; };
}

exponent_strategy uniform_exponent(double lo, double hi) {
    LEVY_PRECONDITION(lo > 1.0 && hi > lo, "uniform_exponent: need 1 < lo < hi");
    return [lo, hi](std::size_t, rng& g) { return g.uniform(lo, hi); };
}

exponent_strategy round_robin_exponent(double lo, double hi, std::size_t levels) {
    LEVY_PRECONDITION(lo > 1.0 && hi > lo, "round_robin_exponent: need 1 < lo < hi");
    LEVY_PRECONDITION(levels != 0, "round_robin_exponent: levels must be >= 1");
    return [lo, hi, levels](std::size_t i, rng&) {
        // Grid midpoints: (lo, hi) split into `levels` equal cells.
        const double cell = (hi - lo) / static_cast<double>(levels);
        return lo + cell * (static_cast<double>(i % levels) + 0.5);
    };
}

exponent_strategy discrete_exponent(std::vector<double> menu) {
    LEVY_PRECONDITION(!menu.empty(), "discrete_exponent: empty menu");
    for (const double a : menu) {
        LEVY_PRECONDITION(a > 1.0, "discrete_exponent: all alphas must be > 1");
    }
    return [menu = std::move(menu)](std::size_t, rng& g) {
        return menu[g.below(menu.size())];
    };
}

double optimal_alpha(double k, double ell) {
    LEVY_PRECONDITION(k >= 1.0 && ell >= 2.0, "optimal_alpha: need k >= 1 and ell >= 2");
    const double alpha = 3.0 - std::log(k) / std::log(ell);
    return std::clamp(alpha, 2.0, 3.0);
}

double optimal_alpha_adjusted(double k, double ell) {
    LEVY_PRECONDITION(k >= 1.0 && ell >= 2.0, "optimal_alpha_adjusted: need k >= 1 and ell >= 2");
    const double log_ell = std::log(ell);
    const double correction = 5.0 * std::log(std::max(log_ell, 1.0)) / log_ell;
    const double alpha = 3.0 - std::log(k) / log_ell + correction;
    return std::clamp(alpha, 2.0, 3.0);
}

}  // namespace levy
