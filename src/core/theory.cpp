#include "src/core/theory.h"

#include <cmath>

#include "src/core/contracts.h"
#include "src/core/strategy.h"

namespace levy::theory {
namespace {

double require_ell(double ell) {
    LEVY_PRECONDITION(ell >= 2.0, "theory: need ell >= 2");
    return std::log(ell);
}

}  // namespace

double t_ell(double alpha, double ell) {
    require_ell(ell);
    return std::pow(ell, alpha - 1.0);
}

double superdiffusive_hit_prob(double alpha, double ell) {
    const double log_ell = require_ell(ell);
    return 1.0 / (std::pow(ell, 3.0 - alpha) * log_ell * log_ell);
}

double early_hit_prob(double alpha, double ell, double t) {
    require_ell(ell);
    return t * t / std::pow(ell, alpha + 1.0);
}

double eventual_hit_prob(double alpha, double ell) {
    const double log_ell = require_ell(ell);
    return log_ell / std::pow(ell, 3.0 - alpha);
}

double diffusive_budget(double ell) {
    const double log_ell = require_ell(ell);
    return ell * ell * log_ell * log_ell;
}

double diffusive_hit_prob(double ell) {
    const double log_ell = require_ell(ell);
    return 1.0 / std::pow(log_ell, 4.0);
}

double ballistic_hit_prob(double ell) {
    const double log_ell = require_ell(ell);
    return 1.0 / (ell * log_ell);
}

double ballistic_eventual_hit_prob(double ell) {
    const double log_ell = require_ell(ell);
    return log_ell * log_ell / ell;
}

double optimal_parallel_budget(double k, double ell) {
    const double log_ell = require_ell(ell);
    LEVY_PRECONDITION(k >= 1.0, "theory: need k >= 1");
    return (ell * ell / k) * std::pow(log_ell, 6.0) + ell;
}

double random_strategy_budget(double k, double ell) {
    const double log_ell = require_ell(ell);
    LEVY_PRECONDITION(k >= 1.0, "theory: need k >= 1");
    return (ell * ell / k) * std::pow(log_ell, 7.0) + ell * std::pow(log_ell, 3.0);
}

double universal_lower_bound(double k, double ell) {
    require_ell(ell);
    LEVY_PRECONDITION(k >= 1.0, "theory: need k >= 1");
    return ell * ell / k + ell;
}

parallel_plan plan_parallel_search(double k, double ell) {
    parallel_plan plan;
    plan.alpha_star = optimal_alpha(k, ell);
    plan.alpha_star_adjusted = optimal_alpha_adjusted(k, ell);
    plan.budget = optimal_parallel_budget(k, ell);
    plan.lower_bound = universal_lower_bound(k, ell);
    return plan;
}

}  // namespace levy::theory
