#pragma once

#include <cstdint>

#include "src/core/jump_process.h"
#include "src/core/target.h"
#include "src/grid/point.h"

namespace levy {

/// Outcome of running a process against a step budget (Def. 3.7).
struct hit_result {
    bool hit = false;
    /// Hitting time if hit; otherwise the exhausted budget.
    std::uint64_t time = 0;
    /// True when a watchdog cut the trial short of its *intended* budget
    /// (sim::single_walk_config::max_steps), so "no hit" means "unknown
    /// beyond `time` steps", not "missed the full budget". Estimators and
    /// bench tables report the censored fraction instead of silently
    /// folding these into the misses.
    bool censored = false;

    friend constexpr bool operator==(hit_result, hit_result) noexcept = default;
};

/// Run `proc` until it visits the target or `budget` time steps elapse.
/// A process already standing on the target has hitting time 0 (the paper
/// counts visits from step t = 0).
template <jump_process P, target_predicate T>
hit_result hit_within(P& proc, const T& target, std::uint64_t budget) {
    if (target.contains(proc.position())) return {true, 0};
    for (std::uint64_t t = 1; t <= budget; ++t) {
        if (target.contains(proc.step())) return {true, t};
    }
    return {false, budget};
}

/// Single-node convenience overload: τ_α(u*) truncated at `budget`.
template <jump_process P>
hit_result hit_within(P& proc, point target, std::uint64_t budget) {
    return hit_within(proc, point_target{target}, budget);
}

}  // namespace levy
