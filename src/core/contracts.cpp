#include "src/core/contracts.h"

namespace levy {

namespace {

std::string compose(const char* kind, const char* expr, const char* file, int line,
                    const std::string& msg) {
    std::string out = msg;
    out += " [";
    out += kind;
    out += " `";
    out += expr;
    out += "` at ";
    out += file;
    out += ":";
    out += std::to_string(line);
    out += "]";
    return out;
}

}  // namespace

contract_violation::contract_violation(const char* kind, const char* expr, const char* file,
                                       int line, const std::string& msg)
    : std::invalid_argument(compose(kind, expr, file, line, msg)),
      kind_(kind),
      expr_(expr),
      file_(file),
      line_(line) {}

namespace detail {

void contract_fail(const char* kind, const char* expr, const char* file, int line,
                   const std::string& msg) {
    throw contract_violation(kind, expr, file, line, msg);
}

}  // namespace detail

}  // namespace levy
