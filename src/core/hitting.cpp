#include "src/core/hitting.h"

// hit_within is a template over the jump-process concept; this translation
// unit exists to give the header a home in the library target and to anchor
// the explicit instantiations used most often (faster builds for clients).

#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"

namespace levy {

template hit_result hit_within<levy_walk, point_target>(levy_walk&, const point_target&,
                                                        std::uint64_t);
template hit_result hit_within<levy_flight, point_target>(levy_flight&, const point_target&,
                                                          std::uint64_t);

}  // namespace levy
