#include "src/core/levy_flight.h"

#include "src/grid/ring.h"

namespace levy {

levy_flight::levy_flight(double alpha, rng stream, point start, std::uint64_t cap)
    : jumps_(alpha, cap), stream_(stream), pos_(start), cap_(cap) {}

point levy_flight::step() {
    const std::uint64_t d = jumps_.sample_capped(stream_, cap_);
    last_jump_ = d;
    if (d != 0) {
        // levylint:allow(conditional-main-draw): the stay-put skip is pure
        // in the flight's own draw history (d was just drawn from stream_),
        // so the draw count replays exactly; reordering would change every
        // pinned golden trajectory.
        pos_ = sample_ring(pos_, static_cast<std::int64_t>(d), stream_);
    }
    ++steps_;
    return pos_;
}

}  // namespace levy
