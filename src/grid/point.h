#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iosfwd>

namespace levy {

/// A node of the infinite lattice Z² (paper §3.1). 64-bit coordinates: the
/// ballistic regime draws jump lengths with unbounded mean, so positions can
/// drift far beyond 32 bits within ordinary step budgets.
struct point {
    std::int64_t x = 0;
    std::int64_t y = 0;

    friend constexpr bool operator==(point, point) noexcept = default;

    friend constexpr point operator+(point a, point b) noexcept { return {a.x + b.x, a.y + b.y}; }
    friend constexpr point operator-(point a, point b) noexcept { return {a.x - b.x, a.y - b.y}; }
    constexpr point& operator+=(point b) noexcept { x += b.x; y += b.y; return *this; }
    constexpr point& operator-=(point b) noexcept { x -= b.x; y -= b.y; return *this; }
};

/// The origin 0 = (0, 0), the common start node of every walk in the paper.
inline constexpr point origin{0, 0};

/// |v| for 64-bit lattice coordinates (std::abs is not constexpr in C++20).
[[nodiscard]] constexpr std::int64_t abs64(std::int64_t v) noexcept {
    return v < 0 ? -v : v;
}

/// L1 (Manhattan) norm ‖u‖₁ — the paper's shortest-path distance on Z².
[[nodiscard]] constexpr std::int64_t l1_norm(point u) noexcept {
    return abs64(u.x) + abs64(u.y);
}

/// L∞ norm ‖u‖∞, used by the boxes Q_d and the monotonicity lemma.
[[nodiscard]] constexpr std::int64_t linf_norm(point u) noexcept {
    const std::int64_t ax = abs64(u.x), ay = abs64(u.y);
    return ax > ay ? ax : ay;
}

/// Squared Euclidean norm ‖u‖₂² (exact in integers).
[[nodiscard]] constexpr std::int64_t l2_norm_sq(point u) noexcept {
    return u.x * u.x + u.y * u.y;
}

[[nodiscard]] constexpr std::int64_t l1_distance(point u, point v) noexcept {
    return l1_norm(u - v);
}
[[nodiscard]] constexpr std::int64_t linf_distance(point u, point v) noexcept {
    return linf_norm(u - v);
}

/// Euclidean norm as a double (may round for huge coordinates; fine for
/// reporting, never used for exact geometric decisions).
[[nodiscard]] double l2_norm(point u) noexcept;

/// Lattice adjacency: u and v share an edge of the grid graph.
[[nodiscard]] constexpr bool adjacent(point u, point v) noexcept {
    return l1_distance(u, v) == 1;
}

std::ostream& operator<<(std::ostream& os, point p);

/// Hash functor so points can key unordered containers (visit counting).
struct point_hash {
    std::size_t operator()(point p) const noexcept {
        // Two rounds of the SplitMix64 finalizer over the packed coords.
        std::uint64_t h = static_cast<std::uint64_t>(p.x) * 0x9e3779b97f4a7c15ULL;
        h ^= static_cast<std::uint64_t>(p.y) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
        h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
        h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
        return static_cast<std::size_t>(h ^ (h >> 31));
    }
};

}  // namespace levy
