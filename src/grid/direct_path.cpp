#include "src/grid/direct_path.h"

#include <cassert>

namespace levy {
namespace {
// 128-bit comparisons keep the Bresenham decision exact for jump lengths up
// to 2^62 (see class comment). GCC/Clang extension, hence the marker.
__extension__ typedef __int128 int128;
}  // namespace

direct_path_stepper::direct_path_stepper(point from, point to) noexcept : from_(from) {
    const point delta = to - from;
    adx_ = abs64(delta.x);
    ady_ = abs64(delta.y);
    sx_ = delta.x < 0 ? -1 : 1;
    sy_ = delta.y < 0 ? -1 : 1;
    total_ = adx_ + ady_;
}

point direct_path_stepper::advance(rng& g) {
    assert(!done());
    bool step_x;
    if (px_ == adx_) {
        step_x = false;  // x budget exhausted
    } else if (py_ == ady_) {
        step_x = true;  // y budget exhausted
    } else {
        // Candidate after an x-step is closer to w_{i+1} than after a y-step
        // iff d·px − (i+1)·|Δx| < d·py − (i+1)·|Δy| (see class comment).
        const int128 i1 = taken() + 1;
        const int128 ex = static_cast<int128>(total_) * px_ - i1 * adx_;
        const int128 ey = static_cast<int128>(total_) * py_ - i1 * ady_;
        if (ex < ey) {
            step_x = true;
        } else if (ey < ex) {
            step_x = false;
        } else {
            // levylint:allow(conditional-main-draw): the tie coin is the
            // documented consumer of the per-phase path substream — callers
            // pass stream.substream(phase), never the main stream, so its
            // data-dependent draw count cannot skew main-stream replay.
            step_x = g.coin();  // exact tie: both nodes equidistant from w_{i+1}
        }
    }
    if (step_x) {
        ++px_;
    } else {
        ++py_;
    }
    return position();
}

std::vector<point> sample_direct_path(point from, point to, rng& g) {
    direct_path_stepper stepper(from, to);
    std::vector<point> path;
    path.reserve(static_cast<std::size_t>(stepper.length()) + 1);
    path.push_back(from);
    // levylint:allow(conditional-main-draw, substream-discipline): analysis
    // helper that materialises one whole path; the caller hands it a stream
    // dedicated to this path (tests and E12 pass a throwaway), so there is
    // no main stream whose draw count could drift.
    while (!stepper.done()) path.push_back(stepper.advance(g));
    return path;
}

}  // namespace levy
