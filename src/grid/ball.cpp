#include "src/grid/ball.h"

#include <cmath>
#include <stdexcept>

namespace levy {

point sample_ball(point center, std::int64_t d, rng& g) {
    if (d < 0) throw std::invalid_argument("sample_ball: d must be >= 0");
    const std::uint64_t j = g.below(ball_size(d));
    if (j == 0) return center;
    // Offsets m = j - 1 index the concatenation of rings 1..d; ring r starts
    // at cumulative offset 2r(r-1) (= 4·(1 + … + (r-1))).
    const std::uint64_t m = j - 1;
    auto r = static_cast<std::int64_t>((1.0 + std::sqrt(1.0 + 2.0 * static_cast<double>(m))) / 2.0);
    // Float round-off can land one ring off; nudge into the exact bracket
    // 2r(r-1) <= m < 2r(r+1).
    while (r > 1 && m < static_cast<std::uint64_t>(2 * r * (r - 1))) --r;
    while (m >= static_cast<std::uint64_t>(2 * r * (r + 1))) ++r;
    const std::uint64_t offset = m - static_cast<std::uint64_t>(2 * r * (r - 1));
    return ring_node(center, r, offset);
}

}  // namespace levy
