#pragma once

#include <cstdint>

#include "src/grid/point.h"
#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// The L1 ball B_d(u) = { v : ‖u − v‖₁ ≤ d } and the L∞ box
/// Q_d(u) = { v : ‖u − v‖∞ ≤ d } (paper Fig. 1, middle and right).

/// |B_d| = 2d² + 2d + 1.
[[nodiscard]] constexpr std::uint64_t ball_size(std::int64_t d) noexcept {
    const auto u = static_cast<std::uint64_t>(d);
    return 2 * u * u + 2 * u + 1;
}

/// |Q_d| = (2d + 1)².
[[nodiscard]] constexpr std::uint64_t box_size(std::int64_t d) noexcept {
    const auto s = static_cast<std::uint64_t>(2 * d + 1);
    return s * s;
}

[[nodiscard]] constexpr bool in_ball(point center, std::int64_t d, point v) noexcept {
    return l1_distance(center, v) <= d;
}

[[nodiscard]] constexpr bool in_box(point center, std::int64_t d, point v) noexcept {
    return linf_distance(center, v) <= d;
}

/// A uniform node of B_d(center): pick a ring with probability proportional
/// to its size, then a uniform node on it. O(1).
[[nodiscard]] point sample_ball(point center, std::int64_t d, rng& g);

/// Apply `fn(point)` to every node of B_d(center), ring by ring.
template <class Fn>
void for_each_ball_node(point center, std::int64_t d, Fn&& fn) {
    for (std::int64_t r = 0; r <= d; ++r) for_each_ring_node(center, r, fn);
}

/// Apply `fn(point)` to every node of Q_d(center), row-major.
template <class Fn>
void for_each_box_node(point center, std::int64_t d, Fn&& fn) {
    for (std::int64_t dy = -d; dy <= d; ++dy) {
        for (std::int64_t dx = -d; dx <= d; ++dx) {
            fn(center + point{dx, dy});
        }
    }
}

}  // namespace levy
