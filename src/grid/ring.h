#pragma once

#include <cstdint>

#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// The ring R_d(u) = { v : ‖u − v‖₁ = d } (paper Fig. 1, left).
///
/// For d ≥ 1 the ring has exactly 4d nodes; the functions below give a
/// canonical bijection index ↔ node, which makes uniform sampling — the way
/// every jump destination is chosen in Defs. 3.3/3.4 — a single bounded
/// integer draw.
///
/// Indexing convention: index j ∈ [0, 4d) splits as side = j / d,
/// offset = j mod d, walking the diamond counterclockwise from (d, 0):
///   side 0: (d − o,  o)       side 1: (−o,  d − o)
///   side 2: (o − d, −o)       side 3: ( o,  o − d)

/// |R_d| — 1 for d = 0, else 4d. (Computed in unsigned space: d can be as
/// large as a ballistic jump length, where 4d would overflow int64.)
[[nodiscard]] constexpr std::uint64_t ring_size(std::int64_t d) noexcept {
    return d == 0 ? 1 : 4 * static_cast<std::uint64_t>(d);
}

/// The j-th node of R_d(center); requires 0 ≤ j < ring_size(d), d ≥ 0.
[[nodiscard]] point ring_node(point center, std::int64_t d, std::uint64_t j);

/// Inverse of ring_node: the index of `v` on R_d(center) where
/// d = ‖v − center‖₁. Requires v ≠ center.
[[nodiscard]] std::uint64_t ring_index(point center, point v);

/// A uniform node of R_d(center).
[[nodiscard]] point sample_ring(point center, std::int64_t d, rng& g);

/// Apply `fn(point)` to every node of R_d(center) in index order.
template <class Fn>
void for_each_ring_node(point center, std::int64_t d, Fn&& fn) {
    const std::uint64_t n = ring_size(d);
    for (std::uint64_t j = 0; j < n; ++j) fn(ring_node(center, d, j));
}

}  // namespace levy
