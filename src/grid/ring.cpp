#include "src/grid/ring.h"

#include <stdexcept>

namespace levy {

point ring_node(point center, std::int64_t d, std::uint64_t j) {
    if (d < 0) throw std::invalid_argument("ring_node: d must be >= 0");
    if (d == 0) {
        if (j != 0) throw std::out_of_range("ring_node: R_0 has a single node");
        return center;
    }
    if (j >= ring_size(d)) throw std::out_of_range("ring_node: index out of range");
    const auto o = static_cast<std::int64_t>(j % static_cast<std::uint64_t>(d));
    point rel;
    switch (j / static_cast<std::uint64_t>(d)) {
        case 0: rel = {d - o, o}; break;
        case 1: rel = {-o, d - o}; break;
        case 2: rel = {o - d, -o}; break;
        default: rel = {o, o - d}; break;
    }
    return center + rel;
}

std::uint64_t ring_index(point center, point v) {
    const point rel = v - center;
    const std::int64_t d = l1_norm(rel);
    if (d == 0) throw std::invalid_argument("ring_index: v equals center");
    // Determine the side from the signs, mirroring ring_node's convention.
    // Corners belong to the side that starts at them: (d,0) side 0, (0,d)
    // side 1, (-d,0) side 2, (0,-d) side 3.
    if (rel.x > 0 && rel.y >= 0) return static_cast<std::uint64_t>(rel.y);           // side 0
    if (rel.x <= 0 && rel.y > 0) return static_cast<std::uint64_t>(d - rel.x);       // side 1, o=-x
    if (rel.x < 0 && rel.y <= 0) return static_cast<std::uint64_t>(2 * d - rel.y);   // side 2, o=-y
    return static_cast<std::uint64_t>(3 * d + rel.x);                                // side 3, o=x
}

point sample_ring(point center, std::int64_t d, rng& g) {
    if (d == 0) return center;
    return ring_node(center, d, g.below(ring_size(d)));
}

}  // namespace levy
