#pragma once

#include <cstdint>
#include <vector>

#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy {

/// Incremental generator of a uniformly random *direct path* (Def. 3.1,
/// paper Fig. 2): a shortest lattice path u = u₀, u₁, …, u_d = v such that
/// each u_i is the node of R_i(u) closest (in L2) to the point w_i of the
/// real segment uv at L1-parameter i, ties broken uniformly at random.
///
/// Implementation: a Bresenham-style stepper. After i steps the current node
/// p has taken (px, py) unit moves along the two axes (px + py = i); the two
/// forward neighbors are the only candidates of R_{i+1}(u) adjacent to p,
/// and comparing their squared L2 distances to w_{i+1} reduces to the exact
/// integer comparison
///
///     d·px − (i+1)·|Δx|   vs   d·py − (i+1)·|Δy|
///
/// (the squares cancel; see DESIGN.md). The greedy per-step argmin coincides
/// with Def. 3.1's per-ring argmin because the error of the chosen node
/// relative to the segment stays in (−1, 1] — the classic Bresenham
/// invariant — so the global closest node of R_{i+1} is always one of the
/// two forward neighbors. Exact ties consume one random bit, which yields
/// the uniform distribution over all direct paths that Lemma 3.2 assumes
/// (verified statistically in tests/grid/direct_path_distribution_test.cpp).
///
/// The comparison uses 128-bit integers: jump lengths in the ballistic
/// regime can reach ~2^62, and d·px can then exceed 64 bits, but never 127.
class direct_path_stepper {
public:
    /// Prepare a path from `from` to `to` (equal endpoints give an empty,
    /// already-done path).
    direct_path_stepper(point from, point to) noexcept;

    /// True once the destination has been reached.
    [[nodiscard]] bool done() const noexcept { return px_ + py_ == total_; }

    /// Take one lattice step toward the destination and return the new node.
    /// Precondition: !done().
    point advance(rng& g);

    /// Current node u_i.
    [[nodiscard]] point position() const noexcept {
        return {from_.x + sx_ * px_, from_.y + sy_ * py_};
    }

    /// Total path length d = ‖to − from‖₁.
    [[nodiscard]] std::int64_t length() const noexcept { return total_; }

    /// Steps taken so far (the ring index i of the current node).
    [[nodiscard]] std::int64_t taken() const noexcept { return px_ + py_; }

    [[nodiscard]] point destination() const noexcept {
        return {from_.x + sx_ * adx_, from_.y + sy_ * ady_};
    }

private:
    point from_;
    std::int64_t adx_, ady_;  // |Δx|, |Δy|
    std::int64_t sx_, sy_;    // signs of Δx, Δy (±1; 1 when the delta is 0)
    std::int64_t total_;      // adx_ + ady_
    std::int64_t px_ = 0, py_ = 0;  // unit moves taken along each axis
};

/// Materialize a whole direct path (d+1 nodes, endpoints included).
[[nodiscard]] std::vector<point> sample_direct_path(point from, point to, rng& g);

}  // namespace levy
