#include "src/grid/point.h"

#include <cmath>
#include <ostream>

namespace levy {

double l2_norm(point u) noexcept {
    return std::hypot(static_cast<double>(u.x), static_cast<double>(u.y));
}

std::ostream& operator<<(std::ostream& os, point p) {
    return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace levy
