#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/http.h"

namespace levy::serve {

/// --- Closed-loop load generator -------------------------------------------
///
/// The one client harness shared by `levyserve loadgen`, the E23 overload
/// bench, and the CI serve-smoke job. Closed loop: `concurrency` client
/// threads each issue the next request the moment the previous one
/// finishes, until `requests` total have been sent — offered load is
/// therefore concurrency / mean-latency, and pushing `concurrency` past the
/// server's worker count + queue capacity forces the admission gate to
/// shed, which is exactly what the overload assertions measure.
///
/// Latency here is wall-clock *measurement* of the service, never content
/// of an answer — the determinism contract (serve/server.h) is untouched.

struct loadgen_options {
    unsigned short port = 0;
    /// Request target, e.g. "/healthz" or "/query?alpha=2.5&ell=32". Cycled
    /// round-robin when several are given (requests i uses paths[i % n]).
    std::vector<std::string> paths = {"/healthz"};
    std::size_t requests = 100;  ///< total requests across all threads
    unsigned concurrency = 8;    ///< parallel client threads (>= 1)
    double timeout_seconds = 10.0;
};

struct loadgen_report {
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;            ///< 2xx
    std::uint64_t shed = 0;          ///< 503 (the overload contract)
    std::uint64_t client_errors = 0; ///< 4xx
    std::uint64_t server_errors = 0; ///< non-503 5xx — must be 0 under pure overload
    std::uint64_t transport_errors = 0;  ///< no/torn HTTP reply
    /// Per-request wall latency in milliseconds, sorted ascending
    /// (successful and shed requests both count — shedding is a response).
    std::vector<double> latencies_ms;

    /// Nearest-rank percentile of `latencies_ms` (q in [0, 100]); 0 when
    /// no latency was recorded.
    [[nodiscard]] double percentile_ms(double q) const noexcept;
};

#if LEVY_SERVE_HAVE_POSIX_SOCKETS
/// Run the closed loop against 127.0.0.1:port. Requires requests >= 1,
/// concurrency >= 1, at least one path.
[[nodiscard]] loadgen_report run_loadgen(const loadgen_options& opts);
#endif

}  // namespace levy::serve
