#include "src/serve/loadgen.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <mutex>
// levylint:allow(raw-thread) client threads: the load generator *is* the
// concurrency under test — it drives sockets, never trial work.
#include <thread>

#include "src/core/contracts.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

namespace levy::serve {

double loadgen_report::percentile_ms(double q) const noexcept {
    if (latencies_ms.empty()) return 0.0;
    if (q <= 0.0) return latencies_ms.front();
    if (q >= 100.0) return latencies_ms.back();
    // Nearest-rank: ceil(q/100 * n), 1-based.
    const std::size_t n = latencies_ms.size();
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(q / 100.0 * static_cast<double>(n)));
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    return latencies_ms[rank - 1];
}

loadgen_report run_loadgen(const loadgen_options& opts) {
    LEVY_PRECONDITION(opts.requests >= 1, "loadgen: requests must be >= 1");
    LEVY_PRECONDITION(opts.concurrency >= 1, "loadgen: concurrency must be >= 1");
    LEVY_PRECONDITION(!opts.paths.empty(), "loadgen: need at least one path");

    std::atomic<std::uint64_t> next{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> client_errors{0};
    std::atomic<std::uint64_t> server_errors{0};
    std::atomic<std::uint64_t> transport_errors{0};
    std::mutex latencies_m;
    std::vector<double> latencies;
    latencies.reserve(opts.requests);

    const auto client = [&] {
        using clock = std::chrono::steady_clock;
        std::vector<double> local;
        for (;;) {
            const std::uint64_t i = next.fetch_add(1);
            if (i >= opts.requests) break;
            const std::string& path = opts.paths[i % opts.paths.size()];
            const auto start = clock::now();
            int status = 0;
            const std::optional<std::string> body =
                http_get(opts.port, path, opts.timeout_seconds, &status);
            const double ms =
                std::chrono::duration<double, std::milli>(clock::now() - start).count();
            if (!body.has_value() && status == 0) {
                transport_errors.fetch_add(1);
                continue;  // no reply: nothing to time
            }
            local.push_back(ms);
            if (status >= 200 && status < 300) {
                ok.fetch_add(1);
            } else if (status == 503) {
                shed.fetch_add(1);
            } else if (status >= 500) {
                server_errors.fetch_add(1);
            } else if (status >= 400) {
                client_errors.fetch_add(1);
            } else {
                transport_errors.fetch_add(1);
            }
        }
        const std::lock_guard<std::mutex> lock(latencies_m);
        latencies.insert(latencies.end(), local.begin(), local.end());
    };

    std::vector<std::thread> threads;  // levylint:allow(raw-thread) see file header note
    const unsigned n =
        static_cast<unsigned>(std::min<std::uint64_t>(opts.concurrency, opts.requests));
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        // levylint:allow(raw-thread) client threads; see file header note
        threads.emplace_back(client);
    }
    for (auto& t : threads) t.join();

    loadgen_report report;
    report.sent = std::min<std::uint64_t>(next.load(), opts.requests);
    report.ok = ok.load();
    report.shed = shed.load();
    report.client_errors = client_errors.load();
    report.server_errors = server_errors.load();
    report.transport_errors = transport_errors.load();
    std::sort(latencies.begin(), latencies.end());
    report.latencies_ms = std::move(latencies);
    return report;
}

}  // namespace levy::serve

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS
