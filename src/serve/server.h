#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/serve/admission.h"
#include "src/serve/cache.h"
#include "src/serve/http.h"
#include "src/sim/monte_carlo.h"

namespace levy::serve {

/// --- levyserve: hitting-time search as a service --------------------------
///
/// A long-running daemon answering the paper's two operational questions
/// for many concurrent clients:
///
///   GET /query?alpha=A&ell=L[&k=K][&budget=T][&trials=N][&seed=S]
///             [&cap=C][&deadline_ms=D]
///       Monte-Carlo estimate of P(τ^k ≤ budget) for k parallel Lévy walks
///       with exponent A against a target at distance L (Thm 1.5 regime).
///   GET /plan?k=K&ell=L
///       The optimal common exponent α*(k, ℓ) and budget brackets
///       (Cor. 4.2 / Thm 1.5; theory::plan_parallel_search).
///   GET /healthz, /metrics, /stats
///       Liveness, Prometheus exposition, and serving counters.
///
/// Robustness ladder (DESIGN.md §10) — every request passes three gates:
///
///   1. ADMISSION: the acceptor hands connections to a bounded queue with
///      an explicit capacity and byte budget (serve/admission.h). Overload
///      sheds with `503 + Retry-After` at accept time; memory stays
///      bounded no matter the offered load.
///   2. DEADLINE: sockets carry recv/send timeouts plus a *total*
///      request-head deadline (serve/http.h), so a slow or silent client
///      costs a worker a bounded slice, never the process. The query
///      deadline itself is deterministic: `deadline_ms` converts to a step
///      allowance (deadline_ms * steps_per_ms) enforced through the
///      engine's --max-steps-per-trial watchdog — never through wall-clock
///      inside the simulation, so answers stay a pure function of the
///      query and replay byte-identically across restarts.
///   3. DEGRADATION: when the full Monte-Carlo batch does not fit the step
///      allowance, the answer downgrades explicitly — exact-cell hit in
///      the crash-safe result cache, then bilinear interpolation between
///      cached grid points, then a watchdog-truncated partial run — and
///      says so in a `"quality": "exact|interpolated|degraded"` field with
///      `"censored": true` on truncated runs. Degraded beats hung.
///
/// Determinism contract: a /query response body is a pure function of the
/// query parameters, the server's (seed, steps_per_ms, trials, cache
/// grid) configuration, and — for degraded answers only — the cache
/// contents. No wall-clock value ever enters a response body, which is
/// what the kill-and-restart selftest byte-compares.

struct serve_options {
    unsigned short port = 0;  ///< 0 = ephemeral
    /// Query worker threads (>= 1). Each runs its queries inline
    /// (single-threaded Monte-Carlo), so queries are the unit of
    /// parallelism and per-query results never depend on worker count.
    unsigned workers = 2;
    std::size_t queue_capacity = 64;
    std::size_t max_inflight_bytes = 0;  ///< 0 = derive (admission.h)
    int retry_after_seconds = 1;

    std::uint64_t default_deadline_ms = 200;
    std::uint64_t max_deadline_ms = 60'000;
    /// Deterministic deadline currency: one millisecond of deadline buys
    /// this many simulation steps. Calibrate per deployment (E23 measures
    /// actual steps/ms); determinism only needs it fixed per server run.
    std::uint64_t steps_per_ms = 20'000;

    std::size_t default_trials = 200;
    std::size_t max_trials = 100'000;
    std::uint64_t seed = sim::kDefaultSeed;

    std::string cache_path;  ///< empty = in-memory cache only
    /// Persist the cache after this many inserts (and at shutdown).
    std::size_t cache_flush_every = 16;
    cache_options cache;

    http_limits limits;
};

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

class server {
public:
    explicit server(const serve_options& opts);
    ~server();

    server(const server&) = delete;
    server& operator=(const server&) = delete;

    /// Bind, load the cache (when configured), spawn acceptor + workers.
    /// Returns the bound port. Throws std::runtime_error / std::logic_error.
    unsigned short start();

    /// Stop accepting, drain workers, close queued connections with 503,
    /// flush the cache. Idempotent, safe when never started.
    void stop() noexcept;

    [[nodiscard]] bool running() const noexcept;
    [[nodiscard]] unsigned short port() const noexcept { return port_; }

    /// Answer one parsed request exactly as a worker would — the unit
    /// tests' socket-free entry point. `sequence` is the admission ordinal
    /// (feeds the fault hooks).
    [[nodiscard]] http_response handle(const http_request& req, std::uint64_t sequence);

    /// Persist the result cache now (no-op without a cache_path).
    void flush_cache();

    struct stats_snapshot {
        admission_queue::counters admission;
        std::uint64_t queries = 0;
        std::uint64_t plans = 0;
        std::uint64_t exact = 0;
        std::uint64_t interpolated = 0;
        std::uint64_t degraded = 0;
        std::uint64_t cache_hits = 0;
        std::uint64_t bad_requests = 0;
        std::uint64_t worker_faults = 0;
        std::uint64_t head_failures = 0;  ///< timeout/too_large/malformed/closed
        std::size_t cache_entries = 0;
    };
    [[nodiscard]] stats_snapshot stats() const;

    [[nodiscard]] const serve_options& options() const noexcept { return opts_; }
    [[nodiscard]] result_cache& cache() noexcept { return cache_; }

private:
    void acceptor_loop();
    void worker_loop();
    void process(const admission_ticket& ticket);
    void maybe_flush_cache();

    [[nodiscard]] http_response handle_query(const http_request& req,
                                             std::uint64_t sequence);
    [[nodiscard]] http_response handle_plan(const http_request& req);
    [[nodiscard]] http_response handle_stats();

    serve_options opts_;
    admission_queue queue_;
    result_cache cache_;

    struct impl;
    impl* impl_;
    unsigned short port_ = 0;
};

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS

}  // namespace levy::serve
