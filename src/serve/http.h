#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace levy::serve {

/// --- Shared POSIX HTTP/1.1 plumbing --------------------------------------
///
/// The one place in the tree that reads and writes HTTP bytes. Both the
/// read-only metrics exporter (src/obs/exporter) and the levyserve query
/// daemon (src/serve/server) sit on these helpers, so the socket-layer
/// robustness rules are enforced once:
///
///   - every connection gets SO_RCVTIMEO / SO_SNDTIMEO, so a single recv or
///     send can never block a serving thread indefinitely;
///   - the request head is read under a *total* wall-clock deadline, not
///     just a per-recv timeout — a slow-loris client dripping one byte per
///     second resets a per-recv timer forever but cannot outlive the total
///     budget;
///   - the head is size-bounded (`max_head_bytes`); an oversized head is an
///     error, never unbounded buffering.
///
/// Everything here is transport: no levy simulation state, no registry
/// access, no wall-clock content in any parsed structure.

/// Socket-layer robustness knobs; defaults suit an observability endpoint.
struct http_limits {
    /// Hard cap on the request-head bytes buffered per connection.
    std::size_t max_head_bytes = 8192;
    /// Per-recv/send socket timeout (SO_RCVTIMEO / SO_SNDTIMEO).
    double io_timeout_seconds = 2.0;
    /// Total wall-clock budget for reading one request head. Must cover at
    /// least one io_timeout; a dripping client is cut off here.
    double head_deadline_seconds = 5.0;
};

/// A parsed request line: method, raw target, and the target split into a
/// path plus decoded query parameters (insertion order preserved).
struct http_request {
    std::string method;
    std::string target;  ///< raw request target, e.g. "/query?alpha=2.5"
    std::string path;    ///< target up to '?', percent-decoded
    std::vector<std::pair<std::string, std::string>> query;

    /// First value of query parameter `key`, or nullptr when absent.
    [[nodiscard]] const std::string* param(const std::string& key) const noexcept;
};

/// Outcome of read_request_head.
enum class head_status : std::uint8_t {
    ok,         ///< complete head parsed into the request
    timeout,    ///< total head deadline (or a silent socket) expired
    too_large,  ///< head exceeded max_head_bytes before terminating
    malformed,  ///< terminator seen but the request line does not parse
    closed,     ///< peer closed (or reset) before a complete head
};

/// Human-readable tag for a head_status ("ok", "timeout", ...).
[[nodiscard]] const char* head_status_name(head_status s) noexcept;

/// Percent-decode `text` ('+' is not special — query values here are
/// numbers and short tokens). Invalid escapes pass through verbatim.
[[nodiscard]] std::string url_decode(const std::string& text);

/// Parse "METHOD /path?k=v&k2=v2 HTTP/1.1" into an http_request. Returns
/// false when the line does not have the three space-separated fields.
[[nodiscard]] bool parse_request_line(const std::string& line, http_request& out);

/// A response to render. `retry_after_seconds >= 0` adds a Retry-After
/// header (the 503 load-shedding contract); extra headers ride along as
/// (name, value) pairs.
struct http_response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
    int retry_after_seconds = -1;
    std::vector<std::pair<std::string, std::string>> headers;
};

/// Reason phrase for the status codes this tree emits.
[[nodiscard]] const char* status_text(int status) noexcept;

/// Serialize status line + headers + body (Connection: close, explicit
/// Content-Length) into one byte string.
[[nodiscard]] std::string render_response(const http_response& resp);

#if defined(__unix__) || defined(__APPLE__)
#define LEVY_SERVE_HAVE_POSIX_SOCKETS 1
#else
#define LEVY_SERVE_HAVE_POSIX_SOCKETS 0
#endif

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

/// Apply `limits`' SO_RCVTIMEO / SO_SNDTIMEO to `fd`.
void apply_socket_timeouts(int fd, const http_limits& limits) noexcept;

/// Read one request head from `fd` (which should already carry the socket
/// timeouts) under the limits' byte bound and total deadline, then parse
/// the request line. On anything but `ok`, `out` holds whatever partial
/// state was parsed (for logging); treat it as untrusted.
[[nodiscard]] head_status read_request_head(int fd, const http_limits& limits,
                                            http_request& out);

/// Write all of `bytes`; returns false if the peer went away first (callers
/// treat responses as best-effort — a vanished client is not an error).
bool send_all(int fd, const std::string& bytes) noexcept;

/// Bind + listen on 0.0.0.0:`port` (0 = ephemeral); returns (fd, bound
/// port). Throws std::runtime_error when the socket cannot be set up.
[[nodiscard]] std::pair<int, unsigned short> listen_on(unsigned short port);

/// --- Minimal client (tests, levyserve selftest, load generator) ----------

/// Connect to 127.0.0.1:`port` with recv/send timeouts applied; returns the
/// fd, or -1 when the connection fails. The fault drills use this directly
/// to play misbehaving clients (stalls, mid-response resets).
[[nodiscard]] int connect_client(unsigned short port, double timeout_seconds) noexcept;

/// One blocking GET of `path` against 127.0.0.1:`port` over a fresh
/// connection. Returns nullopt when unreachable, the response is torn, the
/// status line is not a well-formed three-digit HTTP/1.1 status, the
/// response exceeds `max_response_bytes`, or the *total* wall clock exceeds
/// `timeout_seconds` — the client-side mirror of read_request_head's
/// slow-loris rule: a server dripping one byte per recv-timeout window
/// resets a per-recv timer forever but cannot outlive the total deadline.
/// `status_out`, when given, receives the numeric status (0 on no reply or
/// a garbage status line).
[[nodiscard]] std::optional<std::string> http_get(unsigned short port,
                                                  const std::string& path,
                                                  double timeout_seconds = 5.0,
                                                  int* status_out = nullptr,
                                                  std::size_t max_response_bytes = 1 << 26);

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS

}  // namespace levy::serve
