#include "src/serve/cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "src/core/contracts.h"
#include "src/sim/checkpoint.h"
#include "src/sim/fault.h"

namespace levy::serve {
namespace {

/// On-disk layout (version 1; fixed-size records so a corrupt record can be
/// skipped without losing framing):
///   header : magic u64 "LVYRCACH" | version u32 | record_size u32
///          | crc32(previous 16 bytes) u32
///   record*: alpha_q i32 | budget_q i32 | ell i64 | k u64
///          | probability f64 | ci_low f64 | ci_high f64 | trials u64
///          | crc32(preceding 56 bytes) u32
constexpr std::uint64_t kMagic = 0x4843'4143'5259'564cULL;  // "LVYRCACH" LE
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRecordPayload = 56;
constexpr std::size_t kRecordSize = kRecordPayload + 4;
constexpr std::size_t kHeaderSize = 20;

template <class T>
void put(std::vector<char>& out, const T& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    out.insert(out.end(), p, p + sizeof(T));
}

template <class T>
T get(const char* p) noexcept {
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

double clamp01(double v) noexcept { return std::clamp(v, 0.0, 1.0); }

}  // namespace

result_cache::result_cache(const cache_options& opts) : opts_(opts) {
    LEVY_PRECONDITION(opts_.capacity >= 1, "result_cache: capacity must be >= 1");
    LEVY_PRECONDITION(opts_.alpha_step > 0.0, "result_cache: alpha_step must be > 0");
    LEVY_PRECONDITION(opts_.budget_steps_per_octave >= 1,
                      "result_cache: budget_steps_per_octave must be >= 1");
}

cache_key result_cache::quantize(double alpha, std::int64_t ell, std::uint64_t k,
                                 std::uint64_t budget) const noexcept {
    cache_key key;
    key.alpha_q = static_cast<std::int32_t>(std::lround(alpha / opts_.alpha_step));
    key.ell = ell;
    key.k = k;
    const double log_budget = std::log2(static_cast<double>(std::max<std::uint64_t>(budget, 1)));
    key.budget_q = static_cast<std::int32_t>(
        std::lround(log_budget * opts_.budget_steps_per_octave));
    return key;
}

double result_cache::alpha_of(std::int32_t alpha_q) const noexcept {
    return static_cast<double>(alpha_q) * opts_.alpha_step;
}

double result_cache::log2_budget_of(std::int32_t budget_q) const noexcept {
    return static_cast<double>(budget_q) / opts_.budget_steps_per_octave;
}

void result_cache::touch_locked(std::map<cache_key, lru_list::iterator>::iterator it) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
}

const cache_value* result_cache::peek_locked(const cache_key& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    return &it->second->second;
}

std::optional<cache_value> result_cache::find(const cache_key& key) {
    std::lock_guard lk(m_);
    const auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    touch_locked(it);
    return it->second->second;
}

std::optional<result_cache::interpolation> result_cache::interpolate(double alpha,
                                                                     std::int64_t ell,
                                                                     std::uint64_t k,
                                                                     std::uint64_t budget) {
    std::lock_guard lk(m_);
    const double a = alpha / opts_.alpha_step;
    const double b = std::log2(static_cast<double>(std::max<std::uint64_t>(budget, 1))) *
                     opts_.budget_steps_per_octave;
    const auto a0 = static_cast<std::int32_t>(std::floor(a));
    const auto b0 = static_cast<std::int32_t>(std::floor(b));
    const std::int32_t a1 = a0 + 1;
    const std::int32_t b1 = b0 + 1;
    // Weights toward the upper grid point on each axis, clamped so a query
    // that sits exactly on a grid line never extrapolates.
    const double wa = clamp01(a - static_cast<double>(a0));
    const double wb = clamp01(b - static_cast<double>(b0));
    const auto at = [&](std::int32_t aq, std::int32_t bq) -> const cache_value* {
        return peek_locked(cache_key{aq, ell, k, bq});
    };
    const cache_value* c00 = at(a0, b0);
    const cache_value* c01 = at(a0, b1);
    const cache_value* c10 = at(a1, b0);
    const cache_value* c11 = at(a1, b1);
    interpolation out;
    if (c00 != nullptr && c01 != nullptr && c10 != nullptr && c11 != nullptr) {
        out.probability = (1.0 - wa) * ((1.0 - wb) * c00->probability + wb * c01->probability) +
                          wa * ((1.0 - wb) * c10->probability + wb * c11->probability);
        out.grid_points = 4;
    } else {
        // Degrade to a full grid line: linear along one axis when both of
        // its end points exist at *either* coordinate of the other axis —
        // nearest side first. Trying both sides matters: the query's own
        // rounded cell is one of the four corners, and when the server
        // reaches this path that cell is known empty (the exact-cell lookup
        // already missed), so the far row/column is frequently the only
        // populated one. Last resort: any single populated corner, nearest
        // first.
        const std::int32_t aq = wa < 0.5 ? a0 : a1;
        const std::int32_t bq = wb < 0.5 ? b0 : b1;
        const std::int32_t a_far = aq == a0 ? a1 : a0;
        const std::int32_t b_far = bq == b0 ? b1 : b0;
        out.grid_points = 0;
        for (const std::int32_t row : {bq, b_far}) {
            const cache_value* lo = at(a0, row);
            const cache_value* hi = at(a1, row);
            if (lo != nullptr && hi != nullptr) {
                out.probability = (1.0 - wa) * lo->probability + wa * hi->probability;
                out.grid_points = 2;
                break;
            }
        }
        if (out.grid_points == 0) {
            for (const std::int32_t col : {aq, a_far}) {
                const cache_value* lo = at(col, b0);
                const cache_value* hi = at(col, b1);
                if (lo != nullptr && hi != nullptr) {
                    out.probability = (1.0 - wb) * lo->probability + wb * hi->probability;
                    out.grid_points = 2;
                    break;
                }
            }
        }
        if (out.grid_points == 0) {
            for (const auto& [ca, cb] : {std::pair{aq, bq}, {aq, b_far},
                                         {a_far, bq}, {a_far, b_far}}) {
                if (const cache_value* nearest = at(ca, cb); nearest != nullptr) {
                    out.probability = nearest->probability;
                    out.grid_points = 1;
                    break;
                }
            }
        }
        if (out.grid_points == 0) return std::nullopt;
    }
    out.probability = clamp01(out.probability);
    return out;
}

void result_cache::insert(const cache_key& key, const cache_value& value) {
    std::lock_guard lk(m_);
    cache_value clamped = value;
    clamped.probability = clamp01(clamped.probability);
    clamped.ci_low = clamp01(clamped.ci_low);
    clamped.ci_high = clamp01(clamped.ci_high);
    const auto it = index_.find(key);
    if (it != index_.end()) {
        it->second->second = clamped;
        touch_locked(it);
    } else {
        lru_.emplace_front(key, clamped);
        index_.emplace(key, lru_.begin());
        while (lru_.size() > opts_.capacity) {
            index_.erase(lru_.back().first);
            lru_.pop_back();
        }
    }
    ++dirty_;
}

std::size_t result_cache::size() const {
    std::lock_guard lk(m_);
    return lru_.size();
}

std::size_t result_cache::dirty_inserts() const {
    std::lock_guard lk(m_);
    return dirty_;
}

void result_cache::save(const std::string& path) {
    std::vector<char> bytes;
    std::size_t ordinal = 0;
    {
        std::lock_guard lk(m_);
        bytes.reserve(kHeaderSize + lru_.size() * kRecordSize);
        put(bytes, kMagic);
        put(bytes, kVersion);
        put(bytes, static_cast<std::uint32_t>(kRecordSize));
        put(bytes, sim::crc32(bytes.data(), bytes.size()));
        for (const auto& [key, value] : lru_) {  // MRU first
            const std::size_t start = bytes.size();
            put(bytes, key.alpha_q);
            put(bytes, key.budget_q);
            put(bytes, key.ell);
            put(bytes, key.k);
            put(bytes, value.probability);
            put(bytes, value.ci_low);
            put(bytes, value.ci_high);
            put(bytes, value.trials);
            put(bytes, sim::crc32(bytes.data() + start, kRecordPayload));
        }
        dirty_ = 0;
        ordinal = ++flush_ordinal_;
    }
    // The crash drill's hook point: a planned _Exit here dies with the new
    // bytes assembled but not yet renamed into place — exactly "between
    // flushes". The previous on-disk cache must survive intact.
    sim::fault_before_cache_flush(ordinal);
    sim::atomic_write_file(path, bytes);
}

std::size_t result_cache::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes;
    if (in) {
        in.seekg(0, std::ios::end);
        const std::streamoff len = in.tellg();
        if (len > 0) {
            bytes.resize(static_cast<std::size_t>(len));
            in.seekg(0);
            in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
            if (!in) bytes.clear();
        }
    }
    std::lock_guard lk(m_);
    lru_.clear();
    index_.clear();
    dirty_ = 0;
    if (bytes.size() < kHeaderSize) return 0;
    if (get<std::uint64_t>(bytes.data()) != kMagic ||
        get<std::uint32_t>(bytes.data() + 8) != kVersion ||
        get<std::uint32_t>(bytes.data() + 12) != static_cast<std::uint32_t>(kRecordSize) ||
        get<std::uint32_t>(bytes.data() + 16) != sim::crc32(bytes.data(), 16)) {
        return 0;
    }
    std::size_t kept = 0;
    // Fixed-size records keep framing through corruption: a record whose CRC
    // fails is skipped individually — its neighbors stay trustworthy.
    for (std::size_t off = kHeaderSize; off + kRecordSize <= bytes.size();
         off += kRecordSize) {
        const char* rec = bytes.data() + off;
        if (get<std::uint32_t>(rec + kRecordPayload) != sim::crc32(rec, kRecordPayload)) {
            continue;
        }
        cache_key key;
        key.alpha_q = get<std::int32_t>(rec);
        key.budget_q = get<std::int32_t>(rec + 4);
        key.ell = get<std::int64_t>(rec + 8);
        key.k = get<std::uint64_t>(rec + 16);
        cache_value value;
        value.probability = clamp01(get<double>(rec + 24));
        value.ci_low = clamp01(get<double>(rec + 32));
        value.ci_high = clamp01(get<double>(rec + 40));
        value.trials = get<std::uint64_t>(rec + 48);
        if (index_.contains(key)) continue;  // records are MRU-first: keep the hotter one
        if (lru_.size() >= opts_.capacity) break;
        lru_.emplace_back(key, value);  // preserve MRU-first order
        index_.emplace(key, std::prev(lru_.end()));
        ++kept;
    }
    return kept;
}

}  // namespace levy::serve
