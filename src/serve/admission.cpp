#include "src/serve/admission.h"

#include <algorithm>

#include "src/core/contracts.h"

namespace levy::serve {

const char* admit_result_name(admit_result r) noexcept {
    switch (r) {
        case admit_result::admitted: return "admitted";
        case admit_result::shed_queue_full: return "shed_queue_full";
        case admit_result::shed_bytes_exhausted: return "shed_bytes_exhausted";
        case admit_result::shed_shutdown: return "shed_shutdown";
    }
    return "unknown";
}

admission_queue::admission_queue(const admission_options& opts) : opts_(opts) {
    LEVY_PRECONDITION(opts_.queue_capacity >= 1,
                      "admission_queue: queue_capacity must be >= 1");
    LEVY_PRECONDITION(opts_.reserved_bytes_per_request >= 1,
                      "admission_queue: reserved_bytes_per_request must be >= 1");
    if (opts_.max_inflight_bytes == 0) {
        // Default budget: every queue slot plus as many in-flight requests
        // again — the byte gate then only trips ahead of the queue gate when
        // the caller tightens it explicitly.
        opts_.max_inflight_bytes =
            2 * opts_.queue_capacity * opts_.reserved_bytes_per_request;
    }
}

admit_result admission_queue::try_admit(int fd) {
    std::lock_guard lk(m_);
    if (shutdown_) {
        ++counters_.shed_shutdown;
        return admit_result::shed_shutdown;
    }
    if (queue_.size() >= opts_.queue_capacity) {
        ++counters_.shed_queue_full;
        return admit_result::shed_queue_full;
    }
    if (reserved_ + opts_.reserved_bytes_per_request > opts_.max_inflight_bytes) {
        ++counters_.shed_bytes;
        return admit_result::shed_bytes_exhausted;
    }
    reserved_ += opts_.reserved_bytes_per_request;
    admission_ticket ticket;
    ticket.fd = fd;
    ticket.sequence = next_sequence_++;
    queue_.push_back(ticket);
    ++counters_.admitted;
    cv_.notify_one();
    return admit_result::admitted;
}

std::optional<admission_ticket> admission_queue::pop() {
    std::unique_lock lk(m_);
    cv_.wait(lk, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;  // shutdown with a drained queue
    const admission_ticket ticket = queue_.front();
    queue_.pop_front();
    return ticket;
}

void admission_queue::release() noexcept {
    std::lock_guard lk(m_);
    if (reserved_ >= opts_.reserved_bytes_per_request) {
        reserved_ -= opts_.reserved_bytes_per_request;
    } else {
        reserved_ = 0;
    }
}

void admission_queue::shutdown() noexcept {
    {
        std::lock_guard lk(m_);
        shutdown_ = true;
    }
    cv_.notify_all();
}

std::deque<int> admission_queue::drain() {
    std::lock_guard lk(m_);
    std::deque<int> fds;
    for (const admission_ticket& t : queue_) fds.push_back(t.fd);
    reserved_ -= std::min(reserved_, queue_.size() * opts_.reserved_bytes_per_request);
    queue_.clear();
    return fds;
}

std::size_t admission_queue::depth() const {
    std::lock_guard lk(m_);
    return queue_.size();
}

std::size_t admission_queue::reserved_bytes() const {
    std::lock_guard lk(m_);
    return reserved_;
}

admission_queue::counters admission_queue::stats() const {
    std::lock_guard lk(m_);
    return counters_;
}

}  // namespace levy::serve
