#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace levy::serve {

/// --- Admission control: the bounded front door ----------------------------
///
/// Every accepted connection must pass through here before a worker touches
/// it. The queue has an explicit capacity and an explicit byte budget; when
/// either is exceeded the connection is *shed* — the acceptor answers
/// `503 + Retry-After` immediately and closes — instead of queueing without
/// bound. Overload therefore degrades to fast, explicit rejections while
/// admitted requests keep their latency; memory stays bounded by
/// `capacity * reserved_bytes`.
///
/// The byte budget is a reservation scheme: each admitted connection
/// reserves `reserved_bytes_per_request` (a worst case covering its request
/// head plus response buffer) up front and releases it when the worker
/// finishes. That makes the bound enforceable at admission time, before any
/// request byte has been read.

struct admission_options {
    /// Connections allowed to wait for a worker (≥ 1).
    std::size_t queue_capacity = 64;
    /// Worst-case bytes reserved per admitted (queued or in-flight) request.
    std::size_t reserved_bytes_per_request = 64 * 1024;
    /// Total reservation budget across queued + in-flight requests; 0 means
    /// "derive from capacity" (2 * capacity * reserved_bytes, i.e. the byte
    /// gate only trips when responses run larger than the reservation says).
    std::size_t max_inflight_bytes = 0;
    /// Advertised in the 503 Retry-After header.
    int retry_after_seconds = 1;
};

/// Why a connection was shed (or that it was admitted).
enum class admit_result : std::uint8_t {
    admitted,
    shed_queue_full,
    shed_bytes_exhausted,
    shed_shutdown,
};

[[nodiscard]] const char* admit_result_name(admit_result r) noexcept;

/// One admitted connection, carried from the acceptor to a worker. The
/// ticket owns its admission reservation, not the fd (the server closes fds
/// explicitly so the shutdown path can drain deterministically).
struct admission_ticket {
    int fd = -1;
    std::uint64_t sequence = 0;  ///< admission order, 0-based
};

class admission_queue {
public:
    explicit admission_queue(const admission_options& opts);

    admission_queue(const admission_queue&) = delete;
    admission_queue& operator=(const admission_queue&) = delete;

    /// Acceptor side: admit `fd` or report why not. On `admitted` the
    /// connection's reservation is held until `release()`.
    [[nodiscard]] admit_result try_admit(int fd);

    /// Worker side: block until a ticket or shutdown (nullopt). Tickets pop
    /// in admission order.
    [[nodiscard]] std::optional<admission_ticket> pop();

    /// Worker side: request finished (responded or failed) — return the
    /// ticket's reservation to the budget.
    void release() noexcept;

    /// Wake every popper with nullopt; subsequent try_admit sheds. Queued,
    /// never-popped fds are returned via `drain` so the caller can close
    /// them (the queue does not own fds).
    void shutdown() noexcept;
    [[nodiscard]] std::deque<int> drain();

    /// Currently queued (admitted, not yet popped).
    [[nodiscard]] std::size_t depth() const;
    /// Reserved bytes across queued + in-flight requests.
    [[nodiscard]] std::size_t reserved_bytes() const;

    struct counters {
        std::uint64_t admitted = 0;
        std::uint64_t shed_queue_full = 0;
        std::uint64_t shed_bytes = 0;
        std::uint64_t shed_shutdown = 0;
        [[nodiscard]] std::uint64_t shed_total() const noexcept {
            return shed_queue_full + shed_bytes + shed_shutdown;
        }
    };
    [[nodiscard]] counters stats() const;

    [[nodiscard]] const admission_options& options() const noexcept { return opts_; }

private:
    admission_options opts_;
    mutable std::mutex m_;
    std::condition_variable cv_;
    std::deque<admission_ticket> queue_;
    std::size_t reserved_ = 0;  ///< bytes reserved (queued + in-flight)
    std::uint64_t next_sequence_ = 0;
    counters counters_;
    bool shutdown_ = false;
};

}  // namespace levy::serve
