#include "src/serve/server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <mutex>
#include <stdexcept>
#include <string>
// levylint:allow(raw-thread) acceptor + worker threads: service I/O framing
// only — every query runs its Monte-Carlo inline with threads=1, so the
// sim::thread_pool RNG discipline is never bypassed.
#include <thread>
#include <utility>
#include <vector>

#include "src/core/contracts.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/sim/fault.h"
#include "src/sim/trial.h"
#include "src/stats/proportion.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace levy::serve {
namespace {

/// u64 seeds exceed double precision, so JSON carries them as hex strings
/// (same convention as sim::describe_options).
std::string hex_u64(std::uint64_t v) {
    char buf[2 + 16 + 1];
    std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
    return std::string(buf);
}

/// Query-parameter parsing: strict full-string numeric parses; any failure
/// is a 400, never a silent default.
bool parse_u64_param(const std::string& text, std::uint64_t& out) {
    if (text.empty() || text[0] == '-') return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    out = static_cast<std::uint64_t>(v);
    return true;
}

bool parse_i64_param(const std::string& text, std::int64_t& out) {
    if (text.empty()) return false;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') return false;
    out = static_cast<std::int64_t>(v);
    return true;
}

bool parse_double_param(const std::string& text, double& out) {
    if (text.empty()) return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0' || !std::isfinite(v)) return false;
    out = v;
    return true;
}

http_response json_response(int status, const obs::json& doc) {
    http_response resp;
    resp.status = status;
    resp.content_type = "application/json";
    resp.body = doc.dump() + "\n";
    return resp;
}

http_response error_response(int status, const std::string& message) {
    obs::json doc = obs::json::object();
    doc.set("error", message);
    return json_response(status, doc);
}

}  // namespace

struct server::impl {
    std::atomic<bool> running{false};
    int listen_fd = -1;
    std::thread acceptor;               // levylint:allow(raw-thread) see file header note
    std::vector<std::thread> workers;   // levylint:allow(raw-thread) see file header note

    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> plans{0};
    std::atomic<std::uint64_t> exact{0};
    std::atomic<std::uint64_t> interpolated{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> cache_hits{0};
    std::atomic<std::uint64_t> bad_requests{0};
    std::atomic<std::uint64_t> worker_faults{0};
    std::atomic<std::uint64_t> head_failures{0};

    /// Serializes result_cache::save calls: atomic_write_file stages at a
    /// fixed temp path, so two concurrent flushes of the same file would
    /// race each other's rename.
    std::mutex flush_m;
};

server::server(const serve_options& opts)
    : opts_(opts),
      queue_(admission_options{opts.queue_capacity == 0 ? 1 : opts.queue_capacity,
                               64 * 1024, opts.max_inflight_bytes,
                               opts.retry_after_seconds}),
      cache_(opts.cache),
      impl_(new impl) {
    LEVY_PRECONDITION(opts.workers >= 1, "serve: workers must be >= 1");
    LEVY_PRECONDITION(opts.queue_capacity >= 1, "serve: queue_capacity must be >= 1");
    LEVY_PRECONDITION(opts.default_deadline_ms >= 1, "serve: default_deadline_ms must be >= 1");
    LEVY_PRECONDITION(opts.steps_per_ms >= 1, "serve: steps_per_ms must be >= 1");
    LEVY_PRECONDITION(opts.default_trials >= 1, "serve: default_trials must be >= 1");
    LEVY_PRECONDITION(opts.cache_flush_every >= 1, "serve: cache_flush_every must be >= 1");
}

server::~server() {
    stop();
    delete impl_;
}

unsigned short server::start() {
    if (impl_->running.load()) throw std::logic_error("serve: server already running");
    if (!opts_.cache_path.empty()) {
        cache_.load(opts_.cache_path);  // missing/corrupt file loads nothing
    }
    auto [fd, port] = listen_on(opts_.port);
    impl_->listen_fd = fd;
    port_ = port;
    impl_->running.store(true);
    // levylint:allow(raw-thread) service framing threads; see file header note
    impl_->acceptor = std::thread([this] { acceptor_loop(); });
    impl_->workers.reserve(opts_.workers);
    for (unsigned i = 0; i < opts_.workers; ++i) {
        // levylint:allow(raw-thread) service framing threads; see file header note
        impl_->workers.emplace_back([this] { worker_loop(); });
    }
    return port_;
}

void server::stop() noexcept {
    if (!impl_->running.exchange(false)) return;
    queue_.shutdown();
    if (impl_->listen_fd >= 0) {
        ::close(impl_->listen_fd);  // wakes the acceptor's poll
        impl_->listen_fd = -1;
    }
    if (impl_->acceptor.joinable()) impl_->acceptor.join();
    for (auto& w : impl_->workers) {
        if (w.joinable()) w.join();
    }
    impl_->workers.clear();
    // Queued-but-never-popped connections get an honest shutdown 503.
    for (int fd : queue_.drain()) {
        http_response resp = error_response(503, "server shutting down");
        resp.retry_after_seconds = opts_.retry_after_seconds;
        (void)send_all(fd, render_response(resp));
        ::close(fd);
    }
    try {
        flush_cache();
    } catch (const std::exception&) {
        // Shutdown flush is best-effort; the periodic flushes already
        // persisted everything but the most recent inserts.
    }
}

bool server::running() const noexcept { return impl_->running.load(); }

void server::flush_cache() {
    if (opts_.cache_path.empty()) return;
    const std::lock_guard<std::mutex> lock(impl_->flush_m);
    cache_.save(opts_.cache_path);
}

void server::maybe_flush_cache() {
    if (opts_.cache_path.empty()) return;
    if (cache_.dirty_inserts() >= opts_.cache_flush_every) flush_cache();
}

server::stats_snapshot server::stats() const {
    stats_snapshot s;
    s.admission = queue_.stats();
    s.queries = impl_->queries.load();
    s.plans = impl_->plans.load();
    s.exact = impl_->exact.load();
    s.interpolated = impl_->interpolated.load();
    s.degraded = impl_->degraded.load();
    s.cache_hits = impl_->cache_hits.load();
    s.bad_requests = impl_->bad_requests.load();
    s.worker_faults = impl_->worker_faults.load();
    s.head_failures = impl_->head_failures.load();
    s.cache_entries = cache_.size();
    return s;
}

void server::acceptor_loop() {
    while (impl_->running.load()) {
        pollfd pfd{};
        pfd.fd = impl_->listen_fd;
        pfd.events = POLLIN;
        const int rc = ::poll(&pfd, 1, 200);
        if (!impl_->running.load()) break;
        if (rc <= 0) continue;
        const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
        if (fd < 0) continue;
        apply_socket_timeouts(fd, opts_.limits);
        const admit_result admitted = queue_.try_admit(fd);
        if (admitted == admit_result::admitted) continue;  // a worker owns it now
        // Shed at the front door: explicit, fast, bounded.
        http_response resp = error_response(
            503, std::string("overloaded: ") + admit_result_name(admitted));
        resp.retry_after_seconds = opts_.retry_after_seconds;
        (void)send_all(fd, render_response(resp));
        ::close(fd);
    }
}

void server::worker_loop() {
    while (true) {
        const std::optional<admission_ticket> ticket = queue_.pop();
        if (!ticket.has_value()) return;  // shutdown
        process(*ticket);
        queue_.release();
    }
}

void server::process(const admission_ticket& ticket) {
    http_request req;
    const head_status hs = read_request_head(ticket.fd, opts_.limits, req);
    if (hs != head_status::ok) {
        impl_->head_failures.fetch_add(1);
        if (hs != head_status::closed) {
            const int status = hs == head_status::timeout     ? 408
                               : hs == head_status::too_large ? 431
                                                              : 400;
            (void)send_all(ticket.fd,
                           render_response(error_response(
                               status, std::string("bad request head: ") +
                                           head_status_name(hs))));
        }
        ::close(ticket.fd);
        return;
    }
    const http_response resp = handle(req, ticket.sequence);
    (void)send_all(ticket.fd, render_response(resp));
    ::close(ticket.fd);
}

http_response server::handle(const http_request& req, std::uint64_t sequence) {
    try {
        if (req.method != "GET") return error_response(400, "only GET is supported");
        if (req.path == "/healthz") {
            http_response resp;
            resp.body = "ok\n";
            return resp;
        }
        if (req.path == "/metrics") {
            http_response resp;
            resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
            resp.body = obs::prometheus_text();
            return resp;
        }
        if (req.path == "/stats") return handle_stats();
        if (req.path == "/plan") return handle_plan(req);
        if (req.path == "/query") return handle_query(req, sequence);
        return error_response(404, "no such endpoint: " + req.path);
    } catch (const sim::run_cancelled&) {
        http_response resp = error_response(503, "server shutting down");
        resp.retry_after_seconds = opts_.retry_after_seconds;
        return resp;
    } catch (const std::exception& e) {
        // A crashing handler (including an injected worker fault) answers
        // 500 and leaves the server serving — the levyfault drill's claim.
        impl_->worker_faults.fetch_add(1);
        return error_response(500, std::string("internal error: ") + e.what());
    }
}

http_response server::handle_query(const http_request& req, std::uint64_t sequence) {
    sim::fault_before_query(static_cast<std::size_t>(sequence));
    impl_->queries.fetch_add(1);

    // --- Parse + validate (any failure is a 400 naming the parameter) ----
    const auto bad = [this](const std::string& message) {
        impl_->bad_requests.fetch_add(1);
        return error_response(400, message);
    };

    double alpha = 0.0;
    std::int64_t ell = 0;
    const std::string* p = req.param("alpha");
    if (p == nullptr || !parse_double_param(*p, alpha)) {
        return bad("query needs alpha=<float>");
    }
    p = req.param("ell");
    if (p == nullptr || !parse_i64_param(*p, ell)) return bad("query needs ell=<int>");
    if (!(alpha > 1.0)) return bad("alpha must be > 1");
    if (ell < 2) return bad("ell must be >= 2");

    std::uint64_t k = 1;
    if ((p = req.param("k")) != nullptr && !parse_u64_param(*p, k)) {
        return bad("k must be a non-negative integer");
    }
    if (k < 1) return bad("k must be >= 1");

    // Budget defaults to the paper's Thm 1.5 prescription for (k, ℓ).
    std::uint64_t budget = static_cast<std::uint64_t>(
        theory::optimal_parallel_budget(static_cast<double>(k), static_cast<double>(ell)));
    if ((p = req.param("budget")) != nullptr && !parse_u64_param(*p, budget)) {
        return bad("budget must be a non-negative integer");
    }
    if (budget < 1) return bad("budget must be >= 1");

    std::uint64_t trials = opts_.default_trials;
    if ((p = req.param("trials")) != nullptr && !parse_u64_param(*p, trials)) {
        return bad("trials must be a non-negative integer");
    }
    if (trials < 1) return bad("trials must be >= 1");
    if (trials > opts_.max_trials) return bad("trials exceeds the server's max_trials");

    std::uint64_t seed = opts_.seed;
    if ((p = req.param("seed")) != nullptr && !parse_u64_param(*p, seed)) {
        return bad("seed must be a non-negative integer");
    }

    std::uint64_t cap = kNoCap;
    if ((p = req.param("cap")) != nullptr && !parse_u64_param(*p, cap)) {
        return bad("cap must be a non-negative integer");
    }
    if (cap == 0) return bad("cap must be >= 1");

    std::uint64_t deadline_ms = opts_.default_deadline_ms;
    if ((p = req.param("deadline_ms")) != nullptr && !parse_u64_param(*p, deadline_ms)) {
        return bad("deadline_ms must be a non-negative integer");
    }
    if (deadline_ms < 1) return bad("deadline_ms must be >= 1");
    if (deadline_ms > opts_.max_deadline_ms) deadline_ms = opts_.max_deadline_ms;

    // The deterministic deadline currency: a wall-clock allowance converts
    // once into a total step allowance; everything after this line is a
    // pure function of numbers, never of the clock.
    const std::uint64_t deadline_steps = deadline_ms * opts_.steps_per_ms;

    obs::json query = obs::json::object();
    query.set("alpha", alpha);
    query.set("ell", ell);
    query.set("k", k);
    query.set("budget", budget);
    query.set("trials", trials);
    query.set("seed", hex_u64(seed));
    query.set("deadline_ms", deadline_ms);
    query.set("deadline_steps", deadline_steps);

    obs::json doc = obs::json::object();
    doc.set("query", std::move(query));

    sim::parallel_walk_config cfg;
    cfg.k = static_cast<std::size_t>(k);
    cfg.strategy = fixed_exponent(alpha);
    cfg.ell = ell;
    cfg.budget = budget;
    cfg.cap = cap;

    sim::mc_options mc;
    mc.trials = static_cast<std::size_t>(trials);
    mc.threads = 1;  // queries are the unit of parallelism (inline MC)
    mc.seed = seed;

    // Worst-case cost model: every trial runs its full budget. Compare by
    // division so trials * budget can never overflow.
    const bool fits = trials <= deadline_steps / budget;

    if (fits) {
        // --- Rung 1: the full Monte-Carlo batch fits the allowance -------
        const sim::hitting_time_sample sample = sim::parallel_hitting_times(cfg, mc);
        const stats::proportion prop = stats::wilson_interval(sample.hits, trials);
        doc.set("probability", prop.estimate());
        doc.set("ci_low", prop.lo);
        doc.set("ci_high", prop.hi);
        doc.set("trials_run", trials);
        doc.set("quality", "exact");
        doc.set("cached", false);
        doc.set("censored", false);
        cache_.insert(cache_.quantize(alpha, ell, k, budget),
                      cache_value{prop.estimate(), prop.lo, prop.hi, trials});
        impl_->exact.fetch_add(1);
        maybe_flush_cache();
        return json_response(200, doc);
    }

    // --- Rung 2: exact grid-cell hit in the result cache -----------------
    const cache_key key = cache_.quantize(alpha, ell, k, budget);
    if (const std::optional<cache_value> hit = cache_.find(key); hit.has_value()) {
        doc.set("probability", hit->probability);
        doc.set("ci_low", hit->ci_low);
        doc.set("ci_high", hit->ci_high);
        doc.set("trials_run", hit->trials);
        doc.set("quality", "exact");
        doc.set("cached", true);
        doc.set("censored", false);
        impl_->exact.fetch_add(1);
        impl_->cache_hits.fetch_add(1);
        return json_response(200, doc);
    }

    // --- Rung 3: bilinear interpolation over cached grid points ----------
    if (const std::optional<result_cache::interpolation> interp =
            cache_.interpolate(alpha, ell, k, budget);
        interp.has_value()) {
        doc.set("probability", interp->probability);
        doc.set("trials_run", 0);
        doc.set("quality", "interpolated");
        doc.set("cached", true);
        doc.set("censored", false);
        doc.set("grid_points", interp->grid_points);
        impl_->interpolated.fetch_add(1);
        impl_->cache_hits.fetch_add(1);
        return json_response(200, doc);
    }

    // --- Rung 4: degraded partial run under the step watchdog ------------
    // Spread the allowance over as many trials as it can carry (≥ 1 step
    // each); the engine's max_steps watchdog censors trials at the cap.
    const std::uint64_t trials_run = std::min<std::uint64_t>(trials, deadline_steps);
    const std::uint64_t max_steps =
        std::min<std::uint64_t>(budget, std::max<std::uint64_t>(deadline_steps / trials_run, 1));
    cfg.max_steps = max_steps;
    mc.trials = static_cast<std::size_t>(trials_run);
    const sim::hitting_time_sample sample = sim::parallel_hitting_times(cfg, mc);
    const stats::proportion prop = stats::wilson_interval(sample.hits, trials_run);
    doc.set("probability", prop.estimate());
    doc.set("ci_low", prop.lo);
    doc.set("ci_high", prop.hi);
    doc.set("trials_run", trials_run);
    doc.set("quality", "degraded");
    doc.set("cached", false);
    doc.set("censored", sample.censored > 0);
    doc.set("censored_trials", sample.censored);
    doc.set("max_steps", max_steps);
    impl_->degraded.fetch_add(1);
    return json_response(200, doc);
}

http_response server::handle_plan(const http_request& req) {
    impl_->plans.fetch_add(1);
    const auto bad = [this](const std::string& message) {
        impl_->bad_requests.fetch_add(1);
        return error_response(400, message);
    };
    double k = 0.0;
    double ell = 0.0;
    const std::string* p = req.param("k");
    if (p == nullptr || !parse_double_param(*p, k)) return bad("plan needs k=<float>");
    p = req.param("ell");
    if (p == nullptr || !parse_double_param(*p, ell)) return bad("plan needs ell=<float>");
    if (k < 1.0) return bad("k must be >= 1");
    if (ell < 2.0) return bad("ell must be >= 2");

    const theory::parallel_plan plan = theory::plan_parallel_search(k, ell);
    obs::json doc = obs::json::object();
    doc.set("k", k);
    doc.set("ell", ell);
    doc.set("alpha_star", plan.alpha_star);
    doc.set("alpha_star_adjusted", plan.alpha_star_adjusted);
    doc.set("budget", plan.budget);
    doc.set("lower_bound", plan.lower_bound);
    return json_response(200, doc);
}

http_response server::handle_stats() {
    const stats_snapshot s = stats();
    obs::json admission = obs::json::object();
    admission.set("admitted", s.admission.admitted);
    admission.set("shed_queue_full", s.admission.shed_queue_full);
    admission.set("shed_bytes", s.admission.shed_bytes);
    admission.set("shed_shutdown", s.admission.shed_shutdown);
    admission.set("queue_depth", queue_.depth());
    admission.set("reserved_bytes", queue_.reserved_bytes());

    obs::json doc = obs::json::object();
    doc.set("admission", std::move(admission));
    doc.set("queries", s.queries);
    doc.set("plans", s.plans);
    doc.set("exact", s.exact);
    doc.set("interpolated", s.interpolated);
    doc.set("degraded", s.degraded);
    doc.set("cache_hits", s.cache_hits);
    doc.set("bad_requests", s.bad_requests);
    doc.set("worker_faults", s.worker_faults);
    doc.set("head_failures", s.head_failures);
    doc.set("cache_entries", s.cache_entries);
    return json_response(200, doc);
}

}  // namespace levy::serve

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS
