#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace levy::serve {

/// --- Quantized LRU result cache with crash-safe persistence ---------------
///
/// Keyed on a quantized (α, ℓ, k, budget): α snaps to a uniform grid,
/// budget to a geometric (log₂) grid, ℓ and k stay exact — repeated traffic
/// within one cell is O(lookup), and a miss can often be answered by
/// bilinear interpolation over the (α, budget) grid cell that surrounds the
/// query (the two axes the hitting probability varies smoothly along;
/// distinct (ℓ, k) are never mixed).
///
/// Persistence rides the PR 3 crash-safety layer: the whole cache is
/// serialized with a CRC-checked header and a CRC per fixed-size record,
/// written via sim::atomic_write_file. Loading validates every record
/// independently — a bit-flipped or torn record drops *itself*, never its
/// neighbors, so a kill -9 between flushes costs at most the unflushed
/// inserts and can never poison surviving answers.
///
/// Thread safety: all public members lock; the cache is shared between
/// server workers.

/// Quantized key. `alpha_q` = round(α / alpha_step); `budget_q` =
/// round(log2(budget) * steps_per_octave) (budget ≥ 1).
struct cache_key {
    std::int32_t alpha_q = 0;
    std::int64_t ell = 0;
    std::uint64_t k = 0;
    std::int32_t budget_q = 0;

    friend bool operator<(const cache_key& a, const cache_key& b) noexcept {
        if (a.ell != b.ell) return a.ell < b.ell;
        if (a.k != b.k) return a.k < b.k;
        if (a.alpha_q != b.alpha_q) return a.alpha_q < b.alpha_q;
        return a.budget_q < b.budget_q;
    }
    friend bool operator==(const cache_key& a, const cache_key& b) noexcept {
        return a.ell == b.ell && a.k == b.k && a.alpha_q == b.alpha_q &&
               a.budget_q == b.budget_q;
    }
};

/// A cached exact answer: P(τ^k ≤ budget) estimated from `trials` trials.
struct cache_value {
    double probability = 0.0;
    double ci_low = 0.0;
    double ci_high = 1.0;
    std::uint64_t trials = 0;
};

struct cache_options {
    std::size_t capacity = 4096;   ///< max entries (≥ 1); LRU eviction
    double alpha_step = 1.0 / 32;  ///< α grid pitch
    int budget_steps_per_octave = 8;
};

class result_cache {
public:
    explicit result_cache(const cache_options& opts);

    [[nodiscard]] const cache_options& options() const noexcept { return opts_; }

    /// Snap raw query coordinates onto the grid.
    [[nodiscard]] cache_key quantize(double alpha, std::int64_t ell, std::uint64_t k,
                                     std::uint64_t budget) const noexcept;
    /// Grid-cell centers, for interpolation weights.
    [[nodiscard]] double alpha_of(std::int32_t alpha_q) const noexcept;
    [[nodiscard]] double log2_budget_of(std::int32_t budget_q) const noexcept;

    /// Exact-cell lookup; refreshes LRU order on hit.
    [[nodiscard]] std::optional<cache_value> find(const cache_key& key);

    /// Bilinear interpolation over the (α, log₂ budget) cell around the
    /// query, for the same exact (ℓ, k). Uses the 4 surrounding grid points
    /// when all are cached, degrades to linear (2 points spanning one axis,
    /// at either coordinate of the other — nearest side first) or to the
    /// nearest single cached corner. Returns nullopt when no surrounding
    /// point is cached. The result is always clamped to [0, 1].
    struct interpolation {
        double probability = 0.0;
        int grid_points = 0;  ///< 4 = bilinear, 2 = linear, 1 = exact cell
    };
    [[nodiscard]] std::optional<interpolation> interpolate(double alpha, std::int64_t ell,
                                                           std::uint64_t k,
                                                           std::uint64_t budget);

    /// Insert or refresh; evicts the least-recently-used entry past
    /// capacity. Probability and interval are clamped to [0, 1] on the way
    /// in, so no later read can leave the unit interval.
    void insert(const cache_key& key, const cache_value& value);

    [[nodiscard]] std::size_t size() const;

    /// --- Persistence ------------------------------------------------------

    /// Serialize every entry (MRU first, so a truncated tail loses the
    /// coldest entries) and write crash-safely to `path`. Calls the
    /// sim::fault_on_cache_flush hook with a monotonically increasing flush
    /// ordinal — the levyserve crash drills _Exit there, *between* flushes
    /// reaching disk. Throws std::runtime_error on I/O failure.
    void save(const std::string& path);

    /// Load `path`, replacing the current contents with every record whose
    /// CRC validates (bad records are skipped one by one; a missing file or
    /// foreign/corrupt header loads nothing). Returns entries kept.
    std::size_t load(const std::string& path);

    /// Inserts since the last save (the server's flush-cadence trigger).
    [[nodiscard]] std::size_t dirty_inserts() const;

private:
    using lru_list = std::list<std::pair<cache_key, cache_value>>;

    void touch_locked(std::map<cache_key, lru_list::iterator>::iterator it);
    [[nodiscard]] const cache_value* peek_locked(const cache_key& key);

    cache_options opts_;
    mutable std::mutex m_;
    lru_list lru_;  ///< front = most recently used
    std::map<cache_key, lru_list::iterator> index_;
    std::size_t dirty_ = 0;
    std::size_t flush_ordinal_ = 0;
};

}  // namespace levy::serve
