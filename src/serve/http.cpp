#include "src/serve/http.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if LEVY_SERVE_HAVE_POSIX_SOCKETS
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace levy::serve {
namespace {

int hex_digit(char c) noexcept {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

/// Split `text` on `sep`, appending each piece to `out` (empty pieces kept).
void split_into(const std::string& text, char sep, std::vector<std::string>& out) {
    std::size_t start = 0;
    for (;;) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(text.substr(start));
            return;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

}  // namespace

const std::string* http_request::param(const std::string& key) const noexcept {
    for (const auto& [k, v] : query) {
        if (k == key) return &v;
    }
    return nullptr;
}

const char* head_status_name(head_status s) noexcept {
    switch (s) {
        case head_status::ok: return "ok";
        case head_status::timeout: return "timeout";
        case head_status::too_large: return "too_large";
        case head_status::malformed: return "malformed";
        case head_status::closed: return "closed";
    }
    return "unknown";
}

std::string url_decode(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (std::size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '%' && i + 2 < text.size()) {
            const int hi = hex_digit(text[i + 1]);
            const int lo = hex_digit(text[i + 2]);
            if (hi >= 0 && lo >= 0) {
                out += static_cast<char>(hi * 16 + lo);
                i += 2;
                continue;
            }
        }
        out += text[i];
    }
    return out;
}

bool parse_request_line(const std::string& line, http_request& out) {
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string::npos || sp1 == 0) return false;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
    if (line.find(' ', sp2 + 1) != std::string::npos) return false;
    out.method = line.substr(0, sp1);
    out.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t qmark = out.target.find('?');
    out.path = url_decode(out.target.substr(0, qmark));
    out.query.clear();
    if (qmark != std::string::npos) {
        std::vector<std::string> pairs;
        split_into(out.target.substr(qmark + 1), '&', pairs);
        for (const std::string& pair : pairs) {
            if (pair.empty()) continue;
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos) {
                out.query.emplace_back(url_decode(pair), std::string{});
            } else {
                out.query.emplace_back(url_decode(pair.substr(0, eq)),
                                       url_decode(pair.substr(eq + 1)));
            }
        }
    }
    return !out.path.empty() && out.path[0] == '/';
}

const char* status_text(int status) noexcept {
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 408: return "Request Timeout";
        case 431: return "Request Header Fields Too Large";
        case 500: return "Internal Server Error";
        case 503: return "Service Unavailable";
        default: return "Error";
    }
}

std::string render_response(const http_response& resp) {
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      status_text(resp.status) + "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
    if (resp.retry_after_seconds >= 0) {
        out += "Retry-After: " + std::to_string(resp.retry_after_seconds) + "\r\n";
    }
    for (const auto& [name, value] : resp.headers) {
        out += name + ": " + value + "\r\n";
    }
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

namespace {

timeval to_timeval(double seconds) noexcept {
    timeval tv{};
    if (seconds < 0.0) seconds = 0.0;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;  // 0 means "block forever"
    return tv;
}

void set_recv_timeout(int fd, double seconds) noexcept {
    const timeval tv = to_timeval(seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

void apply_socket_timeouts(int fd, const http_limits& limits) noexcept {
    const timeval tv = to_timeval(limits.io_timeout_seconds);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

head_status read_request_head(int fd, const http_limits& limits, http_request& out) {
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    std::string head;
    char buf[1024];
    std::size_t terminator = std::string::npos;
    for (;;) {
        terminator = head.find("\r\n\r\n");
        if (terminator != std::string::npos) break;
        if (head.size() >= limits.max_head_bytes) return head_status::too_large;
        // The total deadline is what defeats a drip-feed client: each tiny
        // recv would reset a per-recv timer, but not this clock.
        const double elapsed = std::chrono::duration<double>(clock::now() - start).count();
        const double remaining = limits.head_deadline_seconds - elapsed;
        if (remaining <= 0.0) return head_status::timeout;
        // Bound every recv ourselves rather than trusting the caller to have
        // applied the socket timeouts — a blocking fd would otherwise turn a
        // silent client into an unbounded wait.
        set_recv_timeout(fd, std::min(remaining, limits.io_timeout_seconds));
        const std::size_t room = limits.max_head_bytes - head.size();
        const ssize_t n = ::recv(fd, buf, std::min(room, sizeof(buf)), 0);
        if (n == 0) return head_status::closed;
        if (n < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
                continue;  // per-recv timeout: loop re-checks the deadline
            }
            return head_status::closed;
        }
        head.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = head.find("\r\n");
    if (line_end == std::string::npos || !parse_request_line(head.substr(0, line_end), out)) {
        return head_status::malformed;
    }
    return head_status::ok;
}

bool send_all(int fd, const std::string& bytes) noexcept {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return false;  // peer went away: responses are best-effort
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

std::pair<int, unsigned short> listen_on(unsigned short port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("serve: socket() failed");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
        ::close(fd);
        throw std::runtime_error("serve: cannot bind/listen on port " + std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
        ::close(fd);
        throw std::runtime_error("serve: getsockname failed");
    }
    return {fd, ntohs(addr.sin_port)};
}

int connect_client(unsigned short port, double timeout_seconds) noexcept {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    http_limits limits;
    limits.io_timeout_seconds = timeout_seconds;
    apply_socket_timeouts(fd, limits);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

namespace {

/// Strict full-field status parse: exactly three digits followed by a space
/// (or CR for a phrase-less line). Returns 0 for anything else — a garbage
/// status line must read as "no status", never as a fabricated code the way
/// atoi's silent prefix parse did.
int parse_status_field(const std::string& response) noexcept {
    if (response.size() < 12) return 0;
    int status = 0;
    for (std::size_t i = 9; i < 12; ++i) {
        const char c = response[i];
        if (c < '0' || c > '9') return 0;
        status = status * 10 + (c - '0');
    }
    const char delim = response[12];
    if (delim != ' ' && delim != '\r') return 0;
    return status >= 100 && status <= 599 ? status : 0;
}

}  // namespace

std::optional<std::string> http_get(unsigned short port, const std::string& path,
                                    double timeout_seconds, int* status_out,
                                    std::size_t max_response_bytes) {
    if (status_out != nullptr) *status_out = 0;
    using clock = std::chrono::steady_clock;
    const auto start = clock::now();
    const int fd = connect_client(port, timeout_seconds);
    if (fd < 0) return std::nullopt;
    const std::string request =
        "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nConnection: close\r\n\r\n";
    if (!send_all(fd, request)) {
        ::close(fd);
        return std::nullopt;
    }
    std::string response;
    char buf[4096];
    bool complete = false;
    for (;;) {
        // Same total-deadline rule as read_request_head, mirrored client
        // side: each drip of bytes resets a per-recv timer but not this
        // clock, so a slow-loris *server* cannot pin the caller.
        const double elapsed = std::chrono::duration<double>(clock::now() - start).count();
        const double remaining = timeout_seconds - elapsed;
        if (remaining <= 0.0) break;  // deadline: treat as torn
        set_recv_timeout(fd, remaining);
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n == 0) {
            complete = true;  // orderly close: the response is whole
            break;
        }
        if (n < 0) {
            if (errno == EINTR) continue;
            break;  // timeout or error: treat as torn
        }
        if (response.size() + static_cast<std::size_t>(n) > max_response_bytes) {
            break;  // oversized response: bounded buffering, like the server
        }
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (!complete || response.compare(0, 9, "HTTP/1.1 ") != 0) {
        return std::nullopt;
    }
    const int status = parse_status_field(response);
    if (status == 0) return std::nullopt;
    if (status_out != nullptr) *status_out = status;
    const std::size_t body = response.find("\r\n\r\n");
    if (body == std::string::npos) return std::nullopt;
    return response.substr(body + 4);
}

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS

}  // namespace levy::serve
