#pragma once

#include <cstdint>

#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy::baselines {

/// Simple (nearest-neighbor) random walk on Z²: each step moves to one of
/// the four neighbors uniformly. The α → ∞ limit of the Lévy walk (§2) and
/// the classical diffusive baseline of the ANTS comparison (E9).
class simple_random_walk {
public:
    explicit simple_random_walk(rng stream, point start = origin)
        : stream_(stream), pos_(start) {}

    point step() {
        static constexpr point kMoves[4] = {{1, 0}, {-1, 0}, {0, 1}, {0, -1}};
        pos_ += kMoves[stream_.below(4)];
        ++steps_;
        return pos_;
    }

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

private:
    rng stream_;
    point pos_;
    std::uint64_t steps_ = 0;
};

}  // namespace levy::baselines
