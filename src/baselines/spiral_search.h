#pragma once

#include <cstdint>

#include "src/grid/point.h"

namespace levy::baselines {

/// Deterministic square spiral around a center: visits every node of Z²
/// exactly once, covering the box Q_r(center) within (2r+1)² − 1 steps.
/// This is the "spiral movement" primitive of the Feinerman–Korman ANTS
/// algorithms (§2 of the paper) and the within-budget-optimal single-agent
/// searcher (a single agent cannot beat Θ(ℓ²) — the spiral achieves it).
class spiral_search {
public:
    explicit spiral_search(point center = origin) noexcept : pos_(center) {}

    /// Move to the next node of the spiral.
    point step() noexcept;

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

private:
    point pos_;
    std::uint64_t steps_ = 0;
    // Leg automaton: heading cycles E, N, W, S; leg length grows by one
    // every second turn (E1 N1 W2 S2 E3 N3 …).
    int heading_ = 0;
    std::int64_t leg_length_ = 1;
    std::int64_t leg_remaining_ = 1;
    bool grow_on_turn_ = false;
};

}  // namespace levy::baselines
