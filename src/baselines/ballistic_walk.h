#pragma once

#include <cstdint>
#include <optional>

#include "src/grid/direct_path.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy::baselines {

/// Straight walk along a uniformly random direction: the behavior the paper
/// ascribes to the ballistic regime α ∈ (1, 2] ("similar to a straight walk
/// along a random direction", §1.2.1), and the α → 1 extreme of the ANTS
/// comparison. The direction is drawn once; the walk then follows direct
/// paths toward an ever-receding waypoint on that ray.
class ballistic_walk {
public:
    explicit ballistic_walk(rng stream, point start = origin);

    point step();

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

    /// The chosen direction in radians (for diagnostics).
    [[nodiscard]] double direction() const noexcept { return theta_; }

private:
    void arm_segment();

    rng stream_;
    point pos_;
    double theta_;
    std::uint64_t steps_ = 0;
    std::optional<direct_path_stepper> path_;
};

}  // namespace levy::baselines
