#include "src/baselines/ballistic_walk.h"

#include <cmath>
#include <numbers>

#include "src/core/jump_process.h"

namespace levy::baselines {

static_assert(jump_process<ballistic_walk>);

namespace {
// Each armed segment heads this far; long enough that re-arming is rare but
// short enough that the waypoint arithmetic stays exact in doubles.
constexpr double kSegmentReach = 1e12;
}  // namespace

ballistic_walk::ballistic_walk(rng stream, point start) : stream_(stream), pos_(start) {
    theta_ = stream_.uniform(0.0, 2.0 * std::numbers::pi);
    arm_segment();
}

void ballistic_walk::arm_segment() {
    const point waypoint{pos_.x + static_cast<std::int64_t>(std::llround(kSegmentReach * std::cos(theta_))),
                         pos_.y + static_cast<std::int64_t>(std::llround(kSegmentReach * std::sin(theta_)))};
    path_.emplace(pos_, waypoint);
}

point ballistic_walk::step() {
    if (path_->done()) arm_segment();
    // levylint:allow(substream-discipline): scalar-only baseline (E9) with
    // no batch twin to replay against; its private stream_ feeds nothing
    // but this walk, so per-phase substreams would buy nothing.
    pos_ = path_->advance(stream_);
    ++steps_;
    return pos_;
}

}  // namespace levy::baselines
