#include "src/baselines/fk_ants.h"

#include <cmath>
#include <stdexcept>

#include "src/core/jump_process.h"
#include "src/grid/ball.h"

namespace levy::baselines {

static_assert(jump_process<fk_ants_searcher>);

fk_ants_searcher::fk_ants_searcher(std::size_t k, rng stream, point start, double spiral_factor,
                                   std::int64_t initial_radius)
    : k_(k), spiral_factor_(spiral_factor), stream_(stream), home_(start), pos_(start) {
    if (k == 0) throw std::invalid_argument("fk_ants_searcher: k must be >= 1");
    if (!(spiral_factor > 0.0)) {
        throw std::invalid_argument("fk_ants_searcher: spiral_factor must be positive");
    }
    if (initial_radius < 2) {
        throw std::invalid_argument("fk_ants_searcher: initial_radius must be >= 2");
    }
    radius_ = initial_radius / 2;  // begin_epoch doubles it
    begin_epoch();
}

void fk_ants_searcher::begin_epoch() {
    radius_ *= 2;
    const point v = sample_ball(home_, radius_, stream_);
    phase_ = phase::outbound;
    path_.emplace(pos_, v);
    // Each of the k agents spirals long enough that together they tile B_r:
    // c·r²/k steps, but at least 4r so a lone agent still makes progress.
    const double share = spiral_factor_ * static_cast<double>(radius_) *
                         static_cast<double>(radius_) / static_cast<double>(k_);
    spiral_remaining_ = static_cast<std::uint64_t>(
        std::max(share, 4.0 * static_cast<double>(radius_)));
}

point fk_ants_searcher::step() {
    ++steps_;
    switch (phase_) {
        case phase::outbound:
            if (!path_->done()) {
                // levylint:allow(conditional-main-draw, substream-discipline):
                // scalar-only FK-ants baseline (E9); stream_ is private to
                // this searcher and never replayed by a batch twin.
                pos_ = path_->advance(stream_);
                if (path_->done()) {
                    phase_ = phase::spiral;
                    spiral_.emplace(pos_);
                }
                return pos_;
            }
            // Zero-length outbound path (v == current node): fall through to
            // spiralling immediately; this step performs the first spiral move.
            phase_ = phase::spiral;
            spiral_.emplace(pos_);
            [[fallthrough]];
        case phase::spiral:
            if (spiral_remaining_ > 0) {
                --spiral_remaining_;
                pos_ = spiral_->step();
                if (spiral_remaining_ == 0) {
                    phase_ = phase::inbound;
                    path_.emplace(pos_, home_);
                }
                return pos_;
            }
            phase_ = phase::inbound;
            path_.emplace(pos_, home_);
            [[fallthrough]];
        case phase::inbound:
            if (!path_->done()) {
                // levylint:allow(conditional-main-draw, substream-discipline):
                // same as outbound — scalar-only baseline, private stream.
                pos_ = path_->advance(stream_);
            }
            if (path_->done()) begin_epoch();
            return pos_;
    }
    return pos_;  // unreachable
}

}  // namespace levy::baselines
