#include "src/baselines/spiral_search.h"

namespace levy::baselines {

point spiral_search::step() noexcept {
    static constexpr point kDirs[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};  // E N W S
    pos_ += kDirs[heading_];
    ++steps_;
    if (--leg_remaining_ == 0) {
        heading_ = (heading_ + 1) & 3;
        if (grow_on_turn_) ++leg_length_;
        grow_on_turn_ = !grow_on_turn_;
        leg_remaining_ = leg_length_;
    }
    return pos_;
}

}  // namespace levy::baselines
