#pragma once

#include <cstdint>
#include <optional>

#include "src/baselines/spiral_search.h"
#include "src/grid/direct_path.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy::baselines {

/// A Feinerman–Korman-style ANTS searcher (paper §2): the optimal-strategy
/// shape from [14], which — unlike the Lévy strategies — *knows k*.
/// Each agent repeats, with geometrically growing radius r = 2, 4, 8, …:
///
///   1. walk a direct path to a uniform node v of B_r(origin);
///   2. spiral around v for ~ c·r²/k steps (the k agents jointly tile B_r);
///   3. walk a direct path back to the origin.
///
/// With k agents this finds a target at distance ℓ in O(ℓ²/k + ℓ) expected
/// parallel time — the universal lower bound — so it serves as the oracle
/// comparator for E9. One `step()` is one lattice move, so targets are
/// detected on every intermediate node, like the Lévy walk.
class fk_ants_searcher {
public:
    /// `k` is the fleet size the algorithm is tuned for (it determines the
    /// per-agent spiral share); `spiral_factor` is the constant c above.
    /// `initial_radius` models the b-bit *advice* of [14]: an oracle hint of
    /// the distance scale lets the agent skip the useless small epochs and
    /// start at radius ~ℓ (advice = exact scale) instead of 2 (no advice).
    /// Epochs still double from there, so a low hint only costs the skipped
    /// warm-up and an overshooting hint is never fatal.
    fk_ants_searcher(std::size_t k, rng stream, point start = origin,
                     double spiral_factor = 2.0, std::int64_t initial_radius = 2);

    point step();

    [[nodiscard]] point position() const noexcept { return pos_; }
    [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }

    /// Current epoch radius (diagnostics).
    [[nodiscard]] std::int64_t radius() const noexcept { return radius_; }

private:
    enum class phase { outbound, spiral, inbound };

    void begin_epoch();

    std::size_t k_;
    double spiral_factor_;
    rng stream_;
    point home_;
    point pos_;
    std::uint64_t steps_ = 0;
    std::int64_t radius_ = 1;
    phase phase_ = phase::outbound;
    std::optional<direct_path_stepper> path_;
    std::optional<spiral_search> spiral_;
    std::uint64_t spiral_remaining_ = 0;
};

}  // namespace levy::baselines
