#include "src/baselines/simple_random_walk.h"

#include "src/core/jump_process.h"

namespace levy::baselines {

static_assert(jump_process<simple_random_walk>);

}  // namespace levy::baselines
