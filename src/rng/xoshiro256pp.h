#pragma once

#include <array>
#include <cstdint>

namespace levy {

/// xoshiro256++ 1.0 (Blackman & Vigna 2019).
///
/// The library's workhorse generator: 256 bits of state, period 2^256 - 1,
/// excellent statistical quality, and a `jump()` function that advances the
/// sequence by 2^128 steps for cheap non-overlapping substreams.
/// Satisfies std::uniform_random_bit_generator.
class xoshiro256pp {
public:
    using result_type = std::uint64_t;

    /// Seed the 256-bit state by expanding `seed` with SplitMix64, as the
    /// authors recommend. The all-zero state is unreachable this way.
    explicit xoshiro256pp(std::uint64_t seed = 0x9b97f4a7c15f39ccULL) noexcept;

    /// Construct from a full 256-bit state (must not be all zero).
    explicit xoshiro256pp(const std::array<std::uint64_t, 4>& state) noexcept;

    std::uint64_t operator()() noexcept {
        const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Advance by 2^128 outputs; 2^128 such substreams never overlap.
    void jump() noexcept;

    [[nodiscard]] const std::array<std::uint64_t, 4>& state() const noexcept { return s_; }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

    friend bool operator==(const xoshiro256pp& a, const xoshiro256pp& b) noexcept {
        return a.s_ == b.s_;
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> s_;
};

}  // namespace levy
