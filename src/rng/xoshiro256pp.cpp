#include "src/rng/xoshiro256pp.h"

#include "src/rng/splitmix64.h"

namespace levy {

xoshiro256pp::xoshiro256pp(std::uint64_t seed) noexcept {
    splitmix64 sm(seed);
    for (auto& word : s_) word = sm();
}

xoshiro256pp::xoshiro256pp(const std::array<std::uint64_t, 4>& state) noexcept : s_(state) {}

void xoshiro256pp::jump() noexcept {
    static constexpr std::uint64_t kJump[] = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                              0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t word : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (word & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            (*this)();
        }
    }
    s_ = {s0, s1, s2, s3};
}

}  // namespace levy
