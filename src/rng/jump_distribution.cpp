#include "src/rng/jump_distribution.h"

#include <cmath>
#include <stdexcept>

#include "src/rng/zeta.h"

namespace levy {

jump_distribution::jump_distribution(double alpha) : alpha_(alpha), zipf_(alpha) {
    // zipf_sampler already validated alpha > 1.
    c_ = 1.0 / (2.0 * riemann_zeta(alpha));
}

jump_distribution::jump_distribution(double alpha, std::uint64_t cap)
    : jump_distribution(alpha) {
    // cap == 1 keeps the dedicated shortcut in zipf_sampler::sample_capped
    // (returns 1 without drawing); an alias table there would add a wasted
    // bounded-integer draw per phase.
    if (cap != kNoCap && cap >= 2 && cap <= kAliasCapThreshold) {
        alias_.emplace(alpha, cap);
    }
}

double jump_distribution::pmf(std::uint64_t i) const {
    if (i == 0) return 0.5;
    return c_ * std::pow(static_cast<double>(i), -alpha_);
}

double jump_distribution::tail(std::uint64_t i) const {
    if (i == 0) return 1.0;
    return c_ * zeta_tail(i, alpha_);
}

double jump_distribution::mean() const {
    if (alpha_ <= 2.0) return std::numeric_limits<double>::infinity();
    // Σ_{i≥1} i · c/i^α = c · ζ(α-1).
    return c_ * riemann_zeta(alpha_ - 1.0);
}

double jump_distribution::mean_capped(std::uint64_t cap) const {
    if (cap == kNoCap) return mean();
    if (cap == 0) return 0.0;
    // E[d · 1{d ≤ cap}] / P(d ≤ cap), with
    //   E[d · 1{d ≤ cap}] = c · H(cap, α-1)   and   P(d ≤ cap) = 1 - tail(cap+1).
    const double truncated_first_moment = c_ * harmonic(cap, alpha_ - 1.0);
    const double mass = 1.0 - tail(cap + 1);
    return truncated_first_moment / mass;
}

double jump_distribution::variance() const {
    if (alpha_ <= 3.0) return std::numeric_limits<double>::infinity();
    const double m = mean();
    const double second = c_ * riemann_zeta(alpha_ - 2.0);
    return second - m * m;
}

}  // namespace levy
