#include "src/rng/rng_stream.h"

namespace levy {

std::uint64_t rng::below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless unbiased bounded generation.
    std::uint64_t x = engine_();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = engine_();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace levy
