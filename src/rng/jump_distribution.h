#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "src/rng/rng_stream.h"
#include "src/rng/zipf.h"

namespace levy {

/// No jump-length cap (the default for uncapped processes).
inline constexpr std::uint64_t kNoCap = std::numeric_limits<std::uint64_t>::max();

/// The paper's jump-length law (Eq. 3):
///
///     P(d = 0) = 1/2,        P(d = i) = c_α / i^α   for i ≥ 1,
///
/// with normalizer c_α = 1 / (2 ζ(α)). Conditioned on d ≥ 1 this is exactly
/// Zipf(α), so sampling mixes a fair coin with the exact Devroye sampler.
///
/// Also exposes the closed-form quantities the analysis uses:
/// the tail P(d ≥ i) = Θ(1/i^{α-1}) (Eq. 4), the mean (finite iff α > 2),
/// and capped sampling P(· | d ≤ cap) as needed by the capped Lévy flight
/// of Lemma 4.5.
class jump_distribution {
public:
    /// α must exceed 1 (Remark 3.5 allows any α ≥ 1 + ε); throws otherwise.
    explicit jump_distribution(double alpha);

    /// As above, but *prepared* for drawing conditioned on d ≤ cap: for
    /// 2 ≤ cap ≤ kAliasCapThreshold an O(cap) Walker alias table is built
    /// once and `sample_capped(g, cap)` then draws in O(1) instead of
    /// running Devroye rejection + inverse-CDF fallback. The selection is a
    /// pure function of (α, cap), so any two distributions constructed with
    /// the same pair consume identical randomness — the scalar walk and the
    /// batched engine rely on this for bit-exact parity.
    jump_distribution(double alpha, std::uint64_t cap);

    /// Caps up to this build the alias fast path (above it, table setup
    /// would dominate short walks; the rejection sampler stays O(1) memory).
    static constexpr std::uint64_t kAliasCapThreshold = 4096;

    /// Draw a jump length.
    [[nodiscard]] std::uint64_t sample(rng& g) const {
        return g.coin() ? 0 : zipf_(g);
    }

    /// Draw conditioned on d ≤ cap. Uses the alias table iff this
    /// distribution was prepared for exactly this cap (see the capped
    /// constructor); the RNG draw pattern differs between the two paths, so
    /// replayers must construct their distribution the same way.
    [[nodiscard]] std::uint64_t sample_capped(rng& g, std::uint64_t cap) const {
        if (cap == kNoCap) return sample(g);
        if (g.coin()) return 0;
        if (alias_ && alias_->cap() == cap) return (*alias_)(g);
        return zipf_.sample_capped(g, cap);
    }

    /// True when `sample_capped(g, cap)` would take the alias fast path.
    [[nodiscard]] bool uses_alias(std::uint64_t cap) const noexcept {
        return alias_.has_value() && alias_->cap() == cap;
    }

    /// P(d = i).
    [[nodiscard]] double pmf(std::uint64_t i) const;

    /// Tail P(d ≥ i). Equals 1 for i = 0.
    [[nodiscard]] double tail(std::uint64_t i) const;

    /// E[d]; +infinity when α ≤ 2.
    [[nodiscard]] double mean() const;

    /// E[d | d ≤ cap], the conditional mean the capped processes see.
    [[nodiscard]] double mean_capped(std::uint64_t cap) const;

    /// Var(d); +infinity when α ≤ 3.
    [[nodiscard]] double variance() const;

    /// The normalizer c_α = 1/(2 ζ(α)).
    [[nodiscard]] double normalizer() const noexcept { return c_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double c_;
    zipf_sampler zipf_;
    std::optional<zipf_alias_sampler> alias_;  // engaged by the capped ctor
};

}  // namespace levy
