#pragma once

#include <cstdint>
#include <limits>

#include "src/rng/rng_stream.h"
#include "src/rng/zipf.h"

namespace levy {

/// No jump-length cap (the default for uncapped processes).
inline constexpr std::uint64_t kNoCap = std::numeric_limits<std::uint64_t>::max();

/// The paper's jump-length law (Eq. 3):
///
///     P(d = 0) = 1/2,        P(d = i) = c_α / i^α   for i ≥ 1,
///
/// with normalizer c_α = 1 / (2 ζ(α)). Conditioned on d ≥ 1 this is exactly
/// Zipf(α), so sampling mixes a fair coin with the exact Devroye sampler.
///
/// Also exposes the closed-form quantities the analysis uses:
/// the tail P(d ≥ i) = Θ(1/i^{α-1}) (Eq. 4), the mean (finite iff α > 2),
/// and capped sampling P(· | d ≤ cap) as needed by the capped Lévy flight
/// of Lemma 4.5.
class jump_distribution {
public:
    /// α must exceed 1 (Remark 3.5 allows any α ≥ 1 + ε); throws otherwise.
    explicit jump_distribution(double alpha);

    /// Draw a jump length.
    [[nodiscard]] std::uint64_t sample(rng& g) const {
        return g.coin() ? 0 : zipf_(g);
    }

    /// Draw conditioned on d ≤ cap.
    [[nodiscard]] std::uint64_t sample_capped(rng& g, std::uint64_t cap) const {
        if (cap == kNoCap) return sample(g);
        return g.coin() ? 0 : zipf_.sample_capped(g, cap);
    }

    /// P(d = i).
    [[nodiscard]] double pmf(std::uint64_t i) const;

    /// Tail P(d ≥ i). Equals 1 for i = 0.
    [[nodiscard]] double tail(std::uint64_t i) const;

    /// E[d]; +infinity when α ≤ 2.
    [[nodiscard]] double mean() const;

    /// E[d | d ≤ cap], the conditional mean the capped processes see.
    [[nodiscard]] double mean_capped(std::uint64_t cap) const;

    /// Var(d); +infinity when α ≤ 3.
    [[nodiscard]] double variance() const;

    /// The normalizer c_α = 1/(2 ζ(α)).
    [[nodiscard]] double normalizer() const noexcept { return c_; }

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double c_;
    zipf_sampler zipf_;
};

}  // namespace levy
