#include "src/rng/splitmix64.h"

namespace levy {

std::uint64_t mix64(std::uint64_t x) noexcept {
    splitmix64 g(x);
    return g();
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
    // Two rounds: diffuse `a` into a full-width key first, then combine with
    // `b` and mix again. For a fixed `a` this is a bijection in `b`, and the
    // first mix destroys any low-bit structure that could align across keys.
    return mix64(mix64(a) ^ b);
}

}  // namespace levy
