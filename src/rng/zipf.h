#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/rng_stream.h"

namespace levy {

/// Exact sampler for the Zipf (discrete Pareto) law
///     P(X = k) = k^{-α} / ζ(α),   k = 1, 2, 3, …,  α > 1,
/// using Devroye's rejection method (Non-Uniform Random Variate Generation,
/// 1986, ch. X.6): an inversion from the continuous Pareto envelope followed
/// by a rejection test. Expected number of iterations is < 3 for all α > 1,
/// and each draw is exact — no truncation or discretization bias.
///
/// This is the engine behind the paper's jump-length distribution (Eq. 3);
/// see `jump_distribution` for the full law including the atom at 0.
class zipf_sampler {
public:
    /// α must be > 1; throws std::invalid_argument otherwise.
    explicit zipf_sampler(double alpha);

    /// Draw one Zipf(α) variate.
    [[nodiscard]] std::uint64_t operator()(rng& g) const;

    /// Draw conditioned on X <= cap (cap >= 1). Rejection against the
    /// unconditioned sampler while it is cheap, with an exact inverse-CDF
    /// fallback over [1, cap] after a bounded number of rejections, so
    /// small caps with α near 1 cannot make the draw spin unboundedly.
    [[nodiscard]] std::uint64_t sample_capped(rng& g, std::uint64_t cap) const;

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double inv_alpha_minus_1_;  // 1/(α-1)
    double b_minus_1_;          // 2^{α-1} - 1
    double inv_b_;              // 2^{1-α}
};

/// Reference sampler for Zipf(α) truncated to {1, …, cap}: exact inverse-CDF
/// over a precomputed table. O(cap) memory, O(log cap) per draw. Used for
/// small caps and as the ground truth the rejection sampler is tested
/// against.
class zipf_table_sampler {
public:
    zipf_table_sampler(double alpha, std::uint64_t cap);

    [[nodiscard]] std::uint64_t operator()(rng& g) const;

    /// P(X = k) under the truncated law; 0 outside {1, …, cap}.
    [[nodiscard]] double pmf(std::uint64_t k) const;

    [[nodiscard]] std::uint64_t cap() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;  // cdf_[k-1] = P(X <= k), normalized to cdf_.back() == 1
};

}  // namespace levy
