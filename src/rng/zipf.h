#pragma once

#include <cstdint>
#include <vector>

#include "src/rng/rng_stream.h"

namespace levy {

/// Exact sampler for the Zipf (discrete Pareto) law
///     P(X = k) = k^{-α} / ζ(α),   k = 1, 2, 3, …,  α > 1,
/// using Devroye's rejection method (Non-Uniform Random Variate Generation,
/// 1986, ch. X.6): an inversion from the continuous Pareto envelope followed
/// by a rejection test. Expected number of iterations is < 3 for all α > 1,
/// and each draw is exact — no truncation or discretization bias.
///
/// This is the engine behind the paper's jump-length distribution (Eq. 3);
/// see `jump_distribution` for the full law including the atom at 0.
class zipf_sampler {
public:
    /// α must be > 1; throws std::invalid_argument otherwise.
    explicit zipf_sampler(double alpha);

    /// Draw one Zipf(α) variate.
    [[nodiscard]] std::uint64_t operator()(rng& g) const;

    /// Draw conditioned on X <= cap (cap >= 1). Rejection against the
    /// unconditioned sampler while it is cheap, with an exact inverse-CDF
    /// fallback over [1, cap] after a bounded number of rejections, so
    /// small caps with α near 1 cannot make the draw spin unboundedly.
    ///
    /// RNG-draw contract (the batched walk engine replays these streams, so
    /// it is pinned by tests/rng/zipf_test.cpp): exactly `kMaxRejections`
    /// full rejection draws via operator(), then exactly one uniform for
    /// the inverse-CDF fallback. The fallback's harmonic-number bisection
    /// consumes no randomness at all.
    [[nodiscard]] std::uint64_t sample_capped(rng& g, std::uint64_t cap) const;

    /// Rejection attempts before sample_capped switches to the exact
    /// inverse-CDF fallback (part of the draw-count contract above).
    static constexpr int kMaxRejections = 64;

    [[nodiscard]] double alpha() const noexcept { return alpha_; }

private:
    double alpha_;
    double inv_alpha_minus_1_;  // 1/(α-1)
    double b_minus_1_;          // 2^{α-1} - 1
    double inv_b_;              // 2^{1-α}
};

/// Reference sampler for Zipf(α) truncated to {1, …, cap}: exact inverse-CDF
/// over a precomputed table. O(cap) memory, O(log cap) per draw. Used for
/// small caps and as the ground truth the rejection and alias samplers are
/// tested against.
class zipf_table_sampler {
public:
    zipf_table_sampler(double alpha, std::uint64_t cap);

    [[nodiscard]] std::uint64_t operator()(rng& g) const { return quantile(g.uniform()); }

    /// Inverse CDF: the smallest k with P(X <= k) >= u, clamped to [1, cap]
    /// for every finite u — in particular quantile(u) == cap for any
    /// u >= 1, so float round-off in the table can never index past it.
    [[nodiscard]] std::uint64_t quantile(double u) const;

    /// P(X = k) under the truncated law; 0 outside {1, …, cap}. Computed as
    /// k^{-α} / H(cap, α) directly (never by differencing adjacent CDF
    /// entries, which loses up to ~cap·ε of relative precision in the
    /// tail), so Σ_k pmf(k) reproduces the normalized partition sum exactly
    /// up to one rounding of the final division.
    [[nodiscard]] double pmf(std::uint64_t k) const;

    [[nodiscard]] std::uint64_t cap() const noexcept { return cdf_.size(); }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }

    /// The partition sum H(cap, α) = Σ_{k=1..cap} k^{-α} as accumulated at
    /// construction (term order k = 1, 2, …), i.e. exactly 1 / inv_norm.
    [[nodiscard]] double partition() const noexcept { return partition_; }

private:
    double alpha_;
    double partition_;  // H(cap, α), accumulated in index order
    double inv_norm_;   // 1 / partition_
    std::vector<double> cdf_;  // cdf_[k-1] = P(X <= k), cdf_.back() == 1
};

/// Walker alias-table sampler for Zipf(α) truncated to {1, …, cap}: O(cap)
/// setup, O(1) per draw (one bounded integer + one uniform), no rejection
/// loop. This is the batched walk engine's sampler of choice for the capped
/// regime, where millions of draws share one (α, cap); `jump_distribution`
/// selects it automatically for caps up to its alias threshold.
///
/// The pmf is computed exactly as zipf_table_sampler computes it (same
/// accumulation order, same normalizer), so the two agree bit-for-bit —
/// the table sampler stays authoritative and the equivalence is testable
/// without statistical slack.
class zipf_alias_sampler {
public:
    zipf_alias_sampler(double alpha, std::uint64_t cap);

    [[nodiscard]] std::uint64_t operator()(rng& g) const {
        const std::uint64_t j = g.below(prob_.size());
        return g.uniform() < prob_[j] ? j + 1 : alias_[j] + 1;
    }

    /// P(X = k); bit-identical to zipf_table_sampler::pmf for the same
    /// (α, cap). 0 outside {1, …, cap}.
    [[nodiscard]] double pmf(std::uint64_t k) const;

    [[nodiscard]] std::uint64_t cap() const noexcept { return prob_.size(); }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }
    [[nodiscard]] double partition() const noexcept { return partition_; }

private:
    double alpha_;
    double partition_;  // H(cap, α), accumulated in index order
    double inv_norm_;   // 1 / partition_
    std::vector<double> prob_;          // acceptance threshold per column
    std::vector<std::uint32_t> alias_;  // donor index per column
};

}  // namespace levy
