#pragma once

#include <cstdint>

namespace levy {

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// A tiny, fast, statistically solid 64-bit generator whose primary role in
/// this library is *seeding*: it expands a single 64-bit master seed into the
/// 256-bit state of `xoshiro256pp`, and it derives independent per-trial /
/// per-walk streams so that Monte-Carlo results are reproducible regardless
/// of thread scheduling (see `rng_stream.h`).
class splitmix64 {
public:
    using result_type = std::uint64_t;

    constexpr explicit splitmix64(std::uint64_t seed) noexcept : state_(seed) {}

    /// Advance the state and return the next 64-bit output.
    constexpr std::uint64_t operator()() noexcept {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

private:
    std::uint64_t state_;
};

/// One-shot stateless mix: the SplitMix64 output function applied to `x`.
/// Used to combine seeds and indices into statistically independent values.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Combine two 64-bit values into one well-mixed value. Not commutative.
[[nodiscard]] std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

}  // namespace levy
