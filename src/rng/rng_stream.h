#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "src/rng/splitmix64.h"
#include "src/rng/xoshiro256pp.h"

namespace levy {

/// A random stream: an xoshiro256++ engine plus the convenience draws the
/// library needs (uniform reals, unbiased bounded integers, coins).
///
/// Streams are cheap values (32 bytes of state); processes own their stream
/// so that every simulated agent is an independent, reproducible source of
/// randomness. Derive hierarchies of independent streams with `substream`:
///
///     rng master = rng::seeded(42);
///     rng trial  = master.substream(trial_index);
///     rng walk   = trial.substream(walk_index);
///
/// Substream derivation is a pure function of (seed path), never of how many
/// numbers were drawn, so parallel schedules cannot perturb results.
class rng {
public:
    using result_type = std::uint64_t;

    /// Stream keyed by a single 64-bit seed.
    [[nodiscard]] static rng seeded(std::uint64_t seed) noexcept { return rng(seed); }

    /// An independent stream derived from this stream's *seed* and `index`.
    /// Does not consume randomness from, nor depend on the position of,
    /// this stream.
    [[nodiscard]] rng substream(std::uint64_t index) const noexcept {
        return rng(mix64(seed_, index));
    }

    std::uint64_t operator()() noexcept { return engine_(); }

    /// Uniform double in [0, 1) with 53 random bits.
    double uniform() noexcept {
        return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in (0, 1]; never returns 0 (safe for log/pow(-x)).
    double uniform_positive() noexcept {
        return static_cast<double>((engine_() >> 11) + 1) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept {
        return lo + (hi - lo) * uniform();
    }

    /// Unbiased uniform integer in [0, n) via Lemire's method. n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept;

    /// Unbiased uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
        return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /// Fair coin.
    bool coin() noexcept { return (engine_() >> 63) != 0; }

    /// Bernoulli(p).
    bool bernoulli(double p) noexcept { return uniform() < p; }

    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Full serializable state: the stream identity (`seed`, which keys
    /// substream derivation) plus the 256-bit engine position. `restore`
    /// round-trips bit-exactly, so a stream can be suspended mid-draw and
    /// resumed elsewhere — the out-of-core shard spill format relies on it.
    struct state {
        std::uint64_t seed = 0;
        std::array<std::uint64_t, 4> engine{};
    };

    [[nodiscard]] state save() const noexcept { return {seed_, engine_.state()}; }

    [[nodiscard]] static rng restore(const state& s) noexcept { return rng(s); }

    static constexpr std::uint64_t min() noexcept { return 0; }
    static constexpr std::uint64_t max() noexcept { return ~0ULL; }

private:
    explicit rng(std::uint64_t seed) noexcept : seed_(seed), engine_(seed) {}
    explicit rng(const state& s) noexcept : seed_(s.seed), engine_(s.engine) {}

    std::uint64_t seed_;
    xoshiro256pp engine_;
};

}  // namespace levy
