#include "src/rng/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"
#include "src/rng/zeta.h"

namespace levy {

zipf_sampler::zipf_sampler(double alpha) : alpha_(alpha) {
    LEVY_PRECONDITION(alpha > 1.0, "zipf_sampler: alpha must be > 1");
    inv_alpha_minus_1_ = 1.0 / (alpha - 1.0);
    const double b = std::exp2(alpha - 1.0);
    b_minus_1_ = b - 1.0;
    inv_b_ = 1.0 / b;
}

std::uint64_t zipf_sampler::operator()(rng& g) const {
    // Jump lengths are clamped at 2^48: far beyond any step budget the
    // harness uses (a walk needs 2^48 steps to traverse such a phase), yet
    // small enough that even ~2^14 consecutive clamped ballistic *flight*
    // jumps cannot overflow 64-bit lattice coordinates. The clamped mass is
    // < 2^{-48(α-1)}, i.e. < 2^{-4.8} only in the most extreme α = 1.1 and
    // astronomically small for α ≥ 1.5.
    constexpr double kMaxX = 281474976710656.0;  // 2^48
    for (;;) {
        const double u = g.uniform_positive();
        const double v = g.uniform();
        const double xr = std::floor(std::pow(u, -inv_alpha_minus_1_));
        const double x = std::min(xr, kMaxX);
        // T = (1 + 1/X)^{α-1}
        const double t = std::pow(1.0 + 1.0 / x, alpha_ - 1.0);
        // Accept iff V·X·(T-1)/(b-1) <= T/b.
        if (v * x * (t - 1.0) / b_minus_1_ <= t * inv_b_) {
            return static_cast<std::uint64_t>(x);
        }
    }
}

std::uint64_t zipf_sampler::sample_capped(rng& g, std::uint64_t cap) const {
    LEVY_PRECONDITION(cap != 0, "zipf_sampler: cap must be >= 1");
    if (cap == 1) return 1;
    // Rejection is cheap when P(X <= cap) is large, but that probability is
    // ~ 1 - cap^{1-α}, which for small caps with α near 1 can be tiny — the
    // unbounded loop would spin for thousands of draws. Bound the rejection
    // attempts and fall back to exact inverse-CDF sampling over [1, cap].
    for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
        const std::uint64_t x = (*this)(g);
        if (x <= cap) return x;
    }
    // Inverse CDF of the truncated law: the smallest m in [1, cap] with
    // H(m, α) >= u · H(cap, α), where H is the generalized harmonic number
    // (partial zeta sum). Bisect with the O(1) Euler–Maclaurin evaluation
    // only until the bracket is narrow, then finish with one incremental
    // power-sum sweep — probing H(mid, α) at every level cost O(mid) per
    // probe in the direct-summation regime, i.e. O(cap log cap) per draw.
    const double total = harmonic(cap, alpha_);
    const double u = g.uniform() * total;
    constexpr std::uint64_t kSweepWidth = 512;
    std::uint64_t lo = 1, hi = cap;
    while (hi - lo > kSweepWidth) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (harmonic(mid, alpha_) >= u) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // One harmonic evaluation anchors the sweep; each further term is a
    // single pow. The sweep's accumulation can differ from H(m, α) by an
    // ulp, which only ever shifts the returned value by at most one — still
    // a valid inverse-CDF draw, and the same one on every replay.
    double acc = lo == 1 ? 0.0 : harmonic(lo - 1, alpha_);
    for (std::uint64_t m = lo; m < hi; ++m) {
        acc += std::pow(static_cast<double>(m), -alpha_);
        if (acc >= u) return m;
    }
    LEVY_ASSERT(hi >= 1 && hi <= cap, "zipf_sampler: inverse-CDF fallback out of range");
    return hi;
}

zipf_table_sampler::zipf_table_sampler(double alpha, std::uint64_t cap) : alpha_(alpha) {
    LEVY_PRECONDITION(alpha > 0.0, "zipf_table_sampler: alpha must be > 0");
    LEVY_PRECONDITION(cap >= 1 && cap <= (1ULL << 28), "zipf_table_sampler: cap must be in [1, 2^28]");
    cdf_.resize(cap);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= cap; ++k) {
        acc += std::pow(static_cast<double>(k), -alpha);
        cdf_[k - 1] = acc;
    }
    partition_ = acc;
    inv_norm_ = 1.0 / acc;
    for (auto& c : cdf_) c /= acc;
    cdf_.back() = 1.0;  // guard against round-off
}

std::uint64_t zipf_table_sampler::quantile(double u) const {
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    // u >= cdf_.back() (possible for u >= 1, or if round-off ever left the
    // backstop below an achievable uniform) must clamp to cap, not index
    // one past the table.
    if (it == cdf_.end()) return cdf_.size();
    return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

double zipf_table_sampler::pmf(std::uint64_t k) const {
    if (k < 1 || k > cdf_.size()) return 0.0;
    // Direct evaluation. Differencing adjacent CDF entries loses absolute
    // precision ~ulp(1) per entry, which in the tail (where true masses are
    // ~k^{-α}·inv_norm) is a large *relative* error.
    return std::pow(static_cast<double>(k), -alpha_) * inv_norm_;
}

zipf_alias_sampler::zipf_alias_sampler(double alpha, std::uint64_t cap) : alpha_(alpha) {
    LEVY_PRECONDITION(alpha > 0.0, "zipf_alias_sampler: alpha must be > 0");
    LEVY_PRECONDITION(cap >= 1 && cap <= (1ULL << 28), "zipf_alias_sampler: cap must be in [1, 2^28]");
    // Accumulate the partition in the same index order as zipf_table_sampler
    // so partition_/inv_norm_ (and hence pmf) agree with it bit-for-bit.
    const std::size_t n = static_cast<std::size_t>(cap);
    std::vector<double> scaled(n);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= cap; ++k) {
        const double w = std::pow(static_cast<double>(k), -alpha);
        scaled[k - 1] = w;
        acc += w;
    }
    partition_ = acc;
    inv_norm_ = 1.0 / acc;
    // Vose's stable alias construction: scale masses to mean 1, pair each
    // deficit column with a surplus donor. Deterministic (stack order is a
    // pure function of the weights), so tables rebuild identically.
    const double scale = inv_norm_ * static_cast<double>(n);
    for (auto& s : scaled) s *= scale;
    prob_.assign(n, 1.0);
    alias_.resize(n);
    for (std::size_t j = 0; j < n; ++j) alias_[j] = static_cast<std::uint32_t>(j);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (std::size_t j = 0; j < n; ++j) {
        (scaled[j] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(j));
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        small.pop_back();
        const std::uint32_t l = large.back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        (scaled[l] < 1.0 ? small : large).push_back(l);
    }
    // Leftovers on either stack are within round-off of exactly 1; their
    // prob_ entries stay 1.0 (alias never taken), which is the standard
    // numerically robust finish.
}

double zipf_alias_sampler::pmf(std::uint64_t k) const {
    if (k < 1 || k > prob_.size()) return 0.0;
    return std::pow(static_cast<double>(k), -alpha_) * inv_norm_;
}

}  // namespace levy
