#include "src/rng/zipf.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"
#include "src/rng/zeta.h"

namespace levy {

zipf_sampler::zipf_sampler(double alpha) : alpha_(alpha) {
    LEVY_PRECONDITION(alpha > 1.0, "zipf_sampler: alpha must be > 1");
    inv_alpha_minus_1_ = 1.0 / (alpha - 1.0);
    const double b = std::exp2(alpha - 1.0);
    b_minus_1_ = b - 1.0;
    inv_b_ = 1.0 / b;
}

std::uint64_t zipf_sampler::operator()(rng& g) const {
    // Jump lengths are clamped at 2^48: far beyond any step budget the
    // harness uses (a walk needs 2^48 steps to traverse such a phase), yet
    // small enough that even ~2^14 consecutive clamped ballistic *flight*
    // jumps cannot overflow 64-bit lattice coordinates. The clamped mass is
    // < 2^{-48(α-1)}, i.e. < 2^{-4.8} only in the most extreme α = 1.1 and
    // astronomically small for α ≥ 1.5.
    constexpr double kMaxX = 281474976710656.0;  // 2^48
    for (;;) {
        const double u = g.uniform_positive();
        const double v = g.uniform();
        const double xr = std::floor(std::pow(u, -inv_alpha_minus_1_));
        const double x = std::min(xr, kMaxX);
        // T = (1 + 1/X)^{α-1}
        const double t = std::pow(1.0 + 1.0 / x, alpha_ - 1.0);
        // Accept iff V·X·(T-1)/(b-1) <= T/b.
        if (v * x * (t - 1.0) / b_minus_1_ <= t * inv_b_) {
            return static_cast<std::uint64_t>(x);
        }
    }
}

std::uint64_t zipf_sampler::sample_capped(rng& g, std::uint64_t cap) const {
    LEVY_PRECONDITION(cap != 0, "zipf_sampler: cap must be >= 1");
    if (cap == 1) return 1;
    // Rejection is cheap when P(X <= cap) is large, but that probability is
    // ~ 1 - cap^{1-α}, which for small caps with α near 1 can be tiny — the
    // unbounded loop would spin for thousands of draws. Bound the rejection
    // attempts and fall back to exact inverse-CDF sampling over [1, cap].
    constexpr int kMaxRejections = 64;
    for (int attempt = 0; attempt < kMaxRejections; ++attempt) {
        const std::uint64_t x = (*this)(g);
        if (x <= cap) return x;
    }
    // Inverse CDF of the truncated law: find the smallest m in [1, cap]
    // with H(m, α) >= u · H(cap, α), where H is the generalized harmonic
    // number (partial zeta sum). Binary search keeps this O(log cap)
    // evaluations — no O(cap) table even for astronomical caps.
    const double total = harmonic(cap, alpha_);
    const double u = g.uniform() * total;
    std::uint64_t lo = 1, hi = cap;
    while (lo < hi) {
        const std::uint64_t mid = lo + (hi - lo) / 2;
        if (harmonic(mid, alpha_) >= u) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    LEVY_ASSERT(lo >= 1 && lo <= cap, "zipf_sampler: inverse-CDF fallback out of range");
    return lo;
}

zipf_table_sampler::zipf_table_sampler(double alpha, std::uint64_t cap) {
    LEVY_PRECONDITION(alpha > 0.0, "zipf_table_sampler: alpha must be > 0");
    LEVY_PRECONDITION(cap >= 1 && cap <= (1ULL << 28), "zipf_table_sampler: cap must be in [1, 2^28]");
    cdf_.resize(cap);
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= cap; ++k) {
        acc += std::pow(static_cast<double>(k), -alpha);
        cdf_[k - 1] = acc;
    }
    for (auto& c : cdf_) c /= acc;
    cdf_.back() = 1.0;  // guard against round-off
}

std::uint64_t zipf_table_sampler::operator()(rng& g) const {
    const double u = g.uniform();
    const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin()) + 1;
}

double zipf_table_sampler::pmf(std::uint64_t k) const {
    if (k < 1 || k > cdf_.size()) return 0.0;
    const double lo = (k == 1) ? 0.0 : cdf_[k - 2];
    return cdf_[k - 1] - lo;
}

}  // namespace levy
