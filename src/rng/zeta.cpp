#include "src/rng/zeta.h"

#include <cmath>

#include "src/core/contracts.h"

namespace levy {
namespace {

// Euler–Maclaurin tail of Σ_{k≥N} k^{-s}, i.e. the remainder after summing
// k < N directly:
//   Σ_{k≥N} k^{-s} ≈ N^{1-s}/(s-1) + N^{-s}/2 + s·N^{-s-1}/12
//                    - s(s+1)(s+2)·N^{-s-3}/720 + s(s+1)…(s+4)·N^{-s-5}/30240
// (Bernoulli numbers B2 = 1/6, B4 = -1/30, B6 = 1/42.)
double euler_maclaurin_tail(double n, double s) {
    const double inv = 1.0 / n;
    const double npow = std::pow(n, -s);
    // At s = 1 the leading integral term N^{1-s}/(s-1) is divergent as an
    // absolute tail, but harmonic() only ever uses *differences* of tails
    // there, for which its limit -ln(N) (dropping the constant 1/(s-1),
    // which cancels in differences) gives the correct value.
    // levylint:allow(float-equality) exact special case: s = 1 selects the log limit
    const double integral_term = (s == 1.0) ? -std::log(n) : npow * n / (s - 1.0);
    double tail = integral_term + npow / 2.0;
    double deriv = s * npow * inv;                 // s·N^{-s-1}
    tail += deriv / 12.0;
    deriv *= (s + 1.0) * (s + 2.0) * inv * inv;    // s(s+1)(s+2)·N^{-s-3}
    tail -= deriv / 720.0;
    deriv *= (s + 3.0) * (s + 4.0) * inv * inv;    // …·N^{-s-5}
    tail += deriv / 30240.0;
    return tail;
}

void require_s(double s) {
    LEVY_PRECONDITION(s > 1.0, "zeta: exponent must satisfy s > 1");
}

// Cutoff below which we sum terms directly before switching to the
// Euler–Maclaurin remainder. 64 keeps the B8 term below 1e-15 relative.
constexpr std::uint64_t kDirectTerms = 64;

}  // namespace

double riemann_zeta(double s) {
    require_s(s);
    double sum = 0.0;
    for (std::uint64_t k = 1; k < kDirectTerms; ++k) {
        sum += std::pow(static_cast<double>(k), -s);
    }
    return sum + euler_maclaurin_tail(static_cast<double>(kDirectTerms), s);
}

double harmonic(std::uint64_t n, double s) {
    if (n == 0) return 0.0;
    if (n <= 4 * kDirectTerms) {
        double sum = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k) {
            sum += std::pow(static_cast<double>(k), -s);
        }
        return sum;
    }
    // Partial sums are finite for every real s, including s <= 1 where ζ(s)
    // diverges: express Σ_{k=N..n} as a difference of two Euler–Maclaurin
    // tails, whose divergent leading terms cancel. Near s = 1 the N^{1-s}/(s-1)
    // terms individually blow up but their difference stays well-conditioned
    // in double precision for |s-1| > 1e-6, far from any α the library accepts.
    double sum = 0.0;
    for (std::uint64_t k = 1; k < kDirectTerms; ++k) {
        sum += std::pow(static_cast<double>(k), -s);
    }
    return sum + euler_maclaurin_tail(static_cast<double>(kDirectTerms), s) -
           euler_maclaurin_tail(static_cast<double>(n) + 1.0, s);
}

double zeta_tail(std::uint64_t i, double s) {
    require_s(s);
    if (i == 0) i = 1;
    if (i >= kDirectTerms) return euler_maclaurin_tail(static_cast<double>(i), s);
    double sum = 0.0;
    for (std::uint64_t k = i; k < kDirectTerms; ++k) {
        sum += std::pow(static_cast<double>(k), -s);
    }
    return sum + euler_maclaurin_tail(static_cast<double>(kDirectTerms), s);
}

}  // namespace levy
