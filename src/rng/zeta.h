#pragma once

#include <cstdint>

namespace levy {

/// Evaluation of the Riemann zeta function and the partial/tail sums the
/// paper's jump distribution needs, for real arguments s > 1.
///
/// All evaluations use Euler–Maclaurin summation: a direct sum of the first
/// N terms plus the integral remainder and Bernoulli-number corrections.
/// Accuracy is ~1e-12 relative for s in (1.001, 64], which is far more than
/// the simulations require.

/// Riemann zeta ζ(s) = Σ_{k≥1} k^{-s}. Requires s > 1 (throws otherwise).
[[nodiscard]] double riemann_zeta(double s);

/// Generalized harmonic number H(n, s) = Σ_{k=1..n} k^{-s}, for n ≥ 0.
/// Exact direct summation for small n, Euler–Maclaurin for large n.
[[nodiscard]] double harmonic(std::uint64_t n, double s);

/// Tail sum Σ_{k≥i} k^{-s} for i ≥ 1 and s > 1. Equals ζ(s) - H(i-1, s) but
/// evaluated directly to avoid cancellation for large i.
[[nodiscard]] double zeta_tail(std::uint64_t i, double s);

}  // namespace levy
