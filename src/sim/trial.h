#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/proportion.h"
#include "src/stats/summary.h"

namespace levy::sim {

/// Canonical target at distance ℓ: u* = (ℓ, 0). The lattice is symmetric
/// under the dihedral group, so any fixed direction is representative;
/// tests/integration/symmetry_test.cpp spot-checks that rotations agree.
[[nodiscard]] constexpr point target_at(std::int64_t ell) noexcept { return {ell, 0}; }

/// Which simulation engine runs walk trials. Both produce bit-identical
/// results for the same config and stream (guarded by
/// tests/sim/walk_engine_test.cpp); `batch` is the default because it skips
/// non-candidate phases in O(1) (see sim/walk_engine.h), `scalar` remains
/// the step-by-step reference implementation.
enum class engine_kind : std::uint8_t {
    scalar,  ///< levy_walk stepped through hit_within / parallel_min_hit
    batch,   ///< SoA epoch engine (sim/walk_engine)
};

/// --- Single-walk experiments (Theorems 1.1–1.3) -------------------------

struct single_walk_config {
    double alpha = 2.5;
    std::int64_t ell = 64;        ///< target distance ‖u*‖₁
    std::uint64_t budget = 0;     ///< step budget t
    std::uint64_t cap = kNoCap;   ///< optional jump-length cap
    /// Watchdog: hard per-trial step cap (0 = run the full budget). A trial
    /// truncated below `budget` that did not hit returns `censored = true`
    /// — heavy-tailed trials get cut off loudly instead of hanging a sweep
    /// or silently biasing means. Deterministic (steps, not wall clock), so
    /// checkpoint/resume stays bit-identical.
    std::uint64_t max_steps = 0;
    /// Engine choice (results are engine-independent; see engine_kind).
    engine_kind engine = engine_kind::batch;
};

/// One trial: a fresh Lévy walk from the origin vs u* = (ℓ, 0).
[[nodiscard]] hit_result single_walk_trial(const single_walk_config& cfg, rng stream);

/// Monte-Carlo estimate of P(τ_α(u*) ≤ budget).
[[nodiscard]] stats::proportion single_hit_probability(const single_walk_config& cfg,
                                                       const mc_options& opts);

/// Same for a Lévy *flight* (time measured in jumps) — Lemma 4.5 territory.
[[nodiscard]] hit_result single_flight_trial(const single_walk_config& cfg, rng stream);
[[nodiscard]] stats::proportion flight_hit_probability(const single_walk_config& cfg,
                                                       const mc_options& opts);

/// --- Parallel experiments (Theorems 1.5, 1.6) ---------------------------

struct parallel_walk_config {
    std::size_t k = 16;
    exponent_strategy strategy = fixed_exponent(2.5);
    std::int64_t ell = 64;
    std::uint64_t budget = 0;
    std::uint64_t cap = kNoCap;
    /// Watchdog step cap, as in single_walk_config (0 = full budget).
    std::uint64_t max_steps = 0;
    /// Engine choice (results are engine-independent; see engine_kind).
    engine_kind engine = engine_kind::batch;
    /// Out-of-core sharding (batch engine only; see sim/shard_engine.h):
    /// shards > 1 or memory_budget > 0 routes each trial through the
    /// sharded engine — bit-identical results, bounded resident memory.
    std::size_t shards = 0;
    std::uint64_t memory_budget = 0;  ///< resident bytes cap (0 = unlimited)
    std::string spill_dir;            ///< shard spill/resume dir ("" = temp)
    /// Durable-spill cadence in rounds (shard_options::sync_rounds): 0 spills
    /// only on eviction — faster, but a crash loses the whole trial.
    std::size_t sync_rounds = 1;
    /// Steps per shard residency (shard_options::epoch_steps; 0 = the
    /// engine's budget/8 default). Results are invariant under it.
    std::uint64_t epoch_steps = 0;
};

/// One trial of τ^k against u* = (ℓ, 0).
[[nodiscard]] parallel_result parallel_walk_trial(const parallel_walk_config& cfg, rng stream);

/// Monte-Carlo estimate of P(τ^k ≤ budget).
[[nodiscard]] stats::proportion parallel_hit_probability(const parallel_walk_config& cfg,
                                                         const mc_options& opts);

/// Hitting-time sample (misses recorded as the budget) plus the hit count;
/// the benches report medians/means of this censored sample.
struct hitting_time_sample {
    std::vector<double> times;       ///< per-trial τ^k, censored at budget
    std::uint64_t hits = 0;
    /// Trials the watchdog truncated below the intended budget without a
    /// hit (their `times` entry is the truncated step count). Benches
    /// report this as a censored-fraction column.
    std::uint64_t censored = 0;
    [[nodiscard]] double hit_fraction() const noexcept {
        return times.empty() ? 0.0
                             : static_cast<double>(hits) / static_cast<double>(times.size());
    }
    [[nodiscard]] double censored_fraction() const noexcept {
        return times.empty() ? 0.0
                             : static_cast<double>(censored) / static_cast<double>(times.size());
    }
};

[[nodiscard]] hitting_time_sample parallel_hitting_times(const parallel_walk_config& cfg,
                                                         const mc_options& opts);

}  // namespace levy::sim
