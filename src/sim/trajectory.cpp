#include "src/sim/trajectory.h"

// Templates over the jump-process concept; anchor instantiations for the
// two core processes so client TUs don't each re-instantiate them.

#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"

namespace levy::sim {

template displacement_stats run_displacement<levy_walk>(levy_walk&, std::uint64_t);
template displacement_stats run_displacement<levy_flight>(levy_flight&, std::uint64_t);
template std::uint64_t count_visits<levy_walk>(levy_walk&, point, std::uint64_t);
template std::uint64_t count_visits<levy_flight>(levy_flight&, point, std::uint64_t);

}  // namespace levy::sim
