#include "src/sim/checkpoint.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define LEVY_HAVE_FSYNC 1
#else
#define LEVY_HAVE_FSYNC 0
#endif

#include "src/core/contracts.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/sim/fault.h"

namespace levy::sim {
namespace {

constexpr std::uint64_t kMagic = 0x4c56594a4f55524eULL;  // "LVYJOURN" big-endian bytes
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8 + 4;  // ..., trailing header CRC

void append_u32(std::vector<char>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void append_u64(std::vector<char>& out, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

std::uint32_t read_u32(const char* p) {
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) v = (v << 8) | static_cast<unsigned char>(p[b]);
    return v;
}

std::uint64_t read_u64(const char* p) {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | static_cast<unsigned char>(p[b]);
    return v;
}

const std::array<std::uint32_t, 256>& crc_table() {
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < len; ++i) c = crc_table()[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void atomic_write_file(const std::string& path, const std::vector<char>& bytes) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        throw std::runtime_error("atomic_write_file: cannot open " + tmp);
    }
    bool ok = bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = std::fflush(f) == 0 && ok;
#if LEVY_HAVE_FSYNC
    ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        throw std::runtime_error("atomic_write_file: short write to " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("atomic_write_file: cannot rename " + tmp + " -> " + path);
    }
#if LEVY_HAVE_FSYNC
    // The rename is atomic but not durable until the *directory entry* is on
    // disk: POSIX only persists a rename once the parent directory has been
    // fsynced, so without this a power cut after a "successful" flush could
    // leave the old file — or no file at all. Tests pin the rule through
    // dir_fsync_count() (fault.h).
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? std::string(".") : path.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) {
        throw std::runtime_error("atomic_write_file: cannot open parent dir " + dir);
    }
    const bool synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!synced) {
        throw std::runtime_error("atomic_write_file: fsync of parent dir " + dir + " failed");
    }
    note_dir_fsync();
#endif
}

journal_contents load_journal(const std::string& path, const journal_key& key) {
    journal_contents out;
    std::ifstream in(path, std::ios::binary);
    if (!in) return out;  // no journal yet: clean fresh start
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();

    if (bytes.size() < kHeaderBytes) {
        out.dropped_tail = !bytes.empty();
        return out;
    }
    const char* p = bytes.data();
    if (read_u64(p) != kMagic || read_u32(p + 8) != kVersion ||
        crc32(p, kHeaderBytes - 4) != read_u32(p + kHeaderBytes - 4)) {
        out.dropped_tail = true;  // unrecognizable or rotted header: recompute all
        return out;
    }
    const std::uint32_t payload_size = read_u32(p + 12);
    const std::uint64_t seed = read_u64(p + 16);
    const std::uint64_t trials = read_u64(p + 24);
    if (payload_size != key.payload_size || seed != key.seed || trials != key.trials) {
        return out;  // journal of a different run: ignore it wholesale
    }
    out.matched = true;

    const std::size_t record_bytes = 8 + static_cast<std::size_t>(payload_size) + 4;
    std::size_t off = kHeaderBytes;
    std::uint64_t prev_index = 0;
    bool first = true;
    while (off + record_bytes <= bytes.size()) {
        const char* rec = p + off;
        const std::uint64_t index = read_u64(rec);
        const std::uint32_t stored = read_u32(rec + 8 + payload_size);
        // Records are written sorted and unique; anything else is corruption.
        const bool ordered = first || index > prev_index;
        if (index >= key.trials || !ordered || crc32(rec, 8 + payload_size) != stored) {
            out.dropped_tail = true;
            return out;
        }
        out.records.emplace(index, std::vector<char>(rec + 8, rec + 8 + payload_size));
        prev_index = index;
        first = false;
        off += record_bytes;
    }
    if (off != bytes.size()) out.dropped_tail = true;  // trailing partial record
    return out;
}

trial_journal::trial_journal(std::string path, const journal_key& key,
                             std::size_t interval_trials, double interval_seconds)
    : path_(std::move(path)),
      key_(key),
      interval_trials_(interval_trials),
      interval_seconds_(interval_seconds),
      last_flush_(std::chrono::steady_clock::now()) {
    LEVY_PRECONDITION(!path_.empty(), "trial_journal: checkpoint path must be non-empty");
    LEVY_PRECONDITION(interval_trials_ >= 1, "trial_journal: flush interval must be >= 1 trial");
    LEVY_PRECONDITION(key_.payload_size >= 1, "trial_journal: payload size must be >= 1");
}

trial_journal::~trial_journal() {
    std::lock_guard lk(m_);
    if (!dirty_ || dead_) return;
    try {
        flush_locked();
    } catch (...) {
        // Destructor durability is best effort; commit() is the loud path.
    }
}

std::vector<std::size_t> trial_journal::restore(void* results_base) {
    journal_contents loaded = load_journal(path_, key_);
    std::vector<std::size_t> missing;
    std::lock_guard lk(m_);
    dropped_tail_ = loaded.dropped_tail;
    records_ = std::move(loaded.records);
    auto* base = static_cast<char*>(results_base);
    for (const auto& [index, payload] : records_) {
        std::copy(payload.begin(), payload.end(),
                  base + index * static_cast<std::size_t>(key_.payload_size));
    }
    missing.reserve(static_cast<std::size_t>(key_.trials) - records_.size());
    auto it = records_.begin();
    for (std::uint64_t i = 0; i < key_.trials; ++i) {
        if (it != records_.end() && it->first == i) {
            ++it;
        } else {
            missing.push_back(static_cast<std::size_t>(i));
        }
    }
    obs::get_counter("mc.trials_restored").add(records_.size());
    return missing;
}

void trial_journal::record(std::size_t index, const void* payload) {
    const auto* bytes = static_cast<const char*>(payload);
    std::lock_guard lk(m_);
    if (dead_) return;
    LEVY_ASSERT(index < key_.trials, "trial_journal: record index out of range");
    records_.insert_or_assign(static_cast<std::uint64_t>(index),
                              std::vector<char>(bytes, bytes + key_.payload_size));
    dirty_ = true;
    ++unflushed_;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - last_flush_).count();
    if (unflushed_ >= interval_trials_ || elapsed >= interval_seconds_) flush_locked();
}

void trial_journal::commit() {
    std::lock_guard lk(m_);
    if (!dirty_ || dead_) return;
    flush_locked();
}

std::size_t trial_journal::completed() const {
    std::lock_guard lk(m_);
    return records_.size();
}

void trial_journal::flush_locked() {
    std::vector<char> bytes;
    bytes.reserve(kHeaderBytes + records_.size() * (12 + key_.payload_size));
    append_u64(bytes, kMagic);
    append_u32(bytes, kVersion);
    append_u32(bytes, key_.payload_size);
    append_u64(bytes, key_.seed);
    append_u64(bytes, key_.trials);
    append_u32(bytes, crc32(bytes.data(), bytes.size()));
    for (const auto& [index, payload] : records_) {
        const std::size_t rec_start = bytes.size();
        append_u64(bytes, index);
        bytes.insert(bytes.end(), payload.begin(), payload.end());
        append_u32(bytes, crc32(bytes.data() + rec_start, 8 + payload.size()));
    }
    // A planned short/torn write (fault.h) corrupts this flush exactly the
    // way a dying disk would — after the mutated bytes land, the journal
    // goes silently dead so the corruption survives for the next run's
    // loader to recover from.
    const bool injected = fault_on_checkpoint_flush(flush_ordinal_, bytes);
    ++flush_ordinal_;
    static const obs::counter flushes = obs::get_counter("checkpoint.flushes");
    static const obs::counter flushed_bytes = obs::get_counter("checkpoint.bytes");
    static const obs::histogram_metric flush_ns =
        obs::get_histogram("checkpoint.flush_ns", {});  // log2 nanosecond buckets
    const auto flush_start = std::chrono::steady_clock::now();
    atomic_write_file(path_, bytes);
    flushes.add();
    flushed_bytes.add(bytes.size());
    flush_ns.observe_u64(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                             flush_start)
            .count()));
    if (injected) {
        dead_ = true;
        return;
    }
    unflushed_ = 0;
    dirty_ = false;
    last_flush_ = std::chrono::steady_clock::now();
    // Progress reporting: "ckpt Ns ago" is this gauge against the shared
    // monotonic timebase — a stalling journal shows up as a growing age.
    obs::set_gauge(obs::kCheckpointFlushGauge, obs::monotonic_seconds());
}

}  // namespace levy::sim
