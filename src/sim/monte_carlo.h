#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/stats/proportion.h"

namespace levy::sim {

/// Default master seed; every binary that wants different randomness passes
/// its own (benches expose --seed).
inline constexpr std::uint64_t kDefaultSeed = 0x5eed'1e17'ca11'ab1eULL;

/// Monte-Carlo driver configuration.
struct mc_options {
    std::size_t trials = 1000;
    /// 0 = use std::thread::hardware_concurrency().
    unsigned threads = 0;
    std::uint64_t seed = kDefaultSeed;
};

/// Run `fn(i)` for i in [0, n) across `threads` worker threads (static
/// block partition). `fn` must be safe to call concurrently for distinct i.
void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn);

/// Resolve `threads == 0` to the hardware concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned threads) noexcept;

/// Run `opts.trials` independent trials of `trial_fn(trial_index, stream)`
/// and collect the results in trial order.
///
/// Each trial's stream is derived purely from (opts.seed, trial_index), so
/// the output is bit-identical for any thread count — the property the
/// reproducibility tests pin down.
template <class F>
auto monte_carlo_collect(const mc_options& opts, F&& trial_fn)
    -> std::vector<decltype(trial_fn(std::size_t{}, std::declval<rng&>()))> {
    using result_t = decltype(trial_fn(std::size_t{}, std::declval<rng&>()));
    std::vector<result_t> results(opts.trials);
    const rng master = rng::seeded(opts.seed);
    parallel_for(opts.trials, opts.threads, [&](std::size_t i) {
        rng stream = master.substream(i);
        results[i] = trial_fn(i, stream);
    });
    return results;
}

/// Estimate P(event) with a Wilson interval: `pred(trial_index, stream)`
/// decides success per trial.
template <class F>
stats::proportion estimate_probability(const mc_options& opts, F&& pred) {
    const auto outcomes = monte_carlo_collect(opts, [&](std::size_t i, rng& g) {
        return static_cast<int>(static_cast<bool>(pred(i, g)));
    });
    std::uint64_t successes = 0;
    for (int o : outcomes) successes += static_cast<std::uint64_t>(o);
    return stats::wilson_interval(successes, opts.trials);
}

}  // namespace levy::sim
