#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/contracts.h"
#include "src/rng/rng_stream.h"
#include "src/sim/thread_pool.h"
#include "src/stats/proportion.h"

namespace levy::sim {

/// Default master seed; every binary that wants different randomness passes
/// its own (benches expose --seed).
inline constexpr std::uint64_t kDefaultSeed = 0x5eed'1e17'ca11'ab1eULL;

/// Monte-Carlo driver configuration.
struct mc_options {
    std::size_t trials = 1000;
    /// 0 = use std::thread::hardware_concurrency().
    unsigned threads = 0;
    std::uint64_t seed = kDefaultSeed;
    /// Work-queue chunk size handed to each worker at a time; 0 = auto
    /// (~8 chunks per worker). Smaller chunks rebalance heavy-tailed trial
    /// costs better at the price of more atomic traffic.
    std::size_t chunk = 0;
};

/// Run `fn(i)` for i in [0, n) on the persistent worker pool (chunked
/// dynamic schedule: workers repeatedly claim the next `chunk` indices from
/// a shared atomic counter). The first exception thrown by `fn` is rethrown
/// on the calling thread after the pool drains; remaining chunks are
/// abandoned. `fn` must be safe to call concurrently for distinct i.
/// Returns the run's cost metrics (also added to the process throughput
/// accumulator, see `metrics_snapshot`).
pool_metrics parallel_for(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn, std::size_t chunk = 0);

/// Resolve `threads == 0` to the hardware concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned threads) noexcept;

/// Cumulative Monte-Carlo throughput for this process: every `parallel_for`
/// run adds its cost here, so a bench can print one trials/sec +
/// utilization line for the whole sweep.
struct run_metrics {
    std::size_t trials = 0;
    double wall_seconds = 0.0;
    double busy_seconds = 0.0;
    unsigned max_workers = 0;

    [[nodiscard]] double trials_per_sec() const noexcept {
        return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
    }
    /// Busy fraction of the workers' combined wall-clock capacity.
    [[nodiscard]] double utilization() const noexcept {
        const double capacity = wall_seconds * static_cast<double>(max_workers);
        return capacity > 0.0 ? busy_seconds / capacity : 1.0;
    }
};

void record_metrics(const pool_metrics& m) noexcept;
[[nodiscard]] run_metrics metrics_snapshot() noexcept;
void reset_metrics() noexcept;

/// Run `opts.trials` independent trials of `trial_fn(trial_index, stream)`
/// and collect the results in trial order.
///
/// Each trial's stream is derived purely from (opts.seed, trial_index), so
/// the output is bit-identical for any thread count and chunk size — the
/// property the reproducibility tests pin down. A throwing trial aborts the
/// run and rethrows on the caller.
template <class F>
auto monte_carlo_collect(const mc_options& opts, F&& trial_fn)
    -> std::vector<decltype(trial_fn(std::size_t{}, std::declval<rng&>()))> {
    using result_t = decltype(trial_fn(std::size_t{}, std::declval<rng&>()));
    std::vector<result_t> results(opts.trials);
    const rng master = rng::seeded(opts.seed);
    parallel_for(
        opts.trials, opts.threads,
        [&](std::size_t i) {
            rng stream = master.substream(i);
            results[i] = trial_fn(i, stream);
        },
        opts.chunk);
    return results;
}

/// Estimate P(event) with a Wilson interval: `pred(trial_index, stream)`
/// decides success per trial. Requires opts.trials >= 1 (the interval is
/// undefined on an empty sample).
template <class F>
stats::proportion estimate_probability(const mc_options& opts, F&& pred) {
    LEVY_PRECONDITION(opts.trials >= 1, "estimate_probability: opts.trials must be >= 1");
    const auto outcomes = monte_carlo_collect(opts, [&](std::size_t i, rng& g) {
        return static_cast<int>(static_cast<bool>(pred(i, g)));
    });
    std::uint64_t successes = 0;
    for (int o : outcomes) successes += static_cast<std::uint64_t>(o);
    return stats::wilson_interval(successes, opts.trials);
}

}  // namespace levy::sim
