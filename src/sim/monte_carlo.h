#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

#include "src/core/contracts.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/rng/rng_stream.h"
#include "src/sim/checkpoint.h"
#include "src/sim/fault.h"
#include "src/sim/thread_pool.h"
#include "src/stats/proportion.h"

namespace levy::sim {

/// Default master seed; every binary that wants different randomness passes
/// its own (benches expose --seed).
inline constexpr std::uint64_t kDefaultSeed = 0x5eed'1e17'ca11'ab1eULL;

/// Monte-Carlo driver configuration.
struct mc_options {
    std::size_t trials = 1000;
    /// 0 = use std::thread::hardware_concurrency().
    unsigned threads = 0;
    std::uint64_t seed = kDefaultSeed;
    /// Work-queue chunk size handed to each worker at a time; 0 = auto
    /// (~8 chunks per worker). Smaller chunks rebalance heavy-tailed trial
    /// costs better at the price of more atomic traffic.
    std::size_t chunk = 0;
    /// When non-empty, completed trial results are journaled to this file
    /// (CRC-checksummed, atomically renamed; see checkpoint.h) and a rerun
    /// with the same (seed, trials, result type) replays the journal and
    /// recomputes only the missing trials — bit-identical to an
    /// uninterrupted run, because each trial's RNG stream depends only on
    /// (seed, trial index). Requires a trivially copyable trial result.
    std::string checkpoint_path = {};
    /// Journal flush cadence: every this many completed trials…
    std::size_t checkpoint_interval = 256;
    /// …or this many seconds since the last flush, whichever comes first.
    /// (Durability only — flush timing can never affect results.)
    double checkpoint_seconds = 5.0;
};

/// Run `fn(i)` for i in [0, n) on the persistent worker pool (chunked
/// dynamic schedule: workers repeatedly claim the next `chunk` indices from
/// a shared atomic counter). The first exception thrown by `fn` is rethrown
/// on the calling thread after the pool drains; remaining chunks are
/// abandoned. `fn` must be safe to call concurrently for distinct i.
/// Returns the run's cost metrics (also added to the process throughput
/// accumulator, see `metrics_snapshot`).
pool_metrics parallel_for(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn, std::size_t chunk = 0);

/// Resolve `threads == 0` to the hardware concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned threads) noexcept;

/// --- Cooperative cancellation -------------------------------------------
///
/// SIGTERM-style shutdown: anything (a signal handler, a fault plan, a
/// watchdog) may call `request_cancel()`; the Monte-Carlo driver checks the
/// flag at every trial boundary and raises `run_cancelled`, which unwinds
/// through the checkpoint journal (flushing completed trials) and out of
/// `run_main`. A rerun with the same checkpoint resumes where it stopped.

class run_cancelled : public std::runtime_error {
public:
    run_cancelled() : std::runtime_error("run cancelled") {}
};

/// Async-signal-safe (a single lock-free atomic store).
void request_cancel() noexcept;
[[nodiscard]] bool cancel_requested() noexcept;
void clear_cancel() noexcept;
/// Throws run_cancelled when cancellation was requested.
void throw_if_cancelled();

/// Cumulative Monte-Carlo throughput for this process: every `parallel_for`
/// run adds its cost here, so a bench can print one trials/sec +
/// utilization line for the whole sweep.
struct run_metrics {
    std::size_t trials = 0;
    double wall_seconds = 0.0;
    double busy_seconds = 0.0;
    unsigned max_workers = 0;
    /// Trials cut off by a per-trial step budget before reaching their
    /// intended budget (see trial.h); reported, never silently dropped.
    std::size_t censored = 0;

    [[nodiscard]] double trials_per_sec() const noexcept {
        return wall_seconds > 0.0 ? static_cast<double>(trials) / wall_seconds : 0.0;
    }
    /// Busy fraction of the workers' combined wall-clock capacity; 0 when
    /// no capacity was measured (no work ran) — a run that did nothing was
    /// not "100% utilized".
    [[nodiscard]] double utilization() const noexcept {
        const double capacity = wall_seconds * static_cast<double>(max_workers);
        return capacity > 0.0 ? busy_seconds / capacity : 0.0;
    }
};

void record_metrics(const pool_metrics& m) noexcept;
/// Count one watchdog-censored trial (called from trial runners).
void note_censored() noexcept;
[[nodiscard]] run_metrics metrics_snapshot() noexcept;
void reset_metrics() noexcept;

/// Run `opts.trials` independent trials of `trial_fn(trial_index, stream)`
/// and collect the results in trial order.
///
/// Each trial's stream is derived purely from (opts.seed, trial_index), so
/// the output is bit-identical for any thread count and chunk size — the
/// property the reproducibility tests pin down. A throwing trial aborts the
/// run and rethrows on the caller.
///
/// With `opts.checkpoint_path` set, completed trials are journaled and a
/// rerun resumes: trials found in a valid journal are replayed verbatim,
/// only missing ones execute. Worker exceptions, cancellation, and even
/// kill -9 lose at most the un-flushed tail, which the next run recomputes
/// — the final result vector is identical either way.
template <class F>
auto monte_carlo_collect(const mc_options& opts, F&& trial_fn)
    -> std::vector<decltype(trial_fn(std::size_t{}, std::declval<rng&>()))> {
    using result_t = decltype(trial_fn(std::size_t{}, std::declval<rng&>()));
    std::vector<result_t> results(opts.trials);
    const rng master = rng::seeded(opts.seed);
    // Progress accounting: planned once per phase, completed per trial (one
    // relaxed shard increment amid thousands of walk steps — the progress
    // reporter and /metrics read these live without touching the hot path).
    const obs::counter planned = obs::get_counter(obs::kTrialsPlannedCounter);
    const obs::counter completed = obs::get_counter(obs::kTrialsCompletedCounter);
    planned.add(opts.trials);
    const auto run_one = [&](std::size_t i) {
        throw_if_cancelled();
        fault_before_trial(i);
        rng stream = master.substream(i);
        results[i] = trial_fn(i, stream);
        fault_after_trial(i);
        completed.add();
    };
    if (opts.checkpoint_path.empty()) {
        parallel_for(opts.trials, opts.threads, run_one, opts.chunk);
        return results;
    }
    static_assert(std::is_trivially_copyable_v<result_t>,
                  "checkpointed monte_carlo_collect requires a trivially copyable "
                  "trial result (it is journaled as raw bytes)");
    trial_journal journal(
        opts.checkpoint_path,
        journal_key{opts.seed, opts.trials, static_cast<std::uint32_t>(sizeof(result_t))},
        opts.checkpoint_interval, opts.checkpoint_seconds);
    const std::vector<std::size_t> missing = journal.restore(results.data());
    completed.add(opts.trials - missing.size());  // replayed trials are done work
    parallel_for(
        missing.size(), opts.threads,
        [&](std::size_t j) {
            const std::size_t i = missing[j];
            run_one(i);
            journal.record(i, &results[i]);
        },
        opts.chunk);
    journal.commit();
    return results;
}

/// Estimate P(event) with a Wilson interval: `pred(trial_index, stream)`
/// decides success per trial. Requires opts.trials >= 1 (the interval is
/// undefined on an empty sample). Watchdog-censored trials count as
/// failures *within the steps actually run* — the estimate stays exact for
/// the truncated budget; the censored fraction is reported separately via
/// run_metrics / hitting_time_sample so truncation is never silent.
template <class F>
stats::proportion estimate_probability(const mc_options& opts, F&& pred) {
    LEVY_PRECONDITION(opts.trials >= 1, "estimate_probability: opts.trials must be >= 1");
    const auto outcomes = monte_carlo_collect(opts, [&](std::size_t i, rng& g) {
        return static_cast<int>(static_cast<bool>(pred(i, g)));
    });
    std::uint64_t successes = 0;
    for (int o : outcomes) successes += static_cast<std::uint64_t>(o);
    return stats::wilson_interval(successes, opts.trials);
}

}  // namespace levy::sim
