#pragma once

#include <cstdint>
#include <string>

#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"
#include "src/sim/walk_engine.h"

namespace levy::sim {

/// Knobs for the out-of-core sharded engine (see class comment below).
struct shard_options {
    /// Walker-id blocks to partition the trial into (0 or 1 = one shard).
    /// When `memory_budget` demands finer blocks than requested, the count
    /// is raised so a single fully-populated shard fits the budget —
    /// results do not depend on the shard count, only residency does.
    std::size_t shards = 1;
    /// Resident walker-state budget in bytes (0 = unlimited). Idle shards
    /// spill to disk, least-recently-advanced first, until the resident set
    /// fits.
    std::uint64_t memory_budget = 0;
    /// Steps each shard advances per residency (engine_options quantum).
    /// 0 picks the out-of-core default, budget/8: one *phase* per round —
    /// the in-memory engine's default — would pay a spill/load cycle per
    /// phase, so sharded rounds take bigger bites. Results are invariant
    /// under the quantum; only the IO schedule changes.
    std::uint64_t epoch_steps = 0;
    /// Directory for spill files. Empty = a per-process temp directory —
    /// spills and crash recovery still work within the process lifetime,
    /// but cross-run resume needs a caller-chosen stable directory.
    std::string spill_dir;
    /// Persist every dirty resident shard each N rounds (0 = only when
    /// evicted). 1 — the default — bounds a kill -9 to losing at most the
    /// shards whose current-round epoch had not yet flushed.
    std::size_t sync_rounds = 1;
};

/// What a sharded run did, for benches and drills (results never depend on
/// any of these — they are residency/IO accounting only).
struct shard_run_stats {
    std::uint64_t rounds = 0;            ///< epoch rounds over the shard set
    std::uint64_t spills = 0;            ///< shard files written
    std::uint64_t spilled_bytes = 0;     ///< total bytes written to spill files
    std::uint64_t loads = 0;             ///< shard files restored from disk
    std::uint64_t recomputed = 0;        ///< shards replayed from spawn (corrupt/missing)
    std::uint64_t resumed = 0;           ///< shards restored from a previous process
    std::uint64_t peak_resident_walkers = 0;
    std::uint64_t peak_resident_bytes = 0;
};

/// Out-of-core sharded Lévy-walk engine: the walk_engine determinism
/// contract at walker counts past RAM.
///
/// The trial's k walkers are partitioned into contiguous walker-id blocks
/// ("shards", GraphWalker-style intervals). Shards advance round-robin, one
/// walk_engine epoch per round, against a shared lex-min best; idle shards
/// spill to disk through the checkpoint layer's atomic-write + CRC path
/// whenever the resident set exceeds `memory_budget`. Because the lex-min
/// registration rule is order-independent and allowance pruning only
/// discards strictly-worse outcomes (a hit at exactly the current best time
/// is still detected and tie-broken by id), the result is bit-identical to
/// the in-memory batch engine — and to the scalar reference — at any shard
/// count, epoch quantum, thread count, or eviction schedule.
///
/// ## Durability
///
/// Spill files double as the resume state. Each carries the full run
/// identity (trial seed, k, cap, budget, target, a strategy fingerprint),
/// the shard's serialized walkers, its local best, and CRCs over header and
/// body, written via atomic_write_file (tmp + fsync + rename + parent-dir
/// fsync). A kill -9 mid-epoch therefore loses at most the shards not yet
/// flushed this round: on re-run with the same parameters, shards with a
/// valid file resume from it, everything else replays deterministically
/// from spawn. A corrupt or truncated file fails its CRC, is dropped, and
/// only that shard recomputes — never its neighbors. Clean completion
/// removes the trial's spill files.
class sharded_walk_engine {
public:
    /// One parallel trial; bit-exact with walk_engine::run_parallel (and
    /// the scalar parallel_hit) on the same arguments.
    [[nodiscard]] parallel_result run_parallel(std::size_t k, const exponent_strategy& strategy,
                                               point target, std::uint64_t budget,
                                               const rng& trial_stream, std::uint64_t cap,
                                               const shard_options& opts);

    /// Residency/IO accounting for the most recent run_parallel call.
    [[nodiscard]] const shard_run_stats& last_stats() const noexcept { return stats_; }

    /// The thread's pooled engine (same pooling contract as
    /// walk_engine::local: one instance per worker thread, reused across
    /// trials, never shared).
    [[nodiscard]] static sharded_walk_engine& local();

private:
    dist_cache dists_;
    shard_run_stats stats_{};
};

}  // namespace levy::sim
