#include "src/sim/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/core/contracts.h"
#include "src/obs/metrics.h"

namespace levy::sim {
namespace {

using steady_clock = std::chrono::steady_clock;

double seconds_since(steady_clock::time_point start) {
    return std::chrono::duration<double>(steady_clock::now() - start).count();
}

/// Set while a thread is executing pool work; nested `run` calls detect it
/// and fall back to the serial path instead of deadlocking on the pool.
thread_local bool tl_inside_pool = false;

}  // namespace

struct thread_pool::job {
    std::size_t n = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> cancelled{false};
    std::atomic<std::uint64_t> busy_ns{0};
    unsigned participants = 0;  ///< pool workers assigned (caller excluded)
    std::exception_ptr error;   ///< guarded by impl::m
};

struct thread_pool::impl {
    std::mutex submit;  ///< serializes run(); guards workers growth
    std::mutex m;       ///< guards everything below
    std::condition_variable work_cv;
    std::condition_variable done_cv;
    std::vector<std::thread> workers;
    job* current = nullptr;
    std::uint64_t generation = 0;
    unsigned pending = 0;  ///< participants still draining the current job
    bool stop = false;
};

thread_pool& thread_pool::instance() {
    static thread_pool pool;
    return pool;
}

thread_pool::thread_pool() : impl_(new impl) {}

thread_pool::~thread_pool() {
    {
        std::lock_guard lk(impl_->m);
        impl_->stop = true;
    }
    impl_->work_cv.notify_all();
    for (auto& t : impl_->workers) t.join();
    delete impl_;
}

unsigned thread_pool::spawned_workers() const noexcept {
    std::lock_guard lk(impl_->submit);
    return static_cast<unsigned>(impl_->workers.size());
}

std::size_t thread_pool::auto_chunk(std::size_t n, unsigned workers) noexcept {
    const std::size_t per = n / (std::max(workers, 1u) * std::size_t{8});
    return std::clamp<std::size_t>(per, 1, 1024);
}

void thread_pool::execute(job& j) {
    const auto start = steady_clock::now();
    for (;;) {
        if (j.cancelled.load(std::memory_order_relaxed)) break;
        const std::size_t begin = j.next.fetch_add(j.chunk, std::memory_order_relaxed);
        if (begin >= j.n) break;
        const std::size_t end = std::min(begin + j.chunk, j.n);
        try {
            for (std::size_t i = begin; i < end; ++i) (*j.fn)(i);
        } catch (...) {
            std::lock_guard lk(impl_->m);
            if (!j.error) j.error = std::current_exception();
            j.cancelled.store(true, std::memory_order_relaxed);
        }
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        steady_clock::now() - start);
    j.busy_ns.fetch_add(static_cast<std::uint64_t>(ns.count()), std::memory_order_relaxed);
}

void thread_pool::worker_loop(unsigned index) {
    tl_inside_pool = true;
    std::uint64_t seen = 0;
    std::unique_lock lk(impl_->m);
    for (;;) {
        impl_->work_cv.wait(lk, [&] { return impl_->stop || impl_->generation != seen; });
        if (impl_->stop) return;
        seen = impl_->generation;
        job* j = impl_->current;
        if (j == nullptr || index >= j->participants) continue;
        lk.unlock();
        execute(*j);
        lk.lock();
        if (--impl_->pending == 0) impl_->done_cv.notify_all();
    }
}

pool_metrics thread_pool::run(std::size_t n, unsigned parallelism, std::size_t chunk,
                              const std::function<void(std::size_t)>& fn) {
    pool_metrics metrics;
    metrics.items = n;
    if (n == 0) return metrics;
    // Once per job, never per item: registry lookups are cached, add() is a
    // relaxed increment on the caller's shard.
    static const obs::counter jobs = obs::get_counter("pool.jobs");
    static const obs::counter pool_items = obs::get_counter("pool.items");
    jobs.add();
    pool_items.add(n);
    parallelism = std::clamp(parallelism, 1u, kMaxWorkers);
    if (chunk == 0) chunk = auto_chunk(n, parallelism);
    LEVY_ASSERT(chunk >= 1, "thread_pool: resolved chunk must be >= 1");
    metrics.chunk = chunk;
    const std::size_t chunks = (n + chunk - 1) / chunk;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(parallelism, chunks));

    const auto wall_start = steady_clock::now();
    if (workers <= 1 || tl_inside_pool) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        metrics.wall_seconds = seconds_since(wall_start);
        metrics.busy_seconds = metrics.wall_seconds;
        return metrics;
    }

    std::lock_guard submit(impl_->submit);
    job j;
    j.n = n;
    j.chunk = chunk;
    j.fn = &fn;
    j.participants = workers - 1;
    while (impl_->workers.size() < j.participants) {
        const auto index = static_cast<unsigned>(impl_->workers.size());
        impl_->workers.emplace_back([this, index] { worker_loop(index); });
    }
    {
        std::lock_guard lk(impl_->m);
        impl_->current = &j;
        ++impl_->generation;
        impl_->pending = j.participants;
    }
    impl_->work_cv.notify_all();
    tl_inside_pool = true;  // a nested parallel_for from fn must stay serial
    execute(j);
    tl_inside_pool = false;
    {
        std::unique_lock lk(impl_->m);
        impl_->done_cv.wait(lk, [&] { return impl_->pending == 0; });
        impl_->current = nullptr;
    }
    metrics.workers = workers;
    metrics.wall_seconds = seconds_since(wall_start);
    metrics.busy_seconds = static_cast<double>(j.busy_ns.load()) * 1e-9;
    if (j.error) std::rethrow_exception(j.error);
    return metrics;
}

}  // namespace levy::sim
