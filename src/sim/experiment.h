#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/monte_carlo.h"
#include "src/sim/trial.h"

namespace levy::sim {

/// Command-line options shared by every bench/example binary:
///   --trials=N              Monte-Carlo trials per table row (scaled by each bench)
///   --scale=S               multiplies problem sizes (ℓ grids, budgets); S=1 default
///   --threads=T             worker threads (0 = hardware concurrency)
///   --chunk=C               work-queue chunk size (0 = auto)
///   --seed=X                master seed
///   --csv=PATH              also write rows as CSV to PATH (crash-safe:
///                           written to PATH.tmp, atomically renamed on close)
///   --checkpoint=DIR        journal completed trials into DIR; a rerun with
///                           the same flags resumes and reproduces the output
///                           bit-identically (SIGTERM also checkpoints and
///                           exits cleanly when this is set)
///   --checkpoint-interval=K flush the journal every K completed trials (>= 1)
///   --max-steps-per-trial=M watchdog: hard per-trial step cap; truncated
///                           trials are reported as censored, never silently
///                           folded into the statistics (0 = no cap)
///   --json=PATH             write the structured result document
///                           (schema "levy-bench" v1: options, table rows,
///                           metrics, per-phase spans) to PATH, crash-safe
///   --json-dir=DIR          like --json, but named BENCH_<id>.json in DIR
///                           ("--json=-" disables an inherited --json-dir)
///   --trace=PATH            write collected LEVY_SPAN phases as a Chrome
///                           trace-event file (chrome://tracing / Perfetto)
///   --progress[=SECS]       print a throttled progress/ETA line to stderr
///                           every SECS seconds (default 2); stdout stays
///                           byte-identical with and without the flag
///   --metrics-port=P        serve /metrics (Prometheus), /healthz and
///                           /progress on 0.0.0.0:P while the run is live
///                           (P=0 picks an ephemeral port, printed to stderr)
///   --engine=E              walk-trial engine, "batch" (default) or
///                           "scalar"; results are bit-identical, only
///                           throughput differs (see sim/walk_engine.h)
///   --deadline-ms=D         per-request deadline handed to serving/driver
///                           layers (levyserve, E23); must be > 0 when given
///                           (0 = keep the server's default)
///   --queue-capacity=Q      admission-queue capacity for serving layers;
///                           must be > 0 when given (0 = server default)
///   --cap=C                 truncate jump lengths at C (0 = uncapped, the
///                           default) — the truncated-Zipf regime of the
///                           intermittent variants; capped runs with C at or
///                           below the alias threshold are where the batch
///                           engine's shared distribution cache pays most
///                           (the scalar path rebuilds an O(C) table per
///                           walker per trial)
///   --shards=S              out-of-core mode (batch engine only): partition
///                           each parallel trial's walkers into S id-block
///                           shards advanced epoch-by-epoch, idle shards
///                           spilled to disk; results stay bit-identical to
///                           the in-memory engine (S <= 1 and no
///                           --memory-budget = in-memory)
///   --memory-budget=B       resident walker-state cap in bytes (suffixes
///                           K/M/G/T = binary multiples); implies sharded
///                           mode and raises the shard count until one
///                           shard fits; 0 = unlimited
///   --spill-dir=DIR         where sharded trials spill/resume their shard
///                           files (default: a per-process temp directory —
///                           crash resume across runs needs a stable DIR)
/// Unknown arguments, malformed/empty values, and duplicated flags all
/// throw, so typos fail loudly.
struct run_options {
    std::size_t trials = 0;  ///< 0 = keep the binary's default
    double scale = 1.0;
    unsigned threads = 0;
    std::size_t chunk = 0;  ///< 0 = auto
    std::uint64_t seed = kDefaultSeed;
    std::string csv_path;
    std::string checkpoint_dir;            ///< empty = no checkpointing
    std::size_t checkpoint_interval = 256; ///< journal flush cadence (trials)
    std::uint64_t max_trial_steps = 0;     ///< watchdog step cap (0 = off)
    std::string json_path;                 ///< --json ("-" = explicitly off)
    std::string json_dir;                  ///< --json-dir (empty = off)
    std::string trace_path;                ///< --trace (empty = off)
    double progress_seconds = 0.0;         ///< --progress interval (0 = off)
    int metrics_port = -1;                 ///< --metrics-port (-1 = off, 0 = ephemeral)
    engine_kind engine = engine_kind::batch;  ///< --engine
    std::uint64_t cap = kNoCap;               ///< --cap (kNoCap = uncapped)
    std::uint64_t deadline_ms = 0;            ///< --deadline-ms (0 = unset)
    std::size_t queue_capacity = 0;           ///< --queue-capacity (0 = unset)
    std::size_t shards = 0;                   ///< --shards (<= 1 = in-memory)
    std::uint64_t memory_budget = 0;          ///< --memory-budget bytes (0 = unlimited)
    std::string spill_dir;                    ///< --spill-dir (empty = temp dir)
    std::size_t sync_rounds = 1;              ///< --sync-rounds (0 = spill only on evict)
    std::uint64_t epoch_steps = 0;            ///< --epoch-steps (0 = budget/8 default)

    /// Copy the sharding knobs into a parallel-trial config (helper so every
    /// bench wires them the same way).
    void apply_sharding(parallel_walk_config& cfg) const {
        cfg.shards = shards;
        cfg.memory_budget = memory_budget;
        cfg.spill_dir = spill_dir;
        cfg.sync_rounds = sync_rounds;
        cfg.epoch_steps = epoch_steps;
    }

    /// mc_options with this run's trials (or `default_trials` when the user
    /// didn't override) and a per-use salt so distinct experiment phases in
    /// one binary don't share streams. With --checkpoint set, each phase
    /// journals to its own file inside the directory, keyed by the salted
    /// seed and trial count — so give every phase a distinct salt (the
    /// benches already do, to keep streams independent).
    [[nodiscard]] mc_options mc(std::size_t default_trials, std::uint64_t salt = 0) const;
};

[[nodiscard]] run_options parse_run_options(int argc, char** argv);

/// Where the structured JSON for experiment `id` should land, resolving
/// --json against --json-dir: an explicit --json wins ("-" disables);
/// otherwise --json-dir gives DIR/BENCH_<id>.json; empty means no JSON.
[[nodiscard]] std::string default_json_path(const run_options& opts, const std::string& id);

/// The options as (flag, value) pairs the user could re-type — the
/// "options" object of the structured result document.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> describe_options(
    const run_options& opts);

/// Route SIGTERM into cooperative cancellation (request_cancel): the driver
/// stops at the next trial boundary, flushes the checkpoint journal, and
/// run_main exits with status 130. Installed by run_main when --checkpoint
/// is in effect; without a checkpoint SIGTERM keeps its default (fatal)
/// disposition, matching prior behavior.
void cancel_on_sigterm() noexcept;

/// One-line throughput report for the process's accumulated Monte-Carlo
/// work, e.g. "throughput: 12800 trials in 1.92 s (6657 trials/s, 4 workers,
/// 93% utilization)". Censored trials, if any, are appended so watchdog
/// truncation is always visible. Empty when no trials ran.
[[nodiscard]] std::string format_throughput(const run_metrics& m);

/// Minimal CSV writer for experiment rows (RFC-4180 quoting for cells that
/// need it). A default-constructed writer is inert, so benches can
/// unconditionally call `row()` whether or not --csv was given.
///
/// Crash-safe: rows stream to `<path>.tmp` (flushed and fsync'd every few
/// rows), and the file is atomically renamed to `path` on close()/
/// destruction — a reader never observes a torn CSV, and a killed run
/// leaves any previous complete CSV untouched.
class csv_writer {
public:
    csv_writer() = default;
    /// Requires the parent directory of `path` to exist (precondition — a
    /// doomed writer fails at open, not at exit); throws std::runtime_error
    /// when the temp file cannot be created.
    explicit csv_writer(const std::string& path);
    csv_writer(csv_writer&& other) noexcept;
    csv_writer& operator=(csv_writer&& other) noexcept;
    /// Commits via close(), swallowing errors (report them by calling
    /// close() yourself).
    ~csv_writer();

    [[nodiscard]] bool active() const noexcept { return out_ != nullptr; }

    void header(const std::vector<std::string>& cells);
    void row(const std::vector<std::string>& cells);

    /// Flush, fsync, and atomically rename the temp file into place.
    /// Throws std::runtime_error on I/O failure. No-op when inactive.
    void close();

private:
    void line(const std::vector<std::string>& cells);

    std::string path_;          ///< final path (temp is path_ + ".tmp")
    std::FILE* out_ = nullptr;  ///< open on the temp file while active
    std::size_t rows_since_sync_ = 0;
};

}  // namespace levy::sim
