#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "src/sim/monte_carlo.h"

namespace levy::sim {

/// Command-line options shared by every bench/example binary:
///   --trials=N    Monte-Carlo trials per table row (scaled by each bench)
///   --scale=S     multiplies problem sizes (ℓ grids, budgets); S=1 default
///   --threads=T   worker threads (0 = hardware concurrency)
///   --chunk=C     work-queue chunk size (0 = auto)
///   --seed=X      master seed
///   --csv=PATH    also write rows as CSV to PATH
/// Unknown arguments throw, so typos fail loudly.
struct run_options {
    std::size_t trials = 0;  ///< 0 = keep the binary's default
    double scale = 1.0;
    unsigned threads = 0;
    std::size_t chunk = 0;  ///< 0 = auto
    std::uint64_t seed = kDefaultSeed;
    std::string csv_path;

    /// mc_options with this run's trials (or `default_trials` when the user
    /// didn't override) and a per-use salt so distinct experiment phases in
    /// one binary don't share streams.
    [[nodiscard]] mc_options mc(std::size_t default_trials, std::uint64_t salt = 0) const;
};

[[nodiscard]] run_options parse_run_options(int argc, char** argv);

/// One-line throughput report for the process's accumulated Monte-Carlo
/// work, e.g. "throughput: 12800 trials in 1.92 s (6657 trials/s, 4 workers,
/// 93% utilization)". Empty when no trials ran.
[[nodiscard]] std::string format_throughput(const run_metrics& m);

/// Minimal CSV writer for experiment rows (RFC-4180 quoting for cells that
/// need it). A default-constructed writer is inert, so benches can
/// unconditionally call `row()` whether or not --csv was given.
class csv_writer {
public:
    csv_writer() = default;
    explicit csv_writer(const std::string& path);

    [[nodiscard]] bool active() const noexcept { return out_.is_open(); }

    void header(const std::vector<std::string>& cells);
    void row(const std::vector<std::string>& cells);

private:
    void line(const std::vector<std::string>& cells);
    std::ofstream out_;
};

}  // namespace levy::sim
