#include "src/sim/shard_engine.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "src/core/contracts.h"
#include "src/obs/metrics.h"
#include "src/rng/splitmix64.h"
#include "src/sim/checkpoint.h"
#include "src/sim/fault.h"

namespace levy::sim {
namespace {

/// Spill file format (version 1, all integers little-endian):
///
///     header : magic u64 "LVYSHARD" | version | shard_index | shard_count
///            | trial_seed | k | cap | budget | target_x | target_y
///            | strategy_fp | live | rounds | best_hit | best_time
///            | best_winner                     (15 u64 fields after magic)
///            | crc32(previous 128 bytes) u32
///     body   : live × walker_block::kBytesPerWalker walker records
///            | crc32(body) u32
///
/// Everything before `live` is the run identity: a file whose identity does
/// not match the current run is ignored wholesale (then overwritten), so a
/// stale spill directory can cause recomputation but never wrong results.
constexpr std::uint64_t kMagic = 0x4c56595348415244ULL;  // "LVYSHARD" big-endian bytes
constexpr std::uint64_t kVersion = 1;
constexpr std::size_t kHeaderU64 = 16;  // magic + 15 fields
constexpr std::size_t kHeaderBytes = kHeaderU64 * 8 + 4;

void append_u64(std::vector<char>& out, std::uint64_t v) {
    for (int b = 0; b < 8; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

void append_u32(std::vector<char>& out, std::uint32_t v) {
    for (int b = 0; b < 4; ++b) out.push_back(static_cast<char>((v >> (8 * b)) & 0xff));
}

std::uint64_t read_u64(const char* p) noexcept {
    std::uint64_t v = 0;
    for (int b = 7; b >= 0; --b) v = (v << 8) | static_cast<unsigned char>(p[b]);
    return v;
}

std::uint32_t read_u32(const char* p) noexcept {
    std::uint32_t v = 0;
    for (int b = 3; b >= 0; --b) v = (v << 8) | static_cast<unsigned char>(p[b]);
    return v;
}

/// Identity of one sharded run; every spill header embeds it.
struct run_identity {
    std::uint64_t trial_seed = 0;
    std::uint64_t k = 0;
    std::uint64_t cap = 0;
    std::uint64_t budget = 0;
    point target{};
    std::uint64_t strategy_fp = 0;
    std::size_t shard_count = 0;
};

/// Strategies are opaque std::functions, so their identity is fingerprinted
/// behaviorally: a mix64 chain over the α draws of the first walkers. Two
/// different strategies that agree on those draws and the same seed would
/// collide — but then their spilled walkers are bit-identical anyway for
/// the probed prefix, and every walker record still carries its own α.
std::uint64_t strategy_fingerprint(std::size_t k, const exponent_strategy& strategy,
                                   const rng& trial_stream) {
    std::uint64_t fp = 0x5348415244ULL;
    const std::size_t probe = std::min<std::size_t>(k, 16);
    for (std::size_t i = 0; i < probe; ++i) {
        rng stream = trial_stream.substream(i);
        const double alpha = strategy(i, stream);
        fp = mix64(fp ^ std::bit_cast<std::uint64_t>(alpha), i + 1);
    }
    return fp;
}

std::string hex64(std::uint64_t v) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

/// Per-process default spill directory (results never depend on its
/// location; file names are keyed by trial seed, so concurrent worker
/// threads share it safely).
std::string default_spill_dir() {
#if defined(__unix__) || defined(__APPLE__)
    const std::string tag = "levy-spill-" + std::to_string(::getpid());
#else
    const std::string tag = "levy-spill";
#endif
    return (std::filesystem::temp_directory_path() / tag).string();
}

/// One walker-id block [lo, hi) and its advancement state.
struct shard {
    std::size_t index = 0;
    std::size_t lo = 0;
    std::size_t hi = 0;
    bool spawned = false;   ///< this process has materialized the shard before
    bool resident = false;  ///< block holds the shard's walkers right now
    bool dirty = false;     ///< resident state is newer than the spill file
    bool done = false;      ///< all walkers retired (local best is final)
    std::uint64_t rounds = 0;
    std::uint64_t last_touch = 0;  ///< eviction clock (LRU)
    best_state local;
    walker_block block;
};

std::string shard_path(const std::string& dir, const run_identity& id, std::size_t index) {
    return dir + "/shard-" + hex64(id.trial_seed) + "-" + std::to_string(index) + "of" +
           std::to_string(id.shard_count) + ".lvyshard";
}

std::vector<char> encode_shard(const run_identity& id, const shard& s,
                               const dist_cache& dists) {
    std::vector<char> bytes;
    bytes.reserve(kHeaderBytes + s.block.live() * walker_block::kBytesPerWalker + 4);
    append_u64(bytes, kMagic);
    append_u64(bytes, kVersion);
    append_u64(bytes, s.index);
    append_u64(bytes, id.shard_count);
    append_u64(bytes, id.trial_seed);
    append_u64(bytes, id.k);
    append_u64(bytes, id.cap);
    append_u64(bytes, id.budget);
    append_u64(bytes, static_cast<std::uint64_t>(id.target.x));
    append_u64(bytes, static_cast<std::uint64_t>(id.target.y));
    append_u64(bytes, id.strategy_fp);
    append_u64(bytes, s.block.live());
    append_u64(bytes, s.rounds);
    append_u64(bytes, s.local.hit ? 1 : 0);
    append_u64(bytes, s.local.time);
    append_u64(bytes, static_cast<std::uint64_t>(s.local.winner));
    append_u32(bytes, crc32(bytes.data(), kHeaderU64 * 8));
    const std::size_t body_off = bytes.size();
    s.block.serialize(dists, bytes);
    append_u32(bytes, crc32(bytes.data() + body_off, bytes.size() - body_off));
    return bytes;
}

/// Parse + validate a spill file into `s`. False (s untouched beyond its
/// block being cleared) on any mismatch or corruption.
bool decode_shard(const std::string& path, const run_identity& id, shard& s,
                  dist_cache& dists) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string bytes = ss.str();
    if (bytes.size() < kHeaderBytes + 4) return false;
    const char* p = bytes.data();
    if (read_u64(p) != kMagic || read_u64(p + 8) != kVersion) return false;
    if (crc32(p, kHeaderU64 * 8) != read_u32(p + kHeaderU64 * 8)) return false;
    if (read_u64(p + 16) != s.index || read_u64(p + 24) != id.shard_count ||
        read_u64(p + 32) != id.trial_seed || read_u64(p + 40) != id.k ||
        read_u64(p + 48) != id.cap || read_u64(p + 56) != id.budget ||
        read_u64(p + 64) != static_cast<std::uint64_t>(id.target.x) ||
        read_u64(p + 72) != static_cast<std::uint64_t>(id.target.y) ||
        read_u64(p + 80) != id.strategy_fp) {
        return false;
    }
    const std::uint64_t live = read_u64(p + 88);
    if (live > s.hi - s.lo) return false;
    const std::size_t body_bytes = static_cast<std::size_t>(live) * walker_block::kBytesPerWalker;
    if (bytes.size() != kHeaderBytes + body_bytes + 4) return false;
    const char* body = p + kHeaderBytes;
    if (crc32(body, body_bytes) != read_u32(body + body_bytes)) return false;
    if (!s.block.deserialize(body, static_cast<std::size_t>(live), dists)) return false;
    s.rounds = read_u64(p + 96);
    s.local.hit = read_u64(p + 104) != 0;
    s.local.time = read_u64(p + 112);
    s.local.winner = static_cast<std::size_t>(read_u64(p + 120));
    return true;
}

}  // namespace

sharded_walk_engine& sharded_walk_engine::local() {
    thread_local sharded_walk_engine engine;
    return engine;
}

parallel_result sharded_walk_engine::run_parallel(std::size_t k,
                                                  const exponent_strategy& strategy,
                                                  point target, std::uint64_t budget,
                                                  const rng& trial_stream, std::uint64_t cap,
                                                  const shard_options& opts) {
    stats_ = {};
    parallel_result result;
    result.time = budget;
    if (k == 0) return result;
    if (target == origin) {
        // Every walker stands on the target at t = 0; walker 0 wins.
        result.hit = true;
        result.time = 0;
        result.winner = 0;
        rng walk_stream = trial_stream.substream(0);
        result.winner_alpha = strategy(0, walk_stream);
        return result;
    }

    dists_.reset(cap);

    // Shard count: what the caller asked for, raised until one fully
    // populated shard fits the memory budget (a shard must be resident in
    // full while it advances), clamped to one walker per shard.
    std::size_t count = std::max<std::size_t>(1, opts.shards);
    if (opts.memory_budget > 0) {
        const std::uint64_t max_walkers =
            std::max<std::uint64_t>(1, opts.memory_budget / walker_block::kBytesPerWalker);
        const std::uint64_t need =
            (static_cast<std::uint64_t>(k) + max_walkers - 1) / max_walkers;
        count = std::max(count, static_cast<std::size_t>(need));
    }
    count = std::min(count, k);

    run_identity id;
    id.trial_seed = trial_stream.seed();
    id.k = k;
    id.cap = cap;
    id.budget = budget;
    id.target = target;
    id.strategy_fp = strategy_fingerprint(k, strategy, trial_stream);
    id.shard_count = count;

    const std::string dir = opts.spill_dir.empty() ? default_spill_dir() : opts.spill_dir;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) throw std::runtime_error("shard_engine: cannot create spill dir " + dir);

    std::vector<shard> shards(count);
    for (std::size_t i = 0; i < count; ++i) {
        shards[i].index = i;
        shards[i].lo = i * k / count;
        shards[i].hi = (i + 1) * k / count;
    }

    // Quantum default: budget/8 steps per residency, not one phase (see
    // shard_options::epoch_steps) — bounds a trial's sync IO to ~8 rounds.
    const engine_options engine_opts{
        opts.epoch_steps != 0 ? opts.epoch_steps : std::max<std::uint64_t>(1, budget / 8)};
    best_state global;
    std::uint64_t touch_clock = 0;
    std::size_t spill_ordinal = 0;

    const auto resident_bytes = [&shards]() {
        std::uint64_t total = 0;
        for (const shard& s : shards) {
            if (s.resident) total += s.block.live() * walker_block::kBytesPerWalker;
        }
        return total;
    };

    const auto note_peak = [&] {
        std::uint64_t walkers = 0;
        for (const shard& s : shards) {
            if (s.resident) walkers += s.block.live();
        }
        stats_.peak_resident_walkers = std::max(stats_.peak_resident_walkers, walkers);
        stats_.peak_resident_bytes = std::max(stats_.peak_resident_bytes, resident_bytes());
    };

    const auto spill = [&](shard& s) {
        std::vector<char> bytes = encode_shard(id, s, dists_);
        // Fault drills corrupt or kill here — before the atomic write — so
        // the mutation lands under the rename exactly like a torn disk.
        (void)fault_on_shard_spill(++spill_ordinal, bytes);
        atomic_write_file(shard_path(dir, id, s.index), bytes);
        s.dirty = false;
        ++stats_.spills;
        stats_.spilled_bytes += bytes.size();
        obs::get_counter("shard.spills").add();
        obs::get_counter("shard.spill_bytes").add(bytes.size());
    };

    const auto evict = [&](shard& s) {
        if (s.dirty) spill(s);
        s.block.clear();
        s.resident = false;
    };

    /// Make `s` resident: restore its spill file, or (re)spawn from the
    /// trial stream — a pure function of (seed, walker id), so a recompute
    /// under the current allowance converges to the same local best.
    const auto touch = [&](shard& s) {
        if (s.resident) return;
        const std::string path = shard_path(dir, id, s.index);
        const bool file_exists = std::filesystem::exists(path, ec) && !ec;
        if (file_exists && decode_shard(path, id, s, dists_)) {
            if (!s.spawned) ++stats_.resumed;  // a previous process left it
            s.spawned = true;
            s.resident = true;
            s.dirty = false;
            ++stats_.loads;
            obs::get_counter("shard.loads").add();
            return;
        }
        if (file_exists || s.spawned) {
            // A file that exists but fails validation — or state this
            // process spilled and can no longer read back — is dropped and
            // this shard alone replays from spawn.
            ++stats_.recomputed;
            obs::get_counter("shard.recomputed").add();
        }
        s.block.clear();
        for (std::size_t i = s.lo; i < s.hi; ++i) {
            rng stream = trial_stream.substream(i);
            const double alpha = strategy(i, stream);  // same draws as scalar
            s.block.spawn(i, alpha, stream, dists_);
        }
        s.local = best_state{};
        s.rounds = 0;
        s.spawned = true;
        s.resident = true;
        s.dirty = true;
    };

    const auto enforce_budget = [&](std::size_t keep_index) {
        if (opts.memory_budget == 0) return;
        while (resident_bytes() > opts.memory_budget) {
            shard* victim = nullptr;
            for (shard& s : shards) {
                if (!s.resident || s.index == keep_index) continue;
                if (victim == nullptr || s.last_touch < victim->last_touch) victim = &s;
            }
            if (victim == nullptr) break;  // only the active shard is left
            evict(*victim);
        }
    };

    for (bool all_done = false; !all_done;) {
        ++stats_.rounds;
        all_done = true;
        for (shard& s : shards) {
            if (s.done) continue;
            touch(s);
            s.last_touch = ++touch_clock;
            note_peak();
            const std::uint64_t allowance_cap =
                global.hit ? std::min(global.time, budget) : budget;
            ++s.rounds;
            // A residency advances a full quantum of *steps*, not one epoch:
            // epoch() takes one phase segment per walker, and Lévy phases
            // are mostly a step or two, so a spill per epoch would pay IO
            // per phase. Grouping epochs changes only the schedule — hits
            // register through the same order-independent lex-min merge.
            const std::uint64_t stride = engine_opts.epoch_steps;
            const std::uint64_t round_target =
                s.rounds > allowance_cap / stride ? allowance_cap
                                                 : std::min(allowance_cap, stride * s.rounds);
            do {
                s.block.epoch(engine_opts, dists_, target, allowance_cap, s.local);
            } while (s.block.live() != 0 && s.block.min_live_elapsed() < round_target);
            s.dirty = true;
            global.merge(s.local);
            if (s.block.live() == 0) {
                // Final durable record: live = 0 plus the shard's local
                // best, so a resume folds it in without recomputation.
                s.done = true;
                spill(s);
                s.block.clear();
                s.resident = false;
            } else {
                all_done = false;
            }
            enforce_budget(s.index);
        }
        if (!all_done && opts.sync_rounds != 0 && stats_.rounds % opts.sync_rounds == 0) {
            for (shard& s : shards) {
                if (s.resident && s.dirty) spill(s);
            }
        }
    }

    if (global.hit) {
        result.hit = true;
        result.time = global.time;
        result.winner = global.winner;
        // Same winner-exponent replay as parallel_hit: strategy draws are a
        // pure function of (trial_stream, walker index).
        rng walk_stream = trial_stream.substream(result.winner);
        result.winner_alpha = strategy(result.winner, walk_stream);
    }

    // Clean completion: the spill files are resume state, and this trial no
    // longer needs resuming. (A crash skips this, leaving them for resume.)
    for (const shard& s : shards) {
        std::filesystem::remove(shard_path(dir, id, s.index), ec);
    }
    return result;
}

}  // namespace levy::sim
