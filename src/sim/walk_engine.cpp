#include "src/sim/walk_engine.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "src/core/contracts.h"
#include "src/grid/ring.h"

namespace levy::sim {
namespace {
// Same 128-bit exact comparison the scalar stepper uses (grid/direct_path).
__extension__ typedef __int128 int128;

/// Beyond this many cached (α, cap) jump distributions, drop the cache
/// between runs: continuous strategies (uniform_exponent) produce a fresh α
/// per walker and would otherwise grow it without bound.
constexpr std::size_t kDistCacheLimit = 1024;

void put_u64(std::vector<char>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_i64(std::vector<char>& out, std::int64_t v) {
    put_u64(out, static_cast<std::uint64_t>(v));
}

std::uint64_t get_u64(const char* p) noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
    }
    return v;
}

std::int64_t get_i64(const char* p) noexcept {
    return static_cast<std::int64_t>(get_u64(p));
}

void put_rng(std::vector<char>& out, const rng& g) {
    const rng::state s = g.save();
    put_u64(out, s.seed);
    for (const std::uint64_t w : s.engine) put_u64(out, w);
}

rng get_rng(const char* p) noexcept {
    rng::state s;
    s.seed = get_u64(p);
    for (int i = 0; i < 4; ++i) s.engine[static_cast<std::size_t>(i)] = get_u64(p + 8 + 8 * i);
    return rng::restore(s);
}

}  // namespace

// ---------------------------------------------------------------------------
// dist_cache

void dist_cache::reset(std::uint64_t cap) {
    if (!entries_.empty() && (cap_ != cap || entries_.size() > kDistCacheLimit)) {
        entries_.clear();
    }
    cap_ = cap;
}

std::uint32_t dist_cache::index_for(double alpha) {
    return index_for_bits(std::bit_cast<std::uint64_t>(alpha));
}

std::uint32_t dist_cache::index_for_bits(std::uint64_t alpha_bits) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].alpha_bits == alpha_bits) return static_cast<std::uint32_t>(i);
    }
    entries_.push_back({alpha_bits, jump_distribution(std::bit_cast<double>(alpha_bits), cap_)});
    return static_cast<std::uint32_t>(entries_.size() - 1);
}

// ---------------------------------------------------------------------------
// walker_block

void walker_block::clear() {
    ids_.clear();
    main_.clear();
    path_.clear();
    dist_ix_.clear();
    x_.clear();
    y_.clear();
    elapsed_.clear();
    phase_.clear();
    total_.clear();
    j_.clear();
    adx_.clear();
    ady_.clear();
    sx_.clear();
    sy_.clear();
    px_.clear();
    py_.clear();
    destx_.clear();
    desty_.clear();
    istar_.clear();
    pxt_.clear();
}

std::uint64_t walker_block::min_live_elapsed() const noexcept {
    std::uint64_t least = ~std::uint64_t{0};
    for (std::size_t w = 0; w < ids_.size(); ++w) least = std::min(least, elapsed_[w]);
    return least;
}

void walker_block::spawn(std::size_t id, double alpha, rng stream, dist_cache& dists) {
    ids_.push_back(id);
    main_.push_back(stream);
    // Placeholder until the first d >= 1 phase derives the real substream.
    path_.push_back(stream.substream(0));
    dist_ix_.push_back(dists.index_for(alpha));
    x_.push_back(origin.x);
    y_.push_back(origin.y);
    elapsed_.push_back(0);
    phase_.push_back(0);
    total_.push_back(0);
    j_.push_back(0);
    adx_.push_back(0);
    ady_.push_back(0);
    sx_.push_back(1);
    sy_.push_back(1);
    px_.push_back(0);
    py_.push_back(0);
    destx_.push_back(0);
    desty_.push_back(0);
    istar_.push_back(0);
    pxt_.push_back(0);
}

void walker_block::swap_slots(std::size_t a, std::size_t b) noexcept {
    if (a == b) return;
    std::swap(ids_[a], ids_[b]);
    std::swap(main_[a], main_[b]);
    std::swap(path_[a], path_[b]);
    std::swap(dist_ix_[a], dist_ix_[b]);
    std::swap(x_[a], x_[b]);
    std::swap(y_[a], y_[b]);
    std::swap(elapsed_[a], elapsed_[b]);
    std::swap(phase_[a], phase_[b]);
    std::swap(total_[a], total_[b]);
    std::swap(j_[a], j_[b]);
    std::swap(adx_[a], adx_[b]);
    std::swap(ady_[a], ady_[b]);
    std::swap(sx_[a], sx_[b]);
    std::swap(sy_[a], sy_[b]);
    std::swap(px_[a], px_[b]);
    std::swap(py_[a], py_[b]);
    std::swap(destx_[a], destx_[b]);
    std::swap(desty_[a], desty_[b]);
    std::swap(istar_[a], istar_[b]);
    std::swap(pxt_[a], pxt_[b]);
}

void walker_block::truncate(std::size_t live_count) {
    ids_.resize(live_count);
    main_.resize(live_count, rng::seeded(0));
    path_.resize(live_count, rng::seeded(0));
    dist_ix_.resize(live_count);
    x_.resize(live_count);
    y_.resize(live_count);
    elapsed_.resize(live_count);
    phase_.resize(live_count);
    total_.resize(live_count);
    j_.resize(live_count);
    adx_.resize(live_count);
    ady_.resize(live_count);
    sx_.resize(live_count);
    sy_.resize(live_count);
    px_.resize(live_count);
    py_.resize(live_count);
    destx_.resize(live_count);
    desty_.resize(live_count);
    istar_.resize(live_count);
    pxt_.resize(live_count);
}

void walker_block::replay_step(std::size_t w) {
    bool step_x;
    if (px_[w] == adx_[w]) {
        step_x = false;
    } else if (py_[w] == ady_[w]) {
        step_x = true;
    } else {
        const int128 i1 = static_cast<int128>(px_[w] + py_[w]) + 1;
        const int128 ex = static_cast<int128>(total_[w]) * px_[w] - i1 * adx_[w];
        const int128 ey = static_cast<int128>(total_[w]) * py_[w] - i1 * ady_[w];
        if (ex < ey) {
            step_x = true;
        } else if (ey < ex) {
            step_x = false;
        } else {
            step_x = path_[w].coin();
        }
    }
    if (step_x) {
        ++px_[w];
    } else {
        ++py_[w];
    }
    ++j_[w];
}

bool walker_block::advance_one(std::size_t w, const engine_options& opts,
                               const dist_cache& dists, std::uint64_t allowance, point target,
                               best_state& best) {
    if (total_[w] == 0) {
        // Begin a phase: same stream, same draw order as the scalar walk.
        ++phase_[w];
        // levylint:allow(conditional-main-draw): the phase-start guard is
        // pure in the walker's own draw history (total_ hits 0 exactly when
        // the scalar walk starts a phase), so the draw count replays
        // bit-exactly — pinned by walk_engine_test scalar/batch parity.
        const std::uint64_t d = dists.at(dist_ix_[w]).sample_capped(main_[w], dists.cap());
        if (d == 0) {
            // Stay-put phase: exactly one step, position unchanged. The
            // position is never the target here (a walker retires the step
            // it first touches the target), so no hit check is needed.
            ++elapsed_[w];
            return elapsed_[w] >= allowance;
        }
        const point from{x_[w], y_[w]};
        // levylint:allow(conditional-main-draw): scalar parity — levy_walk
        // also skips the ring draw on stay-put phases (d == 0), so the
        // branch is replayed identically from the same stream state.
        const point dest = sample_ring(from, static_cast<std::int64_t>(d), main_[w]);
        const point delta = dest - from;
        adx_[w] = abs64(delta.x);
        ady_[w] = abs64(delta.y);
        sx_[w] = delta.x < 0 ? -1 : 1;
        sy_[w] = delta.y < 0 ? -1 : 1;
        total_[w] = d;
        j_[w] = 0;
        px_[w] = 0;
        py_[w] = 0;
        destx_[w] = dest.x;
        desty_[w] = dest.y;
        // The path is monotone along both axes, and its node after step i
        // is at L1 distance exactly i from `from`; the target can be
        // visited only if it sits in the bounding box, and then only at
        // step i* = ‖target − from‖₁ with x-progress exactly tdx.
        const std::int64_t tdx = sx_[w] * (target.x - from.x);
        const std::int64_t tdy = sy_[w] * (target.y - from.y);
        if (tdx >= 0 && tdx <= adx_[w] && tdy >= 0 && tdy <= ady_[w] && tdx + tdy > 0) {
            istar_[w] = static_cast<std::uint64_t>(tdx + tdy);
            pxt_[w] = tdx;
        } else {
            istar_[w] = 0;
        }
        path_[w] = main_[w].substream(phase_[w]);
    }
    // Advance within the phase by at most the allowance (and the epoch
    // quantum, when set). Steps past the candidate i* can neither hit nor
    // influence any later draw — tie coins live on the throwaway per-phase
    // substream — so they are skipped arithmetically.
    const std::uint64_t j0 = j_[w];
    std::uint64_t take = std::min(total_[w] - j0, allowance - elapsed_[w]);
    if (opts.epoch_steps != 0) take = std::min(take, opts.epoch_steps);
    const std::uint64_t jend = j0 + take;
    if (istar_[w] != 0 && j0 < istar_[w]) {
        const std::uint64_t replay_to = std::min(jend, istar_[w]);
        while (j_[w] < replay_to) replay_step(w);
        if (j_[w] == istar_[w]) {
            if (px_[w] == pxt_[w]) {
                const std::uint64_t t = elapsed_[w] + (istar_[w] - j0);
                // Order-independent lex-min registration: better time, or
                // equal time from a smaller walker index.
                if (!best.hit || t < best.time || (t == best.time && ids_[w] < best.winner)) {
                    best.hit = true;
                    best.time = t;
                    best.winner = ids_[w];
                }
                return true;  // first visit to the target: the walker is done
            }
            istar_[w] = 0;  // passed the only candidate step without hitting
        }
    }
    j_[w] = jend;
    elapsed_[w] += take;
    if (j_[w] == total_[w]) {
        x_[w] = destx_[w];
        y_[w] = desty_[w];
        total_[w] = 0;
    }
    return elapsed_[w] >= allowance;
}

void walker_block::epoch(const engine_options& opts, const dist_cache& dists, point target,
                         std::uint64_t allowance_cap, best_state& best) {
    std::size_t live_count = ids_.size();
    // The sweep re-reads `best` per walker, so an early hit immediately
    // shrinks everyone else's allowance; correctness never depends on that
    // — only the amount of pruned work does.
    for (std::size_t w = 0; w < live_count;) {
        const std::uint64_t allowance =
            best.hit ? std::min(best.time, allowance_cap) : allowance_cap;
        const bool retire =
            elapsed_[w] >= allowance || advance_one(w, opts, dists, allowance, target, best);
        if (retire) {
            swap_slots(w, live_count - 1);
            --live_count;
        } else {
            ++w;
        }
    }
    truncate(live_count);
}

void walker_block::serialize(const dist_cache& dists, std::vector<char>& out) const {
    out.reserve(out.size() + ids_.size() * kBytesPerWalker);
    for (std::size_t w = 0; w < ids_.size(); ++w) {
        put_u64(out, static_cast<std::uint64_t>(ids_[w]));
        put_u64(out, dists.alpha_bits(dist_ix_[w]));
        put_rng(out, main_[w]);
        put_rng(out, path_[w]);
        put_i64(out, x_[w]);
        put_i64(out, y_[w]);
        put_u64(out, elapsed_[w]);
        put_u64(out, phase_[w]);
        put_u64(out, total_[w]);
        put_u64(out, j_[w]);
        put_i64(out, adx_[w]);
        put_i64(out, ady_[w]);
        put_i64(out, sx_[w]);
        put_i64(out, sy_[w]);
        put_i64(out, px_[w]);
        put_i64(out, py_[w]);
        put_i64(out, destx_[w]);
        put_i64(out, desty_[w]);
        put_u64(out, istar_[w]);
        put_i64(out, pxt_[w]);
    }
}

bool walker_block::deserialize(const char* bytes, std::size_t count, dist_cache& dists) {
    clear();
    for (std::size_t w = 0; w < count; ++w) {
        const char* p = bytes + w * kBytesPerWalker;
        const std::uint64_t id = get_u64(p);
        const std::uint64_t alpha_bits = get_u64(p + 8);
        const double alpha = std::bit_cast<double>(alpha_bits);
        const rng main_stream = get_rng(p + 16);
        const rng path_stream = get_rng(p + 56);
        const std::int64_t x = get_i64(p + 96);
        const std::int64_t y = get_i64(p + 104);
        const std::uint64_t elapsed = get_u64(p + 112);
        const std::uint64_t phase = get_u64(p + 120);
        const std::uint64_t total = get_u64(p + 128);
        const std::uint64_t j = get_u64(p + 136);
        const std::int64_t adx = get_i64(p + 144);
        const std::int64_t ady = get_i64(p + 152);
        const std::int64_t sx = get_i64(p + 160);
        const std::int64_t sy = get_i64(p + 168);
        const std::int64_t px = get_i64(p + 176);
        const std::int64_t py = get_i64(p + 184);
        const std::int64_t destx = get_i64(p + 192);
        const std::int64_t desty = get_i64(p + 200);
        const std::uint64_t istar = get_u64(p + 208);
        const std::int64_t pxt = get_i64(p + 216);
        // Structural sanity before the values can reach samplers or the
        // replay arithmetic; CRC catches random corruption first, so this
        // is defense-in-depth against a validly-checksummed-but-bogus file.
        const bool alpha_ok = std::isfinite(alpha) && alpha > 1.0;
        const bool sign_ok = (sx == 1 || sx == -1) && (sy == 1 || sy == -1);
        bool phase_ok = true;
        if (total != 0) {
            phase_ok = j < total && adx >= 0 && ady >= 0 &&
                       static_cast<std::uint64_t>(adx) + static_cast<std::uint64_t>(ady) ==
                           total &&
                       px >= 0 && py >= 0 && px <= adx && py <= ady &&
                       istar <= total && phase > 0;
        }
        if (!alpha_ok || !sign_ok || !phase_ok) {
            clear();
            return false;
        }
        ids_.push_back(static_cast<std::size_t>(id));
        main_.push_back(main_stream);
        path_.push_back(path_stream);
        dist_ix_.push_back(dists.index_for_bits(alpha_bits));
        x_.push_back(x);
        y_.push_back(y);
        elapsed_.push_back(elapsed);
        phase_.push_back(phase);
        total_.push_back(total);
        j_.push_back(j);
        adx_.push_back(adx);
        ady_.push_back(ady);
        sx_.push_back(sx);
        sy_.push_back(sy);
        px_.push_back(px);
        py_.push_back(py);
        destx_.push_back(destx);
        desty_.push_back(desty);
        istar_.push_back(istar);
        pxt_.push_back(pxt);
    }
    return true;
}

// ---------------------------------------------------------------------------
// walk_engine

walk_engine& walk_engine::local() {
    thread_local walk_engine engine;
    return engine;
}

best_state walk_engine::drive(point target, std::uint64_t budget) {
    best_state best;
    while (block_.live() > 0) {
        // One epoch: every live walker advances one phase (or quantum
        // chunk), pruned by the best hit registered so far.
        block_.epoch(opts_, dists_, target, budget, best);
    }
    return best;
}

hit_result walk_engine::run_single(double alpha, point target, std::uint64_t budget,
                                   const rng& stream, std::uint64_t cap) {
    if (target == origin) return {true, 0};
    dists_.reset(cap);
    block_.clear();
    block_.spawn(0, alpha, stream, dists_);
    const best_state best = drive(target, budget);
    return {best.hit, best.hit ? best.time : budget};
}

parallel_result walk_engine::run_parallel(std::size_t k, const exponent_strategy& strategy,
                                          point target, std::uint64_t budget,
                                          const rng& trial_stream, std::uint64_t cap) {
    parallel_result result;
    result.time = budget;
    if (k == 0) return result;
    if (target == origin) {
        // Every walker stands on the target at t = 0; walker 0 wins.
        result.hit = true;
        result.time = 0;
        result.winner = 0;
    } else {
        dists_.reset(cap);
        block_.clear();
        for (std::size_t i = 0; i < k; ++i) {
            rng stream = trial_stream.substream(i);
            const double alpha = strategy(i, stream);  // consumes the same draws as scalar
            block_.spawn(i, alpha, stream, dists_);
        }
        const best_state best = drive(target, budget);
        if (best.hit) {
            result.hit = true;
            result.time = best.time;
            result.winner = best.winner;
        }
    }
    if (result.hit) {
        // Same winner-exponent replay as parallel_hit: strategy draws are a
        // pure function of (trial_stream, walker index).
        rng walk_stream = trial_stream.substream(result.winner);
        result.winner_alpha = strategy(result.winner, walk_stream);
    }
    return result;
}

}  // namespace levy::sim
