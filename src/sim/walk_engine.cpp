#include "src/sim/walk_engine.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/core/contracts.h"
#include "src/grid/ring.h"

namespace levy::sim {
namespace {
// Same 128-bit exact comparison the scalar stepper uses (grid/direct_path).
__extension__ typedef __int128 int128;

/// Beyond this many cached (α, cap) jump distributions, drop the cache
/// between runs: continuous strategies (uniform_exponent) produce a fresh α
/// per walker and would otherwise grow it without bound.
constexpr std::size_t kDistCacheLimit = 1024;
}  // namespace

walk_engine& walk_engine::local() {
    thread_local walk_engine engine;
    return engine;
}

void walk_engine::clear(std::uint64_t cap) {
    // The distribution cache is keyed by (α, cap); entries for another cap
    // — or an overgrown cache — are useless, so reset and let walkers
    // rebuild. Rebuilds are deterministic, so pooling never affects results.
    if (!dists_.empty() && (dists_.front().cap != cap || dists_.size() > kDistCacheLimit)) {
        dists_.clear();
    }
    cap_ = cap;
    ids_.clear();
    main_.clear();
    path_.clear();
    dist_ix_.clear();
    x_.clear();
    y_.clear();
    elapsed_.clear();
    phase_.clear();
    total_.clear();
    j_.clear();
    adx_.clear();
    ady_.clear();
    sx_.clear();
    sy_.clear();
    px_.clear();
    py_.clear();
    destx_.clear();
    desty_.clear();
    istar_.clear();
    pxt_.clear();
}

std::uint32_t walk_engine::dist_for(double alpha) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(alpha);
    for (std::size_t i = 0; i < dists_.size(); ++i) {
        if (dists_[i].alpha_bits == bits) return static_cast<std::uint32_t>(i);
    }
    dists_.push_back({bits, cap_, jump_distribution(alpha, cap_)});
    return static_cast<std::uint32_t>(dists_.size() - 1);
}

void walk_engine::spawn(std::size_t id, double alpha, rng stream) {
    ids_.push_back(id);
    main_.push_back(stream);
    // Placeholder until the first d >= 1 phase derives the real substream.
    path_.push_back(stream.substream(0));
    dist_ix_.push_back(dist_for(alpha));
    x_.push_back(origin.x);
    y_.push_back(origin.y);
    elapsed_.push_back(0);
    phase_.push_back(0);
    total_.push_back(0);
    j_.push_back(0);
    adx_.push_back(0);
    ady_.push_back(0);
    sx_.push_back(1);
    sy_.push_back(1);
    px_.push_back(0);
    py_.push_back(0);
    destx_.push_back(0);
    desty_.push_back(0);
    istar_.push_back(0);
    pxt_.push_back(0);
}

void walk_engine::swap_slots(std::size_t a, std::size_t b) noexcept {
    if (a == b) return;
    std::swap(ids_[a], ids_[b]);
    std::swap(main_[a], main_[b]);
    std::swap(path_[a], path_[b]);
    std::swap(dist_ix_[a], dist_ix_[b]);
    std::swap(x_[a], x_[b]);
    std::swap(y_[a], y_[b]);
    std::swap(elapsed_[a], elapsed_[b]);
    std::swap(phase_[a], phase_[b]);
    std::swap(total_[a], total_[b]);
    std::swap(j_[a], j_[b]);
    std::swap(adx_[a], adx_[b]);
    std::swap(ady_[a], ady_[b]);
    std::swap(sx_[a], sx_[b]);
    std::swap(sy_[a], sy_[b]);
    std::swap(px_[a], px_[b]);
    std::swap(py_[a], py_[b]);
    std::swap(destx_[a], destx_[b]);
    std::swap(desty_[a], desty_[b]);
    std::swap(istar_[a], istar_[b]);
    std::swap(pxt_[a], pxt_[b]);
}

void walk_engine::replay_step(std::size_t w) {
    bool step_x;
    if (px_[w] == adx_[w]) {
        step_x = false;
    } else if (py_[w] == ady_[w]) {
        step_x = true;
    } else {
        const int128 i1 = static_cast<int128>(px_[w] + py_[w]) + 1;
        const int128 ex = static_cast<int128>(total_[w]) * px_[w] - i1 * adx_[w];
        const int128 ey = static_cast<int128>(total_[w]) * py_[w] - i1 * ady_[w];
        if (ex < ey) {
            step_x = true;
        } else if (ey < ex) {
            step_x = false;
        } else {
            step_x = path_[w].coin();
        }
    }
    if (step_x) {
        ++px_[w];
    } else {
        ++py_[w];
    }
    ++j_[w];
}

bool walk_engine::advance_one(std::size_t w, std::uint64_t allowance, point target,
                              best_state& best) {
    if (total_[w] == 0) {
        // Begin a phase: same stream, same draw order as the scalar walk.
        ++phase_[w];
        // levylint:allow(conditional-main-draw): the phase-start guard is
        // pure in the walker's own draw history (total_ hits 0 exactly when
        // the scalar walk starts a phase), so the draw count replays
        // bit-exactly — pinned by walk_engine_test scalar/batch parity.
        const std::uint64_t d = dists_[dist_ix_[w]].dist.sample_capped(main_[w], cap_);
        if (d == 0) {
            // Stay-put phase: exactly one step, position unchanged. The
            // position is never the target here (a walker retires the step
            // it first touches the target), so no hit check is needed.
            ++elapsed_[w];
            return elapsed_[w] >= allowance;
        }
        const point from{x_[w], y_[w]};
        // levylint:allow(conditional-main-draw): scalar parity — levy_walk
        // also skips the ring draw on stay-put phases (d == 0), so the
        // branch is replayed identically from the same stream state.
        const point dest = sample_ring(from, static_cast<std::int64_t>(d), main_[w]);
        const point delta = dest - from;
        adx_[w] = abs64(delta.x);
        ady_[w] = abs64(delta.y);
        sx_[w] = delta.x < 0 ? -1 : 1;
        sy_[w] = delta.y < 0 ? -1 : 1;
        total_[w] = d;
        j_[w] = 0;
        px_[w] = 0;
        py_[w] = 0;
        destx_[w] = dest.x;
        desty_[w] = dest.y;
        // The path is monotone along both axes, and its node after step i
        // is at L1 distance exactly i from `from`; the target can be
        // visited only if it sits in the bounding box, and then only at
        // step i* = ‖target − from‖₁ with x-progress exactly tdx.
        const std::int64_t tdx = sx_[w] * (target.x - from.x);
        const std::int64_t tdy = sy_[w] * (target.y - from.y);
        if (tdx >= 0 && tdx <= adx_[w] && tdy >= 0 && tdy <= ady_[w] && tdx + tdy > 0) {
            istar_[w] = static_cast<std::uint64_t>(tdx + tdy);
            pxt_[w] = tdx;
        } else {
            istar_[w] = 0;
        }
        path_[w] = main_[w].substream(phase_[w]);
    }
    // Advance within the phase by at most the allowance (and the epoch
    // quantum, when set). Steps past the candidate i* can neither hit nor
    // influence any later draw — tie coins live on the throwaway per-phase
    // substream — so they are skipped arithmetically.
    const std::uint64_t j0 = j_[w];
    std::uint64_t take = std::min(total_[w] - j0, allowance - elapsed_[w]);
    if (opts_.epoch_steps != 0) take = std::min(take, opts_.epoch_steps);
    const std::uint64_t jend = j0 + take;
    if (istar_[w] != 0 && j0 < istar_[w]) {
        const std::uint64_t replay_to = std::min(jend, istar_[w]);
        while (j_[w] < replay_to) replay_step(w);
        if (j_[w] == istar_[w]) {
            if (px_[w] == pxt_[w]) {
                const std::uint64_t t = elapsed_[w] + (istar_[w] - j0);
                // Order-independent lex-min registration: better time, or
                // equal time from a smaller walker index.
                if (t < best.time || (t == best.time && (!best.hit || ids_[w] < best.winner))) {
                    best.hit = true;
                    best.time = t;
                    best.winner = ids_[w];
                }
                return true;  // first visit to the target: the walker is done
            }
            istar_[w] = 0;  // passed the only candidate step without hitting
        }
    }
    j_[w] = jend;
    elapsed_[w] += take;
    if (j_[w] == total_[w]) {
        x_[w] = destx_[w];
        y_[w] = desty_[w];
        total_[w] = 0;
    }
    return elapsed_[w] >= allowance;
}

walk_engine::best_state walk_engine::drive(point target, std::uint64_t budget) {
    best_state best;
    best.time = budget;
    std::size_t live = ids_.size();
    while (live > 0) {
        // One epoch: every live walker advances one phase (or quantum
        // chunk). The sweep re-reads `best` per walker, so an early hit
        // immediately shrinks everyone else's allowance; correctness never
        // depends on that — only the amount of pruned work does.
        for (std::size_t w = 0; w < live;) {
            const std::uint64_t allowance = best.hit ? best.time : budget;
            const bool retire =
                elapsed_[w] >= allowance || advance_one(w, allowance, target, best);
            if (retire) {
                swap_slots(w, live - 1);
                --live;
            } else {
                ++w;
            }
        }
    }
    return best;
}

hit_result walk_engine::run_single(double alpha, point target, std::uint64_t budget,
                                   const rng& stream, std::uint64_t cap) {
    if (target == origin) return {true, 0};
    clear(cap);
    spawn(0, alpha, stream);
    const best_state best = drive(target, budget);
    return {best.hit, best.time};
}

parallel_result walk_engine::run_parallel(std::size_t k, const exponent_strategy& strategy,
                                          point target, std::uint64_t budget,
                                          const rng& trial_stream, std::uint64_t cap) {
    parallel_result result;
    result.time = budget;
    if (k == 0) return result;
    if (target == origin) {
        // Every walker stands on the target at t = 0; walker 0 wins.
        result.hit = true;
        result.time = 0;
        result.winner = 0;
    } else {
        clear(cap);
        for (std::size_t i = 0; i < k; ++i) {
            rng stream = trial_stream.substream(i);
            const double alpha = strategy(i, stream);  // consumes the same draws as scalar
            spawn(i, alpha, stream);
        }
        const best_state best = drive(target, budget);
        result.hit = best.hit;
        result.time = best.time;
        result.winner = best.winner;
    }
    if (result.hit) {
        // Same winner-exponent replay as parallel_hit: strategy draws are a
        // pure function of (trial_stream, walker index).
        rng walk_stream = trial_stream.substream(result.winner);
        result.winner_alpha = strategy(result.winner, walk_stream);
    }
    return result;
}

}  // namespace levy::sim
