#include "src/sim/monte_carlo.h"

#include <algorithm>
#include <thread>

namespace levy::sim {

unsigned resolve_threads(unsigned threads) noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

void parallel_for(std::size_t n, unsigned threads, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(resolve_threads(threads), n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        pool.emplace_back([&, w] {
            // Strided assignment: trial costs are often monotone in the trial
            // parameters, so striding balances load better than blocks.
            for (std::size_t i = w; i < n; i += workers) fn(i);
        });
    }
    for (auto& t : pool) t.join();
}

}  // namespace levy::sim
