#include "src/sim/monte_carlo.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/obs/metrics.h"

namespace levy::sim {
namespace {

// Process-wide throughput accumulator. Doubles are accumulated as
// nanosecond counts so plain atomics suffice.
std::atomic<std::uint64_t> g_trials{0};
std::atomic<std::uint64_t> g_wall_ns{0};
std::atomic<std::uint64_t> g_busy_ns{0};
std::atomic<unsigned> g_max_workers{0};
std::atomic<std::uint64_t> g_censored{0};

/// Cooperative cancellation flag; set from signal handlers, so it must be
/// lock-free (static_assert'd below).
std::atomic<bool> g_cancel{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "request_cancel must stay async-signal-safe");

std::uint64_t to_ns(double seconds) {
    return static_cast<std::uint64_t>(seconds * 1e9);
}

}  // namespace

unsigned resolve_threads(unsigned threads) noexcept {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

pool_metrics parallel_for(std::size_t n, unsigned threads,
                          const std::function<void(std::size_t)>& fn, std::size_t chunk) {
    // Handles are resolved once; add() is a relaxed increment on this
    // thread's shard, so instrumentation stays off the per-item hot path.
    static const obs::counter phases = obs::get_counter("mc.phases");
    static const obs::counter items = obs::get_counter("mc.items");
    const pool_metrics m = thread_pool::instance().run(n, resolve_threads(threads), chunk, fn);
    record_metrics(m);
    phases.add();
    items.add(m.items);
    return m;
}

void request_cancel() noexcept { g_cancel.store(true, std::memory_order_relaxed); }

bool cancel_requested() noexcept { return g_cancel.load(std::memory_order_relaxed); }

void clear_cancel() noexcept { g_cancel.store(false, std::memory_order_relaxed); }

void throw_if_cancelled() {
    if (cancel_requested()) throw run_cancelled();
}

void note_censored() noexcept { g_censored.fetch_add(1, std::memory_order_relaxed); }

void record_metrics(const pool_metrics& m) noexcept {
    g_trials.fetch_add(m.items, std::memory_order_relaxed);
    g_wall_ns.fetch_add(to_ns(m.wall_seconds), std::memory_order_relaxed);
    g_busy_ns.fetch_add(to_ns(m.busy_seconds), std::memory_order_relaxed);
    unsigned seen = g_max_workers.load(std::memory_order_relaxed);
    while (seen < m.workers &&
           !g_max_workers.compare_exchange_weak(seen, m.workers, std::memory_order_relaxed)) {
    }
}

run_metrics metrics_snapshot() noexcept {
    run_metrics out;
    out.trials = g_trials.load(std::memory_order_relaxed);
    out.wall_seconds = static_cast<double>(g_wall_ns.load(std::memory_order_relaxed)) * 1e-9;
    out.busy_seconds = static_cast<double>(g_busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    out.max_workers = g_max_workers.load(std::memory_order_relaxed);
    out.censored = static_cast<std::size_t>(g_censored.load(std::memory_order_relaxed));
    return out;
}

void reset_metrics() noexcept {
    g_trials.store(0, std::memory_order_relaxed);
    g_wall_ns.store(0, std::memory_order_relaxed);
    g_busy_ns.store(0, std::memory_order_relaxed);
    g_max_workers.store(0, std::memory_order_relaxed);
    g_censored.store(0, std::memory_order_relaxed);
}

}  // namespace levy::sim
