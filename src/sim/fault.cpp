#include "src/sim/fault.h"

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/sim/monte_carlo.h"

namespace levy::sim {
namespace {

// The plan itself is written only while inactive (install before the run,
// clear after it drains); workers observe it through the active flag's
// acquire/release pair, so there is no concurrent plain-field access.
fault_plan g_plan;
std::atomic<bool> g_active{false};

}  // namespace

void install_fault_plan(const fault_plan& plan) noexcept {
    g_plan = plan;
    g_active.store(true, std::memory_order_release);
}

void clear_fault_plan() noexcept { g_active.store(false, std::memory_order_release); }

bool fault_plan_active() noexcept { return g_active.load(std::memory_order_acquire); }

void fault_before_trial(std::size_t index) {
    if (!fault_plan_active()) return;
    if (index == g_plan.exit_at_trial) {
        std::_Exit(9);  // SIGKILL-grade: no unwinding, no flushes
    }
    if (index == g_plan.throw_at_trial) {
        throw injected_fault("injected worker fault at trial " + std::to_string(index));
    }
    if (index == g_plan.bad_alloc_at_trial) {
        throw std::bad_alloc();
    }
}

void fault_after_trial(std::size_t index) noexcept {
    if (!fault_plan_active()) return;
    if (index == g_plan.cancel_after_trial) request_cancel();
}

void fault_before_query(std::size_t sequence) {
    if (!fault_plan_active()) return;
    if (sequence == g_plan.throw_at_query) {
        throw injected_fault("injected worker fault at query " + std::to_string(sequence));
    }
}

void fault_before_cache_flush(std::size_t ordinal) noexcept {
    if (!fault_plan_active()) return;
    if (ordinal == g_plan.exit_at_cache_flush) {
        std::_Exit(9);  // SIGKILL-grade: the flush never reaches the disk
    }
}

bool fault_on_shard_spill(std::size_t ordinal, std::vector<char>& bytes) noexcept {
    if (!fault_plan_active() || bytes.empty()) return false;
    if (ordinal == g_plan.exit_at_shard_spill) {
        std::_Exit(9);  // SIGKILL-grade: the spill never reaches the disk
    }
    if (ordinal == g_plan.short_shard_spill) {
        if (g_plan.short_shard_spill_bytes < bytes.size()) {
            // levylint:allow(throwing-call-in-noexcept) shrink-only resize:
            // the guard proves new size < current size, so no allocation
            bytes.resize(g_plan.short_shard_spill_bytes);
        }
        return true;
    }
    if (ordinal == g_plan.torn_shard_spill) {
        bytes[g_plan.torn_shard_spill_offset % bytes.size()] ^= static_cast<char>(0x40);
        return true;
    }
    return false;
}

namespace {
std::atomic<std::uint64_t> g_dir_fsyncs{0};
}  // namespace

void note_dir_fsync() noexcept { g_dir_fsyncs.fetch_add(1, std::memory_order_relaxed); }

std::uint64_t dir_fsync_count() noexcept { return g_dir_fsyncs.load(std::memory_order_relaxed); }

bool fault_on_checkpoint_flush(std::size_t ordinal, std::vector<char>& bytes) noexcept {
    if (!fault_plan_active() || bytes.empty()) return false;
    if (ordinal == g_plan.short_write_flush) {
        // levylint:allow(throwing-call-in-noexcept) shrink-only resize: the
        // guard proves new size < current size, so no allocation can happen
        if (g_plan.short_write_bytes < bytes.size()) bytes.resize(g_plan.short_write_bytes);
        return true;
    }
    if (ordinal == g_plan.torn_write_flush) {
        bytes[g_plan.torn_write_offset % bytes.size()] ^= static_cast<char>(0x40);
        return true;
    }
    return false;
}

}  // namespace levy::sim
