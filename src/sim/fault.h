#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace levy::sim {

/// Deterministic fault-injection plan for resilience tests.
///
/// Every trigger is keyed on a trial index or a checkpoint flush ordinal —
/// never on wall-clock time or external entropy — so a test that installs a
/// plan gets the same fault on every run (up to thread schedule, which the
/// checkpoint/resume layer is precisely designed to make irrelevant).
///
/// Install with `install_fault_plan`, clear with `clear_fault_plan`. The
/// hooks below are called by the Monte-Carlo driver and the checkpoint
/// journal; with no plan installed they compile down to one relaxed atomic
/// load. Production binaries never install a plan — only tests and the
/// `levyfault` tool do.
struct fault_plan {
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

    /// Throw levy::sim::injected_fault from the worker running this trial.
    std::size_t throw_at_trial = kNever;
    /// Throw std::bad_alloc from the worker running this trial (simulated
    /// allocation failure).
    std::size_t bad_alloc_at_trial = kNever;
    /// Call request_cancel() once this trial completes (SIGTERM-style
    /// cooperative cancellation).
    std::size_t cancel_after_trial = kNever;
    /// std::_Exit the whole process before this trial runs — a SIGKILL-grade
    /// crash: no destructors, no flushes, only already-renamed journal
    /// bytes survive. Used by the levyfault tool, never by in-process tests.
    std::size_t exit_at_trial = kNever;

    /// Truncate checkpoint flush number N to `short_write_bytes` bytes.
    std::size_t short_write_flush = kNever;
    std::size_t short_write_bytes = 0;
    /// XOR one byte (at `torn_write_offset` mod file size) of checkpoint
    /// flush number N.
    std::size_t torn_write_flush = kNever;
    std::size_t torn_write_offset = 0;

    /// --- Shard-spill faults (sim/shard_engine) ---------------------------
    /// std::_Exit the process when shard spill number N (1-based, counted
    /// across the run) is about to persist — a kill -9 mid-epoch: shards
    /// already renamed into place survive, everything else is recomputed on
    /// resume.
    std::size_t exit_at_shard_spill = kNever;
    /// Truncate shard spill number N to `short_shard_spill_bytes` bytes (a
    /// torn disk under the atomic-write layer). The corruption is detected
    /// at the next load by CRC and only that shard recomputes.
    std::size_t short_shard_spill = kNever;
    std::size_t short_shard_spill_bytes = 0;
    /// XOR one byte (at `torn_shard_spill_offset` mod file size) of shard
    /// spill number N.
    std::size_t torn_shard_spill = kNever;
    std::size_t torn_shard_spill_offset = 0;

    /// --- Service faults (levyserve; see src/serve/server.h) --------------
    /// Throw injected_fault from the worker handling query number N
    /// (0-based admission order) — a crashing handler must answer 500 and
    /// leave the server serving.
    std::size_t throw_at_query = kNever;
    /// std::_Exit the process when result-cache flush number N (1-based) is
    /// about to persist — a kill -9 "between cache flushes": the previous
    /// on-disk cache must survive and reload verbatim.
    std::size_t exit_at_cache_flush = kNever;
};

/// Thrown by fault_before_trial when the plan says a worker dies here.
class injected_fault : public std::runtime_error {
public:
    explicit injected_fault(const std::string& what) : std::runtime_error(what) {}
};

void install_fault_plan(const fault_plan& plan) noexcept;
void clear_fault_plan() noexcept;
[[nodiscard]] bool fault_plan_active() noexcept;

/// Hook: start of trial `index`. May throw injected_fault / std::bad_alloc
/// or _Exit the process, per the installed plan.
void fault_before_trial(std::size_t index);

/// Hook: trial `index` completed. May request cooperative cancellation.
void fault_after_trial(std::size_t index) noexcept;

/// Hook: the journal is about to persist `bytes` as flush number `ordinal`.
/// Applies the plan's short/torn-write mutation in place and returns true
/// when a fault fired (the journal then plays dead so the corruption
/// survives on disk).
[[nodiscard]] bool fault_on_checkpoint_flush(std::size_t ordinal,
                                             std::vector<char>& bytes) noexcept;

/// Hook: a levyserve worker is about to run query number `sequence`. May
/// throw injected_fault per the installed plan.
void fault_before_query(std::size_t sequence);

/// Hook: the result cache is about to persist flush number `ordinal`
/// (1-based). May _Exit the process per the installed plan — the bytes are
/// assembled but nothing has been renamed into place yet.
void fault_before_cache_flush(std::size_t ordinal) noexcept;

/// Hook: the shard engine is about to persist spill number `ordinal`
/// (1-based). May _Exit the process, or apply the plan's short/torn-write
/// mutation in place and return true when a fault fired — the engine still
/// writes the mutated bytes, so the corruption lands on disk exactly like a
/// real torn write under the rename.
[[nodiscard]] bool fault_on_shard_spill(std::size_t ordinal, std::vector<char>& bytes) noexcept;

/// Durability observability: atomic_write_file calls note_dir_fsync() after
/// it has fsynced the parent directory of a rename, and tests read the
/// running total via dir_fsync_count() to pin the rename-durability rule
/// (see DESIGN.md §11). Always on — one relaxed atomic increment — so the
/// regression test does not depend on a fault plan being installed.
void note_dir_fsync() noexcept;
[[nodiscard]] std::uint64_t dir_fsync_count() noexcept;

}  // namespace levy::sim
