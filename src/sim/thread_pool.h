#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace levy::sim {

/// What one parallel run cost: wall time on the calling thread, busy time
/// summed over every participating worker (caller included), and the
/// schedule actually used. `utilization()` near 1 means the chunked queue
/// kept every worker fed; well below 1 means tail-heavy items left workers
/// idle (try a smaller chunk).
struct pool_metrics {
    std::size_t items = 0;
    std::size_t chunk = 1;
    unsigned workers = 1;
    double wall_seconds = 0.0;
    double busy_seconds = 0.0;

    /// 0 (not 1) when no capacity was measured: an empty run is idle.
    [[nodiscard]] double utilization() const noexcept {
        const double capacity = wall_seconds * static_cast<double>(workers);
        return capacity > 0.0 ? busy_seconds / capacity : 0.0;
    }
};

/// Persistent, process-wide worker pool behind `sim::parallel_for`.
///
/// Workers are spawned once (lazily, on the first parallel run that needs
/// them) and then sleep between runs, so a bench sweeping hundreds of table
/// rows pays thread-creation cost once instead of per row. Work is handed
/// out in chunks claimed from an atomic counter — a dynamic schedule, so the
/// heavy-tailed per-trial costs typical of Lévy searches balance across
/// workers instead of serializing behind the unluckiest stride.
///
/// Exceptions: the first exception thrown by `fn` is captured, the
/// remaining chunks are abandoned, and the exception is rethrown on the
/// calling thread once every worker has drained — a throwing trial surfaces
/// to the caller instead of hitting std::terminate.
///
/// Determinism: the pool never feeds scheduling state into `fn`; as long as
/// `fn(i)` depends only on `i` (the Monte-Carlo driver derives each trial's
/// RNG purely from (seed, trial_index)), results are bit-identical for every
/// worker count and chunk size.
class thread_pool {
public:
    /// The process-wide pool. Never destroyed before exit.
    [[nodiscard]] static thread_pool& instance();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;
    ~thread_pool();

    /// Run `fn(i)` for i in [0, n) with up to `parallelism` concurrent
    /// workers (the calling thread participates). `chunk == 0` picks
    /// `auto_chunk`. Runs inline when one worker suffices or when called
    /// from inside a pool worker (nested parallelism stays serial rather
    /// than deadlocking). Concurrent calls from distinct external threads
    /// serialize. `fn` must be safe to call concurrently for distinct i.
    pool_metrics run(std::size_t n, unsigned parallelism, std::size_t chunk,
                     const std::function<void(std::size_t)>& fn);

    /// Workers spawned so far (grows on demand, bounded by kMaxWorkers).
    [[nodiscard]] unsigned spawned_workers() const noexcept;

    /// Default chunk size: ~8 chunks per worker so the dynamic queue can
    /// rebalance around expensive items, clamped to [1, 1024] to bound
    /// atomic traffic on huge runs.
    [[nodiscard]] static std::size_t auto_chunk(std::size_t n, unsigned workers) noexcept;

    static constexpr unsigned kMaxWorkers = 256;

private:
    thread_pool();

    struct job;
    struct impl;
    impl* impl_;

    void worker_loop(unsigned index);
    void execute(job& j);
};

}  // namespace levy::sim
