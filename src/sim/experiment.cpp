#include "src/sim/experiment.h"

#include <charconv>
#include <csignal>
#include <filesystem>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LEVY_HAVE_FSYNC 1
#else
#define LEVY_HAVE_FSYNC 0
#endif

#include "src/core/contracts.h"
#include "src/obs/metrics.h"
#include "src/rng/splitmix64.h"

namespace levy::sim {
namespace {

template <class T>
T parse_number(std::string_view text, std::string_view flag) {
    T value{};
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::invalid_argument("invalid value for --" + std::string(flag) + ": " +
                                    std::string(text));
    }
    return value;
}

/// fsync every this many rows: bounded loss on kill without a syscall per row.
constexpr std::size_t kCsvSyncBatch = 64;

/// Byte count with an optional binary-multiple suffix: "64M", "2G", "4096".
std::uint64_t parse_bytes(std::string_view text, std::string_view flag) {
    std::uint64_t multiplier = 1;
    const char last = text.back();  // callers guarantee non-empty
    switch (last) {
        case 'K': case 'k': multiplier = 1ULL << 10; break;
        case 'M': case 'm': multiplier = 1ULL << 20; break;
        case 'G': case 'g': multiplier = 1ULL << 30; break;
        case 'T': case 't': multiplier = 1ULL << 40; break;
        default: break;
    }
    if (multiplier != 1) text.remove_suffix(1);
    const auto value = parse_number<std::uint64_t>(text, flag);
    if (value != 0 && value > std::numeric_limits<std::uint64_t>::max() / multiplier) {
        throw std::invalid_argument("value overflows for --" + std::string(flag));
    }
    return value * multiplier;
}

std::string hex64(std::uint64_t v) {
    std::ostringstream out;
    out << std::hex << v;
    return out.str();
}

extern "C" void levy_sim_sigterm_handler(int) { request_cancel(); }

}  // namespace

void cancel_on_sigterm() noexcept {
    clear_cancel();
    std::signal(SIGTERM, levy_sim_sigterm_handler);
}

mc_options run_options::mc(std::size_t default_trials, std::uint64_t salt) const {
    mc_options opts;
    opts.trials = trials != 0 ? trials : default_trials;
    opts.threads = threads;
    opts.chunk = chunk;
    opts.seed = salt == 0 ? seed : mix64(seed, salt);
    if (!checkpoint_dir.empty()) {
        // One journal per Monte-Carlo phase, keyed by its (salted) seed and
        // trial count — exactly the identity the journal header validates.
        opts.checkpoint_path = checkpoint_dir + "/mc-" + hex64(opts.seed) + "-" +
                               std::to_string(opts.trials) + ".ckpt";
        opts.checkpoint_interval = checkpoint_interval;
    }
    return opts;
}

std::string format_throughput(const run_metrics& m) {
    if (m.trials == 0) return {};
    std::ostringstream out;
    out.precision(3);
    out << "throughput: " << m.trials << " trials in " << m.wall_seconds << " s ("
        << static_cast<std::uint64_t>(m.trials_per_sec()) << " trials/s, " << m.max_workers
        << (m.max_workers == 1 ? " worker" : " workers") << ", ";
    if (m.wall_seconds * static_cast<double>(m.max_workers) > 0.0) {
        out << static_cast<int>(m.utilization() * 100.0 + 0.5) << "% utilization)";
    } else {
        out << "utilization n/a)";
    }
    if (m.censored > 0) {
        out << " [" << m.censored << " censored by --max-steps-per-trial]";
    }
    return out.str();
}

run_options parse_run_options(int argc, char** argv) {
    run_options opts;
    std::set<std::string, std::less<>> seen;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        // Matches "--<flag>=<value>"; rejects empty values and repeats.
        const auto eat = [&](std::string_view flag) -> std::string_view {
            if (arg.substr(0, flag.size()) != flag || arg.size() <= flag.size() ||
                arg[flag.size()] != '=') {
                return {};
            }
            if (!seen.emplace(flag).second) {
                throw std::invalid_argument("duplicate flag: " + std::string(flag));
            }
            const std::string_view value = arg.substr(flag.size() + 1);
            if (value.empty()) {
                throw std::invalid_argument("empty value for " + std::string(flag));
            }
            return value;
        };
        if (auto v = eat("--trials"); !v.empty()) {
            opts.trials = parse_number<std::size_t>(v, "trials");
        } else if (auto s = eat("--scale"); !s.empty()) {
            opts.scale = parse_number<double>(s, "scale");
        } else if (auto t = eat("--threads"); !t.empty()) {
            opts.threads = parse_number<unsigned>(t, "threads");
        } else if (auto k = eat("--chunk"); !k.empty()) {
            opts.chunk = parse_number<std::size_t>(k, "chunk");
        } else if (auto x = eat("--seed"); !x.empty()) {
            opts.seed = parse_number<std::uint64_t>(x, "seed");
        } else if (auto c = eat("--csv"); !c.empty()) {
            opts.csv_path = std::string(c);
        } else if (auto d = eat("--checkpoint"); !d.empty()) {
            opts.checkpoint_dir = std::string(d);
        } else if (auto n = eat("--checkpoint-interval"); !n.empty()) {
            opts.checkpoint_interval = parse_number<std::size_t>(n, "checkpoint-interval");
        } else if (auto m = eat("--max-steps-per-trial"); !m.empty()) {
            opts.max_trial_steps = parse_number<std::uint64_t>(m, "max-steps-per-trial");
        } else if (auto j = eat("--json"); !j.empty()) {
            opts.json_path = std::string(j);
        } else if (auto jd = eat("--json-dir"); !jd.empty()) {
            opts.json_dir = std::string(jd);
        } else if (auto tr = eat("--trace"); !tr.empty()) {
            opts.trace_path = std::string(tr);
        } else if (arg == "--progress") {
            // The one value-less flag: "--progress" alone means the default
            // interval, so it takes the same duplicate bookkeeping by hand.
            if (!seen.emplace("--progress").second) {
                throw std::invalid_argument("duplicate flag: --progress");
            }
            opts.progress_seconds = 2.0;
        } else if (auto p = eat("--progress"); !p.empty()) {
            opts.progress_seconds = parse_number<double>(p, "progress");
        } else if (auto mp = eat("--metrics-port"); !mp.empty()) {
            opts.metrics_port = parse_number<int>(mp, "metrics-port");
        } else if (auto en = eat("--engine"); !en.empty()) {
            if (en == "scalar") {
                opts.engine = engine_kind::scalar;
            } else if (en == "batch") {
                opts.engine = engine_kind::batch;
            } else {
                throw std::invalid_argument("--engine must be scalar or batch, got: " +
                                            std::string(en));
            }
        } else if (auto cp = eat("--cap"); !cp.empty()) {
            const auto cap = parse_number<std::uint64_t>(cp, "cap");
            opts.cap = cap == 0 ? kNoCap : cap;
        } else if (auto dm = eat("--deadline-ms"); !dm.empty()) {
            // Parsed signed so "-5" reaches the precondition (an unsigned
            // parse would report it as a malformed number instead).
            const auto v = parse_number<std::int64_t>(dm, "deadline-ms");
            LEVY_PRECONDITION(v > 0, "--deadline-ms must be > 0");
            opts.deadline_ms = static_cast<std::uint64_t>(v);
        } else if (auto qc = eat("--queue-capacity"); !qc.empty()) {
            const auto v = parse_number<std::int64_t>(qc, "queue-capacity");
            LEVY_PRECONDITION(v > 0, "--queue-capacity must be > 0");
            opts.queue_capacity = static_cast<std::size_t>(v);
        } else if (auto sh = eat("--shards"); !sh.empty()) {
            opts.shards = parse_number<std::size_t>(sh, "shards");
        } else if (auto mb = eat("--memory-budget"); !mb.empty()) {
            opts.memory_budget = parse_bytes(mb, "memory-budget");
        } else if (auto sd = eat("--spill-dir"); !sd.empty()) {
            opts.spill_dir = std::string(sd);
        } else if (auto sr = eat("--sync-rounds"); !sr.empty()) {
            opts.sync_rounds = parse_number<std::size_t>(sr, "sync-rounds");
        } else if (auto es = eat("--epoch-steps"); !es.empty()) {
            opts.epoch_steps = parse_number<std::uint64_t>(es, "epoch-steps");
        } else if (arg == "--help" || arg == "-h") {
            throw std::invalid_argument(
                "usage: [--trials=N] [--scale=S] [--threads=T] [--chunk=C] [--seed=X] "
                "[--csv=PATH] [--checkpoint=DIR] [--checkpoint-interval=K] "
                "[--max-steps-per-trial=M] [--json=PATH|-] [--json-dir=DIR] [--trace=PATH] "
                "[--progress[=SECS]] [--metrics-port=P] [--engine=scalar|batch] [--cap=C] "
                "[--deadline-ms=D] [--queue-capacity=Q] [--shards=S] [--memory-budget=B] "
                "[--spill-dir=DIR] [--sync-rounds=R] [--epoch-steps=N]");
        } else {
            throw std::invalid_argument("unknown argument: " + std::string(arg));
        }
    }
    obs::get_counter("cli.flags_parsed").add(seen.size());
    if (!(opts.scale > 0.0)) throw std::invalid_argument("--scale must be positive");
    if (opts.checkpoint_interval == 0) {
        throw std::invalid_argument("--checkpoint-interval must be >= 1");
    }
    if (seen.count("--progress") != 0 && !(opts.progress_seconds > 0.0)) {
        throw std::invalid_argument("--progress interval must be positive");
    }
    if (opts.metrics_port != -1 && (opts.metrics_port < 0 || opts.metrics_port > 65535)) {
        throw std::invalid_argument("--metrics-port must be in [0, 65535]");
    }
    return opts;
}

std::string default_json_path(const run_options& opts, const std::string& id) {
    if (opts.json_path == "-") return {};
    if (!opts.json_path.empty()) return opts.json_path;
    if (!opts.json_dir.empty()) return opts.json_dir + "/BENCH_" + id + ".json";
    return {};
}

std::vector<std::pair<std::string, std::string>> describe_options(const run_options& opts) {
    std::vector<std::pair<std::string, std::string>> out;
    // Every flag is recorded, defaults included, so a result document is
    // self-describing without the reader knowing the defaults of the build
    // that wrote it.
    out.emplace_back("trials", std::to_string(opts.trials));
    {
        std::ostringstream s;
        s << opts.scale;
        out.emplace_back("scale", s.str());
    }
    out.emplace_back("threads", std::to_string(opts.threads));
    out.emplace_back("chunk", std::to_string(opts.chunk));
    out.emplace_back("seed", "0x" + hex64(opts.seed));
    if (!opts.csv_path.empty()) out.emplace_back("csv", opts.csv_path);
    if (!opts.checkpoint_dir.empty()) {
        out.emplace_back("checkpoint", opts.checkpoint_dir);
        out.emplace_back("checkpoint-interval", std::to_string(opts.checkpoint_interval));
    }
    if (opts.max_trial_steps != 0) {
        out.emplace_back("max-steps-per-trial", std::to_string(opts.max_trial_steps));
    }
    if (!opts.trace_path.empty()) out.emplace_back("trace", opts.trace_path);
    if (opts.progress_seconds > 0.0) {
        std::ostringstream s;
        s << opts.progress_seconds;
        out.emplace_back("progress", s.str());
    }
    if (opts.metrics_port >= 0) {
        out.emplace_back("metrics-port", std::to_string(opts.metrics_port));
    }
    out.emplace_back("engine", opts.engine == engine_kind::batch ? "batch" : "scalar");
    if (opts.cap != kNoCap) out.emplace_back("cap", std::to_string(opts.cap));
    if (opts.deadline_ms != 0) {
        out.emplace_back("deadline-ms", std::to_string(opts.deadline_ms));
    }
    if (opts.queue_capacity != 0) {
        out.emplace_back("queue-capacity", std::to_string(opts.queue_capacity));
    }
    if (opts.shards > 1) out.emplace_back("shards", std::to_string(opts.shards));
    if (opts.memory_budget != 0) {
        out.emplace_back("memory-budget", std::to_string(opts.memory_budget));
    }
    if (!opts.spill_dir.empty()) out.emplace_back("spill-dir", opts.spill_dir);
    if (opts.sync_rounds != 1) {
        out.emplace_back("sync-rounds", std::to_string(opts.sync_rounds));
    }
    if (opts.epoch_steps != 0) {
        out.emplace_back("epoch-steps", std::to_string(opts.epoch_steps));
    }
    return out;
}

csv_writer::csv_writer(const std::string& path) : path_(path) {
    const std::filesystem::path parent = std::filesystem::path(path).parent_path();
    LEVY_PRECONDITION(parent.empty() || std::filesystem::is_directory(parent),
                      "csv_writer: parent directory of --csv path does not exist: " + path);
    const std::string tmp = path_ + ".tmp";
    out_ = std::fopen(tmp.c_str(), "wb");
    if (out_ == nullptr) throw std::runtime_error("csv_writer: cannot open " + tmp);
}

csv_writer::csv_writer(csv_writer&& other) noexcept
    : path_(std::move(other.path_)),
      out_(other.out_),
      rows_since_sync_(other.rows_since_sync_) {
    other.out_ = nullptr;
}

csv_writer& csv_writer::operator=(csv_writer&& other) noexcept {
    if (this != &other) {
        try {
            close();
        } catch (...) {
        }
        path_ = std::move(other.path_);
        out_ = other.out_;
        rows_since_sync_ = other.rows_since_sync_;
        other.out_ = nullptr;
    }
    return *this;
}

csv_writer::~csv_writer() {
    try {
        close();
    } catch (...) {
        // Destructor commit is best effort; call close() for loud failures.
    }
}

void csv_writer::close() {
    if (!active()) return;
    std::FILE* f = out_;
    out_ = nullptr;
    bool ok = std::fflush(f) == 0;
#if LEVY_HAVE_FSYNC
    ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    const std::string tmp = path_ + ".tmp";
    if (!ok) {
        std::remove(tmp.c_str());
        throw std::runtime_error("csv_writer: failed writing " + tmp);
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw std::runtime_error("csv_writer: cannot rename " + tmp + " -> " + path_);
    }
}

void csv_writer::header(const std::vector<std::string>& cells) { line(cells); }
void csv_writer::row(const std::vector<std::string>& cells) { line(cells); }

void csv_writer::line(const std::vector<std::string>& cells) {
    if (!active()) return;
    std::string buf;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) buf += ',';
        const std::string& cell = cells[i];
        if (cell.find_first_of(",\"\n") != std::string::npos) {
            buf += '"';
            for (char ch : cell) {
                if (ch == '"') buf += '"';
                buf += ch;
            }
            buf += '"';
        } else {
            buf += cell;
        }
    }
    buf += '\n';
    if (std::fwrite(buf.data(), 1, buf.size(), out_) != buf.size()) {
        throw std::runtime_error("csv_writer: short write to " + path_ + ".tmp");
    }
    if (++rows_since_sync_ >= kCsvSyncBatch) {
        rows_since_sync_ = 0;
        bool ok = std::fflush(out_) == 0;
#if LEVY_HAVE_FSYNC
        ok = ::fsync(::fileno(out_)) == 0 && ok;
#endif
        if (!ok) throw std::runtime_error("csv_writer: flush failed for " + path_ + ".tmp");
    }
}

}  // namespace levy::sim
