#include "src/sim/experiment.h"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "src/rng/splitmix64.h"

namespace levy::sim {
namespace {

template <class T>
T parse_number(std::string_view text, std::string_view flag) {
    T value{};
    const auto* begin = text.data();
    const auto* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        throw std::invalid_argument("invalid value for --" + std::string(flag) + ": " +
                                    std::string(text));
    }
    return value;
}

}  // namespace

mc_options run_options::mc(std::size_t default_trials, std::uint64_t salt) const {
    mc_options opts;
    opts.trials = trials != 0 ? trials : default_trials;
    opts.threads = threads;
    opts.chunk = chunk;
    opts.seed = salt == 0 ? seed : mix64(seed, salt);
    return opts;
}

std::string format_throughput(const run_metrics& m) {
    if (m.trials == 0) return {};
    std::ostringstream out;
    out.precision(3);
    out << "throughput: " << m.trials << " trials in " << m.wall_seconds << " s ("
        << static_cast<std::uint64_t>(m.trials_per_sec()) << " trials/s, " << m.max_workers
        << (m.max_workers == 1 ? " worker" : " workers") << ", "
        << static_cast<int>(m.utilization() * 100.0 + 0.5) << "% utilization)";
    return out.str();
}

run_options parse_run_options(int argc, char** argv) {
    run_options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto eat = [&](std::string_view flag) -> std::string_view {
            const std::string_view prefix_eq = flag;
            if (arg.substr(0, prefix_eq.size()) == prefix_eq &&
                arg.size() > prefix_eq.size() && arg[prefix_eq.size()] == '=') {
                return arg.substr(prefix_eq.size() + 1);
            }
            return {};
        };
        if (auto v = eat("--trials"); !v.empty()) {
            opts.trials = parse_number<std::size_t>(v, "trials");
        } else if (auto s = eat("--scale"); !s.empty()) {
            opts.scale = parse_number<double>(s, "scale");
        } else if (auto t = eat("--threads"); !t.empty()) {
            opts.threads = parse_number<unsigned>(t, "threads");
        } else if (auto k = eat("--chunk"); !k.empty()) {
            opts.chunk = parse_number<std::size_t>(k, "chunk");
        } else if (auto x = eat("--seed"); !x.empty()) {
            opts.seed = parse_number<std::uint64_t>(x, "seed");
        } else if (auto c = eat("--csv"); !c.empty()) {
            opts.csv_path = std::string(c);
        } else if (arg == "--help" || arg == "-h") {
            throw std::invalid_argument(
                "usage: [--trials=N] [--scale=S] [--threads=T] [--chunk=C] [--seed=X] "
                "[--csv=PATH]");
        } else {
            throw std::invalid_argument("unknown argument: " + std::string(arg));
        }
    }
    if (!(opts.scale > 0.0)) throw std::invalid_argument("--scale must be positive");
    return opts;
}

csv_writer::csv_writer(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("csv_writer: cannot open " + path);
}

void csv_writer::header(const std::vector<std::string>& cells) { line(cells); }
void csv_writer::row(const std::vector<std::string>& cells) { line(cells); }

void csv_writer::line(const std::vector<std::string>& cells) {
    if (!active()) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0) out_ << ',';
        const std::string& cell = cells[i];
        if (cell.find_first_of(",\"\n") != std::string::npos) {
            out_ << '"';
            for (char ch : cell) {
                if (ch == '"') out_ << '"';
                out_ << ch;
            }
            out_ << '"';
        } else {
            out_ << cell;
        }
    }
    out_ << '\n';
}

}  // namespace levy::sim
