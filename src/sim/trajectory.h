#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/jump_process.h"
#include "src/grid/point.h"

namespace levy::sim {

/// Displacement statistics of a trajectory prefix — the raw material for
/// the anomalous-diffusion ablation (E13) and the "stays inside a ball of
/// radius t_ℓ·polylog" ingredient of the paper's §1.2.1 overview.
struct displacement_stats {
    std::int64_t final_l1 = 0;   ///< ‖position after t steps‖₁ (from start)
    std::int64_t max_l1 = 0;     ///< max over the prefix
    std::uint64_t steps = 0;
};

/// Run `proc` for `t` steps, tracking L1 displacement from its start node.
template <jump_process P>
displacement_stats run_displacement(P& proc, std::uint64_t t) {
    const point start = proc.position();
    displacement_stats out;
    for (std::uint64_t i = 0; i < t; ++i) {
        const point p = proc.step();
        const std::int64_t d = l1_distance(p, start);
        if (d > out.max_l1) out.max_l1 = d;
    }
    out.final_l1 = l1_distance(proc.position(), start);
    out.steps = t;
    return out;
}

/// First passage out of the ball B_{r-1}: the first step t at which the
/// process sits at L1 distance >= r from its start node (the quantity t_i
/// of Lemma 3.11's proof, with r = λ_i). Returns the budget when the radius
/// is never reached; `reached` disambiguates.
struct first_passage_result {
    bool reached = false;
    std::uint64_t time = 0;
};

template <jump_process P>
first_passage_result first_passage_radius(P& proc, std::int64_t radius, std::uint64_t budget) {
    const point start = proc.position();
    if (radius <= 0) return {true, 0};
    for (std::uint64_t t = 1; t <= budget; ++t) {
        if (l1_distance(proc.step(), start) >= radius) return {true, t};
    }
    return {false, budget};
}

/// Z_u(t): number of visits to `u` during steps 1..t (Def. in §3.1).
template <jump_process P>
std::uint64_t count_visits(P& proc, point u, std::uint64_t t) {
    std::uint64_t visits = 0;
    for (std::uint64_t i = 0; i < t; ++i) {
        if (proc.step() == u) ++visits;
    }
    return visits;
}

/// Full visit census over a trajectory prefix: how many times each node was
/// occupied during steps 1..t. Memory is O(#distinct nodes) — keep t modest.
template <jump_process P>
std::unordered_map<point, std::uint64_t, point_hash> visit_census(P& proc, std::uint64_t t) {
    std::unordered_map<point, std::uint64_t, point_hash> census;
    for (std::uint64_t i = 0; i < t; ++i) ++census[proc.step()];
    return census;
}

/// Record the positions after steps 1..t (plus the start at index 0).
template <jump_process P>
std::vector<point> record_trajectory(P& proc, std::uint64_t t) {
    std::vector<point> traj;
    traj.reserve(t + 1);
    traj.push_back(proc.position());
    for (std::uint64_t i = 0; i < t; ++i) traj.push_back(proc.step());
    return traj;
}

}  // namespace levy::sim
