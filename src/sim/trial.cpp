#include "src/sim/trial.h"

#include <algorithm>

#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/sim/shard_engine.h"
#include "src/sim/walk_engine.h"

namespace levy::sim {
namespace {

/// The steps a trial actually runs: the watchdog cap, when set, truncates
/// the intended budget.
std::uint64_t effective_budget(std::uint64_t budget, std::uint64_t max_steps) noexcept {
    return max_steps == 0 ? budget : std::min(budget, max_steps);
}

/// Mark a truncated miss as censored (and count it in the process metrics).
template <class R>
R finish(R r, std::uint64_t ran, std::uint64_t intended) {
    if (!r.hit && ran < intended) {
        r.censored = true;
        note_censored();
    }
    return r;
}

}  // namespace

hit_result single_walk_trial(const single_walk_config& cfg, rng stream) {
    const std::uint64_t ran = effective_budget(cfg.budget, cfg.max_steps);
    if (cfg.engine == engine_kind::batch) {
        return finish(walk_engine::local().run_single(cfg.alpha, target_at(cfg.ell), ran,
                                                      stream, cfg.cap),
                      ran, cfg.budget);
    }
    levy_walk walk(cfg.alpha, stream, origin, cfg.cap);
    return finish(hit_within(walk, point_target{target_at(cfg.ell)}, ran), ran, cfg.budget);
}

stats::proportion single_hit_probability(const single_walk_config& cfg, const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return single_walk_trial(cfg, g).hit; });
}

hit_result single_flight_trial(const single_walk_config& cfg, rng stream) {
    levy_flight flight(cfg.alpha, stream, origin, cfg.cap);
    const std::uint64_t ran = effective_budget(cfg.budget, cfg.max_steps);
    return finish(hit_within(flight, point_target{target_at(cfg.ell)}, ran), ran, cfg.budget);
}

stats::proportion flight_hit_probability(const single_walk_config& cfg, const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return single_flight_trial(cfg, g).hit; });
}

parallel_result parallel_walk_trial(const parallel_walk_config& cfg, rng stream) {
    const std::uint64_t ran = effective_budget(cfg.budget, cfg.max_steps);
    if (cfg.engine == engine_kind::batch) {
        if (cfg.shards > 1 || cfg.memory_budget > 0) {
            shard_options sopts;
            sopts.shards = cfg.shards;
            sopts.memory_budget = cfg.memory_budget;
            sopts.spill_dir = cfg.spill_dir;
            sopts.sync_rounds = cfg.sync_rounds;
            sopts.epoch_steps = cfg.epoch_steps;
            return finish(sharded_walk_engine::local().run_parallel(
                              cfg.k, cfg.strategy, target_at(cfg.ell), ran, stream, cfg.cap,
                              sopts),
                          ran, cfg.budget);
        }
        return finish(walk_engine::local().run_parallel(cfg.k, cfg.strategy, target_at(cfg.ell),
                                                        ran, stream, cfg.cap),
                      ran, cfg.budget);
    }
    return finish(parallel_hit(cfg.k, cfg.strategy, target_at(cfg.ell), ran, stream, cfg.cap),
                  ran, cfg.budget);
}

stats::proportion parallel_hit_probability(const parallel_walk_config& cfg,
                                           const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return parallel_walk_trial(cfg, g).hit; });
}

hitting_time_sample parallel_hitting_times(const parallel_walk_config& cfg,
                                           const mc_options& opts) {
    const auto results = monte_carlo_collect(
        opts, [&cfg](std::size_t, rng& g) { return parallel_walk_trial(cfg, g); });
    hitting_time_sample out;
    out.times.reserve(results.size());
    for (const auto& r : results) {
        out.times.push_back(static_cast<double>(r.time));
        out.hits += r.hit ? 1 : 0;
        out.censored += r.censored ? 1 : 0;
    }
    return out;
}

}  // namespace levy::sim
