#include "src/sim/trial.h"

#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"

namespace levy::sim {

hit_result single_walk_trial(const single_walk_config& cfg, rng stream) {
    levy_walk walk(cfg.alpha, stream, origin, cfg.cap);
    return hit_within(walk, point_target{target_at(cfg.ell)}, cfg.budget);
}

stats::proportion single_hit_probability(const single_walk_config& cfg, const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return single_walk_trial(cfg, g).hit; });
}

hit_result single_flight_trial(const single_walk_config& cfg, rng stream) {
    levy_flight flight(cfg.alpha, stream, origin, cfg.cap);
    return hit_within(flight, point_target{target_at(cfg.ell)}, cfg.budget);
}

stats::proportion flight_hit_probability(const single_walk_config& cfg, const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return single_flight_trial(cfg, g).hit; });
}

parallel_result parallel_walk_trial(const parallel_walk_config& cfg, rng stream) {
    return parallel_hit(cfg.k, cfg.strategy, target_at(cfg.ell), cfg.budget, stream, cfg.cap);
}

stats::proportion parallel_hit_probability(const parallel_walk_config& cfg,
                                           const mc_options& opts) {
    return estimate_probability(
        opts, [&cfg](std::size_t, rng& g) { return parallel_walk_trial(cfg, g).hit; });
}

hitting_time_sample parallel_hitting_times(const parallel_walk_config& cfg,
                                           const mc_options& opts) {
    const auto results = monte_carlo_collect(
        opts, [&cfg](std::size_t, rng& g) { return parallel_walk_trial(cfg, g); });
    hitting_time_sample out;
    out.times.reserve(results.size());
    for (const auto& r : results) {
        out.times.push_back(static_cast<double>(r.time));
        out.hits += r.hit ? 1 : 0;
    }
    return out;
}

}  // namespace levy::sim
