#pragma once

#include <cstdint>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"

namespace levy::sim {

struct engine_options {
    /// Maximum lattice steps a walker advances inside one epoch before it
    /// suspends mid-phase (0 = always run the phase to completion). Results
    /// are invariant under this knob — it exists so tests can force every
    /// suspension/compaction path — but small quanta cost extra epochs, so
    /// production runs keep the default.
    std::uint64_t epoch_steps = 0;
};

/// Lex-min (hitting time, walker id) accumulator shared by the in-memory
/// batch engine and the out-of-core sharded engine. The registration rule
/// is order-independent — better time wins, equal time goes to the smaller
/// walker index — so epoch interleaving, shard ordering, and partial-state
/// recovery cannot change the final minimum.
struct best_state {
    bool hit = false;
    std::uint64_t time = 0;
    std::size_t winner = parallel_result::kNoWinner;

    /// Fold `other`'s record in, keeping the lex-min (time, winner).
    void merge(const best_state& other) noexcept {
        if (!other.hit) return;
        if (!hit || other.time < time || (other.time == time && other.winner < winner)) {
            hit = true;
            time = other.time;
            winner = other.winner;
        }
    }
};

/// Per-run jump-distribution cache keyed by (α bit pattern) for the run's
/// cap; a plain vector with linear scan — strategies use few distinct
/// exponents per trial, and ordered scans keep results layout-independent.
/// Shared by every walker block of a run (sharded or not); rebuilds are
/// deterministic, so pooling and eviction never affect results.
class dist_cache {
public:
    /// Prepare for a run with this cap: entries for another cap — or an
    /// overgrown cache — are useless, so they are dropped and walkers
    /// rebuild on demand.
    void reset(std::uint64_t cap);

    /// Find-or-create the entry for `alpha`; the returned index stays valid
    /// until the next reset() (the cache only grows within a run).
    [[nodiscard]] std::uint32_t index_for(double alpha);
    [[nodiscard]] std::uint32_t index_for_bits(std::uint64_t alpha_bits);

    /// The α bit pattern of entry `ix` — the stable key a spilled walker
    /// stores so restore can re-resolve its index.
    [[nodiscard]] std::uint64_t alpha_bits(std::uint32_t ix) const noexcept {
        return entries_[ix].alpha_bits;
    }

    [[nodiscard]] const jump_distribution& at(std::uint32_t ix) const noexcept {
        return entries_[ix].dist;
    }

    [[nodiscard]] std::uint64_t cap() const noexcept { return cap_; }

private:
    struct entry {
        std::uint64_t alpha_bits;
        jump_distribution dist;
    };
    std::uint64_t cap_ = kNoCap;
    std::vector<entry> entries_;
};

/// Dense structure-of-arrays block of in-flight walkers — the unit of
/// advancement shared by the in-memory batch engine (one block per trial)
/// and the out-of-core sharded engine (one block per resident shard).
///
/// Holds each walker's position, elapsed budget, per-walker main/path RNG
/// streams, and the residue of the phase in progress (axis deltas, Bresenham
/// progress, remaining steps). Walkers that hit or exhaust their allowance
/// retire by swap-with-last compaction, so the live prefix stays dense.
///
/// A block serializes its live walkers to a flat little-endian byte layout
/// (`kBytesPerWalker` per walker) and restores them bit-exactly, including
/// mid-phase RNG positions — the spill format of sim/shard_engine.
class walker_block {
public:
    void clear();
    [[nodiscard]] std::size_t live() const noexcept { return ids_.size(); }

    /// Least elapsed step count over the live walkers (max u64 when none) —
    /// the sharded engine's measure of how far a residency has advanced.
    [[nodiscard]] std::uint64_t min_live_elapsed() const noexcept;

    /// Add walker `id` with exponent `alpha`, its stream positioned after
    /// the strategy's exponent draw (exactly where the scalar walk starts).
    void spawn(std::size_t id, double alpha, rng stream, dist_cache& dists);

    /// One epoch: every live walker advances one phase (or `opts.epoch_steps`
    /// chunk), bounded by the lex-min of `allowance_cap` and `best`'s own
    /// record. Hits register into `best`; retired walkers compact away.
    /// `allowance_cap` is a pruning bound only (pass the trial budget, or a
    /// better time already found elsewhere) — it can never change which
    /// lex-min the union of all blocks' bests converges to.
    void epoch(const engine_options& opts, const dist_cache& dists, point target,
               std::uint64_t allowance_cap, best_state& best);

    /// Serialized bytes per walker (see the .cpp layout table).
    static constexpr std::size_t kBytesPerWalker = 28 * 8;

    /// Append the live walkers' serialized records to `out`.
    void serialize(const dist_cache& dists, std::vector<char>& out) const;

    /// Replace this block's contents with `count` walkers parsed from
    /// `bytes` (`count * kBytesPerWalker` bytes). Returns false — leaving
    /// the block cleared — when a record is structurally invalid; callers
    /// treat that like a corrupt shard and recompute.
    [[nodiscard]] bool deserialize(const char* bytes, std::size_t count, dist_cache& dists);

private:
    /// Advance walker slot w by one phase (or quantum chunk); may register
    /// a hit in `best`. Returns true when the walker must retire.
    bool advance_one(std::size_t w, const engine_options& opts, const dist_cache& dists,
                     std::uint64_t allowance, point target, best_state& best);
    /// One Bresenham replay step for slot w, tie coins from path_[w].
    void replay_step(std::size_t w);
    void swap_slots(std::size_t a, std::size_t b) noexcept;
    void truncate(std::size_t live_count);

    // SoA walker state; index = live slot. Retired slots are swapped past
    // the live prefix and truncated at epoch end, so every vector stays
    // dense over [0, live()).
    std::vector<std::size_t> ids_;       // original walker index (lex-min key)
    std::vector<rng> main_;              // phase-level stream
    std::vector<rng> path_;              // current phase's tie-coin substream
    std::vector<std::uint32_t> dist_ix_; // index into the run's dist_cache
    std::vector<std::int64_t> x_, y_;    // position at current phase start
    std::vector<std::uint64_t> elapsed_; // steps consumed so far
    std::vector<std::uint64_t> phase_;   // phases begun (1-based substream key)
    // Residue of the phase in progress (total == 0 between phases):
    std::vector<std::uint64_t> total_;   // phase length d
    std::vector<std::uint64_t> j_;       // steps taken within the phase
    std::vector<std::int64_t> adx_, ady_;  // |Δx|, |Δy| of the phase
    std::vector<std::int64_t> sx_, sy_;    // axis signs (±1)
    std::vector<std::int64_t> px_, py_;    // Bresenham replay progress
    std::vector<std::int64_t> destx_, desty_;
    std::vector<std::uint64_t> istar_;   // candidate hit step (0 = none)
    std::vector<std::int64_t> pxt_;      // x-progress the target requires at i*
};

/// Batched structure-of-arrays Lévy-walk engine.
///
/// Holds all in-flight walkers of one trial in one walker_block and
/// advances every live walker one phase per epoch until retirement.
///
/// ## Determinism contract
///
/// Results are bit-exact with the scalar path (`levy_walk` driven by
/// `hit_within` / `parallel_min_hit`) for any epoch quantum, walker count,
/// or host thread count:
///
///  - every walker draws phase-level randomness (jump length, ring
///    destination) from exactly the stream the scalar walk would use —
///    `trial_stream.substream(i)` positioned after the strategy's exponent
///    draw — and path tie coins from the same per-phase substream
///    (`stream.substream(phase_number)`) the scalar walk uses;
///  - the parallel winner is the lexicographic minimum of (hitting time,
///    walker index) over walkers whose time fits the budget, which is
///    provably what the scalar shrinking-budget loop returns; the engine
///    maintains that minimum with an order-independent registration rule
///    (see best_state), so epoch interleaving cannot change the outcome.
///
/// ## Why it is fast
///
/// A direct path is monotone in both axes, and its node at step i is at L1
/// distance exactly i from the phase start. Hence the target can be visited
/// during a phase only if it lies in the bounding box of (start,
/// destination), and then only at the single step i* = ‖target − start‖₁.
/// Phases whose box misses the target are skipped whole in O(1) — no
/// stepping, no tie coins (the per-phase path substream makes the skip
/// RNG-exact); candidate phases replay tie coins only up to i*. Combined
/// with the O(1) alias-table jump sampler for capped runs (see
/// `jump_distribution`'s capped constructor) this removes the per-step
/// costs that dominate the scalar loop on long-jump (small α) workloads.
///
/// For walker counts past RAM, see sim/shard_engine: the out-of-core
/// sharded mode partitions the same walker state into spillable blocks and
/// returns bit-identical results.
class walk_engine {
public:
    walk_engine() = default;
    explicit walk_engine(engine_options opts) noexcept : opts_(opts) {}

    /// One single-walk trial: bit-exact with
    /// `hit_within(levy_walk(alpha, stream, origin, cap), target, budget)`.
    /// `censored` is left false — the caller owns watchdog semantics.
    [[nodiscard]] hit_result run_single(double alpha, point target, std::uint64_t budget,
                                        const rng& stream, std::uint64_t cap = kNoCap);

    /// One parallel trial: bit-exact with `parallel_hit` on the same
    /// arguments (same winner, time, and replayed winner_alpha).
    [[nodiscard]] parallel_result run_parallel(std::size_t k, const exponent_strategy& strategy,
                                               point target, std::uint64_t budget,
                                               const rng& trial_stream, std::uint64_t cap = kNoCap);

    [[nodiscard]] const engine_options& options() const noexcept { return opts_; }

    /// The thread's pooled engine: reuses the SoA buffers and the per-(α,
    /// cap) jump-distribution cache across trials. Each worker thread owns
    /// its instance, so trials never share mutable state across threads.
    [[nodiscard]] static walk_engine& local();

private:
    /// Run all spawned walkers to retirement; returns the lex-min best.
    [[nodiscard]] best_state drive(point target, std::uint64_t budget);

    engine_options opts_{};
    dist_cache dists_;
    walker_block block_;
};

}  // namespace levy::sim
