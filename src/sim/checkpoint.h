#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace levy::sim {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over `len` bytes. Used to
/// checksum every journal header and record so torn or bit-rotted
/// checkpoints are detected at load instead of silently corrupting tables.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// Write `bytes` to `path` crash-safely: the content goes to `<path>.tmp`,
/// is fsync'd, is renamed over `path` in one atomic step, and the parent
/// directory is fsync'd so the rename itself is durable — `path` only ever
/// holds a complete previous version or a complete new version, and a
/// version that was reported written survives power loss (POSIX persists a
/// rename only once the directory entry is synced; see DESIGN.md §11).
/// Throws std::runtime_error on I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const std::vector<char>& bytes);

/// Identity of a Monte-Carlo run for resume purposes. A journal written
/// under one key is ignored (and later overwritten) by a run with any other
/// key: resuming is only exact because every trial's RNG stream is a pure
/// function of (seed, trial index), so all three fields must match.
struct journal_key {
    std::uint64_t seed = 0;
    std::uint64_t trials = 0;
    std::uint32_t payload_size = 0;  ///< sizeof the per-trial result type
};

/// What `load_journal` recovered from disk.
struct journal_contents {
    /// Validated records, trial index -> payload (`payload_size` bytes each).
    std::map<std::uint64_t, std::vector<char>> records;
    /// True when the file existed with a valid, matching header.
    bool matched = false;
    /// True when trailing bytes failed CRC/layout validation and were
    /// dropped (short write, torn write, bit rot). The surviving prefix is
    /// still trustworthy — every kept record passed its own CRC.
    bool dropped_tail = false;
};

/// Parse the journal at `path` against `key`. Never throws on corrupt
/// input: a missing file, foreign magic, bad header CRC, or key mismatch
/// yields `matched == false` and no records; a corrupt record drops itself
/// and everything after it (`dropped_tail == true`). Exposed separately
/// from trial_journal so tests can probe recovery byte by byte.
[[nodiscard]] journal_contents load_journal(const std::string& path, const journal_key& key);

/// Append-only journal of completed trial results, persisted crash-safely.
///
/// The on-disk format (version 1, all integers little-endian):
///
///     header  : magic u64 "LVYJOURN" | version u32 | payload_size u32
///             | seed u64 | trials u64 | crc32(previous 32 bytes) u32
///     record* : trial_index u64 | payload bytes | crc32(index|payload) u32
///
/// Records are kept sorted by trial index and the whole file is rewritten
/// through `atomic_write_file` on every flush, so the journal on disk is
/// always canonical: same completed set => same bytes, regardless of the
/// completion order a particular thread schedule produced.
///
/// Thread safety: `record` may be called concurrently from pool workers;
/// `restore`/`commit` belong to the driver thread.
class trial_journal {
public:
    /// `interval_trials` completed trials or `interval_seconds` elapsed —
    /// whichever comes first — trigger a flush (interval_trials >= 1).
    trial_journal(std::string path, const journal_key& key, std::size_t interval_trials,
                  double interval_seconds);
    trial_journal(const trial_journal&) = delete;
    trial_journal& operator=(const trial_journal&) = delete;
    /// Best-effort final flush; never throws (exception-path durability:
    /// a worker exception or cancellation still persists completed trials).
    ~trial_journal();

    /// Load the journal from disk, copy every recovered payload into
    /// `results_base + index * payload_size`, and return the sorted trial
    /// indices that still need to run.
    [[nodiscard]] std::vector<std::size_t> restore(void* results_base);

    /// Journal trial `index` (payload is `payload_size` bytes). Flushes per
    /// the configured intervals. A journal whose injected write fault fired
    /// (see fault.h) goes silently dead, like a real torn disk.
    void record(std::size_t index, const void* payload);

    /// Final flush; throws std::runtime_error on I/O failure.
    void commit();

    /// Records currently held (restored + recorded).
    [[nodiscard]] std::size_t completed() const;

    /// True when restore() found and dropped a corrupt tail.
    [[nodiscard]] bool recovered_from_corruption() const noexcept { return dropped_tail_; }

private:
    void flush_locked();

    std::string path_;
    journal_key key_;
    std::size_t interval_trials_;
    double interval_seconds_;

    mutable std::mutex m_;
    std::map<std::uint64_t, std::vector<char>> records_;
    std::size_t unflushed_ = 0;
    std::size_t flush_ordinal_ = 0;
    bool dirty_ = false;
    bool dead_ = false;  ///< injected write fault: stop journaling, keep running
    bool dropped_tail_ = false;
    std::chrono::steady_clock::time_point last_flush_;
};

}  // namespace levy::sim
