#include "src/torus/torus_walk.h"

#include <stdexcept>

namespace levy::torus {

torus_geometry::torus_geometry(std::int64_t n) : n_(n) {
    if (n < 4) throw std::invalid_argument("torus_geometry: n must be >= 4");
}

point torus_geometry::wrap(point u) const noexcept {
    const auto m = [this](std::int64_t a) {
        std::int64_t r = a % n_;
        return r < 0 ? r + n_ : r;
    };
    return {m(u.x), m(u.y)};
}

std::int64_t torus_geometry::distance(point u, point v) const noexcept {
    const auto axis = [this](std::int64_t a, std::int64_t b) {
        std::int64_t diff = (a - b) % n_;
        if (diff < 0) diff += n_;
        return diff < n_ - diff ? diff : n_ - diff;
    };
    return axis(u.x, v.x) + axis(u.y, v.y);
}

point torus_geometry::random_node(rng& g) const {
    return {g.uniform_int(0, n_ - 1), g.uniform_int(0, n_ - 1)};
}

torus_levy_walk::torus_levy_walk(double alpha, rng stream, const torus_geometry& geometry,
                                 point start)
    : geometry_(geometry),
      walk_(alpha, stream, geometry.wrap(start),
            static_cast<std::uint64_t>(geometry.n() / 2)) {}

point torus_levy_walk::step() {
    walk_.step();
    return position();
}

}  // namespace levy::torus
