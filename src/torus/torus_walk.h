#pragma once

#include <cstdint>

#include "src/core/levy_walk.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

namespace levy::torus {

/// Geometry of the n×n torus (the search domain of [18], discussed in §2):
/// coordinates live in [0, n)², distances are wrap-around L1.
class torus_geometry {
public:
    explicit torus_geometry(std::int64_t n);

    [[nodiscard]] std::int64_t n() const noexcept { return n_; }
    [[nodiscard]] std::uint64_t area() const noexcept {
        return static_cast<std::uint64_t>(n_) * static_cast<std::uint64_t>(n_);
    }

    [[nodiscard]] point wrap(point u) const noexcept;
    [[nodiscard]] std::int64_t distance(point u, point v) const noexcept;

    /// Uniform random node.
    [[nodiscard]] point random_node(rng& g) const;

private:
    std::int64_t n_;
};

/// A Lévy walk living on the n×n torus: the walk itself runs on Z² exactly
/// as in Def. 3.4 (same jump law, same direct paths), with jump lengths
/// capped at n/2 so a single phase cannot lap the torus; reported positions
/// are wrapped. This is the search process of [18]'s setting — pair it with
/// `hit_within_intermittent` and a `disc_target` measured in torus distance
/// to reproduce that model (bench E19).
class torus_levy_walk {
public:
    torus_levy_walk(double alpha, rng stream, const torus_geometry& geometry,
                    point start = origin);

    /// One lattice step; returns the wrapped position.
    point step();

    [[nodiscard]] point position() const noexcept { return geometry_.wrap(walk_.position()); }
    [[nodiscard]] std::uint64_t steps() const noexcept { return walk_.steps(); }
    [[nodiscard]] bool in_phase() const noexcept { return walk_.in_phase(); }
    [[nodiscard]] std::uint64_t phases() const noexcept { return walk_.phases(); }

    /// The underlying unbounded Z² position (diagnostics).
    [[nodiscard]] point unwrapped() const noexcept { return walk_.position(); }

    [[nodiscard]] double alpha() const noexcept { return walk_.alpha(); }

private:
    torus_geometry geometry_;
    levy_walk walk_;
};

/// A target disc on the torus: all nodes within wrap-around L1 distance
/// `radius` of `center` (diameter D = 2·radius + 1, the D of [18]).
struct torus_disc_target {
    torus_geometry geometry;
    point center;
    std::int64_t radius = 0;

    [[nodiscard]] bool contains(point p) const noexcept {
        return geometry.distance(p, center) <= radius;
    }
};

}  // namespace levy::torus
