#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace levy::stats {

void running_summary::add(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double running_summary::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double running_summary::stddev() const noexcept { return std::sqrt(variance()); }

double running_summary::std_error() const noexcept {
    return n_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

running_summary& running_summary::merge(const running_summary& other) noexcept {
    if (other.n_ == 0) return *this;
    if (n_ == 0) {
        *this = other;
        return *this;
    }
    const auto na = static_cast<double>(n_), nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    return *this;
}

running_summary summarize(std::span<const double> xs) noexcept {
    running_summary s;
    for (double x : xs) s.add(x);
    return s;
}

double quantile(std::span<const double> xs, double q) {
    const double single[] = {q};
    return quantiles(xs, single)[0];
}

std::vector<double> quantiles(std::span<const double> xs, std::span<const double> qs) {
    LEVY_PRECONDITION(!xs.empty(), "quantile: empty sample");
    std::vector<double> sorted(xs.begin(), xs.end());
    std::sort(sorted.begin(), sorted.end());
    std::vector<double> out;
    out.reserve(qs.size());
    for (double q : qs) {
        LEVY_PRECONDITION(q >= 0.0 && q <= 1.0, "quantile: q outside [0, 1]");
        const double pos = q * static_cast<double>(sorted.size() - 1);
        const auto lo = static_cast<std::size_t>(pos);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = pos - static_cast<double>(lo);
        out.push_back(sorted[lo] + frac * (sorted[hi] - sorted[lo]));
    }
    return out;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace levy::stats
