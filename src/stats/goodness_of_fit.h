#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace levy::stats {

/// Goodness-of-fit machinery used by the distribution tests: two-sample
/// Kolmogorov–Smirnov (are a walk's phase endpoints distributed like a
/// flight's steps?) and Pearson chi-square against exact pmfs (is the
/// sampler producing Eq. 3?).

/// Two-sample KS statistic D = sup_x |F̂₁(x) − F̂₂(x)|.
[[nodiscard]] double ks_statistic(std::span<const double> a, std::span<const double> b);

/// Asymptotic two-sample KS p-value (Kolmogorov distribution of
/// D·√(n·m/(n+m))); accurate for samples ≳ 50.
[[nodiscard]] double ks_p_value(std::span<const double> a, std::span<const double> b);

/// Pearson chi-square statistic for observed counts vs expected
/// probabilities (which must sum to ≤ 1; leftover mass is pooled into an
/// implicit overflow cell together with leftover counts).
struct chi_square_result {
    double statistic = 0.0;
    std::size_t degrees_of_freedom = 0;
    double p_value = 0.0;  ///< upper tail of chi²_{df}
};

[[nodiscard]] chi_square_result chi_square_test(std::span<const std::uint64_t> observed,
                                                std::span<const double> expected_probs,
                                                std::uint64_t total_count);

/// Upper-tail probability of the chi-square distribution with `df` degrees
/// of freedom (regularized incomplete gamma Q(df/2, x/2)).
[[nodiscard]] double chi_square_upper_tail(double x, std::size_t df);

}  // namespace levy::stats
