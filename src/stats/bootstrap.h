#pragma once

#include <functional>
#include <span>

#include "src/rng/rng_stream.h"

namespace levy::stats {

/// Percentile bootstrap confidence interval for an arbitrary statistic.
struct bootstrap_interval {
    double point = 0.0;  ///< statistic on the original sample
    double lo = 0.0;
    double hi = 0.0;
};

/// Resample `xs` with replacement `resamples` times, evaluate `statistic`
/// on each resample, and return the [ (1-level)/2, (1+level)/2 ] percentile
/// interval. Deterministic given `g`'s seed.
[[nodiscard]] bootstrap_interval bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic, rng& g,
    std::size_t resamples = 1000, double level = 0.95);

}  // namespace levy::stats
