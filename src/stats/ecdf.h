#pragma once

#include <span>
#include <vector>

namespace levy::stats {

/// Empirical cumulative distribution function of a sample. Used to report
/// hitting-time distributions (e.g. the fraction of trials finished within
/// a budget) without committing to a parametric form.
class ecdf {
public:
    explicit ecdf(std::span<const double> samples);

    /// F̂(x) = fraction of samples <= x.
    [[nodiscard]] double operator()(double x) const noexcept;

    /// Smallest sample value v with F̂(v) >= q, for q in [0, 1]; q = 0
    /// answers the smallest sample, matching stats::quantile's domain so
    /// the two quantile entry points share one precondition.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
    [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

private:
    std::vector<double> sorted_;
};

}  // namespace levy::stats
