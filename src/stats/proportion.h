#pragma once

#include <cstdint>

namespace levy::stats {

/// Estimate of a success probability with a Wilson score confidence
/// interval. The experiments measure many small hitting probabilities
/// (down to ~1/ℓ for the largest ℓ), where the Wilson interval stays valid
/// while the normal approximation collapses.
struct proportion {
    std::uint64_t successes = 0;
    std::uint64_t trials = 0;
    double lo = 0.0;      ///< lower Wilson bound
    double hi = 0.0;      ///< upper Wilson bound

    [[nodiscard]] double estimate() const noexcept {
        return trials == 0 ? 0.0 : static_cast<double>(successes) / static_cast<double>(trials);
    }
};

/// Wilson score interval at `z` standard normal quantiles (default ~95%).
/// Requires trials >= 1.
[[nodiscard]] proportion wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                         double z = 1.96);

}  // namespace levy::stats
