#pragma once

#include <cstdint>
#include <vector>

namespace levy::stats {

/// Fixed-width histogram over [lo, hi); out-of-range samples are counted in
/// underflow/overflow buckets rather than dropped.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double x) noexcept;

    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Left edge of a bin.
    [[nodiscard]] double edge(std::size_t bin) const;
    [[nodiscard]] double width() const noexcept { return width_; }
    /// Fraction of in-range mass in a bin: count(bin) / in-range total.
    [[nodiscard]] double mass(std::size_t bin) const;
    /// Probability *density* estimate over a bin: mass(bin) / bin width, so
    /// densities integrate to ~1 over [lo, hi). (Historically this returned
    /// the mass — callers wanting the raw fraction should use `mass`.)
    [[nodiscard]] double density(std::size_t bin) const;

private:
    double lo_, width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

/// Power-of-two bucketed histogram for heavy-tailed positive integers (jump
/// lengths, hitting times): bucket b holds values in [2^b, 2^{b+1}).
class log2_histogram {
public:
    /// Not noexcept: growing the bucket vector allocates (a 2^63 sample on
    /// an empty histogram grows it to 64 buckets), and std::bad_alloc
    /// through a noexcept boundary would be an instant std::terminate.
    void add(std::uint64_t x);

    /// Number of occupied leading buckets (highest seen + 1).
    [[nodiscard]] std::size_t buckets() const noexcept { return counts_.size(); }
    [[nodiscard]] std::uint64_t count(std::size_t bucket) const noexcept {
        return bucket < counts_.size() ? counts_[bucket] : 0;
    }
    [[nodiscard]] std::uint64_t zeros() const noexcept { return zeros_; }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t zeros_ = 0, total_ = 0;
};

}  // namespace levy::stats
