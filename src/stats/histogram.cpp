#include "src/stats/histogram.h"

#include <bit>
#include <stdexcept>

#include "src/core/contracts.h"

namespace levy::stats {

histogram::histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
    LEVY_PRECONDITION(hi > lo, "histogram: need hi > lo");
    LEVY_PRECONDITION(bins != 0, "histogram: need at least one bin");
    width_ = (hi - lo) / static_cast<double>(bins);
    counts_.assign(bins, 0);
}

void histogram::add(double x) noexcept {
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    const double rel = (x - lo_) / width_;
    if (rel >= static_cast<double>(counts_.size())) {
        ++overflow_;
        return;
    }
    ++counts_[static_cast<std::size_t>(rel)];
}

double histogram::edge(std::size_t bin) const {
    if (bin > counts_.size()) throw std::out_of_range("histogram::edge");
    return lo_ + width_ * static_cast<double>(bin);
}

double histogram::mass(std::size_t bin) const {
    const std::uint64_t in_range = total_ - underflow_ - overflow_;
    if (in_range == 0) return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(in_range);
}

double histogram::density(std::size_t bin) const { return mass(bin) / width_; }

void log2_histogram::add(std::uint64_t x) {
    ++total_;
    if (x == 0) {
        ++zeros_;
        return;
    }
    const auto bucket = static_cast<std::size_t>(std::bit_width(x) - 1);
    if (bucket >= counts_.size()) counts_.resize(bucket + 1, 0);
    ++counts_[bucket];
}

}  // namespace levy::stats
