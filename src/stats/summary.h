#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace levy::stats {

/// Streaming moments accumulator (Welford's algorithm): numerically stable
/// mean/variance plus extrema, in O(1) memory. The workhorse every
/// experiment uses to aggregate per-trial measurements.
class running_summary {
public:
    void add(double x) noexcept;

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    /// Unbiased sample variance; 0 for fewer than two samples.
    [[nodiscard]] double variance() const noexcept;
    [[nodiscard]] double stddev() const noexcept;
    /// Standard error of the mean.
    [[nodiscard]] double std_error() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

    /// Merge another accumulator (parallel reduction; Chan et al. update).
    running_summary& merge(const running_summary& other) noexcept;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// One-shot summary of a sample.
[[nodiscard]] running_summary summarize(std::span<const double> xs) noexcept;

/// The q-quantile (q in [0, 1]) of a sample, linear interpolation between
/// order statistics. Sorts a copy; throws on an empty sample.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Several quantiles at once (one sort).
[[nodiscard]] std::vector<double> quantiles(std::span<const double> xs,
                                            std::span<const double> qs);

/// Median shorthand.
[[nodiscard]] double median(std::span<const double> xs);

}  // namespace levy::stats
