#include "src/stats/bootstrap.h"

#include <algorithm>
#include <vector>

#include "src/core/contracts.h"

namespace levy::stats {

bootstrap_interval bootstrap_ci(std::span<const double> xs,
                                const std::function<double(std::span<const double>)>& statistic,
                                rng& g, std::size_t resamples, double level) {
    LEVY_PRECONDITION(!xs.empty(), "bootstrap_ci: empty sample");
    LEVY_PRECONDITION(resamples >= 1, "bootstrap_ci: resamples must be >= 1");
    LEVY_PRECONDITION(level > 0.0 && level < 1.0, "bootstrap_ci: bad level");
    bootstrap_interval out;
    out.point = statistic(xs);
    std::vector<double> resample(xs.size());
    std::vector<double> stats;
    stats.reserve(resamples);
    for (std::size_t r = 0; r < resamples; ++r) {
        for (auto& v : resample) v = xs[g.below(xs.size())];
        stats.push_back(statistic(resample));
    }
    std::sort(stats.begin(), stats.end());
    const double tail = (1.0 - level) / 2.0;
    const auto pick = [&](double q) {
        auto idx = static_cast<std::size_t>(q * static_cast<double>(stats.size() - 1));
        return stats[std::min(idx, stats.size() - 1)];
    };
    out.lo = pick(tail);
    out.hi = pick(1.0 - tail);
    return out;
}

}  // namespace levy::stats
