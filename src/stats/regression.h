#pragma once

#include <cstddef>
#include <span>

namespace levy::stats {

/// Ordinary least-squares line fit y ≈ slope·x + intercept.
///
/// The experiments' main inferential tool: every Θ(ℓ^c) statement in the
/// paper is validated by regressing log(measurement) on log(ℓ) and comparing
/// the fitted slope to the predicted exponent c.
struct linear_fit_result {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;  ///< coefficient of determination
    /// Standard error of the slope (sqrt of residual variance over Sxx);
    /// 0 for an exact two-point fit. slope ± 1.96·slope_std_error is the
    /// ~95% interval the benches print next to fitted exponents.
    double slope_std_error = 0.0;
    /// Points actually used by the fit (loglog_fit skips non-positive ones).
    std::size_t points = 0;
};

/// Fit on raw coordinates. Requires at least two points with distinct x.
[[nodiscard]] linear_fit_result linear_fit(std::span<const double> xs,
                                           std::span<const double> ys);

/// Fit on (log x, log y): the slope is the empirical scaling exponent.
/// Points with x <= 0 or y <= 0 are skipped; requires two usable points.
[[nodiscard]] linear_fit_result loglog_fit(std::span<const double> xs,
                                           std::span<const double> ys);

}  // namespace levy::stats
