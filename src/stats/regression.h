#pragma once

#include <span>

namespace levy::stats {

/// Ordinary least-squares line fit y ≈ slope·x + intercept.
///
/// The experiments' main inferential tool: every Θ(ℓ^c) statement in the
/// paper is validated by regressing log(measurement) on log(ℓ) and comparing
/// the fitted slope to the predicted exponent c.
struct linear_fit_result {
    double slope = 0.0;
    double intercept = 0.0;
    double r_squared = 0.0;  ///< coefficient of determination
};

/// Fit on raw coordinates. Requires at least two points with distinct x.
[[nodiscard]] linear_fit_result linear_fit(std::span<const double> xs,
                                           std::span<const double> ys);

/// Fit on (log x, log y): the slope is the empirical scaling exponent.
/// Points with x <= 0 or y <= 0 are skipped; requires two usable points.
[[nodiscard]] linear_fit_result loglog_fit(std::span<const double> xs,
                                           std::span<const double> ys);

}  // namespace levy::stats
