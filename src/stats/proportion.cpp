#include "src/stats/proportion.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace levy::stats {

proportion wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
    if (trials == 0) throw std::invalid_argument("wilson_interval: trials must be >= 1");
    if (successes > trials) throw std::invalid_argument("wilson_interval: successes > trials");
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    proportion out;
    out.successes = successes;
    out.trials = trials;
    out.lo = std::max(0.0, center - half);
    out.hi = std::min(1.0, center + half);
    return out;
}

}  // namespace levy::stats
