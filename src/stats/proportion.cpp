#include "src/stats/proportion.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace levy::stats {

proportion wilson_interval(std::uint64_t successes, std::uint64_t trials, double z) {
    LEVY_PRECONDITION(trials != 0, "wilson_interval: trials must be >= 1");
    LEVY_PRECONDITION(successes <= trials, "wilson_interval: successes > trials");
    LEVY_PRECONDITION(z > 0.0, "wilson_interval: z must be > 0");
    const double n = static_cast<double>(trials);
    const double p = static_cast<double>(successes) / n;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / n;
    const double center = (p + z2 / (2.0 * n)) / denom;
    const double half = (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
    proportion out;
    out.successes = successes;
    out.trials = trials;
    out.lo = std::max(0.0, center - half);
    out.hi = std::min(1.0, center + half);
    return out;
}

}  // namespace levy::stats
