#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace levy::stats {

/// Fixed-width ASCII table writer. Every benchmark binary prints its
/// paper-vs-measured rows through this, so all experiment output has one
/// consistent, diffable format.
///
///     text_table t({"ell", "alpha", "P(hit)", "predicted"});
///     t.add_row({fmt(64), fmt(2.5), fmt(0.123), fmt(0.2)});
///     t.print(std::cout);
class text_table {
public:
    explicit text_table(std::vector<std::string> header);

    /// Append a row; must have exactly as many cells as the header.
    void add_row(std::vector<std::string> cells);

    /// Append a horizontal separator line.
    void add_separator();

    [[nodiscard]] std::size_t rows() const noexcept;

    [[nodiscard]] const std::vector<std::string>& header() const noexcept { return header_; }

    /// Data rows in print order, separators elided.
    [[nodiscard]] std::vector<std::vector<std::string>> cell_rows() const;

    void print(std::ostream& os) const;

private:
    struct row {
        std::vector<std::string> cells;  // empty => separator
    };
    std::vector<std::string> header_;
    std::vector<row> rows_;
};

/// Hook invoked (when installed) by `text_table::print` with the table just
/// printed. The observability layer uses this to capture every bench's
/// result rows for the structured JSON sink without the benches — or this
/// layer — knowing about it. Pass an empty function to uninstall.
/// Not thread-safe: install before worker threads print tables.
void set_table_print_observer(std::function<void(const text_table&)> observer);

/// Formatting helpers for table cells.
[[nodiscard]] std::string fmt(double v, int precision = 4);
template <class Int>
    requires std::is_integral_v<Int>
[[nodiscard]] std::string fmt(Int v) {
    return std::to_string(v);
}
/// "a ± b" convenience.
[[nodiscard]] std::string fmt_pm(double value, double half_width, int precision = 4);
/// Scientific notation.
[[nodiscard]] std::string fmt_sci(double v, int precision = 3);

}  // namespace levy::stats
