#pragma once

#include <array>
#include <cstdint>

#include "src/stats/summary.h"

namespace levy::stats {

/// --- Streaming estimators with uncertainty --------------------------------
///
/// The experiments' headline numbers are Monte-Carlo estimates of
/// heavy-tailed hitting times, so a point estimate without an interval
/// cannot distinguish paper-exponent drift from sampling noise. Everything
/// here is computable in one streaming pass (O(1) or fixed O(65) state) and
/// merges *exactly* — integer bucket addition and the Chan et al. moment
/// update — so the reported intervals are bit-identical for every thread
/// count and chunk size, the same determinism contract as the Monte-Carlo
/// driver itself.

/// A two-sided confidence interval around an estimate.
struct confidence_interval {
    double estimate = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    [[nodiscard]] double half_width() const noexcept { return (hi - lo) / 2.0; }
};

/// Normal-approximation interval for the mean of a `running_summary` at `z`
/// standard normal quantiles (default ~95%): mean ± z·SE. Valid when the CLT
/// has kicked in (the benches run >= ~50 trials per row); for the tiny-count
/// tail use the Wilson interval on the underlying proportion instead.
/// Degenerate inputs collapse to a zero-width interval at the mean.
[[nodiscard]] confidence_interval normal_interval(const running_summary& s, double z = 1.96);

/// Same, from a precomputed estimate and standard error.
[[nodiscard]] confidence_interval normal_interval(double estimate, double std_error,
                                                  double z = 1.96) noexcept;

/// --- Mergeable streaming quantile sketch -----------------------------------
///
/// The fixed-layout log2 bucket scheme the obs registry already uses
/// (stats::log2_histogram / obs::histogram_spec): slot 0 counts zeros, slot
/// b >= 1 counts values in [2^(b-1), 2^b). Because the layout is fixed at
/// 65 slots, two sketches merge by integer bucket addition — commutative
/// and associative, so a sketch assembled from per-thread shards is
/// bit-identical for any thread count or merge order. Quantiles are then
/// answered by rank walk with linear interpolation inside the hit bucket:
/// deterministic, and accurate to the bucket's resolution (a factor-2
/// envelope, which is exactly the fidelity the log-log fits need).
class log2_sketch {
public:
    /// Fixed slot count: zeros + one bucket per bit width of a uint64.
    static constexpr std::size_t kSlots = 65;

    void add(std::uint64_t x) noexcept;

    /// Exact bucketwise merge (commutes; see class comment).
    log2_sketch& merge(const log2_sketch& other) noexcept;

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// Raw slot count (slot 0 = zeros, slot b = [2^(b-1), 2^b)).
    [[nodiscard]] std::uint64_t count(std::size_t slot) const;

    /// q-quantile for q in [0, 1] (q=0 -> smallest bucketed value, q=1 ->
    /// largest). Requires a non-empty sketch. Linear interpolation of the
    /// target rank across the hit bucket's value range.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] double median() const { return quantile(0.5); }

    /// Bit-identical equality — what the merge-invariance tests pin down.
    [[nodiscard]] bool operator==(const log2_sketch&) const noexcept = default;

private:
    std::array<std::uint64_t, kSlots> buckets_{};
    std::uint64_t total_ = 0;
};

}  // namespace levy::stats
