#include "src/stats/goodness_of_fit.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace levy::stats {
namespace {

/// Regularized upper incomplete gamma Q(a, x), by series (x < a+1) or
/// continued fraction (x >= a+1) — Numerical-Recipes-style, ~1e-12 accuracy.
double gamma_q(double a, double x) {
    LEVY_PRECONDITION(x >= 0.0 && a > 0.0, "gamma_q: bad arguments");
    if (x == 0.0) return 1.0;  // levylint:allow(float-equality) exact boundary of the domain
    const double gln = std::lgamma(a);
    if (x < a + 1.0) {
        // P(a,x) by series, return 1 - P.
        double ap = a;
        double sum = 1.0 / a;
        double del = sum;
        for (int i = 0; i < 500; ++i) {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if (std::abs(del) < std::abs(sum) * 1e-15) break;
        }
        return 1.0 - sum * std::exp(-x + a * std::log(x) - gln);
    }
    // Q(a,x) by Lentz continued fraction.
    double b = x + 1.0 - a;
    double c = 1e300;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 500; ++i) {
        const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < 1e-300) d = 1e-300;
        c = b + an / c;
        if (std::abs(c) < 1e-300) c = 1e-300;
        d = 1.0 / d;
        const double del = d * c;
        h *= del;
        if (std::abs(del - 1.0) < 1e-15) break;
    }
    return std::exp(-x + a * std::log(x) - gln) * h;
}

/// Kolmogorov distribution tail: P(K > x) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²x²}.
double kolmogorov_tail(double x) {
    if (x <= 0.0) return 1.0;
    double sum = 0.0;
    for (int k = 1; k <= 100; ++k) {
        const double term = 2.0 * std::pow(-1.0, k - 1) * std::exp(-2.0 * k * k * x * x);
        sum += term;
        if (std::abs(term) < 1e-12) break;
    }
    return std::clamp(sum, 0.0, 1.0);
}

}  // namespace

double ks_statistic(std::span<const double> a, std::span<const double> b) {
    LEVY_PRECONDITION(!a.empty() && !b.empty(), "ks_statistic: empty sample");
    std::vector<double> sa(a.begin(), a.end()), sb(b.begin(), b.end());
    std::sort(sa.begin(), sa.end());
    std::sort(sb.begin(), sb.end());
    double d = 0.0;
    std::size_t i = 0, j = 0;
    const auto na = static_cast<double>(sa.size()), nb = static_cast<double>(sb.size());
    while (i < sa.size() && j < sb.size()) {
        const double x = std::min(sa[i], sb[j]);
        while (i < sa.size() && sa[i] <= x) ++i;
        while (j < sb.size() && sb[j] <= x) ++j;
        d = std::max(d, std::abs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
    }
    return d;
}

double ks_p_value(std::span<const double> a, std::span<const double> b) {
    const double d = ks_statistic(a, b);
    const auto na = static_cast<double>(a.size()), nb = static_cast<double>(b.size());
    const double en = std::sqrt(na * nb / (na + nb));
    // Stephens' small-sample correction.
    return kolmogorov_tail((en + 0.12 + 0.11 / en) * d);
}

chi_square_result chi_square_test(std::span<const std::uint64_t> observed,
                                  std::span<const double> expected_probs,
                                  std::uint64_t total_count) {
    LEVY_PRECONDITION(observed.size() == expected_probs.size(), "chi_square_test: size mismatch");
    LEVY_PRECONDITION(!observed.empty() && total_count != 0, "chi_square_test: empty input");
    double stat = 0.0;
    double prob_mass = 0.0;
    std::uint64_t counted = 0;
    for (std::size_t c = 0; c < observed.size(); ++c) {
        const double expected = expected_probs[c] * static_cast<double>(total_count);
        LEVY_PRECONDITION(expected > 0.0, "chi_square_test: nonpositive expected cell");
        const double diff = static_cast<double>(observed[c]) - expected;
        stat += diff * diff / expected;
        prob_mass += expected_probs[c];
        counted += observed[c];
    }
    std::size_t cells = observed.size();
    // Pool the leftover (overflow) cell if the listed cells don't exhaust
    // the distribution.
    const double leftover_prob = 1.0 - prob_mass;
    if (leftover_prob > 1e-12) {
        const double expected = leftover_prob * static_cast<double>(total_count);
        const double diff = static_cast<double>(total_count - counted) - expected;
        stat += diff * diff / expected;
        ++cells;
    }
    chi_square_result out;
    out.statistic = stat;
    out.degrees_of_freedom = cells - 1;
    out.p_value = chi_square_upper_tail(stat, out.degrees_of_freedom);
    return out;
}

double chi_square_upper_tail(double x, std::size_t df) {
    LEVY_PRECONDITION(df != 0, "chi_square_upper_tail: df must be >= 1");
    return gamma_q(static_cast<double>(df) / 2.0, x / 2.0);
}

}  // namespace levy::stats
