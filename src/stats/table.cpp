#include "src/stats/table.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/core/contracts.h"

namespace levy::stats {

text_table::text_table(std::vector<std::string> header) : header_(std::move(header)) {
    LEVY_PRECONDITION(!(header_.empty()), "text_table: empty header");
}

void text_table::add_row(std::vector<std::string> cells) {
    LEVY_PRECONDITION(cells.size() == header_.size(), "text_table: row width does not match header");
    rows_.push_back({std::move(cells)});
}

void text_table::add_separator() { rows_.push_back({}); }

std::size_t text_table::rows() const noexcept { return rows_.size(); }

std::vector<std::vector<std::string>> text_table::cell_rows() const {
    std::vector<std::vector<std::string>> out;
    out.reserve(rows_.size());
    for (const auto& r : rows_) {
        if (!r.cells.empty()) out.push_back(r.cells);
    }
    return out;
}

namespace {
std::function<void(const text_table&)>& print_observer() {
    static std::function<void(const text_table&)> f;
    return f;
}
}  // namespace

void set_table_print_observer(std::function<void(const text_table&)> observer) {
    print_observer() = std::move(observer);
}

void text_table::print(std::ostream& os) const {
    if (const auto& obs = print_observer()) obs(*this);
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& r : rows_) {
        for (std::size_t c = 0; c < r.cells.size(); ++c) {
            width[c] = std::max(width[c], r.cells[c].size());
        }
    }
    const auto print_line = [&] {
        os << '+';
        for (std::size_t w : width) os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    const auto print_cells = [&](const std::vector<std::string>& cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << std::setw(static_cast<int>(width[c])) << std::right << cells[c] << " |";
        }
        os << '\n';
    };
    print_line();
    print_cells(header_);
    print_line();
    for (const auto& r : rows_) {
        if (r.cells.empty()) {
            print_line();
        } else {
            print_cells(r.cells);
        }
    }
    print_line();
}

std::string fmt(double v, int precision) {
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << v;
    return ss.str();
}

std::string fmt_pm(double value, double half_width, int precision) {
    return fmt(value, precision) + " ± " + fmt(half_width, precision);
}

std::string fmt_sci(double v, int precision) {
    std::ostringstream ss;
    ss << std::scientific << std::setprecision(precision) << v;
    return ss.str();
}

}  // namespace levy::stats
