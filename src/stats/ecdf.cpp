#include "src/stats/ecdf.h"

#include <algorithm>
#include <cmath>

#include "src/core/contracts.h"

namespace levy::stats {

ecdf::ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
    LEVY_PRECONDITION(!sorted_.empty(), "ecdf: empty sample");
    std::sort(sorted_.begin(), sorted_.end());
}

double ecdf::operator()(double x) const noexcept {
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double ecdf::quantile(double q) const {
    LEVY_PRECONDITION(q >= 0.0 && q <= 1.0, "ecdf::quantile: q outside [0, 1]");
    const auto n = static_cast<double>(sorted_.size());
    const auto rank = static_cast<std::size_t>(std::ceil(q * n));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;  // q = 0 -> smallest sample
    return sorted_[std::min(idx, sorted_.size() - 1)];
}

}  // namespace levy::stats
