#include "src/stats/streaming.h"

#include <bit>
#include <cmath>

#include "src/core/contracts.h"

namespace levy::stats {

confidence_interval normal_interval(const running_summary& s, double z) {
    return normal_interval(s.mean(), s.std_error(), z);
}

confidence_interval normal_interval(double estimate, double std_error, double z) noexcept {
    confidence_interval ci;
    ci.estimate = estimate;
    const double h = std_error > 0.0 ? z * std_error : 0.0;
    ci.lo = estimate - h;
    ci.hi = estimate + h;
    return ci;
}

void log2_sketch::add(std::uint64_t x) noexcept {
    buckets_[x == 0 ? 0 : static_cast<std::size_t>(std::bit_width(x))] += 1;
    ++total_;
}

log2_sketch& log2_sketch::merge(const log2_sketch& other) noexcept {
    for (std::size_t i = 0; i < kSlots; ++i) buckets_[i] += other.buckets_[i];
    total_ += other.total_;
    return *this;
}

std::uint64_t log2_sketch::count(std::size_t slot) const {
    LEVY_PRECONDITION(slot < kSlots, "log2_sketch::count: slot out of range");
    return buckets_[slot];
}

double log2_sketch::quantile(double q) const {
    LEVY_PRECONDITION(q >= 0.0 && q <= 1.0, "log2_sketch::quantile: q outside [0, 1]");
    LEVY_PRECONDITION(total_ > 0, "log2_sketch::quantile: empty sketch");
    // Target rank in [1, total]: rank 1 is the smallest sample, so q=0 and
    // q=1 answer the extremes of the bucketed order statistics.
    const double exact = q * static_cast<double>(total_);
    std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
    if (rank == 0) rank = 1;
    std::uint64_t before = 0;
    for (std::size_t slot = 0; slot < kSlots; ++slot) {
        const std::uint64_t here = buckets_[slot];
        if (here == 0 || before + here < rank) {
            before += here;
            continue;
        }
        if (slot == 0) return 0.0;  // the zeros bucket is a point mass
        // Bucket spans [2^(slot-1), 2^slot); spread its samples uniformly
        // and take the rank's position. ldexp keeps the edges exact for
        // every slot (no pow rounding).
        const double lo = std::ldexp(1.0, static_cast<int>(slot) - 1);
        const double hi = std::ldexp(1.0, static_cast<int>(slot));
        const double frac =
            (static_cast<double>(rank - before) - 0.5) / static_cast<double>(here);
        return lo + frac * (hi - lo);
    }
    // Unreachable while total_ equals the bucket sum; keep a defined answer.
    return std::ldexp(1.0, 64);
}

}  // namespace levy::stats
