#include "src/stats/regression.h"

#include <cmath>
#include <vector>

#include "src/core/contracts.h"

namespace levy::stats {

linear_fit_result linear_fit(std::span<const double> xs, std::span<const double> ys) {
    LEVY_PRECONDITION(xs.size() == ys.size(), "linear_fit: size mismatch");
    const auto n = static_cast<double>(xs.size());
    LEVY_PRECONDITION(xs.size() >= 2, "linear_fit: need at least two points");
    double sx = 0, sy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
    }
    const double mx = sx / n, my = sy / n;
    double sxx = 0, sxy = 0, syy = 0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx, dy = ys[i] - my;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    // levylint:allow(float-equality) sxx is exactly 0 iff every x is identical
    LEVY_PRECONDITION(sxx != 0.0, "linear_fit: x values are all equal");
    linear_fit_result out;
    out.slope = sxy / sxx;
    out.intercept = my - out.slope * mx;
    // levylint:allow(float-equality) syy is exactly 0 iff every y is identical
    out.r_squared = (syy == 0.0) ? 1.0 : (sxy * sxy) / (sxx * syy);
    out.points = xs.size();
    if (xs.size() > 2) {
        // Residual sum of squares via the algebraic identity SSE = Syy −
        // slope·Sxy; clamp tiny negative round-off so sqrt stays defined.
        const double sse = syy - out.slope * sxy;
        const double resid_var = (sse > 0.0 ? sse : 0.0) / (n - 2.0);
        out.slope_std_error = std::sqrt(resid_var / sxx);
    }
    return out;
}

linear_fit_result loglog_fit(std::span<const double> xs, std::span<const double> ys) {
    LEVY_PRECONDITION(xs.size() == ys.size(), "loglog_fit: size mismatch");
    std::vector<double> lx, ly;
    lx.reserve(xs.size());
    ly.reserve(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (xs[i] > 0.0 && ys[i] > 0.0) {
            lx.push_back(std::log(xs[i]));
            ly.push_back(std::log(ys[i]));
        }
    }
    return linear_fit(lx, ly);
}

}  // namespace levy::stats
