#pragma once

/// Umbrella header: the whole public API of the levywalks library.
/// Downstream users add the repository root (and `include/`) to their
/// include path, link `liblevy.a`, and `#include <levy/levy.h>`.

// RNG substrate
#include "src/rng/jump_distribution.h"
#include "src/rng/rng_stream.h"
#include "src/rng/splitmix64.h"
#include "src/rng/xoshiro256pp.h"
#include "src/rng/zeta.h"
#include "src/rng/zipf.h"

// Grid substrate
#include "src/grid/ball.h"
#include "src/grid/direct_path.h"
#include "src/grid/point.h"
#include "src/grid/ring.h"

// Statistics
#include "src/stats/bootstrap.h"
#include "src/stats/ecdf.h"
#include "src/stats/goodness_of_fit.h"
#include "src/stats/histogram.h"
#include "src/stats/proportion.h"
#include "src/stats/regression.h"
#include "src/stats/streaming.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

// Core library
#include "src/core/hitting.h"
#include "src/core/intermittent.h"
#include "src/core/jump_process.h"
#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/core/target.h"
#include "src/core/target_field.h"
#include "src/core/theory.h"

// Observability (in-flight telemetry + structured results)
#include "src/obs/exporter.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/progress.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"

// Simulation engine
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trajectory.h"
#include "src/sim/trial.h"

// Exact analysis
#include "src/analysis/occupancy.h"
#include "src/analysis/path_marginal.h"

// Baselines
#include "src/baselines/ballistic_walk.h"
#include "src/baselines/fk_ants.h"
#include "src/baselines/simple_random_walk.h"
#include "src/baselines/spiral_search.h"

// Extensions
#include "src/smallworld/greedy_routing.h"
#include "src/smallworld/kleinberg_grid.h"
#include "src/torus/torus_walk.h"
