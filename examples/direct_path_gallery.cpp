// Direct-path gallery: an ASCII reproduction of the paper's Figure 2.
//
// Renders sampled direct paths (Definition 3.1) between the origin and a few
// destinations, showing how the lattice path hugs the real segment, plus one
// full Lévy-walk trajectory so you can see jump-phases chained together.
//
//   $ ./examples/direct_path_gallery [--seed=X]

#include <iostream>
#include <map>
#include <vector>

#include "src/core/levy_walk.h"
#include "src/grid/direct_path.h"
#include "src/sim/experiment.h"
#include "src/sim/trajectory.h"

namespace {

using namespace levy;

/// Render a set of points in a terminal grid; y grows upward.
void render(const std::vector<point>& pts, point mark_from, point mark_to) {
    std::int64_t min_x = 0, max_x = 0, min_y = 0, max_y = 0;
    for (const point p : pts) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    std::map<std::pair<std::int64_t, std::int64_t>, char> canvas;
    for (const point p : pts) canvas[{p.x, p.y}] = '*';
    canvas[{mark_from.x, mark_from.y}] = 'S';
    canvas[{mark_to.x, mark_to.y}] = 'T';
    for (std::int64_t y = max_y; y >= min_y; --y) {
        for (std::int64_t x = min_x; x <= max_x; ++x) {
            const auto it = canvas.find({x, y});
            std::cout << (it == canvas.end() ? '.' : it->second);
        }
        std::cout << '\n';
    }
}

void show_path(point to, rng& g) {
    std::cout << "direct path (0,0) -> " << to << "  [d = " << l1_norm(to) << "]\n";
    render(sample_direct_path(origin, to, g), origin, to);
    std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        rng g = rng::seeded(opts.seed);

        std::cout << "=== Figure 2 reproduction: direct paths (Def. 3.1) ===\n\n";
        show_path({14, 5}, g);
        show_path({6, 11}, g);
        show_path({-9, -4}, g);

        std::cout << "=== A Levy walk trajectory (alpha = 2.2, 220 steps) ===\n";
        std::cout << "Chained jump-phases: long straight runs mixed with local shuffling.\n\n";
        levy_walk w(2.2, g.substream(1));
        const auto traj = sim::record_trajectory(w, 220);
        render(traj, traj.front(), traj.back());
        std::cout << "\nS = start (origin), T = position after 220 steps.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "direct_path_gallery: " << e.what() << '\n';
        return 1;
    }
}
