// ANTS problem demo: one instance, several search strategies, side by side.
//
// The Ants-Nearby-Treasure-Search setting of Feinerman & Korman [14]:
// k agents, no communication, no advice (b = 0). The paper's contribution
// is that "every agent runs a Lévy walk with a random exponent" solves this
// uniformly. This example runs one concrete instance so you can watch the
// outcome per strategy; bench_e9 does the statistically careful version.
//
//   $ ./examples/ants_problem [--seed=X]

#include <iostream>

#include "src/baselines/ballistic_walk.h"
#include "src/baselines/fk_ants.h"
#include "src/baselines/simple_random_walk.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/sim/experiment.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

template <class Factory>
hit_result fleet_search(std::size_t k, point target, std::uint64_t budget, rng stream,
                        Factory&& make) {
    hit_result best{false, budget};
    for (std::size_t i = 0; i < k; ++i) {
        rng walk_stream = stream.substream(i);
        auto agent = make(i, walk_stream);
        const auto r = hit_within(agent, point_target{target}, best.hit ? best.time - 1 : budget);
        if (r.hit) best = r;
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        const std::size_t k = 32;
        const point treasure{-70, 35};  // ell = 105; nobody is told this
        const std::uint64_t budget = 300000;
        const rng master = rng::seeded(opts.seed);

        std::cout << "ANTS instance: k = " << k << " agents, treasure at " << treasure
                  << " (ell = " << l1_norm(treasure) << "), budget " << budget << " steps.\n\n";

        stats::text_table table({"strategy", "found?", "parallel time"});
        const auto report = [&](const char* name, hit_result r) {
            table.add_row({name, r.hit ? "yes" : "no",
                           r.hit ? stats::fmt(r.time) : std::string("-")});
        };

        {
            const auto r =
                parallel_hit(k, uniform_exponent(), treasure, budget, master.substream(1));
            report("Levy walks, alpha ~ U(2,3)", {r.hit, r.time});
        }
        {
            const auto r = parallel_hit(k, fixed_exponent(2.0), treasure, budget,
                                        master.substream(2));
            report("Levy walks, all alpha = 2 (Cauchy)", {r.hit, r.time});
        }
        {
            const auto r = parallel_hit(k, fixed_exponent(3.0), treasure, budget,
                                        master.substream(3));
            report("Levy walks, all alpha = 3", {r.hit, r.time});
        }
        report("k simple random walks",
               fleet_search(k, treasure, budget, master.substream(4),
                            [](std::size_t, rng s) { return baselines::simple_random_walk(s); }));
        report("k ballistic walks",
               fleet_search(k, treasure, budget, master.substream(5),
                            [](std::size_t, rng s) { return baselines::ballistic_walk(s); }));
        report("Feinerman-Korman (knows k)",
               fleet_search(k, treasure, budget, master.substream(6),
                            [&](std::size_t, rng s) { return baselines::fk_ants_searcher(k, s); }));
        table.print(std::cout);
        std::cout << "\nRe-run with --seed=<n> for another instance; aggregate behavior is\n"
                     "measured by bench_e9_ants_baselines.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "ants_problem: " << e.what() << '\n';
        return 1;
    }
}
