// Small-world routing: the related-work twin of the optimal-exponent story.
//
// Section 2 of the paper connects its unique optimal Lévy exponent to
// Kleinberg's small-world result: on an n×n torus where every node gets one
// long-range contact with P ∝ dist^{-beta}, greedy routing is fast only at
// beta = 2. This example routes a handful of messages at several beta so
// the effect is visible by eye; bench_e14 runs the careful sweep.
//
//   $ ./examples/smallworld_routing [--seed=X] [--trials=N]

#include <iostream>

#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/smallworld/greedy_routing.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
    using namespace levy;
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        const std::int64_t n = 128;
        const std::size_t routes = opts.trials != 0 ? opts.trials : 200;

        std::cout << "Kleinberg torus " << n << "x" << n
                  << ": one long-range contact per node, P(contact at distance d) ~ d^-beta.\n"
                  << "Greedy routing between " << routes << " random pairs per beta.\n\n";

        stats::text_table table({"beta", "levy-walk analogue alpha", "mean hops", "max hops"});
        for (const double beta : {1.0, 1.5, 2.0, 2.5, 3.0}) {
            const smallworld::kleinberg_grid graph(n, beta, opts.seed);
            const auto hops = sim::monte_carlo_collect(
                opts.mc(routes, static_cast<std::uint64_t>(beta * 10)),
                [&](std::size_t, rng& g) {
                    const point s = graph.random_node(g);
                    const point t = graph.random_node(g);
                    return static_cast<double>(
                        smallworld::greedy_route(graph, s, t,
                                                 static_cast<std::uint64_t>(4 * n))
                            .hops);
                });
            const auto summary = stats::summarize(hops);
            // Footnote 4: beta = alpha + d - 1 on the d-dim lattice (d = 2).
            table.add_row({stats::fmt(beta, 1), stats::fmt(beta - 1.0, 1),
                           stats::fmt(summary.mean(), 1), stats::fmt(summary.max(), 0)});
        }
        table.print(std::cout);
        std::cout << "\nbeta = 2 wins — links spread uniformly over all distance scales,\n"
                     "exactly what U(2,3) exponent-randomization buys the Levy searchers.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "smallworld_routing: " << e.what() << '\n';
        return 1;
    }
}
