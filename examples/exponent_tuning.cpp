// Exponent tuning: explore the unique optimum alpha*(k, ell) interactively.
//
// Corollary 4.2 says the best common exponent for k walks and distance ell
// is alpha* = 3 - log k / log ell, and that missing it by a constant costs
// polynomially. This example sweeps alpha for a (k, ell) you pick via
// --scale (which multiplies ell) and prints the hit-rate/median-time curve
// so you can see the valley move as k and ell change.
//
//   $ ./examples/exponent_tuning [--scale=S] [--trials=N]

#include <iostream>
#include <vector>

#include "src/core/strategy.h"
#include "src/sim/experiment.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
    using namespace levy;
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        const std::size_t k = 16;
        const auto ell = static_cast<std::int64_t>(96.0 * opts.scale);
        const double alpha_star = optimal_alpha(static_cast<double>(k),
                                                static_cast<double>(ell));
        const auto budget = static_cast<std::uint64_t>(ell) * static_cast<std::uint64_t>(ell);
        const std::size_t trials = opts.trials != 0 ? opts.trials : 50;

        std::cout << "k = " << k << " walks, target distance ell = " << ell
                  << ", step budget ell^2 = " << budget << "\n"
                  << "Corollary 4.2 predicts the optimum at alpha* = 3 - log k / log ell = "
                  << stats::fmt(alpha_star, 3) << "\n\n";

        stats::text_table table({"alpha", "hit rate", "median parallel time", ""});
        for (double alpha = 2.1; alpha < 3.01; alpha += 0.1) {
            sim::parallel_walk_config cfg;
            cfg.k = k;
            cfg.strategy = fixed_exponent(alpha);
            cfg.ell = ell;
            cfg.budget = budget;
            const auto sample = sim::parallel_hitting_times(
                cfg, opts.mc(trials, static_cast<std::uint64_t>(alpha * 1000)));
            // A coarse ASCII bar: shorter is better.
            const double med = stats::median(sample.times);
            const int bar = static_cast<int>(20.0 * med / static_cast<double>(budget));
            table.add_row({stats::fmt(alpha, 1), stats::fmt(sample.hit_fraction(), 2),
                           stats::fmt(med, 0),
                           std::string(static_cast<std::size_t>(bar), '#')});
        }
        table.print(std::cout);
        std::cout << "\nThe '#' bars show the median time (relative to the budget): the\n"
                     "valley should sit near alpha* = " << stats::fmt(alpha_star, 2)
                  << ". Try --scale=2 or --scale=4 and watch it shift.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "exponent_tuning: " << e.what() << '\n';
        return 1;
    }
}
