// Foraging: the paper's motivating scenario (§1.2.4).
//
// A colony of ants (think Cataglyphis — no pheromone trails, so the walks
// really are independent) leaves the nest to look for food whose distance
// nobody knows. Each ant follows a Lévy walk with its own random exponent
// α ~ U(2,3). We drop food at several distance scales and watch the same
// colony handle all of them — the "works for every ell simultaneously"
// property of Theorem 1.6.
//
//   $ ./examples/foraging [--trials=N] [--seed=X]

#include <iostream>
#include <vector>

#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/experiment.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
    using namespace levy;
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        const std::size_t colony = 64;
        const std::size_t expeditions = opts.trials != 0 ? opts.trials : 40;

        std::cout << "A colony of " << colony
                  << " ants forages with random Levy exponents (alpha ~ U(2,3)).\n"
                  << "Food is planted at several distances; the ants know none of them.\n\n";

        stats::text_table table({"food distance", "expeditions", "found", "median steps",
                                 "optimal possible (ell^2/k + ell)"});
        for (const std::int64_t ell : {16L, 48L, 144L}) {
            sim::parallel_walk_config cfg;
            cfg.k = colony;
            cfg.strategy = uniform_exponent();
            cfg.ell = ell;
            cfg.budget = static_cast<std::uint64_t>(
                100.0 * theory::universal_lower_bound(static_cast<double>(colony),
                                                      static_cast<double>(ell)));
            const auto sample = sim::parallel_hitting_times(
                cfg, opts.mc(expeditions, static_cast<std::uint64_t>(ell)));
            table.add_row({stats::fmt(ell), stats::fmt(expeditions),
                           stats::fmt(sample.hits) + "/" + stats::fmt(expeditions),
                           stats::fmt(stats::median(sample.times), 0),
                           stats::fmt(theory::universal_lower_bound(
                                          static_cast<double>(colony),
                                          static_cast<double>(ell)),
                                      0)});
        }
        table.print(std::cout);
        std::cout << "\nNo ant was tuned for any particular distance — the diversity of\n"
                     "exponents in the colony covers every scale (Theorem 1.6). An\n"
                     "individual-variation hypothesis the paper suggests testing in the\n"
                     "field: different members of one species may follow different\n"
                     "search patterns.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "foraging: " << e.what() << '\n';
        return 1;
    }
}
