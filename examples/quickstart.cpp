// Quickstart: the 60-second tour of the library.
//
// Build one Lévy walk, send it after a target, then let a small fleet with
// randomly chosen exponents (the paper's knowledge-free strategy, Thm 1.6)
// do the same job in parallel.
//
//   $ ./examples/quickstart

#include <iostream>

#include "src/core/hitting.h"
#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"

int main() {
    using namespace levy;

    // A treasure 40 lattice steps from the nest (the walk doesn't know where).
    const point treasure{24, -16};
    std::cout << "Target at " << treasure << ", distance ell = " << l1_norm(treasure) << "\n\n";

    // --- One walk ---------------------------------------------------------
    // α = 2.5 sits mid-superdiffusive; rng::seeded gives a reproducible run.
    levy_walk walk(/*alpha=*/2.5, rng::seeded(2021));
    const hit_result solo = hit_within(walk, treasure, /*budget=*/200000);
    if (solo.hit) {
        std::cout << "single walk (alpha=2.5): found it at step " << solo.time << "\n";
    } else {
        std::cout << "single walk (alpha=2.5): gave up after " << solo.time
                  << " steps.\n  (Expected! A lone super-diffusive walk misses a distance-"
                  << l1_norm(treasure) << " target\n  with probability ~ 1 - 1/ell^(3-alpha)"
                  << " — Theorem 1.1(c). Hence the fleet:)\n";
    }

    // --- A fleet with random exponents -------------------------------------
    // Each of the 32 walks draws its own alpha ~ U(2,3); nobody knows k or
    // ell, yet the parallel hitting time is near-optimal (Theorem 1.6).
    const std::size_t k = 32;
    const parallel_result fleet =
        parallel_hit(k, uniform_exponent(), treasure, /*budget=*/200000, rng::seeded(2021));
    if (fleet.hit) {
        std::cout << "fleet of " << k << " (alpha ~ U(2,3)): walk #" << fleet.winner
                  << " (alpha = " << fleet.winner_alpha << ") found it at step " << fleet.time
                  << "\n";
    } else {
        std::cout << "fleet of " << k << ": no walk found it within budget\n";
    }

    if (solo.hit && fleet.hit && fleet.time > 0) {
        std::cout << "\nspeedup over the solo walk: "
                  << static_cast<double>(solo.time) / static_cast<double>(fleet.time) << "x\n";
    }
    return 0;
}
