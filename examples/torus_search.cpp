// Torus search: the setting of [18] (paper §2) in one runnable scene.
//
// An intermittent Lévy searcher on a torus — it cannot sense the target
// mid-jump — looks for a food patch of diameter D planted uniformly at
// random. The Cauchy exponent alpha = 2 is the near-optimal choice in this
// model; run a few searchers with different exponents on the SAME instance
// and watch who gets there first.
//
//   $ ./examples/torus_search [--seed=X]

#include <iostream>

#include "src/core/intermittent.h"
#include "src/sim/experiment.h"
#include "src/stats/table.h"
#include "src/torus/torus_walk.h"

int main(int argc, char** argv) {
    using namespace levy;
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        const torus::torus_geometry world(128);
        rng master = rng::seeded(opts.seed);

        // One shared instance: a diameter-9 patch somewhere on the torus.
        rng placer = master.substream(0);
        const point patch_center = world.random_node(placer);
        const torus::torus_disc_target patch{world, patch_center, 4};
        const std::uint64_t budget = 40 * world.area();

        std::cout << "Torus " << world.n() << "x" << world.n()
                  << ", hidden food patch of diameter 9 at " << patch_center
                  << " (the searchers don't know this).\n"
                  << "Each searcher senses only between jumps ([18]'s intermittent model).\n\n";

        stats::text_table table({"alpha", "found?", "time", "distance walked per sensing"});
        for (const double alpha : {1.5, 2.0, 2.5, 3.0}) {
            torus::torus_levy_walk searcher(alpha, master.substream(10 + static_cast<std::uint64_t>(alpha * 4)),
                                            world);
            const auto r = hit_within_intermittent(searcher, patch, budget);
            const double per_phase =
                searcher.phases() == 0
                    ? 0.0
                    : static_cast<double>(searcher.steps()) / static_cast<double>(searcher.phases());
            table.add_row({stats::fmt(alpha, 1), r.hit ? "yes" : "no",
                           r.hit ? stats::fmt(r.time) : "-", stats::fmt(per_phase, 2)});
        }
        table.print(std::cout);
        std::cout << "\nAggregate behavior (many instances, scaling in n and D) is measured\n"
                     "by bench_e19_torus_cauchy; here you can replay single instances with\n"
                     "--seed=<n> and watch alpha = 2's balance: long enough jumps to move,\n"
                     "frequent enough sensing not to fly over the patch.\n";
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "torus_search: " << e.what() << '\n';
        return 1;
    }
}
