// E1 — Theorem 1.1(a) / 4.1(a): super-diffusive single-walk hitting.
//
// For α ∈ (2,3) and a target at distance ℓ, a single Lévy walk given
// t = Θ(ℓ^{α−1}) steps hits with probability Ω(1 / (ℓ^{3−α} log² ℓ)).
// We measure P(τ_α ≤ c·ℓ^{α−1}) over a grid of ℓ for several α and compare
// the log-log slope in ℓ against the predicted exponent −(3−α)
// (the polylog factor flattens the fit slightly below the clean power law).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E1", "Thm 1.1(a): super-diffusive hitting probability",
                  "P(tau_alpha <= c*ell^(alpha-1)) = Omega(1/(ell^(3-alpha) log^2 ell))");

    const std::vector<double> alphas = {2.25, 2.5, 2.75};
    std::vector<std::int64_t> ells;
    for (std::int64_t e = 16; e <= 256; e *= 2) ells.push_back(bench::scaled(e, opts.scale));
    constexpr double kBudgetFactor = 4.0;

    stats::text_table table({"alpha", "ell", "budget", "trials", "P(hit) ± ci",
                             "paper shape", "meas/shape"});
    sim::csv_writer csv = opts.csv_path.empty() ? sim::csv_writer{}
                                                : sim::csv_writer{opts.csv_path};
    csv.header({"alpha", "ell", "budget", "trials", "p_hit", "p_lo", "p_hi", "shape"});

    for (const double alpha : alphas) {
        std::vector<double> xs, ys;
        for (const std::int64_t ell : ells) {
            const auto budget = static_cast<std::uint64_t>(
                kBudgetFactor * theory::t_ell(alpha, static_cast<double>(ell)));
            const sim::single_walk_config cfg{.alpha = alpha, .ell = ell, .budget = budget,
                                              .cap = opts.cap,
                                              .max_steps = opts.max_trial_steps,
                                              .engine = opts.engine};
            const auto mc = opts.mc(/*default_trials=*/2000,
                                    /*salt=*/static_cast<std::uint64_t>(ell) * 1000 +
                                        static_cast<std::uint64_t>(alpha * 100));
            const auto p = sim::single_hit_probability(cfg, mc);
            const double shape =
                theory::superdiffusive_hit_prob(alpha, static_cast<double>(ell));
            table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(budget),
                           stats::fmt(mc.trials),
                           stats::fmt_pm(p.estimate(), (p.hi - p.lo) / 2, 4),
                           stats::fmt_sci(shape), stats::fmt(p.estimate() / shape, 2)});
            csv.row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(budget),
                     stats::fmt(mc.trials), stats::fmt(p.estimate(), 6),
                     stats::fmt(p.lo, 6), stats::fmt(p.hi, 6), stats::fmt_sci(shape)});
            xs.push_back(static_cast<double>(ell));
            ys.push_back(p.estimate());
        }
        const auto fit = stats::loglog_fit(xs, ys);
        // ± is the 95% CI of the fitted slope (residual standard error), so
        // levyreport can tell exponent drift from sampling noise.
        table.add_row({stats::fmt(alpha, 2), "slope", "-", "-",
                       stats::fmt_pm(fit.slope, 1.96 * fit.slope_std_error, 3) + " (fit)",
                       stats::fmt(-(3.0 - alpha), 3) + " (paper)",
                       "r2=" + stats::fmt(fit.r_squared, 3)});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: per alpha, the fitted slope of P(hit) vs ell should track\n"
                 "-(3-alpha) (within the log^2 ell correction the theorem carries).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E1", argc, argv, run); }
