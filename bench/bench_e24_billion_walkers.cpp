// E24 — out-of-core scale: a billion walkers on a laptop.
//
// Theorem 1.5's regime of interest is huge k — the paper's point is that a
// swarm of parallel Lévy walkers finds the target in O((ℓ²/k) polylog + ℓ)
// steps, so the interesting sweeps push k far past what fits in RAM as
// in-memory SoA state (224 bytes/walker ⇒ k = 10⁹ is ~208 GiB). This bench
// drives the sharded engine (sim/shard_engine) through the same E7-style
// speedup sweep while the resident set stays bounded by --memory-budget,
// and reports the spill/reload traffic alongside the hitting times. The
// results are bit-identical to the in-memory engine at any shard count —
// what this table adds is the IO cost of being out-of-core.
//
// Defaults keep CI-sized runs honest (k up to 2²⁰ under a deliberately
// small budget so eviction actually happens); k grows with --scale⁴, so
// --scale=5.7 reaches k ≈ 10⁹ for the full laptop-scale demonstration.

#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/obs/metrics.h"
#include "src/sim/trial.h"
#include "src/sim/walk_engine.h"
#include "src/stats/streaming.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

std::uint64_t counter_value(const std::map<std::string, std::uint64_t>& counters,
                            const std::string& name) {
    const auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
}

void run(const sim::run_options& opts) {
    bench::banner("E24", "Out-of-core sharding: Thm 1.5(a) speedup past RAM",
                  "tau^k = O((ell^2/k) polylog + ell) holds unchanged when walker state "
                  "is sharded to disk; sharding costs IO, never correctness");

    const std::int64_t ell = bench::scaled(64, opts.scale);
    // k sweeps with the fourth power of --scale: doubling the scale is 16×
    // the swarm. scale 1 tops out at 2²⁰ (CI-sized); ~5.7 reaches 10⁹.
    const double kscale = opts.scale * opts.scale * opts.scale * opts.scale;
    std::vector<std::size_t> ks;
    for (const std::size_t base : {std::size_t{1} << 12, std::size_t{1} << 16,
                                   std::size_t{1} << 20}) {
        ks.push_back(static_cast<std::size_t>(bench::scaled(
            static_cast<std::int64_t>(base), kscale)));
    }

    // Sharding defaults: exercise the out-of-core path even when the caller
    // passes no flags — a resident budget of 1/8 of the largest sweep point
    // forces real eviction. Explicit --shards/--memory-budget win.
    sim::run_options sharded = opts;
    if (sharded.shards <= 1 && sharded.memory_budget == 0) {
        sharded.memory_budget =
            ks.back() / 8 * sim::walker_block::kBytesPerWalker;
    }

    stats::text_table table({"k", "alpha*", "hit rate", "cens", "median tau^k",
                             "ell^2/k", "p50/(ell^2/k)", "spills", "loads", "recomp",
                             "spill MiB"});
    for (const std::size_t k : ks) {
        const double alpha = optimal_alpha(static_cast<double>(k), static_cast<double>(ell));
        sim::parallel_walk_config cfg;
        cfg.k = k;
        cfg.strategy = fixed_exponent(alpha);
        cfg.ell = ell;
        // Same generous budget as E7: 32×(ℓ²/k) + 32ℓ keeps censoring rare.
        cfg.budget = static_cast<std::uint64_t>(
            32.0 * (static_cast<double>(ell) * static_cast<double>(ell) /
                        static_cast<double>(k) +
                    static_cast<double>(ell)));
        cfg.max_steps = opts.max_trial_steps;
        cfg.cap = opts.cap;
        cfg.engine = opts.engine;
        sharded.apply_sharding(cfg);
        // The engine's budget/8 quantum usually finishes a hit in one
        // residency round; a smaller default makes the reload traffic this
        // bench exists to measure actually appear (results are invariant).
        if (cfg.epoch_steps == 0) cfg.epoch_steps = std::max<std::uint64_t>(1, cfg.budget / 64);

        const auto before = obs::snapshot_metrics().counters;
        const auto mc = opts.mc(/*default_trials=*/8, /*salt=*/k);
        const auto sample = sim::parallel_hitting_times(cfg, mc);
        const auto after = obs::snapshot_metrics().counters;

        const double med = stats::median(sample.times);
        const double ideal = static_cast<double>(ell) * static_cast<double>(ell) /
                             static_cast<double>(k);
        const double spill_mib =
            static_cast<double>(counter_value(after, "shard.spill_bytes") -
                                counter_value(before, "shard.spill_bytes")) /
            (1024.0 * 1024.0);
        table.add_row(
            {stats::fmt(k), stats::fmt(alpha, 2), stats::fmt(sample.hit_fraction(), 2),
             stats::fmt(sample.censored_fraction(), 2), stats::fmt(med, 0),
             stats::fmt(ideal, 0), stats::fmt(med / ideal, 2),
             stats::fmt(counter_value(after, "shard.spills") -
                        counter_value(before, "shard.spills")),
             stats::fmt(counter_value(after, "shard.loads") -
                        counter_value(before, "shard.loads")),
             stats::fmt(counter_value(after, "shard.recomputed") -
                        counter_value(before, "shard.recomputed")),
             stats::fmt(spill_mib, 1)});
    }
    table.print(std::cout);
    std::cout << "\nReading: the hitting-time columns reproduce E7's speedup law while the\n"
                 "resident set stays under --memory-budget (default: 1/8 of the largest\n"
                 "sweep point); spills/loads are the IO price of being out-of-core, and\n"
                 "recomp > 0 would mean corrupt/stale shard files were dropped and\n"
                 "replayed (results are bit-identical to the in-memory engine either\n"
                 "way). k grows with --scale^4: --scale=5.7 is the k ~ 10^9 run.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E24", argc, argv, run); }
