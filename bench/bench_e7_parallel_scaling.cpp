// E7 — Theorem 1.5(a) / Eq. (1): parallel speedup at the optimal exponent.
//
// With α = α*(k, ℓ), the parallel hitting time is
// O((ℓ²/k)·log⁶ ℓ + ℓ) w.h.p. — linear speedup in k down to the universal
// floor of ℓ. We fix ℓ, sweep k over doublings, run at α*(k, ℓ), and check
// that median τ^k scales like ℓ²/k (log-log slope ≈ −1 in k) until it
// saturates near ℓ.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"
#include "src/stats/streaming.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E7", "Thm 1.5(a): parallel hitting time O((ell^2/k) polylog + ell)",
                  "tau^k = O((ell^2/k) log^6 ell + ell) w.h.p. at alpha = alpha*(k, ell)");

    const std::int64_t ell = bench::scaled(128, opts.scale);
    std::vector<std::size_t> ks = {2, 8, 32, 128, 512};

    stats::text_table table({"k", "alpha*", "hit rate", "cens", "median tau^k",
                             "mean tau ± 95ci", "ell^2/k", "p50/(ell^2/k)",
                             "LB ell^2/k+ell"});
    std::vector<double> xs, ys;
    for (const std::size_t k : ks) {
        const double alpha = optimal_alpha(static_cast<double>(k), static_cast<double>(ell));
        sim::parallel_walk_config cfg;
        cfg.k = k;
        cfg.strategy = fixed_exponent(alpha);
        cfg.ell = ell;
        // Generous budget so medians are rarely censored: 32×(ℓ²/k) + 32ℓ.
        cfg.budget = static_cast<std::uint64_t>(
            32.0 * (static_cast<double>(ell) * static_cast<double>(ell) /
                        static_cast<double>(k) +
                    static_cast<double>(ell)));
        cfg.max_steps = opts.max_trial_steps;
        cfg.cap = opts.cap;
        cfg.engine = opts.engine;
        opts.apply_sharding(cfg);
        const auto mc = opts.mc(/*default_trials=*/150, /*salt=*/k);
        const auto sample = sim::parallel_hitting_times(cfg, mc);
        const double med = stats::median(sample.times);
        const double ideal = static_cast<double>(ell) * static_cast<double>(ell) /
                             static_cast<double>(k);
        const auto ci = stats::normal_interval(stats::summarize(sample.times));
        table.add_row({stats::fmt(k), stats::fmt(alpha, 2),
                       stats::fmt(sample.hit_fraction(), 2),
                       stats::fmt(sample.censored_fraction(), 2), stats::fmt(med, 0),
                       stats::fmt_pm(ci.estimate, ci.half_width(), 0),
                       stats::fmt(ideal, 0), stats::fmt(med / ideal, 2),
                       stats::fmt(theory::universal_lower_bound(static_cast<double>(k),
                                                                static_cast<double>(ell)),
                                  0)});
        xs.push_back(static_cast<double>(k));
        ys.push_back(med);
    }
    const auto fit = stats::loglog_fit(xs, ys);
    table.add_separator();
    // ± is the 95% CI of the fitted slope, the noise floor levyreport gates
    // paper-drift against.
    table.add_row({"slope", "-", "-", "-",
                   stats::fmt_pm(fit.slope, 1.96 * fit.slope_std_error, 3) + " (fit)",
                   "-1 (paper)", "r2=" + stats::fmt(fit.r_squared, 3), "-", "-"});
    table.print(std::cout);
    std::cout << "\nReading: median tau^k tracks ell^2/k (slope ~ -1 in k) until the budget\n"
                 "floor ~ell bites at very large k; the p50/(ell^2/k) column is the\n"
                 "polylog-and-constant overhead the theorem allows.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E7", argc, argv, run); }
