// E12 — the distributional facts the analysis is built on:
//   (a) Eq. (4):    P(d >= i) = Θ(1/i^{α−1})               (jump tail)
//   (b) Lemma 3.2:  direct-path intermediate marginals sit in the
//                   [(i/d)⌊d/i⌋/4i, (i/d)⌈d/i⌉/4i] band
//   (c) Cor. 3.6:   P(visit u* during one jump-phase) = Θ(1/d^α)
// Each sub-experiment prints measured vs predicted exponents/bands.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_walk.h"
#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/jump_distribution.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/regression.h"

namespace {

using namespace levy;

void jump_tail(const sim::run_options& opts) {
    std::cout << "--- (a) Eq. 4: jump tail exponent ---\n";
    stats::text_table table({"alpha", "samples", "tail exponent (fit)", "paper -(alpha-1)",
                             "r2"});
    for (const double alpha : {1.5, 2.0, 2.5, 3.5}) {
        const jump_distribution jd(alpha);
        rng g = rng::seeded(opts.seed + static_cast<std::uint64_t>(alpha * 100));
        const std::size_t n = opts.trials != 0 ? opts.trials : 1000000;
        std::vector<std::uint64_t> thresholds = {4, 8, 16, 32, 64, 128};
        std::vector<std::uint64_t> counts(thresholds.size(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint64_t d = jd.sample(g);
            for (std::size_t j = 0; j < thresholds.size(); ++j) counts[j] += (d >= thresholds[j]);
        }
        std::vector<double> xs, ys;
        for (std::size_t j = 0; j < thresholds.size(); ++j) {
            xs.push_back(static_cast<double>(thresholds[j]));
            ys.push_back(static_cast<double>(counts[j]) / static_cast<double>(n));
        }
        const auto fit = stats::loglog_fit(xs, ys);
        table.add_row({stats::fmt(alpha, 2), stats::fmt(n), stats::fmt(fit.slope, 3),
                       stats::fmt(-(alpha - 1.0), 3), stats::fmt(fit.r_squared, 4)});
    }
    table.print(std::cout);
}

void path_band(const sim::run_options& opts) {
    std::cout << "\n--- (b) Lemma 3.2: direct-path marginal band (d = 12) ---\n";
    const std::int64_t d = 12;
    const std::size_t n = opts.trials != 0 ? opts.trials : 300000;
    stats::text_table table({"i", "min freq", "max freq", "band lo", "band hi", "inside?"});
    for (const std::int64_t i : {3L, 5L, 6L, 8L, 9L}) {
        rng g = rng::seeded(opts.seed + static_cast<std::uint64_t>(i));
        std::vector<std::uint64_t> counts(ring_size(i), 0);
        for (std::size_t trial = 0; trial < n; ++trial) {
            const point v = sample_ring(origin, d, g);
            direct_path_stepper s(origin, v);
            point ui = origin;
            // levylint:allow(substream-discipline): the marginal-band bench
            // dedicates g to this path sample; there is no main stream to
            // protect from the stepper's data-dependent tie coins.
            for (std::int64_t step = 0; step < i; ++step) ui = s.advance(g);
            ++counts[ring_index(origin, ui)];
        }
        const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
        const double fmin = static_cast<double>(*mn) / static_cast<double>(n);
        const double fmax = static_cast<double>(*mx) / static_cast<double>(n);
        const double id = static_cast<double>(i) / static_cast<double>(d);
        const double lo = id * std::floor(1.0 / id) / (4.0 * static_cast<double>(i));
        const double hi = id * std::ceil(1.0 / id) / (4.0 * static_cast<double>(i));
        const double slack = 4.0 * std::sqrt(hi / static_cast<double>(n));
        const bool inside = fmin >= lo - slack && fmax <= hi + slack;
        table.add_row({stats::fmt(i), stats::fmt(fmin, 5), stats::fmt(fmax, 5),
                       stats::fmt(lo, 5), stats::fmt(hi, 5), inside ? "yes" : "NO"});
    }
    table.print(std::cout);
}

void phase_visit(const sim::run_options& opts) {
    std::cout << "\n--- (c) Cor 3.6: per-phase visit probability Theta(1/d^alpha) ---\n";
    const double alpha = 2.5;
    stats::text_table table({"d", "trials", "P(visit in phase 1)", "fit exponent", "paper"});
    std::vector<double> xs, ys;
    for (const std::int64_t d : {2L, 4L, 8L, 16L}) {
        const std::size_t n = (opts.trials != 0 ? opts.trials : 1000000) *
                              static_cast<std::size_t>(d >= 8 ? 4 : 1);
        const auto mc = sim::mc_options{.trials = n, .threads = opts.threads,
                                        .seed = opts.seed + static_cast<std::uint64_t>(d)};
        const point target{d, 0};
        const auto hits = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
            levy_walk w(alpha, g);
            w.step();  // begins phase 1
            if (w.position() == target) return 1;
            while (w.in_phase()) {
                if (w.step() == target) return 1;
            }
            return 0;
        });
        std::uint64_t count = 0;
        for (int h : hits) count += h;
        const double p = static_cast<double>(count) / static_cast<double>(n);
        xs.push_back(static_cast<double>(d));
        ys.push_back(p);
        table.add_row({stats::fmt(d), stats::fmt(n), stats::fmt_sci(p), "", ""});
    }
    const auto fit = stats::loglog_fit(xs, ys);
    table.add_row({"fit", "-", "-", stats::fmt(fit.slope, 3),
                   stats::fmt(-alpha, 2) + " (=-alpha)"});
    table.print(std::cout);
}

void run(const sim::run_options& opts) {
    bench::banner("E12", "distributional ingredients: Eq. 4, Lemma 3.2, Cor 3.6",
                  "tail exponent alpha-1; path marginals in the lemma band; per-phase "
                  "visit probability 1/d^alpha");
    {
        LEVY_SPAN("jump_tail");
        jump_tail(opts);
    }
    {
        LEVY_SPAN("path_band");
        path_band(opts);
    }
    {
        LEVY_SPAN("phase_visit");
        phase_visit(opts);
    }
    std::cout << "\nReading: all three measured exponents/bands should match the paper's\n"
                 "predictions to within sampling noise.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E12", argc, argv, run); }
