// E19 — the [18] setting on the torus (§2): Cauchy search time Õ(n/D).
//
// [18] (discussed at length in the paper's related work): on a torus of
// area n with a single uniformly random target of diameter D and an
// *intermittent* Lévy searcher, the Cauchy walk (α = 2) finds the target in
// near-optimal time Õ(n/D), and exponents α ≠ 2 are suboptimal. We measure
// median search time on n = side² tori: (a) scaling in area and D at α = 2,
// (b) an α sweep at fixed (side, D).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/intermittent.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/regression.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"
#include "src/torus/torus_walk.h"

namespace {

using namespace levy;

double median_search_time(double alpha, std::int64_t side, std::int64_t radius,
                          std::uint64_t budget, const sim::mc_options& mc) {
    const torus::torus_geometry geometry(side);
    const auto times = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
        const point target_node = geometry.random_node(g);
        torus::torus_levy_walk walk(alpha, g, geometry);
        const torus::torus_disc_target target{geometry, target_node, radius};
        const auto r = hit_within_intermittent(walk, target, budget);
        return static_cast<double>(r.time);
    });
    return stats::median(times);
}

void run(const sim::run_options& opts) {
    bench::banner("E19", "the [18] torus setting: Cauchy search time ~ n/D (extension)",
                  "intermittent Levy search on an area-n torus finds a random diameter-D "
                  "target in ~O(n/D) at alpha = 2; other alphas are suboptimal");

    // (a) scaling in area and D at alpha = 2.
    std::cout << "--- (a) search time vs area and D at alpha = 2 ---\n";
    stats::text_table scaling({"side", "area n", "D", "median time", "time/(n/D)"});
    std::vector<double> xs, ys;
    for (const std::int64_t side : {32L, 64L, 128L}) {
        const auto area = static_cast<double>(side) * static_cast<double>(side);
        for (const std::int64_t radius : {0L, 1L, 4L}) {
            const double diameter = static_cast<double>(2 * radius + 1);
            const auto budget = static_cast<std::uint64_t>(400.0 * area / diameter);
            const auto mc = opts.mc(/*default_trials=*/50,
                                    /*salt=*/static_cast<std::uint64_t>(side) * 16 +
                                        static_cast<std::uint64_t>(radius));
            const double med = median_search_time(2.0, side, radius, budget, mc);
            scaling.add_row({stats::fmt(side), stats::fmt(static_cast<std::int64_t>(area)),
                             stats::fmt(2 * radius + 1), stats::fmt(med, 0),
                             stats::fmt(med / (area / diameter), 1)});
            xs.push_back(area / diameter);
            ys.push_back(med);
        }
    }
    const auto fit = stats::loglog_fit(xs, ys);
    scaling.add_separator();
    scaling.add_row({"fit", "time ~ (n/D)^" + stats::fmt(fit.slope, 2), "1 (paper)",
                     "r2=" + stats::fmt(fit.r_squared, 3), "-"});
    scaling.print(std::cout);

    // (b) alpha sweep at fixed side, D.
    std::cout << "\n--- (b) alpha sweep at side = 96, D = 9 ---\n";
    const std::int64_t side = bench::scaled(96, opts.scale);
    const std::int64_t radius = 4;
    const auto area = static_cast<double>(side) * static_cast<double>(side);
    const auto budget = static_cast<std::uint64_t>(100.0 * area / 9.0);
    stats::text_table sweep({"alpha", "median time", "relative to best"});
    std::vector<double> alphas = {1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0};
    std::vector<double> medians;
    for (const double alpha : alphas) {
        const auto mc = opts.mc(/*default_trials=*/300,
                                /*salt=*/1000 + static_cast<std::uint64_t>(alpha * 100));
        medians.push_back(median_search_time(alpha, side, radius, budget, mc));
    }
    const double best = *std::min_element(medians.begin(), medians.end());
    for (std::size_t i = 0; i < alphas.size(); ++i) {
        sweep.add_row({stats::fmt(alphas[i], 2), stats::fmt(medians[i], 0),
                       stats::fmt(medians[i] / best, 2)});
    }
    sweep.print(std::cout);
    std::cout << "\nReading: (a) the Cauchy walk's search time grows linearly in n/D\n"
                 "(slope ~ 1), [18]'s headline bound. (b) the diffusive side (alpha >= 2.5)\n"
                 "pays clear multiples; at this torus size the ballistic side stays within\n"
                 "~2x of Cauchy because jumps are capped at n/2, making alpha < 2 behave\n"
                 "like uniform probing — the polynomial alpha<2 separation of [18] opens\n"
                 "up with n (re-run with --scale to watch the gap grow).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E19", argc, argv, run); }
