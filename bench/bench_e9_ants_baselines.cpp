// E9 — §1.2.4 / §2: the ANTS-problem comparison.
//
// k non-communicating agents from a common nest, unknown target at distance
// ℓ (Feinerman–Korman [14], zero advice). The paper's randomized-Lévy
// strategy is a *uniform* solution: it knows neither k nor ℓ, yet is within
// polylog of the Ω(ℓ²/k + ℓ) lower bound. We pit it against
//   - k simple random walks        (diffusive, the α→∞ limit),
//   - k ballistic walks            (straight shots, the α→1 limit),
//   - the FK-style searcher        (knows k — an informed comparator),
// at the same step budget, reporting hit rate and median parallel time.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/ballistic_walk.h"
#include "src/baselines/fk_ants.h"
#include "src/baselines/simple_random_walk.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

struct outcome {
    double hit_rate = 0.0;
    double median_time = 0.0;
};

template <class TrialFn>
outcome measure(const sim::mc_options& mc, std::uint64_t budget, TrialFn&& trial) {
    const auto results = sim::monte_carlo_collect(mc, trial);
    std::vector<double> times;
    std::uint64_t hits = 0;
    times.reserve(results.size());
    for (const hit_result& r : results) {
        times.push_back(static_cast<double>(r.hit ? r.time : budget));
        hits += r.hit;
    }
    return {static_cast<double>(hits) / static_cast<double>(results.size()),
            stats::median(times)};
}

void compare(const sim::run_options& opts, std::size_t k, std::int64_t ell) {
    const point target = sim::target_at(ell);
    const double lb = theory::universal_lower_bound(static_cast<double>(k),
                                                    static_cast<double>(ell));
    const auto budget = static_cast<std::uint64_t>(32.0 * lb);
    std::cout << "k = " << k << ", ell = " << ell << ", budget = 32*(ell^2/k + ell) = "
              << budget << "\n";

    stats::text_table table({"strategy", "knows", "hit rate", "median tau^k", "p50/LB"});
    const auto add = [&](const char* name, const char* knows, const outcome& o) {
        table.add_row({name, knows, stats::fmt(o.hit_rate, 2), stats::fmt(o.median_time, 0),
                       stats::fmt(o.median_time / lb, 1)});
    };

    add("Levy U(2,3)", "nothing",
        measure(opts.mc(80, 1), budget, [&](std::size_t, rng& g) {
            const auto r = parallel_hit(k, uniform_exponent(), target, budget, g);
            return hit_result{r.hit, r.time};
        }));
    add("Levy fixed a=2.5", "nothing",
        measure(opts.mc(80, 2), budget, [&](std::size_t, rng& g) {
            const auto r = parallel_hit(k, fixed_exponent(2.5), target, budget, g);
            return hit_result{r.hit, r.time};
        }));
    add("k simple random walks", "nothing",
        measure(opts.mc(80, 3), budget, [&](std::size_t, rng& g) {
            return bench::parallel_hit_generic(k, target, budget, g, [](std::size_t, rng s) {
                return baselines::simple_random_walk(s);
            });
        }));
    add("k ballistic walks", "nothing",
        measure(opts.mc(80, 4), budget, [&](std::size_t, rng& g) {
            return bench::parallel_hit_generic(k, target, budget, g, [](std::size_t, rng s) {
                return baselines::ballistic_walk(s);
            });
        }));
    add("FK ball+spiral", "k",
        measure(opts.mc(80, 5), budget, [&](std::size_t, rng& g) {
            return bench::parallel_hit_generic(k, target, budget, g, [&](std::size_t, rng s) {
                return baselines::fk_ants_searcher(k, s);
            });
        }));
    table.print(std::cout);
    std::cout << '\n';
}

void run(const sim::run_options& opts) {
    bench::banner("E9", "ANTS comparison: uniform Levy strategy vs classical baselines",
                  "random-exponent Levy walks are within polylog of the Omega(ell^2/k + ell) "
                  "lower bound, with zero knowledge; SRWs pay extra log factors, ballistic "
                  "walks rarely hit, FK is the informed yardstick");
    {
        LEVY_SPAN("compare_k16");
        compare(opts, /*k=*/16, bench::scaled(32, opts.scale));
    }
    {
        LEVY_SPAN("compare_k64");
        compare(opts, /*k=*/64, bench::scaled(192, opts.scale));
    }
    std::cout << "Reading: Levy U(2,3) stays competitive with FK (which knows k) at both\n"
                 "distances with zero knowledge; ballistic hit rates collapse with ell;\n"
                 "SRW fleets trail by the extra log factors they pay for retracing their\n"
                 "own paths (the gap is polylog, so it is visible but not dramatic here).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E9", argc, argv, run); }
