// E18 — ablation: how much of Theorem 1.6 is the *randomness*, how much the
// *diversity*?
//
// The paper's strategy draws each walk's α iid from U(2,3). Candidate
// mechanisms: (a) iid continuous randomness, (b) deterministic round-robin
// over an even grid in (2,3), (c) a coarse random menu of few exponents,
// (d) no diversity at all (fixed α = 2.5). If diversity is what matters,
// (a)–(c) should track each other and beat (d) at distances where 2.5 is
// mistuned; the theorem's proof (a Θ(1/log ℓ) fraction of walks lands near
// α*) suggests exactly that.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E18", "ablation: randomized vs derandomized exponent diversity (Thm 1.6)",
                  "any assignment placing Theta(1/log ell) of the walks near alpha*(k,ell) "
                  "achieves the theorem's bound; iid U(2,3) is one such assignment");

    const std::size_t k = 64;
    struct named_strategy {
        const char* name;
        exponent_strategy strategy;
    };
    const std::vector<named_strategy> strategies = {
        {"iid U(2,3) (paper)", uniform_exponent()},
        {"round-robin 8 levels", round_robin_exponent(2.0, 3.0, 8)},
        {"round-robin 4 levels", round_robin_exponent(2.0, 3.0, 4)},
        {"random menu {2.2,2.5,2.8}", discrete_exponent({2.2, 2.5, 2.8})},
        {"fixed 2.5 (no diversity)", fixed_exponent(2.5)},
    };

    std::vector<std::int64_t> ells;
    for (const std::int64_t e : {48L, 192L}) ells.push_back(bench::scaled(e, opts.scale));

    stats::text_table table({"ell", "strategy", "hit rate", "cens", "median tau^k", "p50/LB"});
    for (const std::int64_t ell : ells) {
        const double lb = theory::universal_lower_bound(static_cast<double>(k),
                                                        static_cast<double>(ell));
        std::size_t idx = 0;
        for (const auto& s : strategies) {
            sim::parallel_walk_config cfg;
            cfg.k = k;
            cfg.strategy = s.strategy;
            cfg.ell = ell;
            cfg.budget = static_cast<std::uint64_t>(48.0 * lb);
            cfg.max_steps = opts.max_trial_steps;
            opts.apply_sharding(cfg);
            const auto mc = opts.mc(/*default_trials=*/60,
                                    /*salt=*/static_cast<std::uint64_t>(ell) * 8 + idx);
            const auto sample = sim::parallel_hitting_times(cfg, mc);
            table.add_row({stats::fmt(ell), s.name, stats::fmt(sample.hit_fraction(), 2),
                           stats::fmt(sample.censored_fraction(), 2),
                           stats::fmt(stats::median(sample.times), 0),
                           stats::fmt(stats::median(sample.times) / lb, 1)});
            ++idx;
        }
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: the three diversity mechanisms perform alike (iid randomness\n"
                 "is not magic — coverage of the exponent range is what counts), and a\n"
                 "round-robin assignment is a legitimate derandomization whenever agents\n"
                 "have ids. The fixed exponent is competitive only near the ell its value\n"
                 "happens to match.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E18", argc, argv, run); }
