// E8 — Theorem 1.6: random exponents are near-optimal for every distance.
//
// Give each of the k walks an independent α ~ U(2,3) — no knowledge of k or
// ℓ — and the parallel hitting time is O((ℓ²/k) log⁷ ℓ + ℓ log³ ℓ) w.h.p.,
// i.e. within polylog factors of the oracle that knows both. We sweep ℓ at
// fixed k and compare four strategies at a common generous budget:
// U(2,3), the oracle fixed α*(k,ℓ), and the fixed "extremes" α = 2 (Cauchy)
// and α = 3 — the exponents prior work singles out — which must lose at the
// distances they are mistuned for.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/strategy.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

struct strategy_row {
    const char* name;
    exponent_strategy strategy;
};

void run(const sim::run_options& opts) {
    bench::banner("E8", "Thm 1.6: uniformly random exponents, optimal for all ell at once",
                  "tau^k_rand = O((ell^2/k) log^7 ell + ell log^3 ell) w.h.p., within "
                  "polylog of any strategy");

    const std::size_t k = 64;
    std::vector<std::int64_t> ells;
    for (const std::int64_t e : {32L, 96L, 256L}) ells.push_back(bench::scaled(e, opts.scale));

    stats::text_table table({"ell", "strategy", "hit rate", "cens", "median tau^k",
                             "p50/LB", "LB = ell^2/k + ell"});
    for (const std::int64_t ell : ells) {
        const double lb = theory::universal_lower_bound(static_cast<double>(k),
                                                        static_cast<double>(ell));
        const std::vector<strategy_row> strategies = {
            {"U(2,3) random", uniform_exponent()},
            {"oracle a*(k,l)",
             fixed_exponent(optimal_alpha(static_cast<double>(k), static_cast<double>(ell)))},
            {"fixed a=2.05", fixed_exponent(2.05)},
            {"fixed a=2.95", fixed_exponent(2.95)},
        };
        std::size_t strategy_index = 0;
        for (const auto& s : strategies) {
            sim::parallel_walk_config cfg;
            cfg.k = k;
            cfg.strategy = s.strategy;
            cfg.ell = ell;
            cfg.budget = static_cast<std::uint64_t>(48.0 * lb);
            cfg.max_steps = opts.max_trial_steps;
            opts.apply_sharding(cfg);
            const auto mc = opts.mc(/*default_trials=*/50,
                                    /*salt=*/static_cast<std::uint64_t>(ell) * 10 +
                                        strategy_index);
            const auto sample = sim::parallel_hitting_times(cfg, mc);
            const double med = stats::median(sample.times);
            table.add_row({stats::fmt(ell), s.name, stats::fmt(sample.hit_fraction(), 2),
                           stats::fmt(sample.censored_fraction(), 2), stats::fmt(med, 0),
                           stats::fmt(med / lb, 1), stats::fmt(lb, 0)});
            ++strategy_index;
        }
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: the U(2,3) row stays within a small polylog factor of the\n"
                 "oracle row at EVERY ell, while each fixed exponent is competitive only\n"
                 "near the ell it happens to match (a=2.05 at small ell^2/k ~ ell, a=2.95\n"
                 "when k ~ polylog) — the paper's central message.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E8", argc, argv, run); }
