// E3 — Theorem 1.1(c) / Lemma 3.11: probability of ever hitting the target.
//
// For α ∈ (2,3): P(τ_α < ∞) = O(log ℓ / ℓ^{3−α}) — walks are transient and
// most of them *never* find the target, no matter how long they run. We
// proxy τ < ∞ with a budget far beyond the optimum t_ℓ (additional steps
// past t_ℓ add only a polylog-factor of probability, per §1.2.1), sweep ℓ,
// and compare the decay exponent against −(3−α).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E3", "Thm 1.1(c): eventual-hit probability decays like ell^-(3-alpha)",
                  "P(tau_alpha < inf) = O(log ell / ell^(3-alpha))");

    const std::vector<double> alphas = {2.25, 2.5};
    std::vector<std::int64_t> ells;
    for (std::int64_t e = 16; e <= 256; e *= 2) ells.push_back(bench::scaled(e, opts.scale));

    stats::text_table table({"alpha", "ell", "budget", "trials", "P(hit ever) ± ci",
                             "paper O(log l/l^(3-a))", "meas/paper"});
    for (const double alpha : alphas) {
        std::vector<double> xs, ys;
        for (const std::int64_t ell : ells) {
            // 32×t_ℓ: hits beyond this add at most a polylog sliver.
            const auto budget = static_cast<std::uint64_t>(
                16.0 * theory::t_ell(alpha, static_cast<double>(ell)));
            const sim::single_walk_config cfg{.alpha = alpha, .ell = ell, .budget = budget,
                                              .max_steps = opts.max_trial_steps};
            const auto mc = opts.mc(/*default_trials=*/2000,
                                    /*salt=*/static_cast<std::uint64_t>(ell) +
                                        static_cast<std::uint64_t>(alpha * 1000));
            const auto p = sim::single_hit_probability(cfg, mc);
            const double shape = theory::eventual_hit_prob(alpha, static_cast<double>(ell));
            table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(budget),
                           stats::fmt(mc.trials),
                           stats::fmt_pm(p.estimate(), (p.hi - p.lo) / 2, 4),
                           stats::fmt_sci(shape), stats::fmt(p.estimate() / shape, 3)});
            xs.push_back(static_cast<double>(ell));
            ys.push_back(p.estimate());
        }
        const auto fit = stats::loglog_fit(xs, ys);
        table.add_row({stats::fmt(alpha, 2), "slope", "-", "-",
                       stats::fmt(fit.slope, 3) + " (fit)",
                       stats::fmt(-(3.0 - alpha), 3) + " (paper)",
                       "r2=" + stats::fmt(fit.r_squared, 3)});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: decay slope tracks -(3-alpha); the measured/paper ratio should\n"
                 "be roughly flat across ell (the O() constant).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E3", argc, argv, run); }
