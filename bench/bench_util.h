#pragma once

// Shared scaffolding for the experiment binaries (E1-E14). Each binary
// validates one statement of the paper: it prints the claim, sweeps the
// statement's parameters, and emits a paper-vs-measured table plus one
// throughput line (trials/s and worker utilization on the persistent pool).
// All binaries accept --trials/--scale/--threads/--chunk/--seed/--csv plus
// the observability flags --json/--json-dir/--trace (see sim::run_options)
// and run with fast defaults suitable for
// `for b in build/bench/*; do $b; done`.

#include <cstdint>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/parallel_search.h"
#include "src/obs/exporter.h"
#include "src/obs/progress.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/rng/rng_stream.h"
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/table.h"

namespace levy::bench {

/// Print the experiment banner: id, the validated statement, and the claim.
inline void banner(const std::string& id, const std::string& statement,
                   const std::string& claim) {
    std::cout << "=== " << id << " — " << statement << " ===\n";
    std::cout << "Paper claim: " << claim << "\n\n";
}

/// Wrap a bench main: parse options, run, convert exceptions to exit codes.
/// `id` is the experiment tag ("E12"); it names the structured JSON sink
/// (BENCH_<id>.json under --json-dir) and the "experiment" field of its
/// schema. With --json/--json-dir the bench's printed tables and metrics
/// are additionally captured and written crash-safely; with --trace the
/// LEVY_SPAN phases land as a Chrome trace file. With --progress a sampler
/// thread heartbeats completed/ETA to stderr; with --metrics-port the run
/// is scrapeable at /metrics, /healthz and /progress while live. All
/// telemetry notices go to stderr so stdout stays bit-identical with and
/// without these flags (the resume-determinism CI job diffs stdout).
/// SIGTERM cancels cooperatively whenever any of these sinks is active:
/// completed trials are flushed to the journal, the partial JSON document
/// (marked "interrupted": true) and the trace land through the crash-safe
/// writer, the progress reporter prints a final line, and the process exits
/// 130; rerunning with the same flags resumes and produces bit-identical
/// output.
inline int run_main(const std::string& id, int argc, char** argv,
                    const std::function<void(const sim::run_options&)>& body) {
    sim::run_options opts;
    try {
        opts = sim::parse_run_options(argc, argv);
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << '\n';
        return 1;
    }
    const std::string json_path = sim::default_json_path(opts, id);
    const bool observing = !json_path.empty() || !opts.trace_path.empty();
    const bool telemetry = opts.progress_seconds > 0.0 || opts.metrics_port >= 0;
    // Emit whatever telemetry/partial results exist; shared by the success
    // and the cancellation path so a SIGTERM'd run flushes the same sinks.
    const auto flush_observability = [&](bool interrupted) {
        obs::stop_progress();  // final stderr line, even when cancelled
        obs::stop_metrics_exporter();
        const auto metrics = sim::metrics_snapshot();
        if (!interrupted && metrics.trials > 0) {
            std::cout << sim::format_throughput(metrics) << '\n';
        }
        if (!observing) return;
        obs::stop_span_collection();
        if (!json_path.empty()) {
            obs::write_report(json_path, metrics, interrupted);
            obs::end_report();
            std::cerr << id << ": wrote " << json_path
                      << (interrupted ? " (interrupted)" : "") << '\n';
        }
        if (!opts.trace_path.empty()) {
            obs::write_chrome_trace(opts.trace_path);
            std::cerr << id << ": wrote " << opts.trace_path << '\n';
        }
    };
    try {
        // Any active sink wants the cooperative-cancellation flush on
        // SIGTERM; without one the signal keeps its default disposition.
        if (!opts.checkpoint_dir.empty() || observing || telemetry) sim::cancel_on_sigterm();
        if (observing) {
            obs::start_span_collection();
            if (!json_path.empty()) obs::begin_report(id, sim::describe_options(opts));
        }
        if (opts.metrics_port >= 0) {
            const unsigned short port = obs::start_metrics_exporter(
                static_cast<unsigned short>(opts.metrics_port));
            std::cerr << id << ": serving metrics on http://127.0.0.1:" << port
                      << "/metrics\n";
        }
        if (opts.progress_seconds > 0.0) {
            obs::start_progress({opts.progress_seconds, id});
        }
        body(opts);
        flush_observability(/*interrupted=*/false);
        return 0;
    } catch (const sim::run_cancelled&) {
        try {
            flush_observability(/*interrupted=*/true);
        } catch (const std::exception& e) {
            std::cerr << argv[0] << ": while flushing after cancellation: " << e.what()
                      << '\n';
        }
        std::cerr << argv[0]
                  << ": cancelled; completed trials are journaled — rerun with the same "
                     "--checkpoint to resume\n";
        return 130;
    } catch (const std::exception& e) {
        obs::stop_progress();
        obs::stop_metrics_exporter();
        std::cerr << argv[0] << ": " << e.what() << '\n';
        return 1;
    }
}

/// Scale an integer dimension by --scale (at least 1).
inline std::int64_t scaled(std::int64_t base, double scale) {
    const auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
}

/// Generic parallel hitting time over k arbitrary jump processes, for the
/// baseline comparisons (E9) where the searchers are not Lévy walks.
/// `make(i, stream)` builds the i-th searcher from its private stream.
/// Thin wrapper over the shared shrinking-budget loop in
/// `levy::parallel_min_hit`, so the early-exit logic lives in one place.
template <class Factory>
hit_result parallel_hit_generic(std::size_t k, point target, std::uint64_t budget,
                                const rng& trial_stream, Factory&& make) {
    const parallel_result r =
        parallel_min_hit(k, target, budget, trial_stream, std::forward<Factory>(make));
    return {r.hit, r.time};
}

}  // namespace levy::bench
