#pragma once

// Shared scaffolding for the experiment binaries (E1-E14). Each binary
// validates one statement of the paper: it prints the claim, sweeps the
// statement's parameters, and emits a paper-vs-measured table plus one
// throughput line (trials/s and worker utilization on the persistent pool).
// All binaries accept --trials/--scale/--threads/--chunk/--seed/--csv plus
// the observability flags --json/--json-dir/--trace (see sim::run_options)
// and run with fast defaults suitable for
// `for b in build/bench/*; do $b; done`.

#include <cstdint>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/parallel_search.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/rng/rng_stream.h"
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/table.h"

namespace levy::bench {

/// Print the experiment banner: id, the validated statement, and the claim.
inline void banner(const std::string& id, const std::string& statement,
                   const std::string& claim) {
    std::cout << "=== " << id << " — " << statement << " ===\n";
    std::cout << "Paper claim: " << claim << "\n\n";
}

/// Wrap a bench main: parse options, run, convert exceptions to exit codes.
/// `id` is the experiment tag ("E12"); it names the structured JSON sink
/// (BENCH_<id>.json under --json-dir) and the "experiment" field of its
/// schema. With --json/--json-dir the bench's printed tables and metrics
/// are additionally captured and written crash-safely; with --trace the
/// LEVY_SPAN phases land as a Chrome trace file. JSON/trace notices go to
/// stderr so stdout stays bit-identical with and without these flags (the
/// resume-determinism CI job diffs stdout).
/// With --checkpoint in effect, SIGTERM cancels cooperatively: completed
/// trials are flushed to the journal and the process exits 130; rerunning
/// with the same flags resumes and produces bit-identical output.
inline int run_main(const std::string& id, int argc, char** argv,
                    const std::function<void(const sim::run_options&)>& body) {
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        if (!opts.checkpoint_dir.empty()) sim::cancel_on_sigterm();
        const std::string json_path = sim::default_json_path(opts, id);
        const bool observing = !json_path.empty() || !opts.trace_path.empty();
        if (observing) {
            obs::start_span_collection();
            if (!json_path.empty()) obs::begin_report(id, sim::describe_options(opts));
        }
        body(opts);
        const auto metrics = sim::metrics_snapshot();
        if (metrics.trials > 0) std::cout << sim::format_throughput(metrics) << '\n';
        if (observing) {
            obs::stop_span_collection();
            if (!json_path.empty()) {
                obs::write_report(json_path, metrics);
                obs::end_report();
                std::cerr << id << ": wrote " << json_path << '\n';
            }
            if (!opts.trace_path.empty()) {
                obs::write_chrome_trace(opts.trace_path);
                std::cerr << id << ": wrote " << opts.trace_path << '\n';
            }
        }
        return 0;
    } catch (const sim::run_cancelled&) {
        std::cerr << argv[0]
                  << ": cancelled; completed trials are journaled — rerun with the same "
                     "--checkpoint to resume\n";
        return 130;
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << '\n';
        return 1;
    }
}

/// Scale an integer dimension by --scale (at least 1).
inline std::int64_t scaled(std::int64_t base, double scale) {
    const auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
}

/// Generic parallel hitting time over k arbitrary jump processes, for the
/// baseline comparisons (E9) where the searchers are not Lévy walks.
/// `make(i, stream)` builds the i-th searcher from its private stream.
/// Thin wrapper over the shared shrinking-budget loop in
/// `levy::parallel_min_hit`, so the early-exit logic lives in one place.
template <class Factory>
hit_result parallel_hit_generic(std::size_t k, point target, std::uint64_t budget,
                                rng trial_stream, Factory&& make) {
    const parallel_result r =
        parallel_min_hit(k, target, budget, trial_stream, std::forward<Factory>(make));
    return {r.hit, r.time};
}

}  // namespace levy::bench
