#pragma once

// Shared scaffolding for the experiment binaries (E1-E14). Each binary
// validates one statement of the paper: it prints the claim, sweeps the
// statement's parameters, and emits a paper-vs-measured table. All binaries
// accept --trials/--scale/--threads/--seed/--csv (see sim::run_options) and
// run with fast defaults suitable for `for b in build/bench/*; do $b; done`.

#include <cstdint>
#include <exception>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/hitting.h"
#include "src/rng/rng_stream.h"
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/table.h"

namespace levy::bench {

/// Print the experiment banner: id, the validated statement, and the claim.
inline void banner(const std::string& id, const std::string& statement,
                   const std::string& claim) {
    std::cout << "=== " << id << " — " << statement << " ===\n";
    std::cout << "Paper claim: " << claim << "\n\n";
}

/// Wrap a bench main: parse options, run, convert exceptions to exit codes.
inline int run_main(int argc, char** argv,
                    const std::function<void(const sim::run_options&)>& body) {
    try {
        const auto opts = sim::parse_run_options(argc, argv);
        body(opts);
        return 0;
    } catch (const std::exception& e) {
        std::cerr << argv[0] << ": " << e.what() << '\n';
        return 1;
    }
}

/// Scale an integer dimension by --scale (at least 1).
inline std::int64_t scaled(std::int64_t base, double scale) {
    const auto v = static_cast<std::int64_t>(static_cast<double>(base) * scale);
    return v < 1 ? 1 : v;
}

/// Generic parallel hitting time over k arbitrary jump processes, for the
/// baseline comparisons (E9) where the searchers are not Lévy walks.
/// `make(i, stream)` builds the i-th searcher from its private stream.
template <class Factory>
hit_result parallel_hit_generic(std::size_t k, point target, std::uint64_t budget,
                                rng trial_stream, Factory&& make) {
    hit_result best{false, budget};
    const point_target goal{target};
    for (std::size_t i = 0; i < k; ++i) {
        rng stream = trial_stream.substream(i);
        auto proc = make(i, stream);
        const std::uint64_t remaining = best.hit ? best.time - 1 : budget;
        const hit_result r = hit_within(proc, goal, remaining);
        if (r.hit) {
            best = r;
            if (r.time == 0) break;
        }
    }
    return best;
}

}  // namespace levy::bench
