// E11 — Lemma 4.13: expected visits to the origin of the capped Lévy flight.
//
// a_t(α) = E[Z₀(t) | E_t] is O(1/(3−α)²) for α ∈ (2,3) — *bounded in t* —
// and O(log² t) at the threshold α = 3. This constant is the denominator in
// the proof's conversion from expected visits to hitting probability
// (Lemma 4.14(iii)). Two checks, both honest about the bound being an O():
//   (1) across α at fixed t, measured a_t(α) stays below C/(3−α)²
//       (the full divergence needs t ≈ e^{(α-1)/(3-α)}, far beyond reach);
//   (2) across t at fixed α: bounded growth for α = 2.5 (visits saturate)
//       vs unbounded log-like growth at α = 3.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_flight.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trajectory.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

double mean_origin_visits(double alpha, std::uint64_t t, const sim::mc_options& mc) {
    const double cap_real = std::pow(static_cast<double>(t) * std::log(static_cast<double>(t)),
                                     1.0 / (alpha - 1.0));
    const auto cap = static_cast<std::uint64_t>(cap_real) + 1;
    const auto counts = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
        levy_flight f(alpha, g, origin, cap);
        return static_cast<double>(sim::count_visits(f, origin, t));
    });
    return stats::summarize(counts).mean();
}

void across_alpha(const sim::run_options& opts) {
    std::cout << "--- (1) upper bound across alpha at fixed t ---\n";
    const auto t = static_cast<std::uint64_t>(bench::scaled(16384, opts.scale));
    const std::vector<double> alphas = {2.1, 2.3, 2.5, 2.7, 2.9, 3.0};
    stats::text_table table({"alpha", "t", "E[Z0(t)]", "paper bound shape", "meas/bound"});
    for (const double alpha : alphas) {
        const auto mc = opts.mc(/*default_trials=*/400,
                                /*salt=*/static_cast<std::uint64_t>(alpha * 1000));
        const double visits = mean_origin_visits(alpha, t, mc);
        const double shape = alpha < 3.0
                                 ? 1.0 / ((3.0 - alpha) * (3.0 - alpha))
                                 : std::pow(std::log(static_cast<double>(t)), 2.0);
        const std::string desc = alpha < 3.0 ? "O(1/(3-a)^2) = O(" + stats::fmt(shape, 1) + ")"
                                             : "O(log^2 t) = O(" + stats::fmt(shape, 1) + ")";
        table.add_row({stats::fmt(alpha, 2), stats::fmt(t), stats::fmt(visits, 2), desc,
                       stats::fmt(visits / shape, 3)});
    }
    table.print(std::cout);
    std::cout << "Reading: the lemma is an upper bound — meas/bound must stay below an\n"
                 "O(1) constant for every alpha, which it does with room to spare (the\n"
                 "(3-a)^-2 divergence saturates only at t ~ e^((a-1)/(3-a)), far beyond\n"
                 "any reachable horizon).\n\n";
}

void across_t(const sim::run_options& opts) {
    std::cout << "--- (2) growth in t: bounded (alpha<3) vs logarithmic (alpha=3) ---\n";
    std::vector<std::uint64_t> ts;
    for (std::uint64_t t = 4096; t <= 262144; t *= 4) {
        ts.push_back(static_cast<std::uint64_t>(
            bench::scaled(static_cast<std::int64_t>(t), opts.scale)));
    }
    stats::text_table table({"t", "E[Z0(t)] alpha=2.5", "E[Z0(t)] alpha=3.0"});
    std::vector<double> growth25, growth30;
    for (const std::uint64_t t : ts) {
        const auto mc25 = opts.mc(/*default_trials=*/300, /*salt=*/t * 2);
        const auto mc30 = opts.mc(/*default_trials=*/300, /*salt=*/t * 2 + 1);
        const double v25 = mean_origin_visits(2.5, t, mc25);
        const double v30 = mean_origin_visits(3.0, t, mc30);
        growth25.push_back(v25);
        growth30.push_back(v30);
        table.add_row({stats::fmt(t), stats::fmt(v25, 3), stats::fmt(v30, 3)});
    }
    table.print(std::cout);
    const double rel25 = growth25.back() / growth25.front();
    const double rel30 = growth30.back() / growth30.front();
    std::cout << "growth factor over a 64x longer run: alpha=2.5 -> " << stats::fmt(rel25, 2)
              << " (paper: O(1), bounded), alpha=3.0 -> " << stats::fmt(rel30, 2)
              << " (paper: grows like log^2 t)\n";
}

void run(const sim::run_options& opts) {
    bench::banner("E11", "Lemma 4.13: visits to the origin, capped flight",
                  "a_t(alpha) = O(1/(3-alpha)^2) for alpha in (2,3), bounded in t; "
                  "O(log^2 t) at alpha = 3");
    across_alpha(opts);
    across_t(opts);
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E11", argc, argv, run); }
