// E10 — Lemma 3.9: the monotonicity property of monotone radial processes.
//
// For a Lévy flight (the walk restricted to jump endpoints) and any nodes
// u, v with ‖v‖∞ ≥ ‖u‖₁: P(J_t = u) ≥ P(J_t = v) at every t. We estimate
// the occupancy distribution at a fixed t and print it along two transects
// (the axis and the diagonal), annotated with the box-norm ordering the
// lemma uses; every lemma-comparable pair must be correctly ordered.

#include <cmath>
#include <iostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_flight.h"
#include "src/sim/monte_carlo.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E10", "Lemma 3.9: occupancy is monotone in the Q-norm ordering",
                  "||v||_inf >= ||u||_1 implies P(J_t = u) >= P(J_t = v), all t");

    const double alpha = 2.2;
    const std::uint64_t t = 4;
    const auto mc = opts.mc(/*default_trials=*/2000000);

    // One pass: bin the endpoint of every trial.
    const auto endpoints = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
        levy_flight f(alpha, g);
        for (std::uint64_t i = 0; i < t; ++i) f.step();
        return f.position();
    });
    std::unordered_map<point, std::uint64_t, point_hash> census;
    for (const point p : endpoints) ++census[p];
    const auto occupancy = [&](point p) {
        const auto it = census.find(p);
        return it == census.end()
                   ? 0.0
                   : static_cast<double>(it->second) / static_cast<double>(mc.trials);
    };

    stats::text_table table({"node u", "||u||_1", "||u||_inf", "P(J_t = u)"});
    std::vector<point> transect;
    for (std::int64_t d = 0; d <= 8; ++d) transect.push_back({d, 0});
    for (std::int64_t d = 1; d <= 5; ++d) transect.push_back({d, d});
    for (const point u : transect) {
        std::ostringstream name;
        name << u;
        table.add_row({name.str(), stats::fmt(l1_norm(u)), stats::fmt(linf_norm(u)),
                       stats::fmt_sci(occupancy(u))});
    }
    table.print(std::cout);

    // Exhaustive pairwise verification over a window: every pair the lemma
    // orders must come out ordered (up to Monte-Carlo noise).
    std::uint64_t comparable = 0, violations = 0;
    const double noise = 3.0 / std::sqrt(static_cast<double>(mc.trials));
    for (std::int64_t ux = -4; ux <= 4; ++ux) {
        for (std::int64_t uy = -4; uy <= 4; ++uy) {
            for (std::int64_t vx = -6; vx <= 6; ++vx) {
                for (std::int64_t vy = -6; vy <= 6; ++vy) {
                    const point u{ux, uy}, v{vx, vy};
                    if (linf_norm(v) >= l1_norm(u) && !(u == v)) {
                        ++comparable;
                        if (occupancy(u) + noise < occupancy(v)) ++violations;
                    }
                }
            }
        }
    }
    std::cout << "\npairwise check over a 9x9 vs 13x13 window: " << comparable
              << " lemma-comparable pairs, " << violations
              << " orderings violated beyond noise (paper: 0)\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E10", argc, argv, run); }
