// E2 — Theorem 1.1(b) / 4.1(b): the early-hitting lower bound.
//
// For α ∈ (2,3), ℓ ≤ t = O(ℓ^{α−1}): P(τ_α ≤ t) = O(t²/ℓ^{α+1}), i.e. the
// hitting probability grows (at most) quadratically in the step budget well
// below the optimal t_ℓ. We fix ℓ and α, sweep t over doublings from ℓ, and
// fit the log-log slope of P(τ ≤ t) vs t, which the paper caps at 2.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E2", "Thm 1.1(b): early-hitting probability is quadratic in t",
                  "P(tau_alpha <= t) = O(t^2 / ell^(alpha+1)) for ell <= t << ell^(alpha-1)");

    const double alpha = 2.5;
    const std::int64_t ell = bench::scaled(128, opts.scale);
    const double t_opt = theory::t_ell(alpha, static_cast<double>(ell));

    std::vector<std::uint64_t> budgets;
    for (std::uint64_t t = static_cast<std::uint64_t>(ell); static_cast<double>(t) <= t_opt;
         t *= 2) {
        budgets.push_back(t);
    }

    stats::text_table table(
        {"alpha", "ell", "t", "trials", "P(tau<=t) ± ci", "paper t^2/ell^(a+1)", "meas/paper"});
    std::vector<double> xs, ys;
    double worst_ratio = 0.0;
    for (const std::uint64_t t : budgets) {
        const sim::single_walk_config cfg{.alpha = alpha, .ell = ell, .budget = t,
                                          .max_steps = opts.max_trial_steps};
        const auto mc = opts.mc(/*default_trials=*/150000, /*salt=*/t);
        const auto p = sim::single_hit_probability(cfg, mc);
        const double shape = theory::early_hit_prob(alpha, static_cast<double>(ell),
                                                    static_cast<double>(t));
        table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(t),
                       stats::fmt(mc.trials),
                       stats::fmt_sci(p.estimate()) + " ± " + stats::fmt_sci((p.hi - p.lo) / 2, 1),
                       stats::fmt_sci(shape), stats::fmt(shape > 0 ? p.estimate() / shape : 0, 2)});
        worst_ratio = std::max(worst_ratio, p.hi / shape);
        xs.push_back(static_cast<double>(t));
        ys.push_back(p.estimate());
    }
    const auto fit = stats::loglog_fit(xs, ys);
    table.add_separator();
    table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), "verdict", "-",
                   "max (upper CI)/bound = " + stats::fmt(worst_ratio, 3),
                   "O(1) constant (paper)", "slope " + stats::fmt(fit.slope, 2)});
    table.print(std::cout);
    std::cout << "\nReading: Thm 1.1(b) is an UPPER bound — P(tau<=t) must sit below a\n"
                 "constant times t^2/ell^(alpha+1) at every t in the window, so the\n"
                 "meas/paper column must stay bounded (here: well under 1). The measured\n"
                 "growth can be steeper than t^2 deep below the bound; it must flatten to\n"
                 "at most quadratic as t approaches ell^(alpha-1), where the bound is tight.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E2", argc, argv, run); }
