// E16 — ablation: intermittent vs continuous sensing (§2 / footnote 3).
//
// In [18]'s setting the searcher cannot sense the target mid-jump, and the
// target has diameter D; there the Cauchy walk (α = 2) is the unique
// near-optimal exponent. Footnote 3 of the paper observes that with D = 1
// *or* with continuous (non-intermittent) sensing, whole ranges of α become
// optimal instead. We sweep α for both sensing modes and both target sizes
// and report hit rates at a fixed budget: the "α = 2 uniquely wins" shape
// should appear only in the (intermittent, large-D) cell.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/intermittent.h"
#include "src/core/levy_walk.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

struct cell {
    double hit_rate = 0.0;
};

cell measure(double alpha, bool intermittent, std::int64_t target_radius, std::int64_t ell,
             std::uint64_t budget, const sim::mc_options& mc) {
    const disc_target target{{ell, 0}, target_radius};
    const auto p = sim::estimate_probability(mc, [&](std::size_t, rng& g) {
        levy_walk w(alpha, g);
        return intermittent ? hit_within_intermittent(w, target, budget).hit
                            : hit_within(w, target, budget).hit;
    });
    return {p.estimate()};
}

void run(const sim::run_options& opts) {
    bench::banner("E16", "ablation: intermittent sensing x target diameter (footnote 3, [18])",
                  "intermittent + large-D favors alpha = 2 uniquely; continuous sensing "
                  "or unit targets flatten the optimum into a range");

    const std::int64_t ell = bench::scaled(192, opts.scale);
    const auto budget = static_cast<std::uint64_t>(24 * ell);
    const std::vector<double> alphas = {1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0};

    for (const bool intermittent : {false, true}) {
        for (const std::int64_t radius : {0L, 8L}) {
            std::cout << (intermittent ? "intermittent sensing" : "continuous sensing")
                      << ", target diameter D = " << (2 * radius + 1) << ", ell = " << ell
                      << ", budget = " << budget << "\n";
            stats::text_table table({"alpha", "hit rate", "relative to best"});
            std::vector<double> rates;
            for (const double alpha : alphas) {
                const auto mc =
                    opts.mc(/*default_trials=*/8000,
                            /*salt=*/static_cast<std::uint64_t>(alpha * 100) * 4 +
                                static_cast<std::uint64_t>(intermittent) * 2 +
                                static_cast<std::uint64_t>(radius != 0));
                rates.push_back(measure(alpha, intermittent, radius, ell, budget, mc).hit_rate);
            }
            const double best = *std::max_element(rates.begin(), rates.end());
            for (std::size_t i = 0; i < alphas.size(); ++i) {
                table.add_row({stats::fmt(alphas[i], 2), stats::fmt(rates[i], 4),
                               best > 0 ? stats::fmt(rates[i] / best, 2) : "-"});
            }
            table.print(std::cout);
            std::cout << '\n';
        }
    }
    std::cout << "Reading: with continuous sensing the ballistic range alpha <= 2 performs\n"
                 "comparably (footnote 3); intermittent sensing punishes alpha < 2 (long\n"
                 "blind jumps fly over the target), and a larger D rescues local search\n"
                 "less than it rescues alpha ~ 2 — reproducing [18]'s Cauchy optimality.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E16", argc, argv, run); }
