// E14 — §2 / [24]: the Kleinberg small-world connection (extension).
//
// The paper situates its "exactly one exponent is optimal" phenomenon next
// to Kleinberg's: an n×n torus with one long-range contact per node drawn
// with P ∝ dist^{-β} routes greedily in O(log² n) hops only at β = 2
// (= the lattice dimension), and polynomially slower at any other β —
// footnote 4 maps β = α + d − 1 onto the Lévy-walk exponent. We sweep β and
// report the mean greedy-routing time; the valley must sit at β = 2.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/monte_carlo.h"
#include "src/smallworld/greedy_routing.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E14", "Kleinberg routing (related work, §2): one optimal exponent",
                  "greedy routing is fastest at beta = 2 (dimension of the lattice); "
                  "any other beta is polynomially slower as n grows");

    // Small tori favor beta slightly below 2 (the n^{(2-beta)/3} separation
    // grows slowly); the argmin drifts to 2 as n grows — run big tori, the
    // routing itself is cheap.
    const std::vector<double> betas = {1.0, 1.5, 1.8, 2.0, 2.2, 2.5, 3.0};
    std::vector<std::int64_t> ns = {256, 1024, 4096};
    for (auto& n : ns) n = bench::scaled(n, opts.scale);

    stats::text_table table({"n", "beta", "routes", "mean hops", "hops/log^2 n"});
    for (const std::int64_t n : ns) {
        double best_mean = 1e300;
        double best_beta = 0.0;
        const double log2n = std::log(static_cast<double>(n)) *
                             std::log(static_cast<double>(n));
        for (const double beta : betas) {
            const smallworld::kleinberg_grid graph(n, beta,
                                                   opts.seed + static_cast<std::uint64_t>(n));
            const auto mc = opts.mc(/*default_trials=*/400,
                                    /*salt=*/static_cast<std::uint64_t>(beta * 100) +
                                        static_cast<std::uint64_t>(n));
            const auto hops = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
                const point s = graph.random_node(g);
                const point t = graph.random_node(g);
                return static_cast<double>(
                    smallworld::greedy_route(graph, s, t, static_cast<std::uint64_t>(4 * n))
                        .hops);
            });
            const double mean = stats::summarize(hops).mean();
            if (mean < best_mean) {
                best_mean = mean;
                best_beta = beta;
            }
            table.add_row({stats::fmt(n), stats::fmt(beta, 1), stats::fmt(mc.trials),
                           stats::fmt(mean, 1), stats::fmt(mean / log2n, 2)});
        }
        table.add_row({stats::fmt(n), "argmin", "-", stats::fmt(best_beta, 1) + " (paper: 2.0)",
                       "-"});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: mean hops is V-shaped in beta; away-from-2 exponents degrade\n"
                 "polynomially as n grows (watch beta = 1.0 and 3.0 blow up across rows)\n"
                 "while the valley tightens around 2 — the classic finite-size picture of\n"
                 "Kleinberg's theorem, and the structural sibling of E6's unique optimal\n"
                 "alpha. (At any finite n the empirical argmin sits slightly below 2,\n"
                 "drifting upward with n; the asymptotic optimum is exactly 2.)\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E14", argc, argv, run); }
