// E13 — ablation: anomalous diffusion exponents across the three regimes.
//
// The regime taxonomy of §1.2.1 rests on how far a walk wanders in t steps:
//   ballistic  α ∈ (1,2]: displacement ~ t           (exponent 1)
//   super-diff α ∈ (2,3): displacement ~ t^{1/(α−1)} (exponent in (1/2,1))
//   diffusive  α > 3:     displacement ~ √t          (exponent 1/2)
// We measure the median max-displacement over doubling budgets and fit the
// growth exponent per α.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_walk.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trajectory.h"
#include "src/stats/regression.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

double predicted_exponent(double alpha) {
    if (alpha <= 2.0) return 1.0;
    if (alpha < 3.0) return 1.0 / (alpha - 1.0);
    return 0.5;
}

void run(const sim::run_options& opts) {
    bench::banner("E13", "ablation: displacement scaling across regimes (basis of §1.2.1)",
                  "radius after t steps ~ t (alpha<=2), t^(1/(alpha-1)) (2<alpha<3), "
                  "sqrt(t) (alpha>3)");

    const std::vector<double> alphas = {1.5, 2.25, 2.5, 2.75, 3.5, 5.0};
    std::vector<std::uint64_t> ts;
    for (std::uint64_t t = 1024; t <= 65536; t *= 4) {
        ts.push_back(static_cast<std::uint64_t>(bench::scaled(static_cast<std::int64_t>(t),
                                                              opts.scale)));
    }

    stats::text_table table({"alpha", "t", "median max-displacement", "growth fit",
                             "paper exponent"});
    for (const double alpha : alphas) {
        LEVY_SPAN("alpha_sweep");
        std::vector<double> xs, ys;
        for (const std::uint64_t t : ts) {
            const auto mc = opts.mc(/*default_trials=*/200,
                                    /*salt=*/static_cast<std::uint64_t>(alpha * 100) + t);
            const auto disps = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
                levy_walk w(alpha, g);
                return static_cast<double>(sim::run_displacement(w, t).max_l1);
            });
            const double med = stats::median(disps);
            xs.push_back(static_cast<double>(t));
            ys.push_back(med);
            table.add_row({stats::fmt(alpha, 2), stats::fmt(t), stats::fmt(med, 0), "", ""});
        }
        const auto fit = stats::loglog_fit(xs, ys);
        table.add_row({stats::fmt(alpha, 2), "fit", "-", stats::fmt(fit.slope, 3),
                       stats::fmt(predicted_exponent(alpha), 3)});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: the fitted growth exponent interpolates from 1 (ballistic)\n"
                 "through 1/(alpha-1) (super-diffusive) down to 1/2 (diffusive) — the\n"
                 "mechanism behind the optimal-budget choices t_ell = ell^(alpha-1).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E13", argc, argv, run); }
