// E21 — exact occupancy analysis (no Monte Carlo): Lemma 3.9 and the visit
// accounting of §4.2, by dynamic programming.
//
// The `flight_occupancy` engine convolves the exact jump kernel, so the
// quantities the proofs manipulate — P(L_t = u), E[Z₀(t)], the A₁/A₂/A₃
// mass split of §4.2 — can be tabulated exactly (up to a tracked window
// truncation). We print: (a) an exact monotonicity census, (b) exact
// E[Z₀(t)] versus the Lemma 4.13 bound across α, and (c) the in-window mass
// split between the near ball and the rest (the "constant fraction of steps
// is outside B_ℓ" ingredient of Lemma 4.8/4.12).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/analysis/occupancy.h"
#include "src/grid/ball.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E21", "exact occupancy DP: Lemma 3.9 census, Lemma 4.13 visits, mass split",
                  "monotonicity holds exactly; E[Z0(t)] <= O(1/(3-alpha)^2); a constant "
                  "fraction of mass sits outside the near ball");
    (void)opts;  // the DP is exact; no trials/seed knobs apply

    // (a) exact monotonicity census at t = 4, alpha = 2.2.
    {
        analysis::flight_occupancy occ(2.2, 20);
        occ.advance(4);
        std::uint64_t comparable = 0, violations = 0;
        const double slack = occ.escaped();
        for (std::int64_t ux = -6; ux <= 6; ++ux) {
            for (std::int64_t uy = -6; uy <= 6; ++uy) {
                for (std::int64_t vx = -10; vx <= 10; ++vx) {
                    for (std::int64_t vy = -10; vy <= 10; ++vy) {
                        const point u{ux, uy}, v{vx, vy};
                        if (u == v || linf_norm(v) < l1_norm(u)) continue;
                        ++comparable;
                        violations += (occ.probability(u) + slack < occ.probability(v));
                    }
                }
            }
        }
        std::cout << "(a) exact monotonicity census (alpha=2.2, t=4): " << comparable
                  << " comparable pairs, " << violations
                  << " violations beyond truncation slack " << stats::fmt_sci(slack, 1)
                  << "  (paper: 0)\n\n";
    }

    // (b) exact E[Z0(t)] vs the Lemma 4.13 bound.
    std::cout << "(b) exact E[Z0(t)] at t = 16 (window R = 24):\n";
    stats::text_table visits({"alpha", "E[Z0(16)] exact", "bound 1/(3-a)^2", "ratio",
                              "escaped mass"});
    for (const double alpha : {2.1, 2.3, 2.5, 2.7, 2.9}) {
        analysis::flight_occupancy occ(alpha, 24);
        occ.advance(16);
        const double bound = 1.0 / ((3.0 - alpha) * (3.0 - alpha));
        visits.add_row({stats::fmt(alpha, 1), stats::fmt(occ.expected_origin_visits(), 4),
                        stats::fmt(bound, 2),
                        stats::fmt(occ.expected_origin_visits() / bound, 3),
                        stats::fmt_sci(occ.escaped(), 1)});
    }
    visits.print(std::cout);

    // (c) mass split: fraction of time-t mass inside B_r vs outside, the
    // §4.2 decomposition at small scale (r plays ℓ, t ~ r^{alpha-1}).
    std::cout << "\n(c) exact in-window mass split at alpha = 2.5:\n";
    stats::text_table split({"t", "P(inside B_8)", "P(outside B_8, in window)", "escaped"});
    analysis::flight_occupancy occ(2.5, 24);
    for (const std::uint64_t t : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
        occ.advance(t - occ.steps());
        double inside = 0.0;
        for_each_ball_node(origin, 8, [&](point p) { inside += occ.probability(p); });
        split.add_row({stats::fmt(t), stats::fmt(inside, 4),
                       stats::fmt(occ.in_window_mass() - inside, 4),
                       stats::fmt_sci(occ.escaped(), 1)});
    }
    split.print(std::cout);
    std::cout << "\nReading: (a) zero violations, exactly; (b) the visit constant stays a\n"
                 "small multiple below the bound's shape; (c) mass leaks steadily out of\n"
                 "the near ball — by t ~ r^(alpha-1) a constant fraction sits outside,\n"
                 "which is how §4.2 lower-bounds the visits to the annulus A2.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E21", argc, argv, run); }
