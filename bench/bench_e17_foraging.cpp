// E17 — ablation: the Lévy foraging hypothesis setting (§2, [38]).
//
// Sparse targets scattered uniformly at random (a Bernoulli site field),
// searcher collects as many as it can in a fixed time T. The classical
// claim ([38], proven in 1D [4], *not* in 2D [26] — the gap the paper
// opens with): α = 2 maximizes the target-collection rate for sparse
// REVISITABLE targets, while destructive foraging (targets are consumed)
// pushes the optimum toward the ballistic end. We measure collected
// targets per 10^5 steps vs α in both modes.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_walk.h"
#include "src/core/target_field.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

double collected(double alpha, bool destructive, double density, std::uint64_t steps,
                 const sim::mc_options& mc) {
    const auto counts = sim::monte_carlo_collect(mc, [&](std::size_t trial, rng& g) {
        random_target_field field(density, mix64(mc.seed, trial));
        levy_walk w(alpha, g);
        std::uint64_t found = 0;
        // Count a find only when *entering* the target node (no farming a
        // revisitable target by standing on it through stay-put phases).
        point prev = w.position();
        for (std::uint64_t t = 0; t < steps; ++t) {
            const point p = w.step();
            if (p != prev && field.contains(p)) {
                ++found;
                if (destructive) field.consume(p);
            }
            prev = p;
        }
        return static_cast<double>(found);
    });
    return stats::summarize(counts).mean();
}

void run(const sim::run_options& opts) {
    bench::banner("E17", "ablation: Levy foraging hypothesis, sparse random targets ([38], §2)",
                  "alpha ~ 2 maximizes collection of sparse revisitable targets; "
                  "destructive foraging favors more ballistic exponents");

    const double density = 1.0 / 2048.0;  // mean spacing ~ 45 lattice units
    const auto steps = static_cast<std::uint64_t>(bench::scaled(100000, opts.scale));
    const std::vector<double> alphas = {1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5};

    stats::text_table table({"alpha", "revisitable (found/run)", "destructive (found/run)"});
    std::vector<double> revisit_rates, destruct_rates;
    for (const double alpha : alphas) {
        const auto mc_r = opts.mc(/*default_trials=*/60,
                                  /*salt=*/static_cast<std::uint64_t>(alpha * 100) * 2);
        const auto mc_d = opts.mc(/*default_trials=*/60,
                                  /*salt=*/static_cast<std::uint64_t>(alpha * 100) * 2 + 1);
        const double r = collected(alpha, /*destructive=*/false, density, steps, mc_r);
        const double d = collected(alpha, /*destructive=*/true, density, steps, mc_d);
        revisit_rates.push_back(r);
        destruct_rates.push_back(d);
        table.add_row({stats::fmt(alpha, 2), stats::fmt(r, 2), stats::fmt(d, 2)});
    }
    table.print(std::cout);

    const auto argmax = [&](const std::vector<double>& v) {
        return alphas[static_cast<std::size_t>(
            std::max_element(v.begin(), v.end()) - v.begin())];
    };
    std::cout << "\nempirical optimum: revisitable alpha ~ " << stats::fmt(argmax(revisit_rates), 2)
              << ", destructive alpha ~ " << stats::fmt(argmax(destruct_rates), 2) << "\n"
              << "Reading: the classical alpha = 2 optimum was proven only in 1D [4]; in\n"
                 "2D with continuous (non-intermittent) detection the curve is shallow and\n"
                 "ballistic-shifted — exactly the failure mode [26] points out (and E16\n"
                 "shows alpha = 2 re-emerging once sensing is intermittent). This fragility\n"
                 "is why the paper re-examines the hypothesis via parallel hitting times.\n"
                 "Destructive foraging steepens the penalty for local exponents: consumed\n"
                 "neighborhoods make oversampling one's own trail much more costly.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E17", argc, argv, run); }
