// E15 — engineering micro-benchmarks (Google Benchmark).
//
// Throughput of the primitives everything else is built on: the exact Zipf
// sampler, the jump distribution, ring sampling, direct-path stepping, and
// whole-process stepping for walks and flights. These numbers bound how
// large an (ℓ, k, trials) grid the experiment binaries can afford.

#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/simple_random_walk.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/sim/monte_carlo.h"
#include "src/stats/table.h"
#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/zipf.h"

namespace {

using namespace levy;

void BM_Xoshiro(benchmark::State& state) {
    rng g = rng::seeded(1);
    for (auto _ : state) benchmark::DoNotOptimize(g());
}
BENCHMARK(BM_Xoshiro);

void BM_ZipfSample(benchmark::State& state) {
    const zipf_sampler z(state.range(0) / 100.0);
    rng g = rng::seeded(2);
    for (auto _ : state) benchmark::DoNotOptimize(z(g));
}
BENCHMARK(BM_ZipfSample)->Arg(150)->Arg(250)->Arg(350);  // α = 1.5, 2.5, 3.5

void BM_JumpSample(benchmark::State& state) {
    const jump_distribution d(2.5);
    rng g = rng::seeded(3);
    for (auto _ : state) benchmark::DoNotOptimize(d.sample(g));
}
BENCHMARK(BM_JumpSample);

void BM_JumpSampleCapped(benchmark::State& state) {
    const jump_distribution d(2.5);
    rng g = rng::seeded(4);
    for (auto _ : state) benchmark::DoNotOptimize(d.sample_capped(g, 1000));
}
BENCHMARK(BM_JumpSampleCapped);

void BM_RingSample(benchmark::State& state) {
    rng g = rng::seeded(5);
    for (auto _ : state) benchmark::DoNotOptimize(sample_ring(origin, state.range(0), g));
}
BENCHMARK(BM_RingSample)->Arg(10)->Arg(10000);

void BM_DirectPathStep(benchmark::State& state) {
    rng g = rng::seeded(6);
    direct_path_stepper s(origin, {1 << 20, 1 << 19});
    for (auto _ : state) {
        if (s.done()) s = direct_path_stepper(origin, {1 << 20, 1 << 19});
        // levylint:allow(substream-discipline): microbenchmark drives the
        // stepper from a throwaway stream; no replay contract applies.
        benchmark::DoNotOptimize(s.advance(g));
    }
}
BENCHMARK(BM_DirectPathStep);

void BM_LevyWalkStep(benchmark::State& state) {
    levy_walk w(state.range(0) / 100.0, rng::seeded(7));
    for (auto _ : state) benchmark::DoNotOptimize(w.step());
}
BENCHMARK(BM_LevyWalkStep)->Arg(150)->Arg(250)->Arg(350);

void BM_LevyFlightStep(benchmark::State& state) {
    levy_flight f(2.5, rng::seeded(8));
    for (auto _ : state) benchmark::DoNotOptimize(f.step());
}
BENCHMARK(BM_LevyFlightStep);

void BM_SimpleRandomWalkStep(benchmark::State& state) {
    baselines::simple_random_walk w(rng::seeded(9));
    for (auto _ : state) benchmark::DoNotOptimize(w.step());
}
BENCHMARK(BM_SimpleRandomWalkStep);

/// ConsoleReporter that additionally records every run as a table row, so
/// E15's numbers land in the same structured BENCH_E15.json schema as the
/// run_main-based benches (Google Benchmark owns main-loop control here, so
/// E15 cannot go through bench_util's run_main).
class capturing_reporter : public benchmark::ConsoleReporter {
public:
    void ReportRuns(const std::vector<Run>& report) override {
        for (const Run& run : report) {
            rows_.push_back({run.benchmark_name(), std::to_string(run.iterations),
                             std::to_string(run.GetAdjustedRealTime()),
                             std::to_string(run.GetAdjustedCPUTime())});
        }
        ConsoleReporter::ReportRuns(report);
    }

    [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const { return rows_; }

private:
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace

int main(int argc, char** argv) {
    // Peel off the levy observability flags before Google Benchmark sees
    // (and rejects) them; everything else passes through untouched.
    std::string json_path;
    std::string trace_path;
    std::vector<char*> passthrough;
    std::vector<std::pair<std::string, std::string>> options;
    for (int i = 0; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value_of = [&](std::string_view flag) -> std::string {
            if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
                arg[flag.size()] == '=') {
                return std::string(arg.substr(flag.size() + 1));
            }
            return {};
        };
        if (auto v = value_of("--json"); !v.empty()) {
            json_path = v == "-" ? std::string{} : v;
            options.emplace_back("json", v);
        } else if (auto d = value_of("--json-dir"); !d.empty()) {
            if (json_path.empty()) json_path = d + "/BENCH_E15.json";
            options.emplace_back("json-dir", d);
        } else if (auto t = value_of("--trace"); !t.empty()) {
            trace_path = t;
            options.emplace_back("trace", t);
        } else {
            passthrough.push_back(argv[i]);
        }
    }
    int bench_argc = static_cast<int>(passthrough.size());
    benchmark::Initialize(&bench_argc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) return 1;

    const bool observing = !json_path.empty() || !trace_path.empty();
    if (observing) levy::obs::start_span_collection();
    if (!json_path.empty()) levy::obs::begin_report("E15", std::move(options));

    capturing_reporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();

    if (observing) levy::obs::stop_span_collection();
    if (!json_path.empty()) {
        // Feed captured runs through the table observer so they land as the
        // report's rows; a string sink keeps stdout byte-identical.
        levy::stats::text_table table({"benchmark", "iterations", "real_ns", "cpu_ns"});
        for (const auto& row : reporter.rows()) table.add_row(row);
        std::ostringstream sink;
        table.print(sink);
        levy::obs::write_report(json_path, levy::sim::metrics_snapshot());
        levy::obs::end_report();
        std::cerr << "E15: wrote " << json_path << '\n';
    }
    if (!trace_path.empty()) {
        levy::obs::write_chrome_trace(trace_path);
        std::cerr << "E15: wrote " << trace_path << '\n';
    }
    return 0;
}
