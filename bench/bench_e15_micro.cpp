// E15 — engineering micro-benchmarks (Google Benchmark).
//
// Throughput of the primitives everything else is built on: the exact Zipf
// sampler, the jump distribution, ring sampling, direct-path stepping, and
// whole-process stepping for walks and flights. These numbers bound how
// large an (ℓ, k, trials) grid the experiment binaries can afford.

#include <benchmark/benchmark.h>

#include "src/baselines/simple_random_walk.h"
#include "src/core/levy_flight.h"
#include "src/core/levy_walk.h"
#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/jump_distribution.h"
#include "src/rng/zipf.h"

namespace {

using namespace levy;

void BM_Xoshiro(benchmark::State& state) {
    rng g = rng::seeded(1);
    for (auto _ : state) benchmark::DoNotOptimize(g());
}
BENCHMARK(BM_Xoshiro);

void BM_ZipfSample(benchmark::State& state) {
    const zipf_sampler z(state.range(0) / 100.0);
    rng g = rng::seeded(2);
    for (auto _ : state) benchmark::DoNotOptimize(z(g));
}
BENCHMARK(BM_ZipfSample)->Arg(150)->Arg(250)->Arg(350);  // α = 1.5, 2.5, 3.5

void BM_JumpSample(benchmark::State& state) {
    const jump_distribution d(2.5);
    rng g = rng::seeded(3);
    for (auto _ : state) benchmark::DoNotOptimize(d.sample(g));
}
BENCHMARK(BM_JumpSample);

void BM_JumpSampleCapped(benchmark::State& state) {
    const jump_distribution d(2.5);
    rng g = rng::seeded(4);
    for (auto _ : state) benchmark::DoNotOptimize(d.sample_capped(g, 1000));
}
BENCHMARK(BM_JumpSampleCapped);

void BM_RingSample(benchmark::State& state) {
    rng g = rng::seeded(5);
    for (auto _ : state) benchmark::DoNotOptimize(sample_ring(origin, state.range(0), g));
}
BENCHMARK(BM_RingSample)->Arg(10)->Arg(10000);

void BM_DirectPathStep(benchmark::State& state) {
    rng g = rng::seeded(6);
    direct_path_stepper s(origin, {1 << 20, 1 << 19});
    for (auto _ : state) {
        if (s.done()) s = direct_path_stepper(origin, {1 << 20, 1 << 19});
        benchmark::DoNotOptimize(s.advance(g));
    }
}
BENCHMARK(BM_DirectPathStep);

void BM_LevyWalkStep(benchmark::State& state) {
    levy_walk w(state.range(0) / 100.0, rng::seeded(7));
    for (auto _ : state) benchmark::DoNotOptimize(w.step());
}
BENCHMARK(BM_LevyWalkStep)->Arg(150)->Arg(250)->Arg(350);

void BM_LevyFlightStep(benchmark::State& state) {
    levy_flight f(2.5, rng::seeded(8));
    for (auto _ : state) benchmark::DoNotOptimize(f.step());
}
BENCHMARK(BM_LevyFlightStep);

void BM_SimpleRandomWalkStep(benchmark::State& state) {
    baselines::simple_random_walk w(rng::seeded(9));
    for (auto _ : state) benchmark::DoNotOptimize(w.step());
}
BENCHMARK(BM_SimpleRandomWalkStep);

}  // namespace

BENCHMARK_MAIN();
