// E22 — the advice/time tradeoff of [14] (paper §2), and where the Lévy
// strategy sits on it.
//
// Feinerman–Korman prove matching bounds on search time as a function of
// the advice size b an oracle may hand each agent before the search. We
// instrument the FK searcher with a distance-scale hint: b bits quantize
// log₂ ℓ into 2^b buckets over the scales [2, 2^12], and the agent starts
// its epoch schedule at the bucket's lower edge (b = 0: no advice, start at
// radius 2). Because epochs double, the total cost is dominated by the
// final epoch: advice can only shave the geometric warm-up (a constant
// fraction), and an overshooting hint actively hurts — the [14] tradeoff
// is about log-factor refinements, which is exactly what the table shows.
// The paper's randomized Lévy strategy needs zero advice and no knowledge
// of k; we print it alongside for calibration.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/fk_ants.h"
#include "src/core/strategy.h"
#include "src/core/parallel_search.h"
#include "src/core/theory.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

/// Starting radius encoded by b advice bits for true distance ell: quantize
/// log2(ell) over [1, 12] into 2^b buckets, take the bucket's lower edge.
std::int64_t advice_radius(std::int64_t ell, int bits) {
    if (bits <= 0) return 2;
    const double log_ell = std::log2(static_cast<double>(ell));
    const double buckets = std::exp2(bits);
    const double width = 12.0 / buckets;
    const double lower = std::floor(log_ell / width) * width;
    const double radius = std::exp2(std::max(1.0, lower));
    return static_cast<std::int64_t>(radius);
}

void run(const sim::run_options& opts) {
    bench::banner("E22", "the [14] advice/time tradeoff, with the Levy strategy alongside",
                  "more advice bits -> shorter FK search (skipped warm-up epochs); the "
                  "randomized Levy strategy needs zero advice");

    const std::size_t k = 64;
    const std::int64_t ell = bench::scaled(192, opts.scale);
    const point target = sim::target_at(ell);
    const double lb = theory::universal_lower_bound(static_cast<double>(k),
                                                    static_cast<double>(ell));
    const auto budget = static_cast<std::uint64_t>(48.0 * lb);

    std::cout << "k = " << k << ", ell = " << ell << ", budget = 48*(ell^2/k + ell) = "
              << budget << "\n";
    stats::text_table table({"strategy", "advice bits", "start radius", "hit rate",
                             "median tau^k", "p50/LB"});

    for (const int bits : {0, 1, 2, 3, 4}) {
        const std::int64_t start_radius = advice_radius(ell, bits);
        const auto mc = opts.mc(/*default_trials=*/80, /*salt=*/static_cast<std::uint64_t>(bits));
        const auto results = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
            const auto r = bench::parallel_hit_generic(
                k, target, budget, g, [&](std::size_t, rng s) {
                    return baselines::fk_ants_searcher(k, s, origin, 2.0, start_radius);
                });
            return r;
        });
        std::vector<double> times;
        std::uint64_t hits = 0;
        for (const auto& r : results) {
            times.push_back(static_cast<double>(r.time));
            hits += r.hit;
        }
        const double med = stats::median(times);
        table.add_row({"FK ball+spiral", stats::fmt(bits), stats::fmt(start_radius),
                       stats::fmt(static_cast<double>(hits) / static_cast<double>(results.size()), 2),
                       stats::fmt(med, 0), stats::fmt(med / lb, 1)});
    }

    {
        const auto mc = opts.mc(/*default_trials=*/80, /*salt=*/99);
        const auto results = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
            return parallel_hit(k, uniform_exponent(), target, budget, g);
        });
        std::vector<double> times;
        std::uint64_t hits = 0;
        for (const auto& r : results) {
            times.push_back(static_cast<double>(r.time));
            hits += r.hit;
        }
        table.add_separator();
        table.add_row({"Levy U(2,3)", "0 (and k unknown)", "-",
                       stats::fmt(static_cast<double>(hits) / static_cast<double>(results.size()), 2),
                       stats::fmt(stats::median(times), 0),
                       stats::fmt(stats::median(times) / lb, 1)});
    }
    table.print(std::cout);
    std::cout << "\nReading: the doubling-epoch schedule makes FK remarkably advice-robust:\n"
                 "its cost is dominated by the final (covering) epoch, so hints shave only\n"
                 "the geometric warm-up and an overshooting bucket edge (high b rows where\n"
                 "the start radius lands just under ell) wastes a near-ell epoch — the\n"
                 "advice tradeoff of [14] lives in the log factors, as their theorem says.\n"
                 "The Levy row uses no advice AND no knowledge of k; it trails informed FK\n"
                 "by the polylog factor the paper concedes (Thm 1.6 vs the [14] optimum).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E22", argc, argv, run); }
