// E5 — Theorem 1.3 / §5: the ballistic regime (α ∈ (1,2]).
//
// For α ∈ (1,2]: P(τ_α = O(ℓ)) = Ω(1/(ℓ log ℓ)) and P(τ_α < ∞) =
// O(log² ℓ / ℓ): the walk behaves like a straight shot in a random
// direction — it reaches distance ℓ in O(ℓ) steps but points at the target
// only with probability ~1/ℓ. We sweep ℓ with budget c·ℓ and compare the
// decay slope against −1.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E5", "Thm 1.3: ballistic hitting decays like 1/ell",
                  "P(tau_alpha = O(ell)) = Omega(1/(ell log ell)) for alpha in (1,2]");

    const std::vector<double> alphas = {1.5, 2.0};
    std::vector<std::int64_t> ells;
    for (std::int64_t e = 8; e <= 128; e *= 2) ells.push_back(bench::scaled(e, opts.scale));

    stats::text_table table({"alpha", "ell", "budget", "trials", "P(hit) ± ci",
                             "paper 1/(l log l)", "meas/paper"});
    for (const double alpha : alphas) {
        std::vector<double> xs, ys;
        for (const std::int64_t ell : ells) {
            const auto budget = static_cast<std::uint64_t>(8 * ell);
            const sim::single_walk_config cfg{.alpha = alpha, .ell = ell, .budget = budget,
                                              .max_steps = opts.max_trial_steps};
            const auto mc = opts.mc(/*default_trials=*/60000,
                                    /*salt=*/static_cast<std::uint64_t>(ell) * 13 +
                                        static_cast<std::uint64_t>(alpha * 100));
            const auto p = sim::single_hit_probability(cfg, mc);
            const double shape = theory::ballistic_hit_prob(static_cast<double>(ell));
            table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(budget),
                           stats::fmt(mc.trials),
                           stats::fmt_sci(p.estimate()) + " ± " +
                               stats::fmt_sci((p.hi - p.lo) / 2, 1),
                           stats::fmt_sci(shape), stats::fmt(p.estimate() / shape, 2)});
            xs.push_back(static_cast<double>(ell));
            ys.push_back(p.estimate());
        }
        const auto fit = stats::loglog_fit(xs, ys);
        table.add_row({stats::fmt(alpha, 2), "slope", "-", "-",
                       stats::fmt(fit.slope, 3) + " (fit)", "-1 (paper)",
                       "r2=" + stats::fmt(fit.r_squared, 3)});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: hit probability ~ 1/ell (slope near -1, modulo log factors) in\n"
                 "O(ell) steps — fast reach, poor aim; contrast with E1 where alpha in (2,3)\n"
                 "decays only like ell^-(3-alpha).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E5", argc, argv, run); }
