// E4 — Theorem 1.2 / 4.3: the diffusive and threshold regimes (α ≥ 3).
//
// For α ≥ 3: P(τ_α = O(ℓ² log² ℓ)) = Ω(1/log⁴ ℓ) — unlike the
// super-diffusive regime, the hit probability within the right budget is
// only polylogarithmically small, i.e. nearly flat in ℓ. We sweep ℓ for
// α ∈ {3, 3.5, 4} with budget c·ℓ² log² ℓ and report both the probability
// and its log-log slope in ℓ, which should sit near 0 (vs −(3−α) < 0 slopes
// in E1).

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/stats/regression.h"
#include "src/core/theory.h"
#include "src/sim/trial.h"

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E4", "Thm 1.2: diffusive/threshold hitting is polylog-flat in ell",
                  "P(tau_alpha <= c*ell^2 log^2 ell) = Omega(1/log^4 ell) for alpha >= 3");

    const std::vector<double> alphas = {3.0, 3.5, 4.0};
    std::vector<std::int64_t> ells;
    for (std::int64_t e = 8; e <= 64; e *= 2) ells.push_back(bench::scaled(e, opts.scale));

    stats::text_table table({"alpha", "ell", "budget", "trials", "P(hit) ± ci",
                             "paper 1/log^4 ell", "meas/paper"});
    for (const double alpha : alphas) {
        std::vector<double> xs, ys;
        for (const std::int64_t ell : ells) {
            const auto budget = static_cast<std::uint64_t>(
                2.0 * theory::diffusive_budget(static_cast<double>(ell)));
            const sim::single_walk_config cfg{.alpha = alpha, .ell = ell, .budget = budget,
                                              .max_steps = opts.max_trial_steps};
            const auto mc = opts.mc(/*default_trials=*/800,
                                    /*salt=*/static_cast<std::uint64_t>(ell) * 7 +
                                        static_cast<std::uint64_t>(alpha * 100));
            const auto p = sim::single_hit_probability(cfg, mc);
            const double shape = theory::diffusive_hit_prob(static_cast<double>(ell));
            table.add_row({stats::fmt(alpha, 2), stats::fmt(ell), stats::fmt(budget),
                           stats::fmt(mc.trials),
                           stats::fmt_pm(p.estimate(), (p.hi - p.lo) / 2, 4),
                           stats::fmt(shape, 4), stats::fmt(p.estimate() / shape, 2)});
            xs.push_back(static_cast<double>(ell));
            ys.push_back(p.estimate());
        }
        const auto fit = stats::loglog_fit(xs, ys);
        table.add_row({stats::fmt(alpha, 2), "slope", "-", "-",
                       stats::fmt(fit.slope, 3) + " (fit)", "~0 (paper: polylog only)",
                       "r2=" + stats::fmt(fit.r_squared, 3)});
        table.add_separator();
    }
    table.print(std::cout);
    std::cout << "\nReading: slopes near 0 (mild polylog decay), in sharp contrast with the\n"
                 "polynomial decay of E1/E3; the Omega(1/log^4) shape is conservative, so\n"
                 "meas/paper ratios well above 1 are expected.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E4", argc, argv, run); }
