// E6 — Corollary 4.2 / Theorem 1.5: the unique optimal common exponent.
//
// For k parallel walks and a target at distance ℓ with
// polylog ℓ ≤ k ≤ ℓ polylog ℓ, the parallel hitting time is minimized at
// α* = 3 − log k / log ℓ (within O(log log ℓ / log ℓ)); moving α away from
// α* by a constant blows the hitting time up polynomially (Cor 4.2(b)) or
// makes the walks miss outright (Cor 4.2(c)). We sweep α across (2,3) at
// fixed (k, ℓ) and report hit rate and median parallel hitting time; the
// minimum should sit near α*.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/strategy.h"
#include "src/sim/trial.h"
#include "src/stats/streaming.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

void sweep(const sim::run_options& opts, std::size_t k, std::int64_t ell,
           std::uint64_t budget_factor) {
    const double alpha_star = optimal_alpha(static_cast<double>(k), static_cast<double>(ell));
    const auto budget = budget_factor * static_cast<std::uint64_t>(ell) *
                        static_cast<std::uint64_t>(ell);

    std::cout << "k = " << k << ", ell = " << ell << ", budget = " << budget_factor
              << "*ell^2 = " << budget
              << ", alpha* = 3 - log k/log ell = " << stats::fmt(alpha_star, 3) << "\n";

    stats::text_table table({"alpha", "alpha-alpha*", "hit rate", "cens", "median tau^k",
                             "mean tau ± 95ci", "p50/LB(ell^2/k)", "verdict"});
    std::vector<double> sweep_alphas, sweep_medians;
    const double lower_bound = static_cast<double>(ell) * static_cast<double>(ell) /
                               static_cast<double>(k);
    for (double alpha = 2.05; alpha < 3.0; alpha += 0.1) {
        sim::parallel_walk_config cfg;
        cfg.k = k;
        cfg.strategy = fixed_exponent(alpha);
        cfg.ell = ell;
        cfg.budget = budget;
        cfg.max_steps = opts.max_trial_steps;
        cfg.cap = opts.cap;
        cfg.engine = opts.engine;
        opts.apply_sharding(cfg);
        const auto mc = opts.mc(/*default_trials=*/80,
                                /*salt=*/static_cast<std::uint64_t>(alpha * 1000) + k);
        const auto sample = sim::parallel_hitting_times(cfg, mc);
        const double med = stats::median(sample.times);
        sweep_alphas.push_back(alpha);
        sweep_medians.push_back(med);
        const auto ci = stats::normal_interval(stats::summarize(sample.times));
        table.add_row({stats::fmt(alpha, 2), stats::fmt(alpha - alpha_star, 2),
                       stats::fmt(sample.hit_fraction(), 2),
                       stats::fmt(sample.censored_fraction(), 2), stats::fmt(med, 0),
                       stats::fmt_pm(ci.estimate, ci.half_width(), 0),
                       stats::fmt(med / lower_bound, 1),
                       std::abs(alpha - alpha_star) < 0.15 ? "<- near alpha*" : ""});
    }
    table.print(std::cout);
    // The valley is shallow at laptop scales, so report the near-optimal
    // *set* (within 1.5x of the minimum) — the paper's claim is about where
    // that set sits, and median noise over ~80 trials blurs single points.
    const double best_median = *std::min_element(sweep_medians.begin(), sweep_medians.end());
    std::string near_set;
    for (std::size_t i = 0; i < sweep_alphas.size(); ++i) {
        if (sweep_medians[i] <= 1.5 * best_median) {
            if (!near_set.empty()) near_set += ", ";
            near_set += stats::fmt(sweep_alphas[i], 2);
        }
    }
    std::cout << "alphas within 1.5x of the best median: {" << near_set
              << "}  (paper optimum: " << stats::fmt(alpha_star, 2)
              << " ± O(log log ell/log ell))\n\n";
}

void run(const sim::run_options& opts) {
    bench::banner("E6", "Cor 4.2: unique optimal exponent alpha* = 3 - log k/log ell",
                  "tau^k minimized only for |alpha - alpha*| = O(log log ell / log ell); "
                  "polynomial blow-up otherwise");
    // Both sweeps keep k comparable to ell (k between sqrt(ell) and ell):
    // Cor 4.2 needs polylog(ell) <= k <= ell*polylog(ell), and at laptop
    // scales a small k slides into the Thm 1.5(b) regime where alpha -> 3
    // wins (bench output for k << log^6 ell shows exactly that drift).
    sweep(opts, /*k=*/48, bench::scaled(160, opts.scale), /*budget_factor=*/1);
    sweep(opts, /*k=*/64, bench::scaled(192, opts.scale), /*budget_factor=*/1);
    std::cout << "Reading: median hitting time is U-shaped in alpha with the valley at\n"
                 "alpha*; hit rate collapses toward alpha -> 3 (too local to reach ell)\n"
                 "and times blow up toward alpha -> 2 (overshooting).\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E6", argc, argv, run); }
