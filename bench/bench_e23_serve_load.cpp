// E23 — levyserve under overload: admission control and graceful
// degradation as a measured policy, not a hope.
//
// An in-process levyserve daemon (src/serve/server.h) answers /query
// Monte-Carlo requests while a closed-loop load generator sweeps offered
// concurrency from below the server's capacity to far above it. The
// robustness contract under test:
//
//   - every response is either a real answer (200) or an explicit shed
//     (503 + Retry-After) — non-503 5xx responses under pure overload are
//     a bug, and this bench aborts loudly on the first one;
//   - latency percentiles of *answered* requests stay bounded as offered
//     load grows, because the bounded queue sheds instead of building an
//     unbounded backlog;
//   - the shed rate rises smoothly with offered load (the degradation is
//     graceful, not a cliff into timeouts).
//
// --queue-capacity and --deadline-ms (sim::run_options) configure the
// server; --trials sets requests per sweep point.

#include <cstdint>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"
#include "src/stats/table.h"

#if !LEVY_SERVE_HAVE_POSIX_SOCKETS
int main() {
    std::cout << "E23 requires POSIX sockets on this platform\n";
    return 0;
}
#else

namespace {

using namespace levy;

void run(const sim::run_options& opts) {
    bench::banner("E23", "levyserve overload: shed explicitly, degrade gracefully",
                  "under offered load >> capacity: zero non-503 5xx, bounded p99 of "
                  "answered requests, shed rate rising smoothly");

    serve::serve_options sopts;
    sopts.workers = 2;
    sopts.queue_capacity = opts.queue_capacity != 0 ? opts.queue_capacity : 8;
    sopts.default_deadline_ms = opts.deadline_ms != 0 ? opts.deadline_ms : 50;
    sopts.steps_per_ms = 2000;
    sopts.default_trials = 16;
    sopts.seed = opts.seed;
    serve::server server(sopts);
    const unsigned short port = server.start();

    const std::int64_t ell = bench::scaled(64, opts.scale);
    const std::string query = "/query?alpha=2.5&ell=" + std::to_string(ell) +
                              "&k=2&budget=2000&trials=8";
    const std::size_t requests = opts.trials != 0 ? opts.trials : 200;
    // Offered load: closed-loop client threads, from under capacity
    // (workers alone can drain it) to several times workers + queue.
    const std::vector<unsigned> concurrencies = {1, 4, 16, 64};

    stats::text_table table({"clients", "sent", "ok", "shed", "shed rate", "5xx!=503",
                             "p50 ms", "p95 ms", "p99 ms"});
    for (const unsigned c : concurrencies) {
        serve::loadgen_options lopts;
        lopts.port = port;
        lopts.paths = {query};
        lopts.requests = requests;
        lopts.concurrency = c;
        const serve::loadgen_report report = serve::run_loadgen(lopts);
        if (report.server_errors != 0) {
            server.stop();
            throw std::runtime_error("E23: " + std::to_string(report.server_errors) +
                                     " non-503 5xx responses under overload");
        }
        if (report.transport_errors != 0) {
            server.stop();
            throw std::runtime_error("E23: " + std::to_string(report.transport_errors) +
                                     " transport errors (server wedged or died)");
        }
        const double shed_rate =
            report.sent == 0
                ? 0.0
                : static_cast<double>(report.shed) / static_cast<double>(report.sent);
        table.add_row({stats::fmt(c), stats::fmt(report.sent), stats::fmt(report.ok),
                       stats::fmt(report.shed), stats::fmt(shed_rate, 2),
                       stats::fmt(report.server_errors),
                       stats::fmt(report.percentile_ms(50), 1),
                       stats::fmt(report.percentile_ms(95), 1),
                       stats::fmt(report.percentile_ms(99), 1)});
    }
    table.print(std::cout);

    const serve::server::stats_snapshot s = server.stats();
    std::cout << "\nserver: admitted=" << s.admission.admitted
              << " shed=" << s.admission.shed_total() << " exact=" << s.exact
              << " interpolated=" << s.interpolated << " degraded=" << s.degraded
              << " cache_hits=" << s.cache_hits << " worker_faults=" << s.worker_faults
              << "\n";
    server.stop();
    std::cout << "\nReading: ok+shed accounts for every request at every offered load;\n"
                 "the queue bound keeps answered-request percentiles flat while the\n"
                 "shed rate absorbs the excess — overload degrades, never cascades.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E23", argc, argv, run); }

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS
