// E20 — the t_i / λ_i machinery of Lemma 3.11 (and Lemma 4.8's reach bound).
//
// The transience proofs slice a walk's lifetime at the first-passage times
// t_i to radii λ_i = 2^i ℓ and argue t_i ≤ τ_i := 2 λ_i^{α−1} log λ_i with
// overwhelming probability (a radius-λ displacement needs a jump ~λ, which
// takes ~λ^{α−1} draws to see). We measure the first-passage time
// distribution to doubling radii and check (a) the median scales like
// λ^{α−1} and (b) P(t_λ > τ_λ) is small — the two ingredients the lemma
// composes.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/levy_walk.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trajectory.h"
#include "src/stats/regression.h"
#include "src/stats/summary.h"

namespace {

using namespace levy;

void sweep(const sim::run_options& opts, double alpha) {
    std::cout << "alpha = " << alpha << "\n";
    stats::text_table table(
        {"radius", "median t_r", "tau_r = 2 r^(a-1) log r", "P(t_r > tau_r)"});
    std::vector<double> xs, ys;
    for (const std::int64_t radius : {16L, 32L, 64L, 128L, 256L}) {
        const double tau = 2.0 * std::pow(static_cast<double>(radius), alpha - 1.0) *
                           std::log(static_cast<double>(radius));
        const auto budget = static_cast<std::uint64_t>(64.0 * tau);
        const auto mc = opts.mc(/*default_trials=*/400,
                                /*salt=*/static_cast<std::uint64_t>(alpha * 100) * 1000 +
                                    static_cast<std::uint64_t>(radius));
        const auto results = sim::monte_carlo_collect(mc, [&](std::size_t, rng& g) {
            levy_walk w(alpha, g);
            return static_cast<double>(sim::first_passage_radius(w, radius, budget).time);
        });
        const double med = stats::median(results);
        std::uint64_t exceed = 0;
        for (const double t : results) exceed += (t > tau);
        table.add_row({stats::fmt(radius), stats::fmt(med, 0), stats::fmt(tau, 0),
                       stats::fmt(static_cast<double>(exceed) /
                                      static_cast<double>(results.size()),
                                  3)});
        xs.push_back(static_cast<double>(radius));
        ys.push_back(med);
    }
    const auto fit = stats::loglog_fit(xs, ys);
    table.add_separator();
    table.add_row({"fit", "t_r ~ r^" + stats::fmt(fit.slope, 2),
                   stats::fmt(alpha - 1.0, 2) + " (= alpha-1, paper)",
                   "r2=" + stats::fmt(fit.r_squared, 3)});
    table.print(std::cout);
    std::cout << '\n';
}

void run(const sim::run_options& opts) {
    bench::banner("E20", "Lemma 3.11 machinery: first passage to radius lambda",
                  "t_lambda concentrates below tau_lambda = 2 lambda^(alpha-1) log lambda; "
                  "median scales like lambda^(alpha-1)");
    sweep(opts, 2.25);
    sweep(opts, 2.5);
    sweep(opts, 2.75);
    std::cout << "Reading: per alpha, the median first-passage time grows like r^(alpha-1)\n"
                 "and the lemma's tau_r threshold is exceeded with small, shrinking\n"
                 "probability — the concentration the transience proof composes over\n"
                 "doubling radii.\n";
}

}  // namespace

int main(int argc, char** argv) { return levy::bench::run_main("E20", argc, argv, run); }
