// levyfault — fault-injection driver proving the crash-safety story
// end to end, from outside the process.
//
// Subcommands:
//   levyfault run [--trials=N] [--seed=X] [--threads=T] [--out=FILE]
//                 [--checkpoint=FILE] [--checkpoint-interval=K]
//                 [--max-steps-per-trial=M]
//                 [--crash-after=N] [--cancel-after=N]
//                 [--torn-write=F] [--short-write=F]
//       One fixed parallel-walk sweep; per-trial results as CSV to --out
//       (default stdout). --crash-after=N _Exit(9)s before trial N — a
//       SIGKILL-grade death: no unwinding, no final flush, only journal
//       bytes already renamed into place survive. --torn-write/--short-write
//       corrupt checkpoint flush number F on disk (see src/sim/fault.h).
//
//   levyfault selftest [--dir=DIR]
//       Spawns itself: for 1 and 4 threads, runs an uninterrupted
//       reference, then a crashed run, then a resume, and byte-compares
//       the resumed CSV against the reference. Also proves torn-write
//       recovery. Exit 0 = every scenario bit-identical.
//
//   levyfault shardrun [--trials=N] [--seed=X] [--threads=T] [--out=FILE]
//                      [--shards=S] [--memory-budget=B] [--spill-dir=DIR]
//                      [--kill-at-spill=N]
//       One fixed sharded parallel-walk sweep; per-trial results (including
//       winner and winner exponent) as CSV to --out. Without --shards /
//       --memory-budget it runs the in-memory engine — the byte-compare
//       reference. --kill-at-spill=N _Exit(9)s at the N-th shard spill of a
//       trial, leaving the spill directory mid-flight for a resume.
//
//   levyfault shards [--dir=DIR]
//       Out-of-core drill: for 1 and 4 threads, runs an in-memory
//       reference, a clean sharded run (byte-identical), a sharded run
//       killed at a spill, corrupts one of the surviving shard files, then
//       reruns over the same spill directory and byte-compares against the
//       reference. Exit 0 = kill -9 lost nothing and the corrupt shard
//       recomputed itself.
//
//   levyfault serve
//       In-process service-fault drills against a live levyserve core
//       (src/serve/server.h): a stalled client socket is cut off by the
//       head deadline without wedging the lone worker; a client that
//       resets mid-response leaves the server serving; an injected worker
//       exception during a query answers 500 and the *next* query answers
//       200. Exit 0 = the server survived every abuse.

#include <charconv>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/strategy.h"
#include "src/serve/http.h"
#include "src/serve/server.h"
#include "src/sim/experiment.h"
#include "src/sim/fault.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trial.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS
#include <unistd.h>
#endif

namespace {

using namespace levy;

class arg_map {
public:
    arg_map(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.substr(0, 2) != "--") {
                throw std::invalid_argument("expected --flag[=value], got: " + std::string(arg));
            }
            const auto eq = arg.find('=');
            if (eq == std::string_view::npos) {
                values_[std::string(arg.substr(2))] = "";
            } else {
                values_[std::string(arg.substr(2, eq - 2))] = std::string(arg.substr(eq + 1));
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

    [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    template <class T>
    [[nodiscard]] T get(const std::string& key, T fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        T value{};
        const auto& text = it->second;
        const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
        if (ec != std::errc{} || ptr != text.data() + text.size()) {
            throw std::invalid_argument("bad value for --" + key + ": " + text);
        }
        return value;
    }

private:
    std::map<std::string, std::string> values_;
};

int cmd_run(const arg_map& args) {
    sim::mc_options opts;
    opts.trials = args.get<std::size_t>("trials", 120);
    opts.seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    opts.threads = args.get<unsigned>("threads", 1);
    opts.checkpoint_path = args.text("checkpoint", "");
    opts.checkpoint_interval = args.get<std::size_t>("checkpoint-interval", 1);

    sim::fault_plan plan;
    plan.exit_at_trial = args.get<std::size_t>("crash-after", sim::fault_plan::kNever);
    plan.cancel_after_trial = args.get<std::size_t>("cancel-after", sim::fault_plan::kNever);
    plan.torn_write_flush = args.get<std::size_t>("torn-write", sim::fault_plan::kNever);
    plan.torn_write_offset = 50;
    plan.short_write_flush = args.get<std::size_t>("short-write", sim::fault_plan::kNever);
    plan.short_write_bytes = 20;
    const bool any_fault = plan.exit_at_trial != sim::fault_plan::kNever ||
                           plan.cancel_after_trial != sim::fault_plan::kNever ||
                           plan.torn_write_flush != sim::fault_plan::kNever ||
                           plan.short_write_flush != sim::fault_plan::kNever;
    if (any_fault) sim::install_fault_plan(plan);

    // The workload itself is fixed: the selftest is about the journal, so
    // only the Monte-Carlo identity (seed, trials) varies.
    sim::parallel_walk_config cfg;
    cfg.k = 4;
    cfg.strategy = fixed_exponent(2.5);
    cfg.ell = 16;
    cfg.budget = 4000;
    cfg.max_steps = args.get<std::uint64_t>("max-steps-per-trial", 0);

    const auto results = sim::monte_carlo_collect(
        opts, [&cfg](std::size_t, rng& g) { return sim::parallel_walk_trial(cfg, g); });
    sim::clear_fault_plan();

    std::ostringstream csv;
    csv << "trial,hit,time,censored\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        csv << i << ',' << results[i].hit << ',' << results[i].time << ','
            << results[i].censored << '\n';
    }
    const std::string out_path = args.text("out", "");
    if (out_path.empty()) {
        std::cout << csv.str();
    } else {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        out << csv.str();
        if (!out.good()) throw std::runtime_error("levyfault: cannot write " + out_path);
    }
    return 0;
}

int cmd_shardrun(const arg_map& args) {
    sim::mc_options opts;
    opts.trials = args.get<std::size_t>("trials", 6);
    opts.seed = args.get<std::uint64_t>("seed", 4242);
    opts.threads = args.get<unsigned>("threads", 1);

    sim::fault_plan plan;
    plan.exit_at_shard_spill = args.get<std::size_t>("kill-at-spill", sim::fault_plan::kNever);
    if (plan.exit_at_shard_spill != sim::fault_plan::kNever) sim::install_fault_plan(plan);

    // Fixed workload: the drill is about the spill files, so only the
    // sharding knobs and the Monte-Carlo identity vary.
    sim::parallel_walk_config cfg;
    cfg.k = 12;
    cfg.strategy = fixed_exponent(2.5);
    cfg.ell = 24;
    cfg.budget = 3000;
    cfg.shards = args.get<std::size_t>("shards", 0);
    cfg.memory_budget = args.get<std::uint64_t>("memory-budget", 0);
    cfg.spill_dir = args.text("spill-dir", "");

    const auto results = sim::monte_carlo_collect(
        opts, [&cfg](std::size_t, rng& g) { return sim::parallel_walk_trial(cfg, g); });
    sim::clear_fault_plan();

    std::ostringstream csv;
    csv.precision(17);
    csv << "trial,hit,time,winner,winner_alpha\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        csv << i << ',' << results[i].hit << ',' << results[i].time << ','
            << results[i].winner << ',' << results[i].winner_alpha << '\n';
    }
    const std::string out_path = args.text("out", "");
    if (out_path.empty()) {
        std::cout << csv.str();
    } else {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        out << csv.str();
        if (!out.good()) throw std::runtime_error("levyfault: cannot write " + out_path);
    }
    return 0;
}

/// Run a child levyfault command line; returns its raw std::system status.
int spawn(const std::string& self, const std::string& args) {
    const std::string cmd = self + " " + args;
    std::cout << "  $ " << cmd << "\n";
    return std::system(cmd.c_str());
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int fail(const std::string& what) {
    std::cerr << "levyfault selftest FAILED: " << what << "\n";
    return 1;
}

int cmd_selftest(const std::string& self, const arg_map& args) {
    namespace fs = std::filesystem;
    const fs::path dir = args.text("dir", (fs::temp_directory_path() / "levyfault_selftest").string());
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto p = [&dir](const std::string& name) { return (dir / name).string(); };

    for (const unsigned threads : {1u, 4u}) {
        const std::string common = "run --trials=120 --seed=1337 --threads=" +
                                   std::to_string(threads) + " --checkpoint-interval=1";
        std::cout << "[levyfault] crash/resume, threads=" << threads << "\n";

        if (spawn(self, common + " --out=" + p("ref.csv")) != 0) {
            return fail("reference run did not exit 0");
        }
        const std::string reference = slurp(p("ref.csv"));
        if (reference.empty()) return fail("reference CSV is empty");

        // Crash mid-sweep: _Exit(9) with no unwinding. The only durable
        // state is whatever the journal had already renamed into place.
        const std::string journal = p("crash-" + std::to_string(threads) + ".ckpt");
        if (spawn(self, common + " --checkpoint=" + journal + " --crash-after=40 --out=" +
                            p("crashed.csv")) == 0) {
            return fail("crashed run exited 0 — fault did not fire");
        }
        if (!fs::exists(journal)) return fail("crash left no journal behind");

        // Resume must complete and reproduce the reference byte for byte.
        if (spawn(self, common + " --checkpoint=" + journal + " --out=" + p("resumed.csv")) !=
            0) {
            return fail("resume run did not exit 0");
        }
        if (slurp(p("resumed.csv")) != reference) {
            return fail("resumed CSV differs from uninterrupted reference");
        }

        // Torn checkpoint write: the run survives (journal plays dead), the
        // corruption stays on disk, and the next run recovers through it.
        const std::string torn = p("torn-" + std::to_string(threads) + ".ckpt");
        if (spawn(self, common + " --checkpoint=" + torn + " --torn-write=3 --out=" +
                            p("torn1.csv")) != 0) {
            return fail("torn-write run did not exit 0");
        }
        if (slurp(p("torn1.csv")) != reference) {
            return fail("torn-write run output differs from reference");
        }
        if (spawn(self, common + " --checkpoint=" + torn + " --out=" + p("torn2.csv")) != 0) {
            return fail("post-corruption resume did not exit 0");
        }
        if (slurp(p("torn2.csv")) != reference) {
            return fail("post-corruption resume differs from reference");
        }
    }

    fs::remove_all(dir);
    std::cout << "[levyfault] all crash/resume scenarios bit-identical\n";
    return 0;
}

int cmd_shards_drill(const std::string& self, const arg_map& args) {
    namespace fs = std::filesystem;
    const fs::path dir =
        args.text("dir", (fs::temp_directory_path() / "levyfault_shards").string());
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto p = [&dir](const std::string& name) { return (dir / name).string(); };
    const auto fail_shards = [](const std::string& what) {
        std::cerr << "levyfault shards FAILED: " << what << "\n";
        return 1;
    };
    const auto shard_files = [](const fs::path& spill_dir) {
        std::vector<fs::path> files;
        if (fs::exists(spill_dir)) {
            for (const auto& entry : fs::directory_iterator(spill_dir)) {
                if (entry.path().extension() == ".lvyshard") files.push_back(entry.path());
            }
        }
        return files;
    };

    for (const unsigned threads : {1u, 4u}) {
        const std::string tag = std::to_string(threads);
        const std::string common = "shardrun --trials=6 --seed=4242 --threads=" + tag;
        // 6 shards of 2 walkers under a 3-walker resident budget: every
        // round evicts, so spills are frequent and a kill lands mid-flight.
        const std::string spill_dir = p("spill-" + tag);
        const std::string sharded_flags = " --shards=6 --memory-budget=" +
                                          std::to_string(3 * 224) +
                                          " --spill-dir=" + spill_dir;
        std::cout << "[levyfault] out-of-core kill/resume, threads=" << threads << "\n";

        if (spawn(self, common + " --out=" + p("ref.csv")) != 0) {
            return fail_shards("in-memory reference run did not exit 0");
        }
        const std::string reference = slurp(p("ref.csv"));
        if (reference.empty()) return fail_shards("reference CSV is empty");

        // Clean sharded run: bit-identical results, no files left behind.
        if (spawn(self, common + sharded_flags + " --out=" + p("sharded.csv")) != 0) {
            return fail_shards("sharded run did not exit 0");
        }
        if (slurp(p("sharded.csv")) != reference) {
            return fail_shards("sharded CSV differs from in-memory reference");
        }
        if (!shard_files(spill_dir).empty()) {
            return fail_shards("clean sharded run left spill files behind");
        }

        // Kill -9 (well, _Exit(9)) at a spill: the run must die nonzero and
        // leave already-synced shards on disk for the resume.
        if (spawn(self, common + sharded_flags + " --kill-at-spill=7 --out=" +
                            p("killed.csv")) == 0) {
            return fail_shards("killed run exited 0 — fault did not fire");
        }
        const auto survivors = shard_files(spill_dir);
        if (survivors.empty()) return fail_shards("kill left no spill files behind");

        // Corrupt one survivor: only that shard may recompute, and the
        // rerun must still match the reference byte for byte.
        {
            std::fstream f(survivors.front(), std::ios::binary | std::ios::in | std::ios::out);
            f.seekp(100);
            f.put(static_cast<char>(0x5a));
            if (!f.good()) return fail_shards("could not corrupt a surviving shard file");
        }
        if (spawn(self, common + sharded_flags + " --out=" + p("resumed.csv")) != 0) {
            return fail_shards("resumed sharded run did not exit 0");
        }
        if (slurp(p("resumed.csv")) != reference) {
            return fail_shards("resumed CSV differs from in-memory reference");
        }
        if (!shard_files(spill_dir).empty()) {
            return fail_shards("resumed run left spill files behind");
        }
    }

    fs::remove_all(dir);
    std::cout << "[levyfault] out-of-core scenarios bit-identical through kill and "
                 "corruption\n";
    return 0;
}

#if LEVY_SERVE_HAVE_POSIX_SOCKETS

int serve_fail(serve::server& server, const std::string& what) {
    server.stop();
    std::cerr << "levyfault serve FAILED: " << what << "\n";
    return 1;
}

int cmd_serve_drills() {
    // One worker and a tiny queue: if any drill wedged the worker, the
    // follow-up health check could never answer.
    serve::serve_options opts;
    opts.workers = 1;
    opts.queue_capacity = 4;
    opts.steps_per_ms = 1000;
    opts.default_trials = 16;
    opts.limits.io_timeout_seconds = 0.2;
    opts.limits.head_deadline_seconds = 0.5;

    serve::server server(opts);
    const unsigned short port = server.start();
    int status = 0;

    std::cout << "[levyfault] drill 1: stalled client socket\n";
    // Connect and send nothing: the lone worker must hand the connection
    // back once the 0.5 s head deadline lapses, not wait on it forever.
    const int stalled = serve::connect_client(port, 5.0);
    if (stalled < 0) return serve_fail(server, "could not open the stalled connection");
    if (!serve::http_get(port, "/healthz", 5.0, &status).has_value() || status != 200) {
        ::close(stalled);
        return serve_fail(server, "healthz blocked behind a stalled client");
    }
    ::close(stalled);

    std::cout << "[levyfault] drill 2: half a request, then silence\n";
    const int drip = serve::connect_client(port, 5.0);
    if (drip < 0) return serve_fail(server, "could not open the drip connection");
    (void)serve::send_all(drip, "GET /metr");  // head never completes
    if (!serve::http_get(port, "/healthz", 5.0, &status).has_value() || status != 200) {
        ::close(drip);
        return serve_fail(server, "healthz blocked behind a half-sent head");
    }
    ::close(drip);

    std::cout << "[levyfault] drill 3: client resets mid-response\n";
    const int reset = serve::connect_client(port, 5.0);
    if (reset < 0) return serve_fail(server, "could not open the resetting connection");
    (void)serve::send_all(reset, "GET /metrics HTTP/1.1\r\n\r\n");
    ::close(reset);  // gone before reading a byte of the reply
    if (!serve::http_get(port, "/healthz", 5.0, &status).has_value() || status != 200) {
        return serve_fail(server, "healthz blocked after a mid-response reset");
    }

    std::cout << "[levyfault] drill 4: worker exception during a query\n";
    // The next admitted connection's sequence number gets the injected
    // fault: that query must answer 500, the one after it 200.
    sim::fault_plan plan;
    plan.throw_at_query = server.stats().admission.admitted;
    sim::install_fault_plan(plan);
    const std::string query = "/query?alpha=2.5&ell=16&k=2&budget=1000&trials=8";
    (void)serve::http_get(port, query, 10.0, &status);
    sim::clear_fault_plan();
    if (status != 500) {
        return serve_fail(server, "injected worker fault did not answer 500 (got " +
                                      std::to_string(status) + ")");
    }
    if (!serve::http_get(port, query, 30.0, &status).has_value() || status != 200) {
        return serve_fail(server, "server did not keep serving after a worker fault");
    }
    if (server.stats().worker_faults != 1) {
        return serve_fail(server, "worker fault was not counted exactly once");
    }

    server.stop();
    std::cout << "[levyfault] serve drills OK: server survived every abuse\n";
    return 0;
}

#else

int cmd_serve_drills() {
    std::cerr << "levyfault serve requires POSIX sockets on this platform\n";
    return 2;
}

#endif  // LEVY_SERVE_HAVE_POSIX_SOCKETS

void usage() {
    std::cout << "levyfault <run|shardrun|selftest|shards|serve> [--flag=value ...]   (see source header)\n";
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) {
            usage();
            return 2;
        }
        const std::string_view cmd = argv[1];
        const arg_map args(argc, argv, 2);
        if (cmd == "run") return cmd_run(args);
        if (cmd == "shardrun") return cmd_shardrun(args);
        if (cmd == "selftest") return cmd_selftest(argv[0], args);
        if (cmd == "shards") return cmd_shards_drill(argv[0], args);
        if (cmd == "serve") return cmd_serve_drills();
        usage();
        return 2;
    } catch (const sim::run_cancelled&) {
        std::cerr << "levyfault: cancelled (journal flushed)\n";
        return 130;
    } catch (const std::exception& e) {
        std::cerr << "levyfault: " << e.what() << '\n';
        return 1;
    }
}
