// levyserve — overload-safe search-as-a-service for parallel Lévy walks.
//
// Subcommands:
//   levyserve serve [--port=P] [--workers=W] [--queue-capacity=Q]
//                   [--deadline-ms=D] [--max-deadline-ms=M] [--steps-per-ms=S]
//                   [--trials=N] [--seed=X] [--cache=PATH]
//                   [--cache-capacity=C] [--cache-flush-every=K]
//                   [--port-file=PATH]
//                   [--fault-exit-at-cache-flush=N] [--fault-throw-at-query=N]
//       Run the daemon (see src/serve/server.h for the endpoints and the
//       admission → deadline → degradation ladder) until SIGTERM/SIGINT.
//       --port-file writes the bound port for a parent process to read.
//       The --fault-* flags install a sim::fault_plan for the drills below.
//
//   levyserve replay --port=P --out=FILE --batch=exact|tight [--count=N]
//       Issue the deterministic query batch `batch` against a running
//       server and concatenate the response bodies into FILE. Responses
//       contain no wall-clock content, so two replays of the same batch
//       against equivalently-configured servers must produce byte-identical
//       files — the selftest's yardstick. Exit 0 = every request answered.
//
//   levyserve loadgen --port=P [--requests=N] [--concurrency=C]
//                     [--path=TARGET]
//       Closed-loop load (src/serve/loadgen.h); prints key=value counters
//       and p50/p95/p99 latency. Exit 0 iff no non-503 5xx and no
//       transport errors.
//
//   levyserve selftest [--dir=DIR]
//       Spawns itself end to end: populate the result cache with exact
//       answers, take tight-deadline (cache-served) answers, kill -9 the
//       server, restart on the same cache file, and byte-compare both
//       replayed batches. Then crash *between cache flushes* via
//       --fault-exit-at-cache-flush and prove the surviving cache still
//       yields byte-identical exact answers. Exit 0 = all bytes equal.

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/serve/http.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"
#include "src/sim/fault.h"
#include "src/sim/monte_carlo.h"

#if LEVY_SERVE_HAVE_POSIX_SOCKETS
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

using namespace levy;

class arg_map {
public:
    arg_map(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.substr(0, 2) != "--") {
                throw std::invalid_argument("expected --flag[=value], got: " +
                                            std::string(arg));
            }
            const auto eq = arg.find('=');
            if (eq == std::string_view::npos) {
                values_[std::string(arg.substr(2))] = "";
            } else {
                values_[std::string(arg.substr(2, eq - 2))] =
                    std::string(arg.substr(eq + 1));
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

    [[nodiscard]] std::string text(const std::string& key, const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    template <class T>
    [[nodiscard]] T get(const std::string& key, T fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        T value{};
        const auto& text = it->second;
        const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
        if (ec != std::errc{} || ptr != text.data() + text.size()) {
            throw std::invalid_argument("bad value for --" + key + ": " + text);
        }
        return value;
    }

private:
    std::map<std::string, std::string> values_;
};

volatile std::sig_atomic_t g_stop = 0;
extern "C" void levyserve_stop_handler(int) { g_stop = 1; }

serve::serve_options options_from(const arg_map& args) {
    serve::serve_options opts;
    opts.port = args.get<unsigned short>("port", 0);
    opts.workers = args.get<unsigned>("workers", 2);
    opts.queue_capacity = args.get<std::size_t>("queue-capacity", 64);
    opts.default_deadline_ms = args.get<std::uint64_t>("deadline-ms", 200);
    opts.max_deadline_ms = args.get<std::uint64_t>("max-deadline-ms", 60'000);
    opts.steps_per_ms = args.get<std::uint64_t>("steps-per-ms", 20'000);
    opts.default_trials = args.get<std::size_t>("trials", 200);
    opts.seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    opts.cache_path = args.text("cache", "");
    opts.cache.capacity = args.get<std::size_t>("cache-capacity", 4096);
    opts.cache_flush_every = args.get<std::size_t>("cache-flush-every", 16);
    return opts;
}

int cmd_serve(const arg_map& args) {
    const serve::serve_options opts = options_from(args);

    sim::fault_plan plan;
    plan.exit_at_cache_flush =
        args.get<std::size_t>("fault-exit-at-cache-flush", sim::fault_plan::kNever);
    plan.throw_at_query =
        args.get<std::size_t>("fault-throw-at-query", sim::fault_plan::kNever);
    if (plan.exit_at_cache_flush != sim::fault_plan::kNever ||
        plan.throw_at_query != sim::fault_plan::kNever) {
        sim::install_fault_plan(plan);
    }

    serve::server server(opts);
    const unsigned short port = server.start();
    std::cout << "levyserve listening on port " << port << "\n" << std::flush;
    const std::string port_file = args.text("port-file", "");
    if (!port_file.empty()) {
        // Write then rename so the parent never reads a torn port number.
        const std::string tmp = port_file + ".tmp";
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << port << "\n";
        out.close();
        if (!out.good() || std::rename(tmp.c_str(), port_file.c_str()) != 0) {
            throw std::runtime_error("levyserve: cannot write " + port_file);
        }
    }

    std::signal(SIGTERM, levyserve_stop_handler);
    std::signal(SIGINT, levyserve_stop_handler);
    while (g_stop == 0) {
        ::usleep(50'000);
    }
    server.stop();
    sim::clear_fault_plan();
    std::cout << "levyserve stopped\n";
    return 0;
}

/// The deterministic replay batches. "exact" asks with a generous deadline
/// (the full Monte-Carlo fits and seeds the cache); "tight" asks the same
/// grid with deadline_ms=1 (nothing fits — answers must come from the
/// cache's exact or interpolated rungs). A few /plan calls ride along.
std::vector<std::string> batch_paths(const std::string& batch, std::size_t count) {
    const bool tight = batch == "tight";
    if (!tight && batch != "exact") {
        throw std::invalid_argument("levyserve replay: --batch must be exact or tight");
    }
    static const double alphas[] = {2.2, 2.4, 2.6, 2.8};
    static const int ells[] = {16, 24};
    static const int ks[] = {2, 4};
    static const int budgets[] = {2000, 3000, 4000};
    std::vector<std::string> paths;
    paths.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        std::ostringstream p;
        if (i % 7 == 6) {
            p << "/plan?k=" << ks[i % 2] << "&ell=" << ells[i % 2];
        } else {
            p << "/query?alpha=" << alphas[i % 4] << "&ell=" << ells[i % 2]
              << "&k=" << ks[(i / 2) % 2] << "&budget=" << budgets[i % 3]
              << "&trials=64";
            p << "&deadline_ms=" << (tight ? 1 : 60'000);
        }
        paths.push_back(p.str());
    }
    return paths;
}

int cmd_replay(const arg_map& args) {
    const auto port = args.get<unsigned short>("port", 0);
    if (port == 0) throw std::invalid_argument("levyserve replay: need --port");
    const std::string out_path = args.text("out", "");
    if (out_path.empty()) throw std::invalid_argument("levyserve replay: need --out");
    const std::vector<std::string> paths =
        batch_paths(args.text("batch", "exact"), args.get<std::size_t>("count", 24));

    std::ostringstream out;
    std::size_t failures = 0;
    for (const std::string& path : paths) {
        int status = 0;
        const std::optional<std::string> body =
            serve::http_get(port, path, /*timeout_seconds=*/120.0, &status);
        out << "### " << path << "\n";
        if (!body.has_value()) {
            out << "TRANSPORT-ERROR\n";
            ++failures;
            continue;
        }
        out << status << "\n" << *body;
    }
    std::ofstream file(out_path, std::ios::binary | std::ios::trunc);
    file << out.str();
    file.close();
    if (!file.good()) throw std::runtime_error("levyserve: cannot write " + out_path);
    if (failures != 0) {
        std::cerr << "levyserve replay: " << failures << "/" << paths.size()
                  << " requests failed\n";
        return 3;
    }
    return 0;
}

int cmd_loadgen(const arg_map& args) {
    serve::loadgen_options opts;
    opts.port = args.get<unsigned short>("port", 0);
    if (opts.port == 0) throw std::invalid_argument("levyserve loadgen: need --port");
    opts.requests = args.get<std::size_t>("requests", 200);
    opts.concurrency = args.get<unsigned>("concurrency", 16);
    opts.timeout_seconds = args.get<double>("timeout", 30.0);
    if (args.has("path")) opts.paths = {args.text("path", "/healthz")};

    const serve::loadgen_report report = serve::run_loadgen(opts);
    std::cout << "sent=" << report.sent << "\n"
              << "ok=" << report.ok << "\n"
              << "shed=" << report.shed << "\n"
              << "client_errors=" << report.client_errors << "\n"
              << "server_errors=" << report.server_errors << "\n"
              << "transport_errors=" << report.transport_errors << "\n"
              << "p50_ms=" << report.percentile_ms(50) << "\n"
              << "p95_ms=" << report.percentile_ms(95) << "\n"
              << "p99_ms=" << report.percentile_ms(99) << "\n";
    const double shed_rate =
        report.sent == 0 ? 0.0
                         : static_cast<double>(report.shed) / static_cast<double>(report.sent);
    std::cout << "shed_rate=" << shed_rate << "\n";
    return (report.server_errors == 0 && report.transport_errors == 0) ? 0 : 4;
}

/// --- selftest ------------------------------------------------------------

struct child_server {
    pid_t pid = -1;
    unsigned short port = 0;
};

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

int fail(const std::string& what) {
    std::cerr << "levyserve selftest FAILED: " << what << "\n";
    return 1;
}

/// fork+exec `self serve <args> --port-file=...`; waits until /healthz
/// answers. Returns pid -1 on failure.
child_server spawn_server(const std::string& self, const std::string& port_file,
                          const std::vector<std::string>& extra) {
    std::remove(port_file.c_str());
    std::vector<std::string> argv_s = {self, "serve", "--port-file=" + port_file};
    argv_s.insert(argv_s.end(), extra.begin(), extra.end());
    std::cout << "  $";
    for (const std::string& a : argv_s) std::cout << " " << a;
    std::cout << "\n";
    std::vector<char*> argv_c;
    argv_c.reserve(argv_s.size() + 1);
    for (std::string& a : argv_s) argv_c.push_back(a.data());
    argv_c.push_back(nullptr);

    child_server child;
    const pid_t pid = ::fork();
    if (pid < 0) return child;
    if (pid == 0) {
        ::execv(self.c_str(), argv_c.data());
        std::_Exit(127);  // exec failed
    }
    child.pid = pid;
    for (int i = 0; i < 400; ++i) {  // up to ~20 s
        ::usleep(50'000);
        const std::string text = slurp(port_file);
        if (text.empty()) continue;
        const unsigned long port = std::strtoul(text.c_str(), nullptr, 10);
        if (port == 0 || port > 65535) continue;
        int status = 0;
        if (serve::http_get(static_cast<unsigned short>(port), "/healthz", 1.0, &status)
                .has_value() &&
            status == 200) {
            child.port = static_cast<unsigned short>(port);
            return child;
        }
    }
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    child.pid = -1;
    return child;
}

void kill9(child_server& child) {
    if (child.pid <= 0) return;
    ::kill(child.pid, SIGKILL);
    ::waitpid(child.pid, nullptr, 0);
    child.pid = -1;
}

void stop_gracefully(child_server& child) {
    if (child.pid <= 0) return;
    ::kill(child.pid, SIGTERM);
    ::waitpid(child.pid, nullptr, 0);
    child.pid = -1;
}

int run_child(const std::string& self, const std::string& args) {
    const std::string cmd = self + " " + args;
    std::cout << "  $ " << cmd << "\n";
    return std::system(cmd.c_str());
}

int cmd_selftest(const std::string& self, const arg_map& args) {
    namespace fs = std::filesystem;
    const fs::path dir =
        args.text("dir", (fs::temp_directory_path() / "levyserve_selftest").string());
    fs::remove_all(dir);
    fs::create_directories(dir);
    const auto p = [&dir](const std::string& name) { return (dir / name).string(); };

    // One server configuration for every phase: seed and steps-per-ms fixed,
    // so every answer is a pure function of the request and the cache.
    const std::vector<std::string> config = {
        "--workers=2",         "--queue-capacity=32",    "--steps-per-ms=1000",
        "--trials=64",         "--seed=1337",            "--cache=" + p("cache.bin"),
        "--cache-flush-every=1"};

    std::cout << "[levyserve] phase 1: populate cache with exact answers\n";
    child_server server = spawn_server(self, p("port"), config);
    if (server.pid < 0) return fail("server did not come up");
    const std::string replay =
        "replay --port=" + std::to_string(server.port) + " --count=24";
    if (run_child(self, replay + " --batch=exact --out=" + p("exact1.txt")) != 0) {
        return fail("exact replay 1 did not exit 0");
    }
    const std::string exact1 = slurp(p("exact1.txt"));
    if (exact1.empty()) return fail("exact replay 1 produced no output");

    std::cout << "[levyserve] phase 2: tight deadlines served from the cache\n";
    if (run_child(self, replay + " --batch=tight --out=" + p("tight1.txt")) != 0) {
        return fail("tight replay 1 did not exit 0");
    }
    const std::string tight1 = slurp(p("tight1.txt"));
    if (tight1.find("\"quality\":\"exact\"") == std::string::npos ||
        tight1.find("\"cached\":true") == std::string::npos) {
        return fail("tight replay was not served from the cache");
    }

    std::cout << "[levyserve] phase 3: kill -9, restart on the same cache\n";
    kill9(server);
    server = spawn_server(self, p("port"), config);
    if (server.pid < 0) return fail("server did not restart");
    const std::string replay2 =
        "replay --port=" + std::to_string(server.port) + " --count=24";
    if (run_child(self, replay2 + " --batch=tight --out=" + p("tight2.txt")) != 0) {
        return fail("tight replay 2 did not exit 0");
    }
    if (slurp(p("tight2.txt")) != tight1) {
        return fail("tight answers differ across kill -9 + restart");
    }
    if (run_child(self, replay2 + " --batch=exact --out=" + p("exact2.txt")) != 0) {
        return fail("exact replay 2 did not exit 0");
    }
    if (slurp(p("exact2.txt")) != exact1) {
        return fail("exact answers differ across kill -9 + restart");
    }
    stop_gracefully(server);

    std::cout << "[levyserve] phase 4: crash between cache flushes\n";
    fs::remove(p("cache.bin"));
    std::vector<std::string> crashing = config;
    crashing.push_back("--fault-exit-at-cache-flush=6");
    server = spawn_server(self, p("port"), crashing);
    if (server.pid < 0) return fail("crash-drill server did not come up");
    // The batch dies when flush ordinal 6 is reached; the replay sees
    // transport errors — expected, so ignore its exit status.
    (void)run_child(self,
                    "replay --port=" + std::to_string(server.port) +
                        " --count=24 --batch=exact --out=" + p("crashed.txt"));
    ::waitpid(server.pid, nullptr, 0);
    server.pid = -1;
    if (!fs::exists(p("cache.bin"))) {
        return fail("crash between flushes left no cache file (flush 6 never renamed)");
    }

    server = spawn_server(self, p("port"), config);
    if (server.pid < 0) return fail("post-crash server did not come up");
    if (run_child(self,
                  "replay --port=" + std::to_string(server.port) +
                      " --count=24 --batch=exact --out=" + p("exact3.txt")) != 0) {
        return fail("post-crash exact replay did not exit 0");
    }
    if (slurp(p("exact3.txt")) != exact1) {
        return fail("post-crash exact answers differ from the original batch");
    }
    // The exact replay repopulated the cache, so tight answers must now
    // match the pre-crash run — per-entry recovery converged to the same
    // state, not merely a working one.
    if (run_child(self,
                  "replay --port=" + std::to_string(server.port) +
                      " --count=24 --batch=tight --out=" + p("tight3.txt")) != 0) {
        return fail("post-crash tight replay did not exit 0");
    }
    if (slurp(p("tight3.txt")) != tight1) {
        return fail("post-crash tight answers differ after cache repopulation");
    }
    stop_gracefully(server);

    fs::remove_all(dir);
    std::cout << "[levyserve] selftest OK: all replayed batches byte-identical\n";
    return 0;
}

void usage() {
    std::cout << "levyserve <serve|replay|loadgen|selftest> [--flag=value ...]   "
                 "(see source header)\n";
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) {
            usage();
            return 2;
        }
        const std::string_view cmd = argv[1];
        const arg_map args(argc, argv, 2);
        if (cmd == "serve") return cmd_serve(args);
        if (cmd == "replay") return cmd_replay(args);
        if (cmd == "loadgen") return cmd_loadgen(args);
        if (cmd == "selftest") return cmd_selftest(argv[0], args);
        usage();
        return 2;
    } catch (const std::exception& e) {
        std::cerr << "levyserve: " << e.what() << '\n';
        return 1;
    }
}

#else  // !LEVY_SERVE_HAVE_POSIX_SOCKETS

int main() {
    std::fputs("levyserve requires POSIX sockets on this platform\n", stderr);
    return 2;
}

#endif
