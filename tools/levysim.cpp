// levysim — command-line driver for the library.
//
// Subcommands:
//   levysim walk     --alpha=A --steps=N [--seed=X]          trajectory CSV to stdout
//   levysim hit      --alpha=A --ell=L --budget=B [--trials=N] [--seed=X]
//   levysim parallel --k=K --ell=L --budget=B [--alpha=A | --random] [--trials=N]
//   levysim sweep    --k=K --ell=L [--trials=N]              alpha sweep table
//   levysim occupancy --alpha=A --steps=T [--radius=R]       exact DP heatmap
//
// Everything is reproducible per --seed; see README for the library API.

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/occupancy.h"
#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/sim/experiment.h"
#include "src/sim/monte_carlo.h"
#include "src/sim/trial.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

using namespace levy;

class arg_map {
public:
    arg_map(int argc, char** argv, int first) {
        for (int i = first; i < argc; ++i) {
            const std::string_view arg = argv[i];
            if (arg.substr(0, 2) != "--") {
                throw std::invalid_argument("expected --flag[=value], got: " + std::string(arg));
            }
            const auto eq = arg.find('=');
            if (eq == std::string_view::npos) {
                values_[std::string(arg.substr(2))] = "";
            } else {
                values_[std::string(arg.substr(2, eq - 2))] = std::string(arg.substr(eq + 1));
            }
        }
    }

    [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

    template <class T>
    [[nodiscard]] T get(const std::string& key, T fallback) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        T value{};
        const auto& text = it->second;
        const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
        if (ec != std::errc{} || ptr != text.data() + text.size()) {
            throw std::invalid_argument("bad value for --" + key + ": " + text);
        }
        return value;
    }

private:
    std::map<std::string, std::string> values_;
};

int cmd_walk(const arg_map& args) {
    const double alpha = args.get("alpha", 2.5);
    const auto steps = args.get<std::uint64_t>("steps", 1000);
    const auto seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    levy_walk w(alpha, rng::seeded(seed));
    std::cout << "step,x,y,phase\n0,0,0,0\n";
    for (std::uint64_t t = 1; t <= steps; ++t) {
        const point p = w.step();
        std::cout << t << ',' << p.x << ',' << p.y << ',' << w.phases() << '\n';
    }
    return 0;
}

int cmd_hit(const arg_map& args) {
    sim::single_walk_config cfg;
    cfg.alpha = args.get("alpha", 2.5);
    cfg.ell = args.get<std::int64_t>("ell", 64);
    cfg.budget = args.get<std::uint64_t>("budget", 100000);
    const auto trials = args.get<std::size_t>("trials", 1000);
    const auto seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    const auto p = sim::single_hit_probability(cfg, {.trials = trials, .threads = 0, .seed = seed});
    std::cout << "P(tau_" << cfg.alpha << " <= " << cfg.budget << ") for ell=" << cfg.ell
              << ": " << p.estimate() << "  (95% CI [" << p.lo << ", " << p.hi << "], "
              << p.successes << "/" << p.trials << " trials)\n";
    return 0;
}

int cmd_parallel(const arg_map& args) {
    sim::parallel_walk_config cfg;
    cfg.k = args.get<std::size_t>("k", 32);
    cfg.ell = args.get<std::int64_t>("ell", 64);
    cfg.budget = args.get<std::uint64_t>("budget", 100000);
    cfg.strategy = args.has("random")
                       ? uniform_exponent()
                       : fixed_exponent(args.get("alpha", optimal_alpha(
                                                              static_cast<double>(cfg.k),
                                                              static_cast<double>(cfg.ell))));
    const auto trials = args.get<std::size_t>("trials", 200);
    const auto seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    const auto sample =
        sim::parallel_hitting_times(cfg, {.trials = trials, .threads = 0, .seed = seed});
    std::cout << "k=" << cfg.k << " ell=" << cfg.ell << " budget=" << cfg.budget
              << (args.has("random") ? " strategy=U(2,3)" : " strategy=fixed") << "\n"
              << "hit rate: " << sample.hit_fraction()
              << ", median tau^k: " << stats::median(sample.times)
              << ", mean: " << stats::summarize(sample.times).mean() << "\n";
    return 0;
}

int cmd_sweep(const arg_map& args) {
    const auto k = args.get<std::size_t>("k", 32);
    const auto ell = args.get<std::int64_t>("ell", 128);
    const auto trials = args.get<std::size_t>("trials", 60);
    const auto seed = args.get<std::uint64_t>("seed", sim::kDefaultSeed);
    const double alpha_star = optimal_alpha(static_cast<double>(k), static_cast<double>(ell));
    stats::text_table table({"alpha", "hit rate", "median tau^k"});
    for (double alpha = 2.05; alpha < 3.0; alpha += 0.1) {
        sim::parallel_walk_config cfg;
        cfg.k = k;
        cfg.ell = ell;
        cfg.budget = static_cast<std::uint64_t>(ell) * static_cast<std::uint64_t>(ell);
        cfg.strategy = fixed_exponent(alpha);
        const auto sample = sim::parallel_hitting_times(
            cfg, {.trials = trials, .threads = 0,
                  .seed = mix64(seed, static_cast<std::uint64_t>(alpha * 1000))});
        table.add_row({stats::fmt(alpha, 2), stats::fmt(sample.hit_fraction(), 2),
                       stats::fmt(stats::median(sample.times), 0)});
    }
    table.print(std::cout);
    std::cout << "alpha*(k, ell) = " << stats::fmt(alpha_star, 3) << "\n";
    return 0;
}

int cmd_occupancy(const arg_map& args) {
    const double alpha = args.get("alpha", 2.5);
    const auto steps = args.get<std::uint64_t>("steps", 4);
    const auto radius = args.get<std::int64_t>("radius", 10);
    analysis::flight_occupancy occ(alpha, radius);
    occ.advance(steps);
    // Log-scale ASCII heatmap: darker = more probable.
    static constexpr char kShades[] = " .:-=+*#%@";
    for (std::int64_t y = radius; y >= -radius; --y) {
        for (std::int64_t x = -radius; x <= radius; ++x) {
            const double p = occ.probability({x, y});
            int shade = 0;
            if (p > 0.0) {
                shade = static_cast<int>(10.0 + std::log10(p));  // 1e-10..1 -> 0..9
                shade = std::clamp(shade, 1, 9);
            }
            std::cout << kShades[shade];
        }
        std::cout << '\n';
    }
    std::cout << "exact P(L_" << steps << " = 0) = " << occ.probability(origin)
              << ", escaped mass " << occ.escaped() << " (log10 shading, '@' ~ 1)\n";
    return 0;
}

void usage() {
    std::cout <<
        "levysim <command> [--flag=value ...]\n"
        "  walk       --alpha --steps --seed            trajectory CSV\n"
        "  hit        --alpha --ell --budget --trials   single-walk hit probability\n"
        "  parallel   --k --ell --budget [--random|--alpha] --trials\n"
        "  sweep      --k --ell --trials                exponent sweep table\n"
        "  occupancy  --alpha --steps --radius          exact DP heatmap\n";
}

}  // namespace

int main(int argc, char** argv) {
    try {
        if (argc < 2) {
            usage();
            return 2;
        }
        const std::string_view cmd = argv[1];
        const arg_map args(argc, argv, 2);
        int rc = 2;
        if (cmd == "walk") {
            rc = cmd_walk(args);
        } else if (cmd == "hit") {
            rc = cmd_hit(args);
        } else if (cmd == "parallel") {
            rc = cmd_parallel(args);
        } else if (cmd == "sweep") {
            rc = cmd_sweep(args);
        } else if (cmd == "occupancy") {
            rc = cmd_occupancy(args);
        } else {
            usage();
        }
        // Throughput goes to stderr so the CSV-emitting commands stay clean.
        const auto metrics = sim::metrics_snapshot();
        if (rc == 0 && metrics.trials > 0) {
            std::cerr << sim::format_throughput(metrics) << '\n';
        }
        return rc;
    } catch (const std::exception& e) {
        std::cerr << "levysim: " << e.what() << '\n';
        return 1;
    }
}
