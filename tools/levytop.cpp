// levytop — live view of a running bench's /progress endpoint.
//
// A bench started with --metrics-port=P serves its in-flight state over
// HTTP (see src/obs/exporter.h); levytop polls it and redraws a small
// status table, `top`-style:
//
//   levytop --port=9464              # refresh every second until Ctrl-C
//   levytop --port=9464 --once       # print one snapshot and exit (CI)
//   levytop --port=9464 --raw        # dump the raw /progress JSON
//
// Exit status: 0 on success; 1 when the endpoint is unreachable in --once
// mode (in polling mode an unreachable endpoint just shows "waiting" —
// the bench may not have started yet, or has already finished).

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <thread>  // levylint:allow(raw-thread) client-side poll sleep only

#include "src/obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#error "levytop requires POSIX sockets"
#endif

namespace {

struct options {
    std::string host = "127.0.0.1";
    int port = -1;
    double interval = 1.0;
    bool once = false;
    bool raw = false;
};

[[noreturn]] void usage(int code) {
    std::fputs(
        "usage: levytop --port=P [--host=H] [--interval=SECS] [--once] [--raw]\n"
        "Polls the /progress endpoint a bench serves under --metrics-port=P.\n",
        code == 0 ? stdout : stderr);
    std::exit(code);
}

options parse(int argc, char** argv) {
    options opts;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value = [&](std::string_view flag) -> std::optional<std::string> {
            if (arg.substr(0, flag.size()) != flag || arg.size() <= flag.size() ||
                arg[flag.size()] != '=') {
                return std::nullopt;
            }
            return std::string(arg.substr(flag.size() + 1));
        };
        if (auto p = value("--port")) {
            opts.port = std::atoi(p->c_str());
        } else if (auto h = value("--host")) {
            opts.host = *h;
        } else if (auto s = value("--interval")) {
            opts.interval = std::atof(s->c_str());
        } else if (arg == "--once") {
            opts.once = true;
        } else if (arg == "--raw") {
            opts.raw = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else {
            std::fprintf(stderr, "levytop: unknown argument: %s\n", argv[i]);
            usage(1);
        }
    }
    if (opts.port < 0 || opts.port > 65535) {
        std::fputs("levytop: --port=P is required (1..65535)\n", stderr);
        usage(1);
    }
    if (!(opts.interval > 0.0)) {
        std::fputs("levytop: --interval must be positive\n", stderr);
        usage(1);
    }
    return opts;
}

/// One GET over a fresh connection (the exporter answers Connection: close).
/// Returns the response body, or nullopt when unreachable/malformed.
std::optional<std::string> http_get(const std::string& host, int port,
                                    const std::string& path) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res) != 0) {
        return std::nullopt;
    }
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) return std::nullopt;
    const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                                "\r\nConnection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return std::nullopt;
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    if (response.compare(0, 12, "HTTP/1.1 200") != 0) return std::nullopt;
    const std::size_t body = response.find("\r\n\r\n");
    if (body == std::string::npos) return std::nullopt;
    return response.substr(body + 4);
}

std::string fmt_duration(double seconds) {
    if (seconds < 0.0) return "?";
    const auto total = static_cast<std::uint64_t>(seconds + 0.5);
    char buf[64];
    if (total >= 3600) {
        std::snprintf(buf, sizeof(buf), "%lluh%llum",
                      static_cast<unsigned long long>(total / 3600),
                      static_cast<unsigned long long>((total % 3600) / 60));
    } else if (total >= 60) {
        std::snprintf(buf, sizeof(buf), "%llum%llus",
                      static_cast<unsigned long long>(total / 60),
                      static_cast<unsigned long long>(total % 60));
    } else {
        std::snprintf(buf, sizeof(buf), "%llus", static_cast<unsigned long long>(total));
    }
    return buf;
}

double number_or(const levy::obs::json& doc, const char* key, double fallback) {
    const levy::obs::json* field = doc.find(key);
    return field != nullptr && field->is_number() ? field->as_number() : fallback;
}

std::string string_or(const levy::obs::json& doc, const char* key) {
    const levy::obs::json* field = doc.find(key);
    return field != nullptr && field->is_string() ? field->as_string() : std::string{};
}

void render(const std::string& body, const options& opts, bool redraw) {
    levy::obs::json doc;
    try {
        doc = levy::obs::json::parse(body);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "levytop: bad /progress document: %s\n", e.what());
        return;
    }
    if (redraw) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    const std::string label = string_or(doc, "label");
    const std::string phase = string_or(doc, "phase");
    const double planned = number_or(doc, "planned", 0.0);
    const double completed = number_or(doc, "completed", 0.0);
    const double censored = number_or(doc, "censored", 0.0);
    const double rate = number_or(doc, "trials_per_sec", 0.0);
    const double eta = number_or(doc, "eta_seconds", -1.0);
    const double ckpt_age = number_or(doc, "checkpoint_age_seconds", -1.0);
    const double elapsed = number_or(doc, "elapsed_seconds", 0.0);
    std::printf("levytop — http://%s:%d/progress\n\n", opts.host.c_str(), opts.port);
    std::printf("  %-11s %s\n", "run", label.empty() ? "(unlabeled)" : label.c_str());
    std::printf("  %-11s %s\n", "phase", phase.empty() ? "-" : phase.c_str());
    if (planned > 0.0) {
        std::printf("  %-11s %.0f / %.0f  (%.1f%%)\n", "trials", completed, planned,
                    100.0 * completed / planned);
    } else {
        std::printf("  %-11s %.0f\n", "trials", completed);
    }
    std::printf("  %-11s %.0f\n", "censored", censored);
    std::printf("  %-11s %.0f trials/s\n", "rate", rate);
    std::printf("  %-11s %s\n", "ETA", fmt_duration(eta).c_str());
    std::printf("  %-11s %s\n", "checkpoint",
                ckpt_age < 0.0 ? "-" : (fmt_duration(ckpt_age) + " ago").c_str());
    std::printf("  %-11s %s\n", "elapsed", fmt_duration(elapsed).c_str());
    std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
    const options opts = parse(argc, argv);
    std::signal(SIGPIPE, SIG_IGN);
    const bool redraw = !opts.once && !opts.raw && ::isatty(::fileno(stdout)) != 0;
    for (;;) {
        const std::optional<std::string> body =
            http_get(opts.host, opts.port, "/progress");
        if (!body.has_value()) {
            if (opts.once) {
                std::fprintf(stderr, "levytop: no response from %s:%d\n",
                             opts.host.c_str(), opts.port);
                return 1;
            }
            if (redraw) std::fputs("\x1b[H\x1b[2J", stdout);
            std::printf("levytop — waiting for http://%s:%d/progress ...\n",
                        opts.host.c_str(), opts.port);
            std::fflush(stdout);
        } else if (opts.raw) {
            std::fputs(body->c_str(), stdout);
            std::fflush(stdout);
        } else {
            render(*body, opts, redraw);
        }
        if (opts.once) return 0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opts.interval));
    }
}
