#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/levylint/index.h"

// Pass 2, step one: link the per-TU semantic indexes into a project-wide
// model — resolve call sites to candidate definitions across TUs, attribute
// lambdas to the parallel regions that will execute them, and union the
// project-wide name sets the flow rules key off (substream-derived streams,
// rng-typed members).
//
// Resolution is name-based with qualifier-suffix disambiguation: a call
// `sim::parallel_for(...)` matches any indexed function whose qualified name
// ends in `sim::parallel_for`. Calls that match nothing (std::, macros,
// function pointers) stay unresolved, and rules treat unresolved as unknown
// rather than guessing.

namespace levylint {

/// (tu, func) coordinates of one indexed function.
struct func_ref {
    int tu = -1;
    int fn = -1;
};

struct project_model {
    std::vector<tu_index> tus;

    /// Unqualified name -> every indexed function with that name.
    std::map<std::string, std::vector<func_ref>> funcs_by_name;

    /// call_targets[tu][call] — candidate definitions for each call site
    /// (empty = unresolved).
    std::vector<std::vector<std::vector<func_ref>>> call_targets;

    /// lambda_is_task[tu][lambda] — true when the lambda body runs inside a
    /// parallel region: passed (directly or via its bound name) to
    /// sim::parallel_for / thread_pool::run, or passed into a function
    /// parameter that is itself invoked inside such a lambda (the
    /// monte_carlo_collect(trial_fn) pattern), computed to a fixpoint.
    std::vector<std::vector<bool>> lambda_is_task;

    /// Per TU: callee names used in that TU which resolve — unanimously
    /// across every candidate — to a function returning an unordered
    /// container. Feeds the unordered-iteration rule (replaces the old
    /// project-wide name-matching heuristic).
    std::vector<std::set<std::string>> unordered_call_names;

    /// Project-wide union of tu_index::substream_derived.
    std::set<std::string> derived_names;
    /// Project-wide union of tu_index::rng_members.
    std::set<std::string> rng_member_names;

    [[nodiscard]] int tu_of(const std::string& path) const;
    [[nodiscard]] const func_info& func(func_ref r) const { return tus[r.tu].funcs[r.fn]; }
};

/// Link the indexes. `tus` is consumed; order defines tu ids.
[[nodiscard]] project_model link(std::vector<tu_index> tus);

}  // namespace levylint
