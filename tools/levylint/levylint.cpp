// levylint — the repo's determinism linter.
//
// A from-scratch lint pass (no third-party dependencies; reuses the repo's
// own obs/json and sim/thread_pool) enforcing the invariants that keep
// Monte-Carlo results a pure function of (seed, trial index). Analysis is
// two-pass: pass 1 lexes and semantically indexes every TU (index.h), the
// linker joins the indexes into a project-wide call graph (callgraph.h),
// and pass 2 runs the rules per file against that model. See rules.cpp for
// the rule set and `levylint --explain <rule>` for the rationale behind
// each one.
//
// Usage:
//   levylint [--root DIR] [paths...]     lint files/dirs (default roots:
//                                        src include bench tools examples)
//   levylint --format=sarif              emit SARIF 2.1.0 instead of text
//   levylint --output FILE               write the report to FILE
//   levylint --baseline FILE             ignore findings listed in FILE
//   levylint --write-baseline FILE       write current findings as baseline
//   levylint --jobs N                    lex/analyze with N pool workers
//   levylint --list-rules                one-line summary per rule
//   levylint --explain RULE              full rationale + how to fix
//   levylint --self-test DIR             run the seeded-violation corpus
//   levylint --ignore-suppressions       report even allow-annotated lines
//
// Exit status: 0 clean, 1 findings (or failed self-test), 2 usage/IO error.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/thread_pool.h"
#include "tools/levylint/callgraph.h"
#include "tools/levylint/index.h"
#include "tools/levylint/lexer.h"
#include "tools/levylint/rules.h"
#include "tools/levylint/sarif.h"

namespace fs = std::filesystem;
using namespace levylint;

namespace {

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Corpus fixtures and build trees hold deliberate violations / generated
/// code; never lint them in a tree scan.
bool skip_dir(const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "corpus" || name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

std::vector<fs::path> discover(const fs::path& root, const std::vector<std::string>& args) {
    std::vector<fs::path> files;
    auto add_tree = [&](const fs::path& top) {
        if (!fs::exists(top)) return;
        if (fs::is_regular_file(top)) {
            if (lintable(top)) files.push_back(top);
            return;
        }
        fs::recursive_directory_iterator it(top), end;
        for (; it != end; ++it) {
            if (it->is_directory() && skip_dir(it->path())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
        }
    };
    if (args.empty()) {
        for (const char* d : {"src", "include", "bench", "tools", "examples"}) {
            add_tree(root / d);
        }
    } else {
        for (const std::string& a : args) add_tree(root / a);
    }
    // Deterministic work order regardless of directory-entry order or
    // --jobs: path-sorted, duplicates (overlapping path args) removed.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());
    return files;
}

bool read_file(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string rel_to(const fs::path& root, const fs::path& p) {
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

void print_findings(std::ostream& out, const std::vector<finding>& fs_) {
    for (const finding& f : fs_) {
        out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }
}

// --- baseline --------------------------------------------------------------

/// A baseline is a line-oriented file of `path:rule` entries (one per
/// pre-existing finding; duplicates mean multiple findings of that rule in
/// that file). Lines are matched as a multiset, so a baselined file can
/// keep its N old findings but a new one still fails the scan. '#' lines
/// and blanks are ignored. Line numbers are deliberately absent: baselines
/// must survive unrelated edits above a finding.
std::map<std::string, int> read_baseline(const fs::path& p, bool& ok) {
    std::map<std::string, int> entries;
    std::ifstream in(p);
    ok = static_cast<bool>(in);
    if (!ok) return entries;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#') continue;
        const std::size_t stop = line.find_last_not_of(" \t\r");
        entries[line.substr(start, stop - start + 1)]++;
    }
    return entries;
}

/// Consume baseline entries; returns the findings that are NOT baselined.
std::vector<finding> apply_baseline(std::vector<finding> all,
                                    std::map<std::string, int> entries) {
    std::vector<finding> kept;
    kept.reserve(all.size());
    for (finding& f : all) {
        const auto it = entries.find(f.path + ":" + f.rule);
        if (it != entries.end() && it->second > 0) {
            --it->second;
            continue;
        }
        kept.push_back(std::move(f));
    }
    return kept;
}

// --- tree scan -------------------------------------------------------------

struct scan_options {
    bool ignore_suppressions = false;
    std::string format = "text";  // "text" | "sarif"
    std::string output;           // empty = stdout
    std::string baseline;         // empty = none
    std::string write_baseline;   // empty = none
    unsigned jobs = 1;
};

int lint_tree(const fs::path& root, const std::vector<std::string>& paths,
              const scan_options& opt) {
    const std::vector<fs::path> files = discover(root, paths);
    if (files.empty()) {
        std::cerr << "levylint: no lintable files under the given paths\n";
        return 2;
    }
    // Pass 1: lex + index every TU. Slot-per-file parallelism: worker i
    // writes only lexed[i]/indexed[i], so the result is independent of
    // scheduling and identical to --jobs=1.
    std::vector<lexed_file> lexed(files.size());
    std::vector<tu_index> indexed(files.size());
    std::vector<char> failed(files.size(), 0);
    const auto pass1 = [&](std::size_t i) {
        std::string src;
        if (!read_file(files[i], src)) {
            failed[i] = 1;
            return;
        }
        lexed[i] = lex(src);
        indexed[i] = build_index(rel_to(root, files[i]), lexed[i]);
    };
    levy::sim::thread_pool::instance().run(files.size(), opt.jobs, /*chunk=*/1, pass1);
    for (std::size_t i = 0; i < files.size(); ++i) {
        if (failed[i] != 0) {
            std::cerr << "levylint: cannot read " << files[i] << "\n";
            return 2;
        }
    }

    // Link into the project model (sequential: one pass over all indexes).
    const project_model model = link(std::move(indexed));

    // Pass 2: rules per file, same slot discipline.
    std::vector<std::vector<finding>> per_file(files.size());
    const auto pass2 = [&](std::size_t i) {
        per_file[i] = analyze(model, static_cast<int>(i), lexed[i], opt.ignore_suppressions);
    };
    levy::sim::thread_pool::instance().run(files.size(), opt.jobs, /*chunk=*/1, pass2);

    std::vector<finding> all;
    for (std::vector<finding>& fs_ : per_file) {
        all.insert(all.end(), std::make_move_iterator(fs_.begin()),
                   std::make_move_iterator(fs_.end()));
    }

    if (!opt.write_baseline.empty()) {
        std::ofstream out(opt.write_baseline);
        out << "# levylint baseline: one `path:rule` line per accepted pre-existing\n"
               "# finding (duplicates = multiple findings). Regenerate with\n"
               "#   levylint --write-baseline <file>\n";
        for (const finding& f : all) out << f.path << ":" << f.rule << "\n";
        if (!out) {
            std::cerr << "levylint: cannot write baseline " << opt.write_baseline << "\n";
            return 2;
        }
        std::cout << "levylint: wrote " << all.size() << " baseline entr"
                  << (all.size() == 1 ? "y" : "ies") << " to " << opt.write_baseline << "\n";
        return 0;
    }

    if (!opt.baseline.empty()) {
        bool ok = false;
        auto entries = read_baseline(opt.baseline, ok);
        if (!ok) {
            std::cerr << "levylint: cannot read baseline " << opt.baseline << "\n";
            return 2;
        }
        all = apply_baseline(std::move(all), std::move(entries));
    }

    // Report.
    std::ofstream file_out;
    if (!opt.output.empty()) {
        file_out.open(opt.output, std::ios::binary);
        if (!file_out) {
            std::cerr << "levylint: cannot open output file " << opt.output << "\n";
            return 2;
        }
    }
    std::ostream& out = opt.output.empty() ? std::cout : file_out;

    if (opt.format == "sarif") {
        out << to_sarif(all);
    } else {
        print_findings(out, all);
        if (!all.empty()) {
            std::map<std::string, int> per_rule;
            for (const finding& f : all) ++per_rule[f.rule];
            out << "\nlevylint: " << all.size() << " finding(s) in " << files.size()
                << " file(s):";
            for (const auto& [rule, n] : per_rule) out << " " << rule << "=" << n;
            out << "\nrun `levylint --explain <rule>` for the rationale and how to fix.\n";
        } else {
            out << "levylint: clean (" << files.size() << " files, " << rules().size()
                << " rules)\n";
        }
    }
    out.flush();
    if (!out) {
        std::cerr << "levylint: write failed" << (opt.output.empty() ? "" : ": " + opt.output)
                  << "\n";
        return 2;
    }
    return all.empty() ? 0 : 1;
}

// --- self-test -------------------------------------------------------------

/// Analyze one self-contained fixture file: index it, link it as a
/// single-TU project, run the rules.
struct fixture_result {
    std::vector<finding> fired;
    std::vector<finding> unsuppressed;
};

fixture_result analyze_fixture(const std::string& rel, const std::string& src) {
    const lexed_file lf = lex(src);
    std::vector<tu_index> tus;
    tus.push_back(build_index(rel, lf));
    const project_model model = link(std::move(tus));
    return {analyze(model, 0, lf), analyze(model, 0, lf, /*ignore_suppressions=*/true)};
}

/// The corpus directory holds, per rule, `<rule>.violation.{cpp,h}` (must
/// produce >= 1 finding of exactly that rule) and `<rule>.allow.{cpp,h}`
/// (same seeded violations, each carrying a levylint:allow — must produce 0
/// findings, but >= 1 when suppressions are ignored, proving the fixture
/// genuinely violates and the suppression genuinely covers it).
///
/// A `lexer/` subdirectory holds regression fixtures for the lexer itself:
/// `*.violation.*` must fire >= 1 finding of any rule (proving the lexer
/// still *sees* the seeded violation — these guard against token-stream
/// swallowing bugs like the `0xa'b` digit-separator mislex), `*.clean.*`
/// must produce none (guarding against false hits inside raw strings).
int self_test(const fs::path& corpus) {
    if (!fs::is_directory(corpus)) {
        std::cerr << "levylint: corpus directory not found: " << corpus << "\n";
        return 2;
    }
    int failures = 0;
    auto fail = [&](const std::string& what) {
        std::cout << "FAIL  " << what << "\n";
        ++failures;
    };

    auto find_fixture = [&](const std::string& rule, const char* flavor) -> fs::path {
        for (const char* ext : {".cpp", ".h", ".cc", ".hpp"}) {
            const fs::path p = corpus / (rule + "." + flavor + ext);
            if (fs::exists(p)) return p;
        }
        return {};
    };

    for (const rule_info& r : rules()) {
        const fs::path violation = find_fixture(r.id, "violation");
        const fs::path allowed = find_fixture(r.id, "allow");
        if (violation.empty()) {
            fail(r.id + ": missing violation fixture");
            continue;
        }
        if (allowed.empty()) {
            fail(r.id + ": missing allow fixture");
            continue;
        }
        for (const fs::path& p : {violation, allowed}) {
            std::string src;
            if (!read_file(p, src)) {
                fail(r.id + ": cannot read " + p.string());
                continue;
            }
            const fixture_result res =
                analyze_fixture("corpus/" + p.filename().string(), src);
            const auto count_rule = [&](const std::vector<finding>& fs_) {
                return std::count_if(fs_.begin(), fs_.end(),
                                     [&](const finding& f) { return f.rule == r.id; });
            };
            const bool is_allow_fixture = p == allowed;
            if (!is_allow_fixture) {
                if (count_rule(res.fired) == 0) {
                    fail(r.id + ": violation fixture produced no " + r.id + " finding");
                } else if (static_cast<std::size_t>(count_rule(res.fired)) != res.fired.size()) {
                    fail(r.id + ": violation fixture trips other rules too — keep fixtures "
                                "single-rule");
                    print_findings(std::cout, res.fired);
                } else {
                    std::cout << "ok    " << r.id << ": violation fires ("
                              << count_rule(res.fired) << " finding(s))\n";
                }
            } else {
                if (!res.fired.empty()) {
                    fail(r.id + ": allow fixture still produced findings");
                    print_findings(std::cout, res.fired);
                } else if (count_rule(res.unsuppressed) == 0) {
                    fail(r.id + ": allow fixture does not actually violate " + r.id +
                         " (suppression proves nothing)");
                } else {
                    std::cout << "ok    " << r.id << ": suppression covers "
                              << count_rule(res.unsuppressed) << " seeded finding(s)\n";
                }
            }
        }
    }

    // Lexer regression fixtures.
    const fs::path lexer_dir = corpus / "lexer";
    if (fs::is_directory(lexer_dir)) {
        std::vector<fs::path> lexer_fixtures;
        for (const auto& e : fs::directory_iterator(lexer_dir)) {
            if (e.is_regular_file() && lintable(e.path())) lexer_fixtures.push_back(e.path());
        }
        std::sort(lexer_fixtures.begin(), lexer_fixtures.end());
        for (const fs::path& p : lexer_fixtures) {
            const std::string name = p.filename().string();
            std::string src;
            if (!read_file(p, src)) {
                fail("lexer/" + name + ": cannot read");
                continue;
            }
            const fixture_result res = analyze_fixture("corpus/lexer/" + name, src);
            const bool expect_clean = name.find(".clean.") != std::string::npos;
            if (expect_clean) {
                if (res.fired.empty()) {
                    std::cout << "ok    lexer/" << name << ": clean as expected\n";
                } else {
                    fail("lexer/" + name + ": expected clean, got findings");
                    print_findings(std::cout, res.fired);
                }
            } else {
                if (!res.fired.empty()) {
                    std::cout << "ok    lexer/" << name << ": seeded violation visible ("
                              << res.fired.size() << " finding(s))\n";
                } else {
                    fail("lexer/" + name +
                         ": seeded violation invisible — the lexer swallowed it");
                }
            }
        }
    } else {
        fail("lexer regression fixtures missing (corpus lexer/ subdirectory)");
    }

    if (failures != 0) {
        std::cout << "levylint --self-test: " << failures << " failure(s)\n";
        return 1;
    }
    std::cout << "levylint --self-test: all " << rules().size() << " rules verified\n";
    return 0;
}

void list_rules() {
    for (const rule_info& r : rules()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
    }
}

int explain(const std::string& id) {
    for (const rule_info& r : rules()) {
        if (r.id != id) continue;
        std::cout << r.id << " — " << r.summary << "\n\n" << r.explanation;
        std::cout << "\nSuppress a justified line with  // levylint:allow(" << r.id << ")\n";
        return 0;
    }
    std::cerr << "levylint: unknown rule '" << id << "' (try --list-rules)\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = fs::current_path();
    std::vector<std::string> paths;
    scan_options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "levylint: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "--list-rules") {
            list_rules();
            return 0;
        } else if (arg == "--explain") {
            return explain(next());
        } else if (arg == "--self-test") {
            return self_test(next());
        } else if (arg == "--ignore-suppressions") {
            opt.ignore_suppressions = true;
        } else if (arg.rfind("--format=", 0) == 0) {
            opt.format = arg.substr(9);
            if (opt.format != "text" && opt.format != "sarif") {
                std::cerr << "levylint: unknown format '" << opt.format
                          << "' (text or sarif)\n";
                return 2;
            }
        } else if (arg == "--format") {
            opt.format = next();
            if (opt.format != "text" && opt.format != "sarif") {
                std::cerr << "levylint: unknown format '" << opt.format
                          << "' (text or sarif)\n";
                return 2;
            }
        } else if (arg == "--output") {
            opt.output = next();
        } else if (arg == "--baseline") {
            opt.baseline = next();
        } else if (arg == "--write-baseline") {
            opt.write_baseline = next();
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::max(1, std::atoi(next())));
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(std::max(1, std::atoi(arg.c_str() + 7)));
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: levylint [--root DIR] [--ignore-suppressions] [--format text|sarif]\n"
                   "                [--output FILE] [--baseline FILE | --write-baseline FILE]\n"
                   "                [--jobs N] [paths...]\n"
                   "       levylint --list-rules | --explain RULE | --self-test DIR\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "levylint: unknown option " << arg << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    return lint_tree(root, paths, opt);
}
