// levylint — the repo's determinism linter.
//
// A from-scratch, stdlib-only lint pass enforcing the invariants that keep
// Monte-Carlo results a pure function of (seed, trial index). See rules.cpp
// for the rule set and `levylint --explain <rule>` for the rationale behind
// each one.
//
// Usage:
//   levylint [--root DIR] [paths...]     lint files/dirs (default roots:
//                                        src include bench tools examples)
//   levylint --list-rules                one-line summary per rule
//   levylint --explain RULE              full rationale + how to fix
//   levylint --self-test DIR             run the seeded-violation corpus
//   levylint --ignore-suppressions       report even allow-annotated lines
//
// Exit status: 0 clean, 1 findings (or failed self-test), 2 usage/IO error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "tools/levylint/lexer.h"
#include "tools/levylint/rules.h"

namespace fs = std::filesystem;
using namespace levylint;

namespace {

bool lintable(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc";
}

/// Corpus fixtures and build trees hold deliberate violations / generated
/// code; never lint them in a tree scan.
bool skip_dir(const fs::path& p) {
    const std::string name = p.filename().string();
    return name == "corpus" || name.rfind("build", 0) == 0 || (!name.empty() && name[0] == '.');
}

std::vector<fs::path> discover(const fs::path& root, const std::vector<std::string>& args) {
    std::vector<fs::path> files;
    auto add_tree = [&](const fs::path& top) {
        if (!fs::exists(top)) return;
        if (fs::is_regular_file(top)) {
            if (lintable(top)) files.push_back(top);
            return;
        }
        fs::recursive_directory_iterator it(top), end;
        for (; it != end; ++it) {
            if (it->is_directory() && skip_dir(it->path())) {
                it.disable_recursion_pending();
                continue;
            }
            if (it->is_regular_file() && lintable(it->path())) files.push_back(it->path());
        }
    };
    if (args.empty()) {
        for (const char* d : {"src", "include", "bench", "tools", "examples"}) {
            add_tree(root / d);
        }
    } else {
        for (const std::string& a : args) add_tree(root / a);
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool read_file(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

std::string rel_to(const fs::path& root, const fs::path& p) {
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    return (ec ? p : rel).generic_string();
}

void print_findings(const std::vector<finding>& fs_) {
    for (const finding& f : fs_) {
        std::cout << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    }
}

int lint_tree(const fs::path& root, const std::vector<std::string>& paths,
              bool ignore_suppressions) {
    const std::vector<fs::path> files = discover(root, paths);
    if (files.empty()) {
        std::cerr << "levylint: no lintable files under the given paths\n";
        return 2;
    }
    // Pass 1: lex everything, collect cross-file symbols (functions that
    // return unordered containers).
    std::vector<std::pair<std::string, lexed_file>> lexed;
    lexed.reserve(files.size());
    project_symbols proj;
    for (const fs::path& f : files) {
        std::string src;
        if (!read_file(f, src)) {
            std::cerr << "levylint: cannot read " << f << "\n";
            return 2;
        }
        lexed.emplace_back(rel_to(root, f), lex(src));
        collect_symbols(lexed.back().second, proj);
    }
    // Pass 2: rules.
    std::vector<finding> all;
    for (const auto& [path, lf] : lexed) {
        std::vector<finding> fs_ = analyze(path, lf, proj, ignore_suppressions);
        all.insert(all.end(), std::make_move_iterator(fs_.begin()),
                   std::make_move_iterator(fs_.end()));
    }
    print_findings(all);
    if (!all.empty()) {
        std::map<std::string, int> per_rule;
        for (const finding& f : all) ++per_rule[f.rule];
        std::cout << "\nlevylint: " << all.size() << " finding(s) in " << files.size()
                  << " file(s):";
        for (const auto& [rule, n] : per_rule) std::cout << " " << rule << "=" << n;
        std::cout << "\nrun `levylint --explain <rule>` for the rationale and how to fix.\n";
        return 1;
    }
    std::cout << "levylint: clean (" << files.size() << " files, " << rules().size()
              << " rules)\n";
    return 0;
}

// --- self-test -------------------------------------------------------------

/// The corpus directory holds, per rule, `<rule>.violation.{cpp,h}` (must
/// produce >= 1 finding of exactly that rule) and `<rule>.allow.{cpp,h}`
/// (same seeded violations, each carrying a levylint:allow — must produce 0
/// findings, but >= 1 when suppressions are ignored, proving the fixture
/// genuinely violates and the suppression genuinely covers it).
int self_test(const fs::path& corpus) {
    if (!fs::is_directory(corpus)) {
        std::cerr << "levylint: corpus directory not found: " << corpus << "\n";
        return 2;
    }
    int failures = 0;
    auto fail = [&](const std::string& what) {
        std::cout << "FAIL  " << what << "\n";
        ++failures;
    };

    auto find_fixture = [&](const std::string& rule, const char* flavor) -> fs::path {
        for (const char* ext : {".cpp", ".h", ".cc", ".hpp"}) {
            const fs::path p = corpus / (rule + "." + flavor + ext);
            if (fs::exists(p)) return p;
        }
        return {};
    };

    for (const rule_info& r : rules()) {
        const fs::path violation = find_fixture(r.id, "violation");
        const fs::path allowed = find_fixture(r.id, "allow");
        if (violation.empty()) {
            fail(r.id + ": missing violation fixture");
            continue;
        }
        if (allowed.empty()) {
            fail(r.id + ": missing allow fixture");
            continue;
        }
        project_symbols proj;  // corpus files are self-contained
        for (const fs::path& p : {violation, allowed}) {
            std::string src;
            if (!read_file(p, src)) {
                fail(r.id + ": cannot read " + p.string());
                continue;
            }
            const lexed_file lf = lex(src);
            project_symbols local = proj;
            collect_symbols(lf, local);
            const std::string rel = "corpus/" + p.filename().string();
            const auto fired = analyze(rel, lf, local);
            const auto unsuppressed = analyze(rel, lf, local, /*ignore_suppressions=*/true);
            const auto count_rule = [&](const std::vector<finding>& fs_) {
                return std::count_if(fs_.begin(), fs_.end(),
                                     [&](const finding& f) { return f.rule == r.id; });
            };
            const bool is_allow_fixture = p == allowed;
            if (!is_allow_fixture) {
                if (count_rule(fired) == 0) {
                    fail(r.id + ": violation fixture produced no " + r.id + " finding");
                } else if (static_cast<std::size_t>(count_rule(fired)) != fired.size()) {
                    fail(r.id + ": violation fixture trips other rules too — keep fixtures "
                                "single-rule");
                    print_findings(fired);
                } else {
                    std::cout << "ok    " << r.id << ": violation fires (" << count_rule(fired)
                              << " finding(s))\n";
                }
            } else {
                if (!fired.empty()) {
                    fail(r.id + ": allow fixture still produced findings");
                    print_findings(fired);
                } else if (count_rule(unsuppressed) == 0) {
                    fail(r.id + ": allow fixture does not actually violate " + r.id +
                         " (suppression proves nothing)");
                } else {
                    std::cout << "ok    " << r.id << ": suppression covers "
                              << count_rule(unsuppressed) << " seeded finding(s)\n";
                }
            }
        }
    }
    if (failures != 0) {
        std::cout << "levylint --self-test: " << failures << " failure(s)\n";
        return 1;
    }
    std::cout << "levylint --self-test: all " << rules().size() << " rules verified\n";
    return 0;
}

void list_rules() {
    for (const rule_info& r : rules()) {
        std::cout << r.id << "\n    " << r.summary << "\n";
    }
}

int explain(const std::string& id) {
    for (const rule_info& r : rules()) {
        if (r.id != id) continue;
        std::cout << r.id << " — " << r.summary << "\n\n" << r.explanation;
        std::cout << "\nSuppress a justified line with  // levylint:allow(" << r.id << ")\n";
        return 0;
    }
    std::cerr << "levylint: unknown rule '" << id << "' (try --list-rules)\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    fs::path root = fs::current_path();
    std::vector<std::string> paths;
    bool ignore_suppressions = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::cerr << "levylint: " << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--root") {
            root = next();
        } else if (arg == "--list-rules") {
            list_rules();
            return 0;
        } else if (arg == "--explain") {
            return explain(next());
        } else if (arg == "--self-test") {
            return self_test(next());
        } else if (arg == "--ignore-suppressions") {
            ignore_suppressions = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: levylint [--root DIR] [--ignore-suppressions] [paths...]\n"
                         "       levylint --list-rules | --explain RULE | --self-test DIR\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "levylint: unknown option " << arg << "\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    return lint_tree(root, paths, ignore_suppressions);
}
