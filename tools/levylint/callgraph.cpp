#include "tools/levylint/callgraph.h"

#include <algorithm>

namespace levylint {
namespace {

/// Does `qname` end with the written qualification + name, on a `::`
/// boundary? ("levy::sim::parallel_for" matches quals {sim}, name
/// parallel_for; it does not match quals {im}.)
bool qual_suffix_match(const std::string& qname, const std::vector<std::string>& quals,
                       const std::string& name) {
    std::string suffix;
    for (const std::string& q : quals) {
        suffix += q;
        suffix += "::";
    }
    suffix += name;
    if (qname == suffix) return true;
    if (qname.size() <= suffix.size() + 2) return false;
    return qname.compare(qname.size() - suffix.size(), suffix.size(), suffix) == 0 &&
           qname.compare(qname.size() - suffix.size() - 2, 2, "::") == 0;
}

class linker {
public:
    explicit linker(std::vector<tu_index> tus) { m_.tus = std::move(tus); }

    project_model run() {
        index_functions();
        resolve_calls();
        mark_task_lambdas();
        collect_unordered_names();
        return std::move(m_);
    }

private:
    void index_functions() {
        for (std::size_t t = 0; t < m_.tus.size(); ++t) {
            const tu_index& tu = m_.tus[t];
            for (std::size_t f = 0; f < tu.funcs.size(); ++f) {
                m_.funcs_by_name[tu.funcs[f].name].push_back(
                    {static_cast<int>(t), static_cast<int>(f)});
            }
            m_.derived_names.insert(tu.substream_derived.begin(), tu.substream_derived.end());
            m_.rng_member_names.insert(tu.rng_members.begin(), tu.rng_members.end());
        }
    }

    void resolve_calls() {
        m_.call_targets.resize(m_.tus.size());
        for (std::size_t t = 0; t < m_.tus.size(); ++t) {
            const tu_index& tu = m_.tus[t];
            m_.call_targets[t].resize(tu.calls.size());
            for (std::size_t c = 0; c < tu.calls.size(); ++c) {
                const call_info& call = tu.calls[c];
                const auto it = m_.funcs_by_name.find(call.callee);
                if (it == m_.funcs_by_name.end()) continue;
                // `std::foo(...)` is the standard library's foo, never ours.
                if (!call.quals.empty() && call.quals.front() == "std") continue;
                std::vector<func_ref>& out = m_.call_targets[t][c];
                for (const func_ref& r : it->second) {
                    if (call.quals.empty() ||
                        qual_suffix_match(m_.func(r).qname, call.quals, call.callee)) {
                        out.push_back(r);
                    }
                }
            }
        }
    }

    /// Is some lambda of `tu` introduced inside [begin, end)? Returns its
    /// index or -1.
    int lambda_in_range(int tu, std::size_t begin, std::size_t end) const {
        const auto& lambdas = m_.tus[tu].lambdas;
        for (std::size_t l = 0; l < lambdas.size(); ++l) {
            if (lambdas[l].intro >= begin && lambdas[l].intro < end) {
                return static_cast<int>(l);
            }
        }
        return -1;
    }

    /// The lambda a bare-identifier argument refers to via its bound name
    /// (`auto run_one = [...]; parallel_for(n, t, run_one, chunk)`), scoped
    /// to the same enclosing function. Returns -1 when there is none.
    int lambda_by_bound_name(int tu, const std::string& name, int enclosing_func) const {
        const auto& lambdas = m_.tus[tu].lambdas;
        for (std::size_t l = 0; l < lambdas.size(); ++l) {
            if (!lambdas[l].bound_name.empty() && lambdas[l].bound_name == name &&
                lambdas[l].enclosing_func == enclosing_func) {
                return static_cast<int>(l);
            }
        }
        return -1;
    }

    void mark_task_lambdas() {
        m_.lambda_is_task.resize(m_.tus.size());
        for (std::size_t t = 0; t < m_.tus.size(); ++t) {
            m_.lambda_is_task[t].assign(m_.tus[t].lambdas.size(), false);
        }
        // parallel_invoked[tu][fn][param]: the parameter is called inside a
        // task lambda of that function (so lambdas passed as that argument
        // run in parallel too).
        std::vector<std::vector<std::vector<bool>>> parallel_invoked(m_.tus.size());
        for (std::size_t t = 0; t < m_.tus.size(); ++t) {
            parallel_invoked[t].resize(m_.tus[t].funcs.size());
            for (std::size_t f = 0; f < m_.tus[t].funcs.size(); ++f) {
                parallel_invoked[t][f].assign(m_.tus[t].funcs[f].params.size(), false);
            }
        }

        bool changed = true;
        int rounds = 0;
        while (changed && ++rounds <= 8) {
            changed = false;
            for (std::size_t t = 0; t < m_.tus.size(); ++t) {
                const tu_index& tu = m_.tus[t];
                for (std::size_t c = 0; c < tu.calls.size(); ++c) {
                    const call_info& call = tu.calls[c];
                    // Which argument positions hand work to a parallel
                    // region at this call site?
                    std::vector<std::size_t> task_args;
                    const bool direct = call.callee == "parallel_for" ||
                                        (call.is_member && call.callee == "run");
                    if (direct) {
                        for (std::size_t a = 0; a < call.args.size(); ++a) task_args.push_back(a);
                    } else {
                        for (const func_ref& r : m_.call_targets[t][c]) {
                            const auto& inv = parallel_invoked[r.tu][r.fn];
                            for (std::size_t a = 0;
                                 a < call.args.size() && a < inv.size(); ++a) {
                                if (inv[a]) task_args.push_back(a);
                            }
                        }
                    }
                    for (const std::size_t a : task_args) {
                        const auto [ab, ae] = call.args[a];
                        const int inline_l = lambda_in_range(static_cast<int>(t), ab, ae);
                        if (inline_l >= 0 && !m_.lambda_is_task[t][inline_l]) {
                            m_.lambda_is_task[t][inline_l] = true;
                            changed = true;
                        }
                        const std::string& name = call.arg_names[a];
                        if (!name.empty()) {
                            const int bound_l = lambda_by_bound_name(
                                static_cast<int>(t), name, call.enclosing_func);
                            if (bound_l >= 0 && !m_.lambda_is_task[t][bound_l]) {
                                m_.lambda_is_task[t][bound_l] = true;
                                changed = true;
                            }
                            // A parameter forwarded into a parallel position
                            // is parallel-invoked in the enclosing function.
                            if (mark_param_invoked(static_cast<int>(t), call.enclosing_func,
                                                   name, parallel_invoked)) {
                                changed = true;
                            }
                        }
                    }
                    // A parameter *called* inside a task lambda is
                    // parallel-invoked.
                    if (call.enclosing_lambda >= 0 && call.enclosing_func >= 0 &&
                        m_.lambda_is_task[t][call.enclosing_lambda] && call.quals.empty() &&
                        !call.is_member) {
                        if (mark_param_invoked(static_cast<int>(t), call.enclosing_func,
                                               call.callee, parallel_invoked)) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    bool mark_param_invoked(int t, int fn, const std::string& name,
                            std::vector<std::vector<std::vector<bool>>>& parallel_invoked) {
        if (fn < 0) return false;
        const func_info& f = m_.tus[t].funcs[fn];
        for (std::size_t p = 0; p < f.params.size(); ++p) {
            if (f.params[p].name == name && !parallel_invoked[t][fn][p]) {
                parallel_invoked[t][fn][p] = true;
                return true;
            }
        }
        return false;
    }

    void collect_unordered_names() {
        m_.unordered_call_names.resize(m_.tus.size());
        for (std::size_t t = 0; t < m_.tus.size(); ++t) {
            const tu_index& tu = m_.tus[t];
            for (std::size_t c = 0; c < tu.calls.size(); ++c) {
                const auto& cands = m_.call_targets[t][c];
                if (cands.empty()) continue;
                const bool all_unordered =
                    std::all_of(cands.begin(), cands.end(),
                                [&](const func_ref& r) { return m_.func(r).returns_unordered; });
                if (all_unordered) m_.unordered_call_names[t].insert(tu.calls[c].callee);
            }
        }
    }

    project_model m_;
};

}  // namespace

int project_model::tu_of(const std::string& path) const {
    for (std::size_t t = 0; t < tus.size(); ++t) {
        if (tus[t].path == path) return static_cast<int>(t);
    }
    return -1;
}

project_model link(std::vector<tu_index> tus) { return linker(std::move(tus)).run(); }

}  // namespace levylint
