#pragma once

#include <string>
#include <vector>

#include "tools/levylint/rules.h"

namespace levylint {

/// Serialize findings as a SARIF 2.1.0 log (one run, driver "levylint"),
/// via the deterministic levy::obs::json writer: same findings, same bytes.
/// `findings` must already be in final reporting order. Paths are emitted
/// as repo-root-relative artifact URIs, which is what
/// github/codeql-action/upload-sarif expects from a checkout-rooted scan.
[[nodiscard]] std::string to_sarif(const std::vector<finding>& findings);

}  // namespace levylint
