#include "tools/levylint/index.h"

#include <algorithm>
#include <cstddef>

namespace levylint {
namespace {

using tokens_t = std::vector<token>;

bool is_ident(const token& t, const char* text) {
    return t.kind == tok::identifier && t.text == text;
}

bool is_punct(const token& t, const char* text) {
    return t.kind == tok::punct && t.text == text;
}

/// Identifiers that can precede a '(' without being a function name or call.
bool is_control_keyword(const std::string& s) {
    static const char* kWords[] = {
        "if",     "else",    "for",      "while",   "do",       "switch",        "return",
        "sizeof", "alignof", "decltype", "new",     "delete",   "throw",         "catch",
        "case",   "default", "noexcept", "alignas", "requires", "static_assert", "co_await",
        "co_yield",
    };
    return std::any_of(std::begin(kWords), std::end(kWords),
                       [&](const char* w) { return s == w; });
}

/// Specifiers that may lead a declaration before the return type proper.
bool is_decl_specifier(const std::string& s) {
    static const char* kWords[] = {"static",   "inline", "constexpr", "consteval", "constinit",
                                   "virtual",  "explicit", "friend",  "extern",    "typename",
                                   "mutable",  "thread_local"};
    return std::any_of(std::begin(kWords), std::end(kWords),
                       [&](const char* w) { return s == w; });
}

bool is_builtin_type(const std::string& s) {
    static const char* kWords[] = {"void", "bool",  "char",  "int",      "double", "float",
                                   "long", "short", "signed", "unsigned", "auto",   "wchar_t"};
    return std::any_of(std::begin(kWords), std::end(kWords),
                       [&](const char* w) { return s == w; });
}

char closer_for(char open) {
    switch (open) {
        case '(': return ')';
        case '{': return '}';
        case '[': return ']';
        default: return '\0';
    }
}

/// Index just past a balanced <...> starting at `open`; `open` when the scan
/// bails (comparison operator, statement boundary, runaway).
std::size_t skip_angles(const tokens_t& ts, std::size_t open, std::size_t limit = 160) {
    int depth = 0;
    for (std::size_t i = open; i < ts.size() && i < open + limit; ++i) {
        const token& t = ts[i];
        if (t.kind != tok::punct) continue;
        if (t.text == "<") ++depth;
        if (t.text == ">" && --depth == 0) return i + 1;
        if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) return i + 1;
        }
        if (t.text == ";" || t.text == "{") break;
    }
    return open;
}

/// Does the token range [begin, end) contain identifier `rng` as the *main*
/// type (after stripping cv-qualifiers and the levy:: namespace), rather
/// than buried in a template argument (std::function<double(rng&)>)?
bool leading_type_is_rng(const tokens_t& ts, std::size_t begin, std::size_t end) {
    std::size_t i = begin;
    while (i < end) {
        const token& t = ts[i];
        if (is_ident(t, "const") || is_ident(t, "volatile") || is_decl_specifier(t.text) ||
            is_ident(t, "levy") || is_punct(t, "::")) {
            ++i;
            continue;
        }
        return is_ident(t, "rng");
    }
    return false;
}

bool range_has_ident(const tokens_t& ts, std::size_t begin, std::size_t end, const char* name) {
    for (std::size_t i = begin; i < end && i < ts.size(); ++i) {
        if (is_ident(ts[i], name)) return true;
    }
    return false;
}

const char* kUnorderedNames[] = {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"};

// ---------------------------------------------------------------------------

class indexer {
public:
    indexer(const std::string& rel_path, const lexed_file& lf) : ts_(lf.tokens) {
        out_.path = rel_path;
    }

    tu_index run() {
        scan_decl_scope(0, ts_.size(), /*in_class=*/false);
        for (std::size_t f = 0; f < out_.funcs.size(); ++f) {
            const func_info& fn = out_.funcs[f];
            if (fn.is_definition) {
                scan_body(static_cast<int>(f), -1, fn.body_begin + 1, fn.body_end - 1);
                collect_derivations(fn.body_begin + 1, fn.body_end - 1);
            }
        }
        return std::move(out_);
    }

private:
    // --- declaration scope (file / namespace / class bodies) ---------------

    void scan_decl_scope(std::size_t begin, std::size_t end, bool in_class) {
        std::size_t i = begin;
        std::size_t stmt = begin;  // start of the current statement
        while (i < end) {
            const token& t = ts_[i];
            if (is_ident(t, "template") && i + 1 < end && is_punct(ts_[i + 1], "<")) {
                const std::size_t past = skip_angles(ts_, i + 1);
                i = past == i + 1 ? i + 2 : past;
                continue;
            }
            if (is_ident(t, "namespace")) {
                i = stmt = enter_namespace(i, end);
                continue;
            }
            if (is_ident(t, "struct") || is_ident(t, "class") || is_ident(t, "union")) {
                i = stmt = enter_class(i, end);
                continue;
            }
            if (is_ident(t, "enum")) {
                i = stmt = skip_to_statement_end(i, end);
                continue;
            }
            if (is_ident(t, "using") || is_ident(t, "typedef")) {
                i = stmt = skip_past(i, end, ";");
                continue;
            }
            if (t.kind == tok::identifier && !is_control_keyword(t.text) &&
                !is_decl_specifier(t.text)) {
                const std::size_t past = try_function(i, end);
                if (past != i) {
                    i = stmt = past;
                    continue;
                }
            }
            if (is_punct(t, ";")) {
                // End of a statement that was not a function: at class scope
                // this is a candidate data-member declaration.
                if (in_class) member_statement(stmt, i);
                stmt = i + 1;
                ++i;
                continue;
            }
            if (is_punct(t, "{")) {
                const std::size_t past = match_group(ts_, i);
                i = past == i ? i + 1 : past;  // initializer braces: opaque
                continue;
            }
            if (is_punct(t, "}")) return;  // enclosing scope closes
            ++i;
        }
    }

    std::size_t enter_namespace(std::size_t i, std::size_t end) {
        std::size_t j = i + 1;
        std::vector<std::string> parts;
        while (j < end && ts_[j].kind == tok::identifier) {
            parts.push_back(ts_[j].text);
            ++j;
            if (j < end && is_punct(ts_[j], "::")) ++j;
            else break;
        }
        if (j >= end || !is_punct(ts_[j], "{")) return skip_to_statement_end(i, end);
        const std::size_t past = match_group(ts_, j);
        if (past == j) return j + 1;
        for (const std::string& p : parts) scope_.push_back(p);
        scan_decl_scope(j + 1, past - 1, /*in_class=*/false);
        scope_.resize(scope_.size() - parts.size());
        return past;
    }

    std::size_t enter_class(std::size_t i, std::size_t end) {
        // struct NAME [final] [: bases] { ... } — or a forward declaration /
        // elaborated type (struct NAME x;), which has no body to enter.
        std::size_t j = i + 1;
        std::string name;
        while (j < end && (ts_[j].kind == tok::identifier || is_punct(ts_[j], "::"))) {
            if (ts_[j].kind == tok::identifier && !is_ident(ts_[j], "final") &&
                !is_ident(ts_[j], "alignas")) {
                name = ts_[j].text;
            }
            ++j;
        }
        std::size_t open = 0;
        for (std::size_t k = j; k < end; ++k) {
            if (is_punct(ts_[k], "{")) {
                open = k;
                break;
            }
            if (is_punct(ts_[k], ";")) return k + 1;  // forward declaration
        }
        if (open == 0) return j;
        const std::size_t past = match_group(ts_, open);
        if (past == open) return open + 1;
        scope_.push_back(name);
        scan_decl_scope(open + 1, past - 1, /*in_class=*/true);
        scope_.pop_back();
        return past;
    }

    /// A class-scope statement with no parameter list: if the declared type
    /// mentions `rng` (rng s_; std::vector<rng> main_;), record the member
    /// name — the last identifier before the terminator or its initializer.
    void member_statement(std::size_t begin, std::size_t semi) {
        if (!range_has_ident(ts_, begin, semi, "rng")) return;
        std::size_t stop = semi;
        for (std::size_t k = begin; k < semi; ++k) {
            if (is_punct(ts_[k], "=") || is_punct(ts_[k], "{")) {
                stop = k;
                break;
            }
        }
        for (std::size_t k = stop; k > begin; --k) {
            if (ts_[k - 1].kind == tok::identifier && !is_ident(ts_[k - 1], "rng") &&
                !is_ident(ts_[k - 1], "const")) {
                out_.rng_members.insert(ts_[k - 1].text);
                return;
            }
        }
    }

    std::size_t skip_past(std::size_t i, std::size_t end, const char* punct) {
        for (std::size_t j = i; j < end; ++j) {
            if (is_punct(ts_[j], punct)) return j + 1;
        }
        return end;
    }

    /// Advance past one declaration-scope statement: to just past the ';',
    /// or past a '{...}' group once one opens (enum/namespace alias bodies).
    std::size_t skip_to_statement_end(std::size_t i, std::size_t end) {
        for (std::size_t j = i; j < end; ++j) {
            if (is_punct(ts_[j], ";")) return j + 1;
            if (is_punct(ts_[j], "{")) return match_group(ts_, j);
        }
        return end;
    }

    // --- function declarations / definitions -------------------------------

    /// Try to parse a function declaration or definition whose declarator
    /// starts somewhere at/after `i` (the first non-specifier identifier of
    /// the statement). Returns the index just past the declaration (past ';'
    /// or past the body '}'), or `i` when this is not a function.
    std::size_t try_function(std::size_t i, std::size_t end) {
        // Walk forward to the '(' that opens a parameter list: NAME '(' where
        // NAME is the last identifier of a possibly qualified chain. Give up
        // at statement boundaries or anything declarator-unlike.
        std::size_t j = i;
        std::size_t name_tok = 0;
        bool saw_operator = false;
        while (j < end) {
            const token& t = ts_[j];
            if (is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") || is_punct(t, "=") ||
                is_punct(t, ":")) {
                return i;  // variable declaration / access specifier / other
            }
            if (is_ident(t, "operator")) {
                saw_operator = true;
                ++j;
                continue;
            }
            if (is_punct(t, "<")) {
                const std::size_t past = skip_angles(ts_, j);
                if (past == j) return i;  // comparison: an expression, not a decl
                j = past;
                continue;
            }
            if (is_punct(t, "(")) {
                if (saw_operator) {
                    // operator()(params): the first '(' is part of the name.
                    if (j + 1 < end && is_punct(ts_[j + 1], ")") && j + 2 < end &&
                        is_punct(ts_[j + 2], "(")) {
                        name_tok = j;  // best-effort anchor; name recorded below
                        j += 2;
                    }
                    break;
                }
                if (j == i || ts_[j - 1].kind != tok::identifier) return i;
                name_tok = j - 1;
                break;
            }
            ++j;
        }
        if (j >= end || !is_punct(ts_[j], "(")) return i;
        const std::size_t lparen = j;
        const std::size_t rparen_past = match_group(ts_, lparen);
        if (rparen_past == lparen) return i;

        func_info fn;
        if (saw_operator) {
            fn.name = "operator";
        } else {
            fn.name = ts_[name_tok].text;
            if (is_control_keyword(fn.name) || is_builtin_type(fn.name)) return i;
        }
        fn.line = ts_[lparen].line;

        // Scope-qualified name: enclosing scopes + any A::B:: chain written
        // at the declarator (out-of-class definitions).
        std::vector<std::string> quals = scope_;
        if (!saw_operator) {
            std::size_t q = name_tok;
            std::vector<std::string> local;
            while (q >= 2 && is_punct(ts_[q - 1], "::") && ts_[q - 2].kind == tok::identifier) {
                local.push_back(ts_[q - 2].text);
                q -= 2;
            }
            std::reverse(local.begin(), local.end());
            quals.insert(quals.end(), local.begin(), local.end());
            // Return type: the statement tokens before the qualified name.
            fn.ret.reserve(q > i ? q - i : 0);
            for (std::size_t k = i; k < q; ++k) fn.ret.push_back(ts_[k].text);
        }
        std::string qn;
        for (const std::string& s : quals) {
            qn += s;
            qn += "::";
        }
        qn += fn.name;
        fn.qname = std::move(qn);
        fn.returns_unordered = range_has_unordered_text(fn.ret);
        fn.returns_rng = ret_is_rng(fn.ret);

        parse_params(lparen + 1, rparen_past - 1, fn.params);

        // After the parameter list: cv/ref/noexcept/trailing-return/ctor-init
        // until the body '{', a pure-declaration ';', or '=' (default/delete,
        // or — before any of those — a variable initializer, meaning this was
        // `type name(args)` direct-init, not a function).
        std::size_t k = rparen_past;
        bool trailing_ret = false;
        std::vector<std::string> trail;
        while (k < end) {
            const token& t = ts_[k];
            if (is_punct(t, ";")) {
                if (trailing_ret) {
                    fn.ret = trail;
                    fn.returns_unordered = range_has_unordered_text(fn.ret);
                    fn.returns_rng = ret_is_rng(fn.ret);
                }
                finish_decl(fn);
                return k + 1;
            }
            if (is_punct(t, "{")) {
                if (trailing_ret) {
                    fn.ret = trail;
                    fn.returns_unordered = range_has_unordered_text(fn.ret);
                    fn.returns_rng = ret_is_rng(fn.ret);
                }
                const std::size_t past = match_group(ts_, k);
                if (past == k) return i;
                fn.is_definition = true;
                fn.body_begin = k;
                fn.body_end = past;
                finish_decl(fn);
                return past;
            }
            if (is_punct(t, "=")) {
                // = default / = delete / = 0 declarations end at ';'.
                if (k + 1 < end && (is_ident(ts_[k + 1], "default") ||
                                    is_ident(ts_[k + 1], "delete") ||
                                    (ts_[k + 1].kind == tok::number && ts_[k + 1].text == "0"))) {
                    finish_decl(fn);
                    return skip_past(k, end, ";");
                }
                return i;  // direct-init variable, not a function
            }
            if (is_punct(t, ":")) {
                // Constructor init list: member(...)/member{...} groups, then
                // the body.
                std::size_t m = k + 1;
                while (m < end) {
                    while (m < end && (ts_[m].kind == tok::identifier || is_punct(ts_[m], "::") ||
                                       is_punct(ts_[m], "<") || is_punct(ts_[m], ">") ||
                                       is_punct(ts_[m], ","))) {
                        ++m;
                    }
                    if (m < end && is_punct(ts_[m], "(")) {
                        const std::size_t past = match_group(ts_, m);
                        if (past == m) return i;
                        m = past;
                        continue;
                    }
                    if (m < end && is_punct(ts_[m], "{")) {
                        // Brace-init of a member — or the ctor body. In an
                        // init list a '{' can only follow a member name
                        // (`name{...}`, incl. `base<T>{...}`); a '{' after a
                        // closed init group ')' / '}' is the ctor body.
                        // Deciding by the *following* token instead is wrong:
                        // an empty body `{}` followed by the next function's
                        // return type looks like `identifier` and would make
                        // the scanner swallow every later definition.
                        const bool member_init =
                            m > 0 && (ts_[m - 1].kind == tok::identifier ||
                                      is_punct(ts_[m - 1], ">"));
                        const std::size_t past = match_group(ts_, m);
                        if (past == m) return i;
                        if (member_init) {
                            m = past;
                            continue;
                        }
                        fn.is_definition = true;
                        fn.body_begin = m;
                        fn.body_end = past;
                        finish_decl(fn);
                        return past;
                    }
                    break;
                }
                return i;
            }
            if (is_punct(t, "->")) {
                trailing_ret = true;
                ++k;
                continue;
            }
            if (trailing_ret) {
                trail.push_back(t.text);
                ++k;
                continue;
            }
            if (t.kind == tok::identifier || is_punct(t, "&") || is_punct(t, "&&")) {
                ++k;  // const / noexcept / override / final / ref-qualifier
                continue;
            }
            if (is_punct(t, "(")) {  // noexcept(...)
                const std::size_t past = match_group(ts_, k);
                if (past == k) return i;
                k = past;
                continue;
            }
            if (is_punct(t, "[")) {  // attribute
                const std::size_t past = match_group(ts_, k);
                if (past == k) return i;
                k = past;
                continue;
            }
            return i;
        }
        return i;
    }

    void finish_decl(func_info& fn) { out_.funcs.push_back(std::move(fn)); }

    bool range_has_unordered_text(const std::vector<std::string>& toks) const {
        for (const std::string& s : toks) {
            for (const char* n : kUnorderedNames) {
                if (s == n) return true;
            }
        }
        return false;
    }

    bool ret_is_rng(const std::vector<std::string>& toks) const {
        std::size_t i = 0;
        while (i < toks.size() &&
               (toks[i] == "const" || toks[i] == "levy" || toks[i] == "::" ||
                is_decl_specifier(toks[i]))) {
            ++i;
        }
        return i < toks.size() && toks[i] == "rng";
    }

    void parse_params(std::size_t begin, std::size_t end, std::vector<param_info>& out) {
        if (begin >= end) return;
        std::size_t start = begin;
        auto emit = [&](std::size_t from, std::size_t to) {
            if (from >= to) return;
            if (to == from + 1 && is_ident(ts_[from], "void")) return;
            param_info p;
            std::size_t stop = to;  // exclude default arguments
            for (std::size_t k = from; k < to; ++k) {
                if (is_punct(ts_[k], "=")) {
                    stop = k;
                    break;
                }
            }
            bool ref_or_ptr = false;
            for (std::size_t k = from; k < stop; ++k) {
                p.type.push_back(ts_[k].text);
                if (is_punct(ts_[k], "&") || is_punct(ts_[k], "&&") || is_punct(ts_[k], "*")) {
                    ref_or_ptr = true;
                }
                if (ts_[k].kind == tok::identifier) p.name = ts_[k].text;
            }
            p.by_value = !ref_or_ptr;
            p.by_const_ref =
                !p.by_value && range_has_ident(ts_, from, stop, "const");
            p.is_rng = leading_type_is_rng(ts_, from, stop);
            out.push_back(std::move(p));
        };
        for (std::size_t k = begin; k < end; ++k) {
            const token& t = ts_[k];
            if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) {
                const std::size_t past = match_group(ts_, k);
                if (past != k) {
                    k = past - 1;
                    continue;
                }
            }
            if (is_punct(t, "<")) {
                const std::size_t past = skip_angles(ts_, k);
                if (past != k) {
                    k = past - 1;
                    continue;
                }
            }
            if (is_punct(t, ",")) {
                emit(start, k);
                start = k + 1;
            }
        }
        emit(start, end);
    }

    // --- function bodies: calls and lambdas ---------------------------------

    void scan_body(int func_idx, int lambda_idx, std::size_t begin, std::size_t end) {
        std::size_t i = begin;
        while (i < end) {
            const token& t = ts_[i];
            if (is_punct(t, "[") && lambda_starts_here(i)) {
                const std::size_t past = record_lambda(func_idx, i, end);
                if (past != i) {
                    i = past;
                    continue;
                }
            }
            if (t.kind == tok::identifier && i + 1 < end && is_punct(ts_[i + 1], "(") &&
                !is_control_keyword(t.text) && !looks_like_decl(i)) {
                record_call(func_idx, lambda_idx, i);
            }
            ++i;
        }
    }

    /// A '[' opens a lambda when it sits in expression position (not a
    /// subscript) and its matched ']' is followed by a parameter list or
    /// body.
    bool lambda_starts_here(std::size_t i) const {
        if (i > 0) {
            const token& p = ts_[i - 1];
            if (p.kind == tok::identifier && !is_ident(p, "return") && !is_ident(p, "case")) {
                return false;  // subscript on a name
            }
            if (is_punct(p, "]") || is_punct(p, ")")) return false;  // chained subscript
            if (is_punct(p, "[")) return false;                      // attribute [[...]]
        }
        const std::size_t past = match_group(ts_, i);
        if (past == i || past >= ts_.size()) return false;
        if (is_punct(ts_[past], "(") || is_punct(ts_[past], "{")) return true;
        return false;
    }

    std::size_t record_lambda(int func_idx, std::size_t intro, std::size_t end) {
        const std::size_t intro_past = match_group(ts_, intro);
        if (intro_past == intro) return intro;
        lambda_info lm;
        lm.intro = intro;
        lm.line = ts_[intro].line;
        lm.enclosing_func = func_idx;
        parse_captures(intro + 1, intro_past - 1, lm);
        if (intro >= 2 && is_punct(ts_[intro - 1], "=") && ts_[intro - 2].kind == tok::identifier) {
            lm.bound_name = ts_[intro - 2].text;
        }
        std::size_t j = intro_past;
        if (j < end && is_punct(ts_[j], "(")) {
            const std::size_t params_past = match_group(ts_, j);
            if (params_past == j) return intro;
            std::vector<param_info> ps;
            parse_params(j + 1, params_past - 1, ps);
            for (const param_info& p : ps) {
                if (!p.name.empty()) lm.params.push_back(p.name);
            }
            j = params_past;
        }
        // mutable / noexcept / attributes / trailing return, then the body.
        std::size_t guard = 0;
        while (j < end && !is_punct(ts_[j], "{")) {
            if (is_punct(ts_[j], ";") || is_punct(ts_[j], ")") || is_punct(ts_[j], ",")) {
                return intro;  // not a lambda after all
            }
            if (++guard > 24) return intro;
            ++j;
        }
        if (j >= end) return intro;
        const std::size_t body_past = match_group(ts_, j);
        if (body_past == j) return intro;
        lm.body_begin = j;
        lm.body_end = body_past;
        const int lidx = static_cast<int>(out_.lambdas.size());
        out_.lambdas.push_back(std::move(lm));
        scan_body(func_idx, lidx, j + 1, body_past - 1);
        return body_past;
    }

    void parse_captures(std::size_t begin, std::size_t end, lambda_info& lm) {
        std::size_t start = begin;
        auto piece = [&](std::size_t from, std::size_t to) {
            if (from >= to) return;
            if (is_punct(ts_[from], "&")) {
                if (from + 1 == to) {
                    lm.capture_ref_default = true;
                } else if (ts_[from + 1].kind == tok::identifier) {
                    lm.ref_captures.push_back(ts_[from + 1].text);
                }
                return;
            }
            if (is_punct(ts_[from], "=") && from + 1 == to) {
                lm.capture_val_default = true;
                return;
            }
            if (ts_[from].kind == tok::identifier) lm.val_captures.push_back(ts_[from].text);
        };
        for (std::size_t k = begin; k < end; ++k) {
            if (is_punct(ts_[k], "(") || is_punct(ts_[k], "{") || is_punct(ts_[k], "[")) {
                const std::size_t past = match_group(ts_, k);
                if (past != k) k = past - 1;
                continue;
            }
            if (is_punct(ts_[k], ",")) {
                piece(start, k);
                start = k + 1;
            }
        }
        piece(start, end);
    }

    /// `IDENT (` where the previous token is an identifier or a closing
    /// angle is a direct-init declaration (`rng g(seed)`,
    /// `std::vector<int> v(n)`), not a call.
    bool looks_like_decl(std::size_t i) const {
        if (i == 0) return false;
        const token& p = ts_[i - 1];
        if (is_punct(p, ">") || is_punct(p, ">>")) return true;
        if (p.kind != tok::identifier) return false;
        if (is_ident(p, "return") || is_ident(p, "co_return") || is_ident(p, "case") ||
            is_ident(p, "co_yield") || is_ident(p, "throw") || is_ident(p, "else") ||
            is_ident(p, "do")) {
            return false;
        }
        return true;
    }

    void record_call(int func_idx, int lambda_idx, std::size_t name_tok) {
        call_info c;
        c.callee = ts_[name_tok].text;
        c.name_tok = name_tok;
        c.line = ts_[name_tok].line;
        c.enclosing_func = func_idx;
        c.enclosing_lambda = lambda_idx;
        std::size_t q = name_tok;
        while (q >= 2 && is_punct(ts_[q - 1], "::") && ts_[q - 2].kind == tok::identifier) {
            c.quals.push_back(ts_[q - 2].text);
            q -= 2;
        }
        std::reverse(c.quals.begin(), c.quals.end());
        if (q > 0 && (is_punct(ts_[q - 1], ".") || is_punct(ts_[q - 1], "->"))) {
            c.is_member = true;
        }
        c.lparen = name_tok + 1;
        const std::size_t past = match_group(ts_, c.lparen);
        if (past == c.lparen) return;
        c.rparen = past - 1;
        // Top-level comma split of the argument list.
        std::size_t start = c.lparen + 1;
        for (std::size_t k = c.lparen + 1; k < c.rparen; ++k) {
            if (is_punct(ts_[k], "(") || is_punct(ts_[k], "{") || is_punct(ts_[k], "[")) {
                const std::size_t g = match_group(ts_, k);
                if (g != k) {
                    k = g - 1;
                    continue;
                }
            }
            if (is_punct(ts_[k], "<")) {
                const std::size_t g = skip_angles(ts_, k, 64);
                if (g != k && g <= c.rparen) {
                    k = g - 1;
                    continue;
                }
            }
            if (is_punct(ts_[k], ",")) {
                c.args.emplace_back(start, k);
                start = k + 1;
            }
        }
        if (start < c.rparen) c.args.emplace_back(start, c.rparen);
        for (const auto& [ab, ae] : c.args) c.arg_names.push_back(bare_ident_arg(ab, ae));
        out_.calls.push_back(std::move(c));
    }

    /// "" unless [begin, end) is a single identifier, optionally followed by
    /// one balanced [subscript] (`main_[w]` -> "main_").
    std::string bare_ident_arg(std::size_t begin, std::size_t end) const {
        if (begin >= end || ts_[begin].kind != tok::identifier) return {};
        if (end == begin + 1) return ts_[begin].text;
        if (is_punct(ts_[begin + 1], "[") && match_group(ts_, begin + 1) == end) {
            return ts_[begin].text;
        }
        return {};
    }

    // --- substream derivations ----------------------------------------------

    /// Record `D = M.substream(...)` and `rng D = M.substream(...)` inside a
    /// body (subscripted left-hand sides count: `path_[w] = main_[w].substream`
    /// derives `path_`).
    void collect_derivations(std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i + 2 < end; ++i) {
            if (!is_ident(ts_[i + 1], "substream") || !is_punct(ts_[i], ".") ||
                !is_punct(ts_[i + 2], "(")) {
                continue;
            }
            // Walk back across the receiver (ident, subscripts, :: chains) to
            // the '=' introducing this derivation, then to the LHS name.
            std::size_t k = i;  // at '.'
            while (k > begin) {
                const token& p = ts_[k - 1];
                if (p.kind == tok::identifier || is_punct(p, "::") || is_punct(p, ".") ||
                    is_punct(p, "->")) {
                    --k;
                    continue;
                }
                if (is_punct(p, "]")) {
                    std::size_t open = k - 1;
                    int depth = 0;
                    while (open > begin) {
                        if (is_punct(ts_[open], "]")) ++depth;
                        if (is_punct(ts_[open], "[") && --depth == 0) break;
                        --open;
                    }
                    k = open;
                    continue;
                }
                break;
            }
            if (k == begin || !is_punct(ts_[k - 1], "=")) continue;
            std::size_t lhs = k - 1;  // at '='
            while (lhs > begin && is_punct(ts_[lhs - 1], "]")) {
                std::size_t open = lhs - 1;
                int depth = 0;
                while (open > begin) {
                    if (is_punct(ts_[open], "]")) ++depth;
                    if (is_punct(ts_[open], "[") && --depth == 0) break;
                    --open;
                }
                lhs = open;
            }
            if (lhs > begin && ts_[lhs - 1].kind == tok::identifier) {
                out_.substream_derived.insert(ts_[lhs - 1].text);
            }
        }
    }

    const tokens_t& ts_;
    tu_index out_;
    std::vector<std::string> scope_;
};

}  // namespace

std::size_t match_group(const std::vector<token>& ts, std::size_t open) {
    if (open >= ts.size() || ts[open].kind != tok::punct || ts[open].text.size() != 1) {
        return open;
    }
    const char oc = ts[open].text[0];
    const char cc = closer_for(oc);
    if (cc == '\0') return open;
    int depth = 0;
    for (std::size_t i = open; i < ts.size(); ++i) {
        const token& t = ts[i];
        if (t.kind != tok::punct || t.text.size() != 1) continue;
        if (t.text[0] == oc) ++depth;
        if (t.text[0] == cc && --depth == 0) return i + 1;
    }
    return open;
}

tu_index build_index(const std::string& rel_path, const lexed_file& lf) {
    return indexer(rel_path, lf).run();
}

}  // namespace levylint
