#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/levylint/lexer.h"

// Pass 1 of the two-pass analyzer: a lightweight semantic index over the
// token stream of one translation unit. It recovers just enough structure
// for flow-aware rules — function declarations/definitions with parameter
// shapes, call sites with argument ranges, lambdas with capture lists —
// without becoming a C++ front end. Heuristics are deliberately bounded:
// a construct the indexer cannot classify is simply absent from the index,
// which at worst makes a rule miss (the right failure mode for a linter).
//
// The per-TU indexes are linked into a cross-TU call graph by callgraph.h.

namespace levylint {

/// One function parameter, as declared.
struct param_info {
    std::vector<std::string> type;  ///< type tokens, e.g. {"const", "rng", "&"}
    std::string name;               ///< declarator name; empty for unnamed params
    bool by_value = false;          ///< no '&', '&&' or '*' anywhere in the declarator
    bool by_const_ref = false;      ///< 'const' present together with '&'
    bool is_rng = false;            ///< type mentions the repo's `rng` stream class
};

/// A function declaration or definition.
struct func_info {
    std::string name;   ///< unqualified name
    std::string qname;  ///< scope-qualified, e.g. "levy::sim::walk_engine::spawn"
    std::vector<std::string> ret;  ///< return-type tokens (empty for ctors/dtors)
    std::vector<param_info> params;
    int line = 1;
    /// Token range of the body `{...}` (begin = index of '{', end = one past
    /// the matching '}'); begin == end == 0 for a pure declaration.
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    bool is_definition = false;
    bool returns_unordered = false;  ///< return type is an unordered container
    bool returns_rng = false;        ///< return type is the rng stream class
};

/// A lambda expression, attributed to its enclosing function.
struct lambda_info {
    std::size_t intro = 0;  ///< token index of the '['
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    int line = 1;
    bool capture_ref_default = false;  ///< [&...]
    bool capture_val_default = false;  ///< [=...]
    std::vector<std::string> ref_captures;  ///< explicit &name captures
    std::vector<std::string> val_captures;  ///< explicit by-value captures
    std::vector<std::string> params;        ///< parameter names (may be empty)
    /// Non-empty when the lambda was bound to a local: `auto NAME = [...]`.
    std::string bound_name;
    int enclosing_func = -1;  ///< index into tu_index::funcs, -1 at file scope
};

/// A call expression: free call, qualified call, or member call.
struct call_info {
    std::string callee;              ///< last identifier before the '('
    std::vector<std::string> quals;  ///< leading a::b qualifiers, outermost first
    bool is_member = false;          ///< preceded by '.' or '->'
    std::size_t name_tok = 0;        ///< token index of the callee identifier
    std::size_t lparen = 0;          ///< token index of the '('
    std::size_t rparen = 0;          ///< token index of the matching ')'
    /// Top-level comma-separated argument token ranges [first, last).
    std::vector<std::pair<std::size_t, std::size_t>> args;
    /// Per argument: the identifier when the argument is a single bare name
    /// (optionally with one [subscript] — `main_[w]` yields "main_"), else "".
    std::vector<std::string> arg_names;
    int enclosing_func = -1;    ///< index into tu_index::funcs
    int enclosing_lambda = -1;  ///< index into tu_index::lambdas when inside one
    int line = 1;
};

/// The semantic index of one translation unit.
struct tu_index {
    std::string path;  ///< repo-root-relative path with '/' separators
    std::vector<func_info> funcs;
    std::vector<lambda_info> lambdas;
    std::vector<call_info> calls;
    /// Names of class members whose declared type mentions `rng` (including
    /// containers of streams, e.g. std::vector<rng>).
    std::set<std::string> rng_members;
    /// rng-typed names assigned from a `.substream(...)` expression inside
    /// some function body here (constructor init lists deliberately do not
    /// count: a per-phase substream must be rederived in the body, keyed by
    /// the phase number — a ctor-init placeholder is not a derivation).
    std::set<std::string> substream_derived;
};

/// Build the index for one lexed file. Never fails.
[[nodiscard]] tu_index build_index(const std::string& rel_path, const lexed_file& lf);

/// Index just past the punct that matches the opener at `open` ('(' -> ')',
/// '{' -> '}', '[' -> ']'); returns `open` when unmatched.
[[nodiscard]] std::size_t match_group(const std::vector<token>& ts, std::size_t open);

}  // namespace levylint
