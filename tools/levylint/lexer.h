#pragma once

#include <string>
#include <vector>

// A small C++ lexer, just deep enough for lint rules: it separates code
// tokens from comments, strings, and preprocessor directives so rules can
// match token *sequences* instead of grepping raw text (no false hits
// inside string literals or documentation).
//
// Deliberately not a full C++ front end: no keyword table, no preprocessor
// evaluation, no template parsing. Rules that need structure (angle-bracket
// matching, range-for detection) do their own bounded scans over the token
// stream.

namespace levylint {

enum class tok {
    identifier,  ///< identifiers and keywords alike
    number,      ///< integer or floating literal (see token::is_float)
    string,      ///< string literal, text is the *contents* (quotes stripped)
    character,   ///< character literal
    punct,       ///< operator / punctuator, longest-match (e.g. "==", "::")
};

struct token {
    tok kind = tok::punct;
    std::string text;
    int line = 1;
    bool is_float = false;  ///< for tok::number: has '.', or a decimal exponent
};

struct comment {
    int line = 1;        ///< line the comment starts on
    int end_line = 1;    ///< last line it touches (same as line for //)
    std::string text;    ///< contents, delimiters stripped
    bool own_line = false;  ///< nothing but whitespace precedes it on its line
};

/// One logical preprocessor directive (backslash continuations joined,
/// trailing // comment split off into the comment list).
struct directive {
    int line = 1;
    std::string text;  ///< e.g. "#include \"src/grid/point.h\"", "#pragma once"
};

struct lexed_file {
    std::vector<token> tokens;
    std::vector<comment> comments;
    std::vector<directive> directives;
};

/// Tokenize `source`. Never fails: bytes it cannot classify become
/// single-character punct tokens, which at worst makes a rule miss — the
/// right failure mode for a linter.
[[nodiscard]] lexed_file lex(const std::string& source);

}  // namespace levylint
