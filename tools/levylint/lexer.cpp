#include "tools/levylint/lexer.h"

#include <cctype>
#include <cstddef>

namespace levylint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character punctuators, longest first so greedy matching works.
constexpr const char* kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "++",  "--", "+=", "-=", "*=", "/=", "%=",
    "&=",  "|=",  "^=",  "##",
};

class lexer {
public:
    explicit lexer(const std::string& src) : src_(src) {}

    lexed_file run() {
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\n') {
                ++line_;
                at_line_start_ = true;
                ++pos_;
                continue;
            }
            if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
                ++pos_;
                continue;
            }
            if (c == '/' && peek(1) == '/') {
                line_comment();
                continue;
            }
            if (c == '/' && peek(1) == '*') {
                block_comment();
                continue;
            }
            if (c == '#' && at_line_start_) {
                preprocessor();
                continue;
            }
            at_line_start_ = false;
            if (ident_start(c)) {
                identifier();
                continue;
            }
            if (digit(c) || (c == '.' && digit(peek(1)))) {
                number();
                continue;
            }
            if (c == '"') {
                string_literal();
                continue;
            }
            if (c == '\'') {
                char_literal();
                continue;
            }
            punct();
        }
        return std::move(out_);
    }

private:
    char peek(std::size_t ahead) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }

    bool only_whitespace_before_on_line() const {
        std::size_t i = pos_;
        while (i > 0 && src_[i - 1] != '\n') {
            const char c = src_[i - 1];
            if (c != ' ' && c != '\t' && c != '\r') return false;
            --i;
        }
        return true;
    }

    void line_comment() {
        comment cm;
        cm.line = cm.end_line = line_;
        cm.own_line = only_whitespace_before_on_line();
        pos_ += 2;
        while (pos_ < src_.size() && src_[pos_] != '\n') cm.text += src_[pos_++];
        out_.comments.push_back(std::move(cm));
    }

    void block_comment() {
        comment cm;
        cm.line = line_;
        cm.own_line = only_whitespace_before_on_line();
        pos_ += 2;
        while (pos_ < src_.size() && !(src_[pos_] == '*' && peek(1) == '/')) {
            if (src_[pos_] == '\n') ++line_;
            cm.text += src_[pos_++];
        }
        if (pos_ < src_.size()) pos_ += 2;
        cm.end_line = line_;
        out_.comments.push_back(std::move(cm));
    }

    void preprocessor() {
        directive d;
        d.line = line_;
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            if (c == '\\' && peek(1) == '\n') {  // logical-line continuation
                d.text += ' ';
                pos_ += 2;
                ++line_;
                continue;
            }
            if (c == '\n') break;
            if (c == '/' && peek(1) == '/') {
                line_comment();  // keep trailing comments visible for suppressions
                break;
            }
            d.text += c;
            ++pos_;
        }
        while (!d.text.empty() && (d.text.back() == ' ' || d.text.back() == '\t' ||
                                   d.text.back() == '\r')) {
            d.text.pop_back();
        }
        out_.directives.push_back(std::move(d));
    }

    void identifier() {
        token t;
        t.kind = tok::identifier;
        t.line = line_;
        while (pos_ < src_.size() && ident_char(src_[pos_])) t.text += src_[pos_++];
        // String-literal prefixes: an identifier immediately followed by a
        // quote is a prefix (R, u8, LR, ...), not a real identifier. Only
        // the exact raw prefixes count — `LOG(ERR "x")` must lex ERR as an
        // identifier, not eat the rest of the file hunting for a )ERR"
        // raw-string closer.
        if (pos_ < src_.size() && src_[pos_] == '"') {
            if (t.text == "R" || t.text == "LR" || t.text == "uR" || t.text == "UR" ||
                t.text == "u8R") {
                raw_string();
                return;
            }
            if (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L") {
                string_literal();
                return;
            }
        }
        out_.tokens.push_back(std::move(t));
    }

    void number() {
        token t;
        t.kind = tok::number;
        t.line = line_;
        const bool hex = src_[pos_] == '0' && (peek(1) == 'x' || peek(1) == 'X');
        while (pos_ < src_.size()) {
            const char c = src_[pos_];
            // Digit separator: 1'000'000, but also hex digits (0xdead'beef)
            // and anything ident-shaped after the quote — requiring a
            // *decimal* digit mislexed 0xa'b as number 0xa followed by a
            // char literal, swallowing tokens to the next single quote.
            if (c == '\'' && ident_char(peek(1))) {
                ++pos_;
                continue;
            }
            if (c == '.') {
                t.is_float = true;
                t.text += c;
                ++pos_;
                continue;
            }
            const bool dec_exp = !hex && (c == 'e' || c == 'E');
            const bool hex_exp = hex && (c == 'p' || c == 'P');
            if ((dec_exp && (peek(1) == '+' || peek(1) == '-' || digit(peek(1)))) || hex_exp) {
                t.is_float = true;
                t.text += c;
                ++pos_;
                if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) {
                    t.text += src_[pos_++];
                }
                continue;
            }
            if (ident_char(c)) {
                t.text += c;
                ++pos_;
                continue;
            }
            break;
        }
        out_.tokens.push_back(std::move(t));
    }

    void string_literal() {
        token t;
        t.kind = tok::string;
        t.line = line_;
        ++pos_;  // opening quote
        while (pos_ < src_.size() && src_[pos_] != '"') {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
                t.text += src_[pos_];
                t.text += src_[pos_ + 1];
                pos_ += 2;
                continue;
            }
            if (src_[pos_] == '\n') ++line_;  // unterminated; keep line count right
            t.text += src_[pos_++];
        }
        if (pos_ < src_.size()) ++pos_;  // closing quote
        out_.tokens.push_back(std::move(t));
    }

    void raw_string() {
        token t;
        t.kind = tok::string;
        t.line = line_;
        ++pos_;  // opening quote
        std::string delim;
        while (pos_ < src_.size() && src_[pos_] != '(') delim += src_[pos_++];
        if (pos_ < src_.size()) ++pos_;  // '('
        const std::string closer = ")" + delim + "\"";
        while (pos_ < src_.size() && src_.compare(pos_, closer.size(), closer) != 0) {
            if (src_[pos_] == '\n') ++line_;
            t.text += src_[pos_++];
        }
        if (pos_ < src_.size()) pos_ += closer.size();
        out_.tokens.push_back(std::move(t));
    }

    void char_literal() {
        token t;
        t.kind = tok::character;
        t.line = line_;
        ++pos_;
        while (pos_ < src_.size() && src_[pos_] != '\'') {
            if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
                t.text += src_[pos_];
                t.text += src_[pos_ + 1];
                pos_ += 2;
                continue;
            }
            if (src_[pos_] == '\n') break;  // stray quote, not a literal
            t.text += src_[pos_++];
        }
        if (pos_ < src_.size() && src_[pos_] == '\'') ++pos_;
        out_.tokens.push_back(std::move(t));
    }

    void punct() {
        token t;
        t.kind = tok::punct;
        t.line = line_;
        for (const char* p : kPuncts) {
            const std::size_t len = std::char_traits<char>::length(p);
            if (src_.compare(pos_, len, p) == 0) {
                t.text = p;
                pos_ += len;
                out_.tokens.push_back(std::move(t));
                return;
            }
        }
        t.text = src_[pos_++];
        out_.tokens.push_back(std::move(t));
    }

    const std::string& src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    bool at_line_start_ = true;
    lexed_file out_;
};

}  // namespace

lexed_file lex(const std::string& source) { return lexer(source).run(); }

}  // namespace levylint
