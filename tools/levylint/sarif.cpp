#include "tools/levylint/sarif.h"

#include <cstddef>
#include <map>

#include "src/obs/json.h"

namespace levylint {

std::string to_sarif(const std::vector<finding>& findings) {
    using levy::obs::json;

    // reportingDescriptor array + id -> index, in registry order (SARIF
    // results reference rules by index).
    json rule_descs = json::array();
    std::map<std::string, std::size_t> rule_index;
    for (const rule_info& r : rules()) {
        json d = json::object();
        d.set("id", r.id);
        json short_desc = json::object();
        short_desc.set("text", r.summary);
        d.set("shortDescription", short_desc);
        json full_desc = json::object();
        full_desc.set("text", r.explanation);
        d.set("fullDescription", full_desc);
        json config = json::object();
        config.set("level", "error");
        d.set("defaultConfiguration", config);
        rule_index.emplace(r.id, rule_index.size());
        rule_descs.push_back(std::move(d));
    }

    json results = json::array();
    // Stable fingerprints: path + rule + per-(path, rule) ordinal, so a
    // finding keeps its identity across unrelated line-number churn.
    std::map<std::string, int> ordinal;
    for (const finding& f : findings) {
        json r = json::object();
        r.set("ruleId", f.rule);
        const auto it = rule_index.find(f.rule);
        if (it != rule_index.end()) r.set("ruleIndex", it->second);
        r.set("level", "error");
        json msg = json::object();
        msg.set("text", f.message);
        r.set("message", std::move(msg));

        json artifact = json::object();
        artifact.set("uri", f.path);
        json region = json::object();
        region.set("startLine", f.line);
        json phys = json::object();
        phys.set("artifactLocation", std::move(artifact));
        phys.set("region", std::move(region));
        json loc = json::object();
        loc.set("physicalLocation", std::move(phys));
        json locs = json::array();
        locs.push_back(std::move(loc));
        r.set("locations", std::move(locs));

        const std::string key = f.path + ":" + f.rule;
        json prints = json::object();
        prints.set("levylint/v1", key + ":" + std::to_string(ordinal[key]++));
        r.set("partialFingerprints", std::move(prints));
        results.push_back(std::move(r));
    }

    json driver = json::object();
    driver.set("name", "levylint");
    driver.set("version", "2.0.0");
    driver.set("rules", std::move(rule_descs));
    json tool = json::object();
    tool.set("driver", std::move(driver));
    json run = json::object();
    run.set("tool", std::move(tool));
    run.set("columnKind", "utf16CodeUnits");
    run.set("results", std::move(results));
    json runs = json::array();
    runs.push_back(std::move(run));

    json doc = json::object();
    doc.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    doc.set("version", "2.1.0");
    doc.set("runs", std::move(runs));
    return doc.dump(2) + "\n";
}

}  // namespace levylint
