#pragma once

#include <string>
#include <vector>

#include "tools/levylint/callgraph.h"
#include "tools/levylint/lexer.h"

// levylint's rule registry and per-file analysis.
//
// Every rule enforces a *repo-specific* invariant that generic tooling
// (clang-tidy, compiler warnings) cannot express — they all exist to
// protect one guarantee: Monte-Carlo results are a pure function of
// (seed, trial index), bit-identical for any thread count, chunk size,
// standard-library implementation, or incidental memory layout.
//
// Analysis is two-pass: pass 1 lexes and indexes every TU (index.h), the
// linker joins them into a project_model (callgraph.h), and pass 2 runs the
// rules per file against that model — so the flow-aware rules (stream
// discipline, parallel-capture safety) see cross-TU facts: which callee
// takes its rng by value, which lambdas run on the pool, which names are
// substream-derived anywhere in the project.
//
// Findings on a line are suppressed by `// levylint:allow(<rule>[, ...])`
// on the same line, or on an immediately preceding comment-only line.

namespace levylint {

struct finding {
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

struct rule_info {
    std::string id;
    std::string summary;      ///< one line, shown by --list-rules
    std::string explanation;  ///< full rationale + fix guidance, shown by --explain
};

/// The registry, in reporting order.
[[nodiscard]] const std::vector<rule_info>& rules();
[[nodiscard]] bool known_rule(const std::string& id);

/// All findings for one file, sorted by line. `tu` indexes the file inside
/// `model` (its tu_index::path is the repo-root-relative path the
/// path-scoped exemptions key off: src/rng/ may seed and owns the stream
/// substrate, src/sim/thread_pool.* may touch std::thread).
/// `ignore_suppressions` reports findings even on allow-annotated lines;
/// the self-test uses it to prove the suppressed fixtures really violate.
[[nodiscard]] std::vector<finding> analyze(const project_model& model, int tu,
                                           const lexed_file& lf,
                                           bool ignore_suppressions = false);

}  // namespace levylint
