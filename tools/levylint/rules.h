#pragma once

#include <set>
#include <string>
#include <vector>

#include "tools/levylint/lexer.h"

// levylint's rule registry and per-file analysis.
//
// Every rule enforces a *repo-specific* invariant that generic tooling
// (clang-tidy, compiler warnings) cannot express — they all exist to
// protect one guarantee: Monte-Carlo results are a pure function of
// (seed, trial index), bit-identical for any thread count, chunk size,
// standard-library implementation, or incidental memory layout.
//
// Findings on a line are suppressed by `// levylint:allow(<rule>[, ...])`
// on the same line, or on an immediately preceding comment-only line.

namespace levylint {

struct finding {
    std::string path;
    int line = 0;
    std::string rule;
    std::string message;
};

struct rule_info {
    std::string id;
    std::string summary;      ///< one line, shown by --list-rules
    std::string explanation;  ///< full rationale + fix guidance, shown by --explain
};

/// The registry, in reporting order.
[[nodiscard]] const std::vector<rule_info>& rules();
[[nodiscard]] bool known_rule(const std::string& id);

/// Cross-file knowledge gathered in a first pass over every scanned file.
struct project_symbols {
    /// Functions whose declared return type is an unordered container
    /// (e.g. sim::visit_census): iterating their result is as
    /// order-unstable as iterating the container itself.
    std::set<std::string> unordered_returning_functions;
};

void collect_symbols(const lexed_file& lf, project_symbols& proj);

/// All findings for one file, sorted by line. `rel_path` is repo-root
/// relative with '/' separators — the path-scoped exemptions (src/rng/ may
/// seed, src/sim/thread_pool.* may touch std::thread) key off it.
/// `ignore_suppressions` reports findings even on allow-annotated lines;
/// the self-test uses it to prove the suppressed fixtures really violate.
[[nodiscard]] std::vector<finding> analyze(const std::string& rel_path, const lexed_file& lf,
                                           const project_symbols& proj,
                                           bool ignore_suppressions = false);

}  // namespace levylint
