# Pins the parallel-scan determinism contract: a levylint tree scan with
# --jobs=8 must produce byte-identical output to --jobs=1 (path-sorted file
# order, slot-per-file result placement — scheduling must never leak into
# the report). Exit codes must match too; both runs use the checked-in
# baseline, so this holds whether the tree is clean or not.

foreach(var LEVYLINT REPO_ROOT OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "parallel_determinism.cmake needs -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

set(common_args --root "${REPO_ROOT}"
  --baseline "${REPO_ROOT}/tools/levylint/baseline.txt"
  src include bench tools examples)

execute_process(
  COMMAND "${LEVYLINT}" ${common_args} --jobs 1 --output "${OUT_DIR}/serial.txt"
  RESULT_VARIABLE serial_rc)
execute_process(
  COMMAND "${LEVYLINT}" ${common_args} --jobs 8 --output "${OUT_DIR}/parallel.txt"
  RESULT_VARIABLE parallel_rc)

if(NOT serial_rc EQUAL parallel_rc)
  message(FATAL_ERROR
    "levylint exit codes differ: --jobs=1 -> ${serial_rc}, --jobs=8 -> ${parallel_rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files "${OUT_DIR}/serial.txt" "${OUT_DIR}/parallel.txt"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
    "levylint output differs between --jobs=1 and --jobs=8 "
    "(${OUT_DIR}/serial.txt vs ${OUT_DIR}/parallel.txt)")
endif()
