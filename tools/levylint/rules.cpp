#include "tools/levylint/rules.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <sstream>

namespace levylint {
namespace {

// ---------------------------------------------------------------------------
// Registry

const std::vector<rule_info>& registry() {
    static const std::vector<rule_info> r = {
        {"nondeterministic-seed",
         "nondeterministic seeding (std::random_device, time(NULL), rand/srand) outside src/rng/",
         "Every trial's randomness must derive purely from (seed, trial index) so that\n"
         "Monte-Carlo results replay bit-identically for any thread count and chunk\n"
         "size. std::random_device, time(NULL)/time(nullptr)/time(0), and the C\n"
         "rand()/srand() pair all pull entropy from outside that derivation and\n"
         "silently break reproducibility.\n"
         "\n"
         "Fix: take an explicit seed (benches expose --seed) and derive streams with\n"
         "rng::seeded(seed).substream(index). Only src/rng/ — the substrate that\n"
         "*implements* seeding — is exempt.\n"},
        {"raw-thread",
         "raw std::thread/std::async/OpenMP outside src/sim/thread_pool.*",
         "All parallelism must route through sim::parallel_for, whose chunked dynamic\n"
         "queue guarantees results independent of the schedule. Raw std::thread,\n"
         "std::jthread, std::async, or OpenMP pragmas introduce their own work\n"
         "partitioning, which is exactly how per-thread-count result drift starts\n"
         "(and it bypasses the pool's exception capture and metrics).\n"
         "\n"
         "Fix: express the work as fn(i) for i in [0, n) and call\n"
         "sim::parallel_for(n, threads, fn). Querying\n"
         "std::thread::hardware_concurrency() is allowed — it spawns nothing.\n"},
        {"unordered-iteration",
         "iterating an unordered container (iteration order feeds results/output)",
         "std::unordered_map/set iteration order depends on the hash implementation,\n"
         "the insertion history, and the bucket count — none of which are part of the\n"
         "(seed, trial index) contract. Iterating one to build output, accumulate\n"
         "floating-point sums, or fill a vector makes CSVs differ across standard\n"
         "libraries and even across runs. Functions returning unordered containers\n"
         "are resolved through the project call graph, so iterating the result of a\n"
         "cross-TU call is caught without name-matching guesswork.\n"
         "\n"
         "Fix: copy keys (or key/value pairs) into a vector and sort it before\n"
         "iterating, or use std::map when the container is iterated at all. Unordered\n"
         "lookups (find/contains/operator[]) are fine and are not flagged. A\n"
         "provably order-insensitive fold (e.g. integer counter sums) may be\n"
         "suppressed with levylint:allow(unordered-iteration).\n"},
        {"float-equality",
         "float/double ==/!= comparison without an explicit tolerance",
         "Exact floating-point equality is almost always a latent bug: two\n"
         "mathematically equal expressions need not be bit-equal once optimization,\n"
         "FMA contraction, or summation order differ. In this repo such comparisons\n"
         "also threaten paper-vs-measured validation, which relies on stable\n"
         "statistics.\n"
         "\n"
         "Fix: compare with an explicit tolerance (std::abs(a - b) <= eps) or\n"
         "restructure to integer arithmetic (the grid substrate is exact for a\n"
         "reason). Intentional exact comparisons — sentinel values, comparisons\n"
         "against a value stored untouched — carry\n"
         "levylint:allow(float-equality) with a short justification.\n"},
        {"include-hygiene",
         "quoted includes must be repo-root-relative, unique, and free of '..'",
         "Every quoted include in this repo is written relative to the repository\n"
         "root (#include \"src/grid/point.h\"), so any file can be moved or read in\n"
         "isolation and include paths never depend on the including file's location.\n"
         "'..' segments and directory-relative paths break that, and duplicate\n"
         "includes are dead weight that hides real dependencies.\n"
         "\n"
         "Fix: spell the path from the repo root (src/..., bench/..., tools/...,\n"
         "include/..., examples/..., tests/...); delete duplicate includes.\n"},
        {"header-guard",
         "headers must open with #pragma once",
         "Repo convention: every header's first directive is #pragma once —\n"
         "before any other directive or declaration. Classic #ifndef guards are\n"
         "rejected too (one convention, zero guard-name collisions).\n"
         "\n"
         "Fix: put #pragma once on the first non-comment line of the header.\n"},
        {"unchecked-write",
         "std::ofstream written but its stream state is never checked",
         "An std::ofstream swallows I/O errors silently: a full disk, a yanked\n"
         "mount, or a permissions change just sets failbit and every subsequent\n"
         "`<<` becomes a no-op. A results file produced that way is truncated or\n"
         "empty with exit status 0 — the worst failure mode for a long sweep,\n"
         "and exactly what the crash-safe writers in src/sim/ exist to prevent.\n"
         "\n"
         "Fix: check the stream at least once after writing (`if (!out) ...`,\n"
         "out.good()/fail()/bad()), or route through sim::csv_writer /\n"
         "sim::atomic_write_file, which fsync, verify, and rename atomically. A\n"
         "genuinely loss-tolerant scratch file may carry\n"
         "levylint:allow(unchecked-write) on its declaration line.\n"},
        {"throwing-call-in-noexcept",
         "throw or container growth (resize/push_back/...) inside an explicitly-noexcept body",
         "An exception escaping a noexcept function does not propagate — it\n"
         "calls std::terminate, killing the whole sweep with no checkpoint\n"
         "flush and no partial results. `throw` is the obvious way to do that;\n"
         "the sneaky way is a container-growth call (resize, push_back,\n"
         "emplace_back, insert, reserve, assign) that can raise bad_alloc.\n"
         "stats::log2_histogram::add shipped exactly this bug: declared\n"
         "noexcept, grew its bucket vector on demand.\n"
         "\n"
         "Fix: drop the noexcept, pre-reserve so the hot path provably cannot\n"
         "allocate, or handle the exception locally (growth inside a try block\n"
         "is not flagged). A call proven non-allocating may carry\n"
         "levylint:allow(throwing-call-in-noexcept) with a justification.\n"},
        {"stream-by-value",
         "copying an rng stream (by-value call, rng a = b, returning a member) forks it silently",
         "An rng stream is 40 bytes of counter state; copying one forks the\n"
         "stream, and both copies then replay the *same* draw sequence. The\n"
         "PR 6 engine-parity contract (DESIGN.md 6.1) allows exactly one\n"
         "ownership idiom: a stream is handed to its owner by value once, and\n"
         "everyone else receives `const rng&` and derives independent children\n"
         "with .substream(i). Passing a stream you keep using into a by-value\n"
         "parameter, copy-initializing `rng a = b;`, or returning a member\n"
         "stream by value creates correlated duplicate randomness that no test\n"
         "can reliably catch.\n"
         "\n"
         "Fix: pass `const rng&` and .substream(i) inside the callee, or\n"
         "std::move the stream when you genuinely hand it over. A deliberate\n"
         "replay fork carries levylint:allow(stream-by-value) with the reason.\n"},
        {"conditional-main-draw",
         "main-stream draw inside data-dependent control flow (if/while/switch/ternary)",
         "The batch engine replays the scalar engine's draw sequence walker by\n"
         "walker; that only works because every walker's *main* stream advances\n"
         "a draw count that is a pure function of (seed, trial index) — never\n"
         "of data. A draw reachable inside an if/else, while, switch, or\n"
         "ternary makes the draw count depend on the branch taken, so two\n"
         "schedules (or engines) desynchronize the moment the predicate\n"
         "differs. This is the exact bug class the PR 6 parity contract\n"
         "(DESIGN.md 6.1) forbids. Plain counted for-loops are not flagged:\n"
         "their trip counts are part of the deterministic schedule.\n"
         "\n"
         "Fix: hoist the draw above the branch, or move the data-dependent\n"
         "draws onto a throwaway substream derived per phase\n"
         "(s = stream.substream(phase)), which makes the main stream's count\n"
         "branch-free again. A draw proven branch-invariant carries\n"
         "levylint:allow(conditional-main-draw) with a one-line proof.\n"},
        {"substream-discipline",
         "path/tie draws not from a per-phase substream; main stream drawn after its substream",
         "DESIGN.md 6.1: phase lengths and directions come from the walker's\n"
         "main stream; the data-dependent tie coins inside path stepping come\n"
         "from a throwaway substream rederived each phase\n"
         "(stream.substream(phase)). Two violations break replay: (a) feeding\n"
         "a path stepper's .advance() a stream that is not substream-derived\n"
         "(its draw count then depends on the path taken), and (b) drawing\n"
         "from a parent stream after drawing from a substream derived from it\n"
         "in the same function — substream(i) is a pure function of the\n"
         "parent's seed, so interleaving parent and child draws couples their\n"
         "sequences in an order the batch engine cannot reproduce.\n"
         "\n"
         "Fix: rederive a substream per phase and give the stepper that; keep\n"
         "parent draws textually before any derived-substream use. Scalar\n"
         "baselines that deliberately walk on the main stream carry\n"
         "levylint:allow(substream-discipline) with the reason.\n"},
        {"shared-mutation-in-parallel",
         "non-atomic write to a by-reference capture inside a parallel task lambda",
         "Lambdas handed to sim::parallel_for / thread_pool::run execute\n"
         "concurrently; a plain write (=, +=, ++, push_back...) to a\n"
         "by-reference capture from inside one is a data race — undefined\n"
         "behavior first, schedule-dependent results second. TSan catches the\n"
         "races a given seed and schedule happen to exercise; this rule flags\n"
         "them statically through the call graph, including lambdas that reach\n"
         "the pool indirectly (monte_carlo_collect forwards its trial_fn into\n"
         "the pool's task). Writes to per-task slots (out[i] indexed by the\n"
         "task parameter), to std::atomic variables, and in mutex-guarded\n"
         "bodies (lock_guard/scoped_lock/unique_lock) are exempt.\n"
         "\n"
         "Fix: give each task its own slot indexed by the task parameter and\n"
         "reduce after the parallel region, or use std::atomic for counters.\n"
         "A provably single-writer access carries\n"
         "levylint:allow(shared-mutation-in-parallel) with the reason.\n"},
        {"nonassociative-parallel-reduction",
         "floating-point accumulation inside a parallel task (order follows the schedule)",
         "Floating-point addition is not associative: a shared double\n"
         "accumulated from parallel tasks (sum += x, or\n"
         "atomic<double>::fetch_add) takes on a value that depends on the\n"
         "completion order of the tasks — different thread counts, chunk\n"
         "sizes, or runs give different low bits, which the repo's\n"
         "bit-identical contract forbids. A mutex or atomic makes the race\n"
         "defined but cannot fix the ordering, so this fires even on\n"
         "race-free code.\n"
         "\n"
         "Fix: write each task's contribution into its own slot (out[i] =\n"
         "...), then reduce sequentially in index order after the parallel\n"
         "region — same cost, deterministic bits. An integer accumulation is\n"
         "exact and therefore never flagged. A tolerance-insensitive\n"
         "diagnostic sum carries\n"
         "levylint:allow(nonassociative-parallel-reduction) with the reason.\n"},
    };
    return r;
}

// ---------------------------------------------------------------------------
// Small token-stream helpers

using tokens_t = std::vector<token>;

bool is_ident(const token& t, const char* text) {
    return t.kind == tok::identifier && t.text == text;
}

bool is_punct(const token& t, const char* text) {
    return t.kind == tok::punct && t.text == text;
}

const token* at(const tokens_t& ts, std::size_t i) { return i < ts.size() ? &ts[i] : nullptr; }

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Split a directive into whitespace-separated words, '#' stripped (handles
/// both "#pragma" and "# pragma").
std::vector<std::string> directive_words(const directive& d) {
    std::string body = d.text;
    const std::size_t hash = body.find('#');
    if (hash != std::string::npos) body = body.substr(hash + 1);
    std::vector<std::string> words;
    std::istringstream in(body);
    std::string w;
    while (in >> w) words.push_back(w);
    return words;
}

/// For `#include` directives: the include target, with <> or "" retained as
/// the first character ('<' or '"'); empty for non-include directives.
std::string include_target(const directive& d) {
    const auto words = directive_words(d);
    if (words.empty() || words[0] != "include") return {};
    std::string rest;
    for (std::size_t i = 1; i < words.size(); ++i) rest += words[i];
    if (rest.empty()) return {};
    if (rest[0] == '"') {
        const std::size_t close = rest.find('"', 1);
        return close == std::string::npos ? rest : rest.substr(0, close + 1);
    }
    if (rest[0] == '<') {
        const std::size_t close = rest.find('>', 1);
        return close == std::string::npos ? rest : rest.substr(0, close + 1);
    }
    return {};
}

/// Index just past a balanced <...> starting at `open` (which must point at
/// "<"); ">>" closes two levels. Returns `open` when no balanced close is
/// found within `limit` tokens (template-vs-comparison ambiguity: bail out).
std::size_t match_angles(const tokens_t& ts, std::size_t open, std::size_t limit = 128) {
    int depth = 0;
    for (std::size_t i = open; i < ts.size() && i < open + limit; ++i) {
        const token& t = ts[i];
        if (t.kind != tok::punct) continue;
        if (t.text == "<") ++depth;
        if (t.text == ">") {
            if (--depth == 0) return i + 1;
        }
        if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) return i + 1;
        }
        if (t.text == ";" || t.text == "{") break;  // not a template argument list
    }
    return open;
}

const char* kUnorderedNames[] = {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"};

bool is_unordered_name(const token& t) {
    if (t.kind != tok::identifier) return false;
    return std::any_of(std::begin(kUnorderedNames), std::end(kUnorderedNames),
                       [&](const char* n) { return t.text == n; });
}

/// rng draw methods: every call that consumes stream state. substream() and
/// seed() are pure derivations and deliberately absent.
bool is_draw_method(const std::string& m) {
    static const char* kDraws[] = {"uniform",     "uniform_positive", "below",
                                   "uniform_int", "coin",             "bernoulli"};
    return std::any_of(std::begin(kDraws), std::end(kDraws),
                       [&](const char* d) { return m == d; });
}

// ---------------------------------------------------------------------------
// Suppressions

/// line -> set of rule ids allowed on that line.
using suppression_map = std::map<int, std::set<std::string>>;

void parse_allow_list(const std::string& text, std::set<std::string>& out) {
    const std::string marker = "levylint:allow(";
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = text.find(marker, from);
        if (pos == std::string::npos) return;
        const std::size_t close = text.find(')', pos + marker.size());
        if (close == std::string::npos) return;
        std::string inside = text.substr(pos + marker.size(), close - pos - marker.size());
        std::replace(inside.begin(), inside.end(), ',', ' ');
        std::istringstream in(inside);
        std::string id;
        while (in >> id) out.insert(id);
        from = close + 1;
    }
}

suppression_map build_suppressions(const lexed_file& lf) {
    // Sorted list of lines that carry code (tokens or directives): an
    // own-line comment's allowance applies to the next such line.
    std::vector<int> code_lines;
    for (const token& t : lf.tokens) code_lines.push_back(t.line);
    for (const directive& d : lf.directives) code_lines.push_back(d.line);
    std::sort(code_lines.begin(), code_lines.end());

    suppression_map out;
    for (const comment& c : lf.comments) {
        std::set<std::string> allowed;
        parse_allow_list(c.text, allowed);
        if (allowed.empty()) continue;
        int target = c.line;
        if (c.own_line) {
            const auto it = std::upper_bound(code_lines.begin(), code_lines.end(), c.end_line);
            if (it == code_lines.end()) continue;
            target = *it;
        }
        out[target].insert(allowed.begin(), allowed.end());
    }
    return out;
}

// ---------------------------------------------------------------------------
// Per-rule checks

class analysis {
public:
    analysis(const project_model& model, int tu, const lexed_file& lf)
        : model_(model),
          tu_(tu),
          path_(model.tus[tu].path),
          lf_(lf),
          ts_(lf.tokens),
          unordered_calls_(model.unordered_call_names[tu]) {}

    std::vector<finding> run() {
        check_nondeterministic_seed();
        check_raw_thread();
        collect_local_types();
        collect_atomics();
        check_unordered_iteration();
        check_float_equality();
        check_include_hygiene();
        check_header_guard();
        check_unchecked_write();
        check_throwing_call_in_noexcept();
        check_stream_rules();
        check_parallel_capture_rules();
        std::stable_sort(findings_.begin(), findings_.end(),
                         [](const finding& a, const finding& b) { return a.line < b.line; });
        return std::move(findings_);
    }

private:
    void flag(int line, const char* rule, std::string message) {
        findings_.push_back({path_, line, rule, std::move(message)});
    }

    const tu_index& my() const { return model_.tus[tu_]; }

    // --- nondeterministic-seed ---------------------------------------------

    void check_nondeterministic_seed() {
        if (starts_with(path_, "src/rng/")) return;  // the seeding substrate itself
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier) continue;
            const token* prev = i > 0 ? &ts_[i - 1] : nullptr;
            const bool member = prev != nullptr && (prev->text == "." || prev->text == "->");
            if (member) continue;
            // foo::rand() is someone else's rand; std::rand() and plain
            // rand() are the libc one.
            const bool foreign_qualified =
                prev != nullptr && is_punct(*prev, "::") && i >= 2 && !is_ident(ts_[i - 2], "std");
            if (foreign_qualified) continue;

            if (t.text == "random_device") {
                flag(t.line, "nondeterministic-seed",
                     "std::random_device draws entropy outside the (seed, trial) derivation; "
                     "take an explicit seed and use rng::seeded(seed).substream(i)");
            } else if ((t.text == "srand" || t.text == "rand") && at(ts_, i + 1) != nullptr &&
                       is_punct(ts_[i + 1], "(")) {
                flag(t.line, "nondeterministic-seed",
                     t.text + "() is unseeded global-state randomness; route all draws "
                              "through levy::rng streams");
            } else if (t.text == "time" && at(ts_, i + 3) != nullptr && is_punct(ts_[i + 1], "(") &&
                       is_punct(ts_[i + 3], ")") &&
                       (is_ident(ts_[i + 2], "NULL") || is_ident(ts_[i + 2], "nullptr") ||
                        (ts_[i + 2].kind == tok::number && ts_[i + 2].text == "0"))) {
                flag(t.line, "nondeterministic-seed",
                     "time(NULL)-style wall-clock seeding makes runs unreproducible; "
                     "take an explicit seed instead");
            }
        }
    }

    // --- raw-thread --------------------------------------------------------

    void check_raw_thread() {
        if (path_ == "src/sim/thread_pool.h" || path_ == "src/sim/thread_pool.cpp") return;
        for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "std") || !is_punct(ts_[i + 1], "::")) continue;
            const token& name = ts_[i + 2];
            if (name.kind != tok::identifier) continue;
            if (name.text == "thread") {
                // std::thread::hardware_concurrency() spawns nothing.
                if (at(ts_, i + 4) != nullptr && is_punct(ts_[i + 3], "::") &&
                    is_ident(ts_[i + 4], "hardware_concurrency")) {
                    continue;
                }
                flag(name.line, "raw-thread",
                     "raw std::thread bypasses the deterministic worker pool; use "
                     "sim::parallel_for (src/sim/thread_pool.*)");
            } else if (name.text == "jthread" || name.text == "async") {
                flag(name.line, "raw-thread",
                     "std::" + name.text + " bypasses the deterministic worker pool; use "
                                           "sim::parallel_for (src/sim/thread_pool.*)");
            }
        }
        for (const directive& d : lf_.directives) {
            const auto words = directive_words(d);
            if (words.size() >= 2 && words[0] == "pragma" && words[1] == "omp") {
                flag(d.line, "raw-thread",
                     "OpenMP pragmas schedule work outside the deterministic pool; use "
                     "sim::parallel_for");
            }
            if (include_target(d) == "<omp.h>") {
                flag(d.line, "raw-thread", "OpenMP is off-limits; use sim::parallel_for");
            }
        }
    }

    // --- local type tracking (shared by unordered-iteration / float-equality)

    void collect_local_types() {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            if (is_unordered_name(ts_[i]) && at(ts_, i + 1) != nullptr &&
                is_punct(ts_[i + 1], "<")) {
                const std::size_t past = match_angles(ts_, i + 1);
                if (past == i + 1) continue;
                const token* name = at(ts_, past);
                if (name != nullptr && name->kind == tok::identifier) {
                    const token* after = at(ts_, past + 1);
                    if (after != nullptr && is_punct(*after, "(")) {
                        continue;  // function returning unordered: resolved via call graph
                    }
                    unordered_vars_.insert(name->text);
                }
            }
            if (is_ident(ts_[i], "double") || is_ident(ts_[i], "float")) {
                // Template arguments (static_cast<double>, span<const double>)
                // are naturally skipped: the next token is '>' not a name.
                std::size_t j = i + 1;
                while (at(ts_, j) != nullptr &&
                       (is_punct(ts_[j], "&") || is_punct(ts_[j], "*") || is_punct(ts_[j], "&&") ||
                        is_ident(ts_[j], "const"))) {
                    ++j;
                }
                const token* name = at(ts_, j);
                const token* after = at(ts_, j + 1);
                if (name != nullptr && name->kind == tok::identifier && after != nullptr &&
                    !is_punct(*after, "(")) {
                    float_vars_.insert(name->text);
                }
            }
            // auto var = some_unordered_returning_call(...) — the callee set
            // comes from the linked call graph (this TU's resolved calls).
            if (ts_[i].kind == tok::identifier && unordered_calls_.count(ts_[i].text) != 0 &&
                at(ts_, i + 1) != nullptr && is_punct(ts_[i + 1], "(")) {
                // Walk back over the qualification chain to find `name =`.
                std::size_t j = i;
                while (j >= 2 && is_punct(ts_[j - 1], "::") && ts_[j - 2].kind == tok::identifier) {
                    j -= 2;
                }
                if (j >= 2 && is_punct(ts_[j - 1], "=") && ts_[j - 2].kind == tok::identifier) {
                    unordered_vars_.insert(ts_[j - 2].text);
                }
            }
        }
    }

    /// Names declared std::atomic<...>, and the float subset
    /// (atomic<double>/atomic<float>): exempt from shared-mutation, still
    /// subject to nonassociative-parallel-reduction.
    void collect_atomics() {
        for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "atomic") || !is_punct(ts_[i + 1], "<")) continue;
            const std::size_t past = match_angles(ts_, i + 1);
            if (past == i + 1) continue;
            const token* name = at(ts_, past);
            if (name == nullptr || name->kind != tok::identifier) continue;
            atomic_vars_.insert(name->text);
            for (std::size_t k = i + 2; k + 1 < past; ++k) {
                if (is_ident(ts_[k], "double") || is_ident(ts_[k], "float")) {
                    atomic_float_vars_.insert(name->text);
                    break;
                }
            }
        }
    }

    // --- unordered-iteration -----------------------------------------------

    bool expr_touches_unordered(std::size_t begin, std::size_t end) const {
        for (std::size_t i = begin; i < end && i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier) continue;
            if (unordered_vars_.count(t.text) != 0 || unordered_calls_.count(t.text) != 0 ||
                is_unordered_name(t)) {
                return true;
            }
        }
        return false;
    }

    void check_unordered_iteration() {
        for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
            // Range-for over an unordered container.
            if (is_ident(ts_[i], "for") && is_punct(ts_[i + 1], "(")) {
                int depth = 0;
                std::size_t colon = 0, close = 0;
                for (std::size_t j = i + 1; j < ts_.size() && j < i + 200; ++j) {
                    if (is_punct(ts_[j], "(")) ++depth;
                    if (is_punct(ts_[j], ")")) {
                        if (--depth == 0) {
                            close = j;
                            break;
                        }
                    }
                    if (depth == 1 && is_punct(ts_[j], ":") && colon == 0) colon = j;
                    if (is_punct(ts_[j], ";")) break;  // classic for loop
                }
                if (colon != 0 && close != 0 && expr_touches_unordered(colon + 1, close)) {
                    flag(ts_[i].line, "unordered-iteration",
                         "range-for over an unordered container: iteration order is not part "
                         "of the (seed, trial) contract; sort into a vector (or use std::map) "
                         "before results or output depend on it");
                }
            }
            // Explicit iterator walk: container.begin() / cbegin() / rbegin().
            if (ts_[i].kind == tok::identifier && unordered_vars_.count(ts_[i].text) != 0 &&
                is_punct(ts_[i + 1], ".") && at(ts_, i + 2) != nullptr) {
                const std::string& m = ts_[i + 2].text;
                if ((m == "begin" || m == "cbegin" || m == "rbegin") && at(ts_, i + 3) != nullptr &&
                    is_punct(ts_[i + 3], "(")) {
                    flag(ts_[i].line, "unordered-iteration",
                         "iterator walk over an unordered container: iteration order is "
                         "nondeterministic; sort keys into a vector first");
                }
            }
        }
    }

    // --- float-equality ----------------------------------------------------

    struct operand_evidence {
        bool float_literal = false;
        bool int_literal = false;
        bool tracked_var = false;
    };

    operand_evidence scan_operand(std::size_t begin, std::size_t end) const {
        operand_evidence ev;
        for (std::size_t i = begin; i < end && i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind == tok::number) (t.is_float ? ev.float_literal : ev.int_literal) = true;
            if (t.kind == tok::identifier && float_vars_.count(t.text) != 0) ev.tracked_var = true;
        }
        return ev;
    }

    void check_float_equality() {
        for (std::size_t i = 1; i + 1 < ts_.size(); ++i) {
            if (!is_punct(ts_[i], "==") && !is_punct(ts_[i], "!=")) continue;
            if (is_ident(ts_[i - 1], "operator")) continue;  // operator== definition
            // Left operand: a single token, or a balanced (...) group.
            std::size_t lbegin = i - 1, lend = i;
            if (is_punct(ts_[i - 1], ")")) {
                int depth = 0;
                for (std::size_t j = i - 1; j + 1 > 0 && j + 60 > i; --j) {
                    if (is_punct(ts_[j], ")")) ++depth;
                    if (is_punct(ts_[j], "(")) {
                        if (--depth == 0) {
                            lbegin = j;
                            break;
                        }
                    }
                    if (j == 0) break;
                }
            }
            // Right operand: skip unary sign; then a token, call, or group.
            std::size_t rbegin = i + 1;
            if (is_punct(ts_[rbegin], "-") || is_punct(ts_[rbegin], "+")) ++rbegin;
            std::size_t rend = rbegin + 1;
            const token* r0 = at(ts_, rbegin);
            const token* r1 = at(ts_, rbegin + 1);
            if (r0 != nullptr && is_punct(*r0, "(")) {
                int depth = 0;
                for (std::size_t j = rbegin; j < ts_.size() && j < rbegin + 60; ++j) {
                    if (is_punct(ts_[j], "(")) ++depth;
                    if (is_punct(ts_[j], ")") && --depth == 0) {
                        rend = j + 1;
                        break;
                    }
                }
            } else if (r0 != nullptr && r0->kind == tok::identifier && r1 != nullptr &&
                       is_punct(*r1, "(")) {
                rend = rbegin + 2;  // call: judge by the callee name only
            }
            const operand_evidence l = scan_operand(lbegin, lend);
            const operand_evidence r = scan_operand(rbegin, rend);
            // Float-literal evidence always fires. Tracked-variable evidence
            // alone does not fire against an integer literal: name tracking
            // is file-scoped, so `n == 0` in a function where some *other*
            // function has a double named n would be a false positive — and
            // genuine float-zero checks are written `== 0.0`.
            const bool int_literal = l.int_literal || r.int_literal;
            const bool fires = l.float_literal || r.float_literal ||
                               ((l.tracked_var || r.tracked_var) && !int_literal);
            if (fires) {
                flag(ts_[i].line, "float-equality",
                     "floating-point " + ts_[i].text +
                         " without a tolerance; compare std::abs(a - b) <= eps, or "
                         "levylint:allow(float-equality) for an intentional exact check");
            }
        }
    }

    // --- include-hygiene ---------------------------------------------------

    void check_include_hygiene() {
        static const char* kRoots[] = {"src/", "bench/", "tools/", "include/", "examples/",
                                       "tests/"};
        std::set<std::string> seen;
        for (const directive& d : lf_.directives) {
            const std::string target = include_target(d);
            if (target.empty()) continue;
            if (!seen.insert(target).second) {
                flag(d.line, "include-hygiene", "duplicate include of " + target);
            }
            if (target[0] != '"') continue;  // system/angle includes: not ours to police
            const std::string path = target.substr(1, target.size() - 2);
            if (path.find("..") != std::string::npos) {
                flag(d.line, "include-hygiene",
                     "'..' in include path defeats root-relative includes: \"" + path + "\"");
                continue;
            }
            const bool rooted = std::any_of(std::begin(kRoots), std::end(kRoots),
                                            [&](const char* r) { return starts_with(path, r); });
            if (!rooted) {
                flag(d.line, "include-hygiene",
                     "quoted include must be repo-root-relative (src/..., bench/..., ...): \"" +
                         path + "\"");
            }
        }
    }

    // --- header-guard ------------------------------------------------------

    void check_header_guard() {
        if (!ends_with(path_, ".h") && !ends_with(path_, ".hpp")) return;
        int first_code_line = 1;
        if (!lf_.directives.empty() && !ts_.empty()) {
            first_code_line = std::min(lf_.directives[0].line, ts_[0].line);
        } else if (!lf_.directives.empty()) {
            first_code_line = lf_.directives[0].line;
        } else if (!ts_.empty()) {
            first_code_line = ts_[0].line;
        }
        bool seen_pragma_once = false;
        for (std::size_t i = 0; i < lf_.directives.size(); ++i) {
            const auto words = directive_words(lf_.directives[i]);
            const bool is_once = words.size() >= 2 && words[0] == "pragma" && words[1] == "once";
            if (!is_once) continue;
            if (seen_pragma_once) {
                flag(lf_.directives[i].line, "header-guard", "duplicate #pragma once");
                continue;
            }
            seen_pragma_once = true;
            if (i != 0) {
                flag(lf_.directives[i].line, "header-guard",
                     "#pragma once must be the header's first directive");
            } else if (!ts_.empty() && ts_[0].line < lf_.directives[i].line) {
                flag(lf_.directives[i].line, "header-guard",
                     "#pragma once must precede all declarations");
            }
        }
        if (!seen_pragma_once) {
            flag(first_code_line, "header-guard",
                 "header is missing #pragma once (repo convention; #ifndef guards are "
                 "not used here)");
        }
    }

    // --- unchecked-write ---------------------------------------------------

    void check_unchecked_write() {
        // Direct std::ofstream objects only: a reference/parameter is owned —
        // and checked — by someone else.
        std::map<std::string, int> decl_line;
        for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "ofstream")) continue;
            const token& name = ts_[i + 1];
            const token& after = ts_[i + 2];
            if (name.kind != tok::identifier) continue;
            if (is_punct(after, "(") || is_punct(after, "{") || is_punct(after, ";") ||
                is_punct(after, "=")) {
                decl_line.emplace(name.text, name.line);
            }
        }
        if (decl_line.empty()) return;

        static const char* kStateMembers[] = {"good",    "fail",    "bad",       "eof",
                                              "is_open", "rdstate", "exceptions"};
        std::set<std::string> written, checked;
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier || decl_line.count(t.text) == 0) continue;
            const token* prev = i > 0 ? &ts_[i - 1] : nullptr;
            if (prev != nullptr &&
                (is_punct(*prev, ".") || is_punct(*prev, "->") || is_punct(*prev, "::"))) {
                continue;  // member/qualified access to something else's `out`
            }
            const token* next = at(ts_, i + 1);
            const token* next2 = at(ts_, i + 2);
            const token* next3 = at(ts_, i + 3);
            if (next != nullptr && is_punct(*next, "<<")) {
                written.insert(t.text);
                continue;
            }
            if (next != nullptr && is_punct(*next, ".") && next2 != nullptr &&
                (next2->text == "write" || next2->text == "put") && next3 != nullptr &&
                is_punct(*next3, "(")) {
                written.insert(t.text);
                continue;
            }
            // Anything that observes stream state counts as a check: !out,
            // out.good()/fail()/..., out in a boolean context, or the stream
            // handed to another function (which can check it).
            if (prev != nullptr && is_punct(*prev, "!")) {
                checked.insert(t.text);
                continue;
            }
            if (next != nullptr && is_punct(*next, ".") && next2 != nullptr &&
                std::any_of(std::begin(kStateMembers), std::end(kStateMembers),
                            [&](const char* m) { return next2->text == m; })) {
                checked.insert(t.text);
                continue;
            }
            if (next != nullptr &&
                (is_punct(*next, "&&") || is_punct(*next, "||") || is_punct(*next, "?"))) {
                checked.insert(t.text);
                continue;
            }
            if (prev != nullptr && is_punct(*prev, "(") && i >= 2 &&
                (is_ident(ts_[i - 2], "if") || is_ident(ts_[i - 2], "while")) &&
                next != nullptr && is_punct(*next, ")")) {
                checked.insert(t.text);
                continue;
            }
            if (prev != nullptr && (is_punct(*prev, "(") || is_punct(*prev, ",")) &&
                next != nullptr && (is_punct(*next, ")") || is_punct(*next, ","))) {
                checked.insert(t.text);
            }
        }
        for (const auto& [name, line] : decl_line) {
            if (written.count(name) != 0 && checked.count(name) == 0) {
                flag(line, "unchecked-write",
                     "std::ofstream `" + name +
                         "` is written but its stream state is never checked — a full disk "
                         "truncates the file silently; test !" +
                         name + " (or .good()/.fail()) after writing, or use "
                                "sim::csv_writer / sim::atomic_write_file");
            }
        }
    }

    // --- throwing-call-in-noexcept -----------------------------------------

    /// Scan a noexcept function body starting at its opening '{'. Flags
    /// `throw` and container-growth member calls unless they sit inside a
    /// try block (the exception is then handled locally). A throw inside a
    /// *catch* block still fires: it escapes the handler.
    void scan_noexcept_body(std::size_t open) {
        static const char* kGrowthCalls[] = {"resize", "push_back", "emplace_back",
                                             "insert", "reserve",   "assign"};
        int depth = 0;
        std::vector<int> try_depths;  // body depth of each enclosing try block
        for (std::size_t j = open; j < ts_.size(); ++j) {
            const token& t = ts_[j];
            if (is_punct(t, "{")) {
                ++depth;
                continue;
            }
            if (is_punct(t, "}")) {
                --depth;
                if (!try_depths.empty() && depth < try_depths.back()) try_depths.pop_back();
                if (depth == 0) return;  // end of the noexcept body
                continue;
            }
            if (is_ident(t, "try") && at(ts_, j + 1) != nullptr && is_punct(ts_[j + 1], "{")) {
                try_depths.push_back(depth + 1);
                continue;
            }
            if (!try_depths.empty()) continue;  // handled locally
            if (is_ident(t, "throw")) {
                flag(t.line, "throwing-call-in-noexcept",
                     "throw inside a noexcept function calls std::terminate instead of "
                     "propagating; drop the noexcept or handle the exception locally");
                continue;
            }
            if ((is_punct(t, ".") || is_punct(t, "->")) && at(ts_, j + 2) != nullptr &&
                ts_[j + 1].kind == tok::identifier && is_punct(ts_[j + 2], "(")) {
                const std::string& m = ts_[j + 1].text;
                const bool grows =
                    std::any_of(std::begin(kGrowthCalls), std::end(kGrowthCalls),
                                [&](const char* g) { return m == g; });
                if (grows) {
                    flag(ts_[j + 1].line, "throwing-call-in-noexcept",
                         "." + m + "() can allocate and throw bad_alloc, which a noexcept "
                                   "function turns into std::terminate; drop the noexcept or "
                                   "pre-reserve so the call provably cannot allocate");
                }
            }
        }
    }

    void check_throwing_call_in_noexcept() {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "noexcept")) continue;
            // `noexcept(expr)`: only noexcept(true) is an unconditional
            // promise. Conditional forms and noexcept(false) — and the
            // noexcept *operator* in expressions — promise nothing here.
            std::size_t after = i + 1;
            if (at(ts_, after) != nullptr && is_punct(ts_[after], "(")) {
                if (at(ts_, after + 2) == nullptr || !is_ident(ts_[after + 1], "true") ||
                    !is_punct(ts_[after + 2], ")")) {
                    continue;
                }
                after += 3;
            }
            // The specifier's body: a '{' before any ';' (pure declaration),
            // '=' (= default / deleted), or ':' (ctor init lists hold
            // brace-init tokens this token scan would misread — skip them).
            std::size_t open = 0;
            for (std::size_t j = after; j < ts_.size() && j < after + 32; ++j) {
                if (is_punct(ts_[j], "{")) {
                    open = j;
                    break;
                }
                if (is_punct(ts_[j], ";") || is_punct(ts_[j], "=") || is_punct(ts_[j], ":")) {
                    break;
                }
            }
            if (open != 0) scan_noexcept_body(open);
        }
    }

    // =======================================================================
    // Flow-aware stream rules (stream-by-value, conditional-main-draw,
    // substream-discipline) — per function definition, against the linked
    // model.

    /// rng-typed names visible inside one function: its rng parameters,
    /// local `rng x`/`auto x = y.substream(...)` declarations, and (for
    /// methods) every rng-typed class member in the project.
    struct stream_scope {
        std::set<std::string> names;
        std::set<std::string> ref_params;  ///< the subset passed by reference
    };

    bool is_derived(const std::string& name) const {
        return model_.derived_names.count(name) != 0;
    }

    stream_scope stream_scope_for(const func_info& fn) const {
        stream_scope s;
        for (const param_info& p : fn.params) {
            if (!p.is_rng || p.name.empty()) continue;
            s.names.insert(p.name);
            if (!p.by_value) s.ref_params.insert(p.name);
        }
        s.names.insert(model_.rng_member_names.begin(), model_.rng_member_names.end());
        for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
            if (!is_ident(ts_[i], "rng") || ts_[i + 1].kind != tok::identifier) continue;
            const token* after = at(ts_, i + 2);
            if (after != nullptr && (is_punct(*after, "=") || is_punct(*after, ";") ||
                                     is_punct(*after, "{") || is_punct(*after, "("))) {
                s.names.insert(ts_[i + 1].text);
            }
        }
        // `auto d = m.substream(...)` locals are rng-typed too; every
        // substream-derived name is, by construction.
        for (const std::string& d : model_.derived_names) s.names.insert(d);
        return s;
    }

    /// One stream-state-consuming site: a draw method call on `var`, or
    /// `var` passed by non-const reference into a resolved callee (which
    /// draws through it).
    struct draw_site {
        std::size_t pos = 0;
        std::string var;
        int line = 0;
    };

    std::vector<draw_site> draw_sites(const func_info& fn, const stream_scope& s) const {
        std::vector<draw_site> out;
        for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
            if (ts_[i].kind != tok::identifier || s.names.count(ts_[i].text) == 0) continue;
            std::size_t j = i + 1;
            if (j < fn.body_end && is_punct(ts_[j], "[")) {
                const std::size_t g = match_group(ts_, j);
                if (g == j) continue;
                j = g;
            }
            if (j + 2 < fn.body_end && (is_punct(ts_[j], ".") || is_punct(ts_[j], "->")) &&
                ts_[j + 1].kind == tok::identifier && is_punct(ts_[j + 2], "(") &&
                is_draw_method(ts_[j + 1].text)) {
                out.push_back({i, ts_[i].text, ts_[i].line});
            }
        }
        // Reference-pass draws, through the call graph.
        for (std::size_t c = 0; c < my().calls.size(); ++c) {
            const call_info& call = my().calls[c];
            if (call.name_tok <= fn.body_begin || call.name_tok >= fn.body_end) continue;
            const auto& cands = model_.call_targets[tu_][c];
            for (std::size_t a = 0; a < call.arg_names.size(); ++a) {
                const std::string& v = call.arg_names[a];
                if (v.empty() || s.names.count(v) == 0) continue;
                bool draws = false;
                for (const func_ref& r : cands) {
                    const func_info& callee = model_.func(r);
                    if (a < callee.params.size() && callee.params[a].is_rng &&
                        !callee.params[a].by_value && !callee.params[a].by_const_ref) {
                        draws = true;
                    }
                }
                // The path-stepper sink draws even when unresolved (templates).
                if (cands.empty() && call.is_member && call.callee == "advance") draws = true;
                if (draws) out.push_back({call.name_tok, v, call.line});
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const draw_site& a, const draw_site& b) { return a.pos < b.pos; });
        return out;
    }

    /// Token mask over [body_begin, body_end): true where execution is
    /// data-dependent — if/else bodies, while bodies *and conditions*
    /// (iterations 2+ re-evaluate them), switch bodies, ternary arms.
    /// Counted for-loops are deliberately unmarked: deterministic trip
    /// counts are part of the schedule, not a divergence hazard.
    std::vector<bool> conditional_mask(const func_info& fn) const {
        const std::size_t b = fn.body_begin, e = fn.body_end;
        std::vector<bool> mask(e - b, false);
        auto mark = [&](std::size_t from, std::size_t to) {
            for (std::size_t k = std::max(from, b); k < std::min(to, e); ++k) {
                mask[k - b] = true;
            }
        };
        auto stmt_end = [&](std::size_t from) {
            std::size_t k = from;
            while (k < e) {
                const token& u = ts_[k];
                if (is_punct(u, "(") || is_punct(u, "[") || is_punct(u, "{")) {
                    const std::size_t g = match_group(ts_, k);
                    if (g != k) {
                        k = g;
                        continue;
                    }
                }
                if (is_punct(u, ";")) return k;
                ++k;
            }
            return e;
        };
        auto mark_stmt_or_block = [&](std::size_t from) {
            if (from < e && is_punct(ts_[from], "{")) {
                const std::size_t g = match_group(ts_, from);
                if (g != from) mark(from + 1, g - 1);
                return;
            }
            mark(from, stmt_end(from));
        };
        for (std::size_t i = b; i < e; ++i) {
            const token& t = ts_[i];
            if (is_ident(t, "if") || is_ident(t, "while") || is_ident(t, "switch")) {
                std::size_t lp = i + 1;
                // `if constexpr` selects at compile time: not data-dependent.
                if (is_ident(t, "if") && lp < e && is_ident(ts_[lp], "constexpr")) continue;
                if (lp >= e || !is_punct(ts_[lp], "(")) continue;
                const std::size_t past = match_group(ts_, lp);
                if (past == lp) continue;
                if (is_ident(t, "while")) mark(lp + 1, past - 1);
                mark_stmt_or_block(past);
            } else if (is_ident(t, "else")) {
                if (i + 1 < e && is_ident(ts_[i + 1], "if")) continue;  // handled above
                mark_stmt_or_block(i + 1);
            } else if (is_ident(t, "do") && i + 1 < e && is_punct(ts_[i + 1], "{")) {
                mark_stmt_or_block(i + 1);
            } else if (is_punct(t, "?")) {
                std::size_t k = i + 1;
                while (k < e) {
                    const token& u = ts_[k];
                    if (is_punct(u, "(") || is_punct(u, "[") || is_punct(u, "{")) {
                        const std::size_t g = match_group(ts_, k);
                        if (g != k) {
                            k = g;
                            continue;
                        }
                    }
                    if (is_punct(u, ";") || is_punct(u, ")") || is_punct(u, "}") ||
                        is_punct(u, ",")) {
                        break;
                    }
                    ++k;
                }
                mark(i + 1, k);
            }
        }
        return mask;
    }

    void check_stream_rules() {
        if (starts_with(path_, "src/rng/")) return;  // the stream substrate itself
        for (const func_info& fn : my().funcs) {
            if (!fn.is_definition) continue;
            const stream_scope s = stream_scope_for(fn);
            check_stream_by_value(fn, s);
            if (s.names.empty()) continue;
            check_conditional_main_draw(fn, s);
            check_substream_discipline(fn, s);
        }
    }

    void check_conditional_main_draw(const func_info& fn, const stream_scope& s) {
        const std::vector<bool> mask = conditional_mask(fn);
        for (const draw_site& d : draw_sites(fn, s)) {
            if (is_derived(d.var)) continue;  // throwaway substream: draws may branch
            if (d.pos <= fn.body_begin || d.pos >= fn.body_end) continue;
            if (!mask[d.pos - fn.body_begin]) continue;
            flag(d.line, "conditional-main-draw",
                 "draw from main stream `" + d.var +
                     "` inside data-dependent control flow: the stream's draw count now "
                     "depends on the branch taken, which breaks scalar/batch replay "
                     "(DESIGN.md 6.1); hoist the draw or move it onto a per-phase "
                     "substream (stream.substream(phase))");
        }
    }

    void check_substream_discipline(const func_info& fn, const stream_scope& s) {
        // (a) the path-stepper sink: .advance(stream) must receive a
        // substream-derived stream.
        for (std::size_t c = 0; c < my().calls.size(); ++c) {
            const call_info& call = my().calls[c];
            if (call.name_tok <= fn.body_begin || call.name_tok >= fn.body_end) continue;
            if (!call.is_member || call.callee != "advance") continue;
            for (const std::string& v : call.arg_names) {
                if (v.empty() || s.names.count(v) == 0 || is_derived(v)) continue;
                flag(call.line, "substream-discipline",
                     "path stepping draws its tie coins from `" + v +
                         "`, which is not substream-derived: the main stream's draw count "
                         "then depends on the path taken (DESIGN.md 6.1); pass a per-phase "
                         "throwaway substream (stream.substream(phase)) instead");
            }
        }
        // (b) parent draw after derived-substream draw in the same body.
        std::map<std::string, std::pair<std::string, std::size_t>> parent_of;  // D -> (M, pos)
        for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
            if (!is_punct(ts_[i], ".") || !is_ident(ts_[i + 1], "substream") ||
                !is_punct(ts_[i + 2], "(")) {
                continue;
            }
            // receiver head and LHS name, as in the indexer's derivation scan
            // but keeping both endpoints.
            std::size_t k = i;
            std::string receiver;
            while (k > fn.body_begin) {
                const token& p = ts_[k - 1];
                if (p.kind == tok::identifier) {
                    receiver = p.text;
                    --k;
                    continue;
                }
                if (is_punct(p, "::") || is_punct(p, ".") || is_punct(p, "->")) {
                    --k;
                    continue;
                }
                if (is_punct(p, "]")) {
                    std::size_t open = k - 1;
                    int depth = 0;
                    while (open > fn.body_begin) {
                        if (is_punct(ts_[open], "]")) ++depth;
                        if (is_punct(ts_[open], "[") && --depth == 0) break;
                        --open;
                    }
                    k = open;
                    continue;
                }
                break;
            }
            if (k == fn.body_begin || !is_punct(ts_[k - 1], "=") || receiver.empty()) continue;
            std::size_t lhs = k - 1;
            while (lhs > fn.body_begin && is_punct(ts_[lhs - 1], "]")) {
                std::size_t open = lhs - 1;
                int depth = 0;
                while (open > fn.body_begin) {
                    if (is_punct(ts_[open], "]")) ++depth;
                    if (is_punct(ts_[open], "[") && --depth == 0) break;
                    --open;
                }
                lhs = open;
            }
            if (lhs > fn.body_begin && ts_[lhs - 1].kind == tok::identifier) {
                parent_of[ts_[lhs - 1].text] = {receiver, i};
            }
        }
        if (parent_of.empty()) return;
        const std::vector<draw_site> draws = draw_sites(fn, s);
        for (const auto& [child, pm] : parent_of) {
            const auto& [parent, dpos] = pm;
            std::size_t child_draw = 0;
            for (const draw_site& d : draws) {
                if (d.var == child && d.pos > dpos) {
                    child_draw = d.pos;
                    break;
                }
            }
            if (child_draw == 0) continue;
            for (const draw_site& d : draws) {
                if (d.var == parent && d.pos > child_draw) {
                    flag(d.line, "substream-discipline",
                         "draw from `" + parent + "` after its derived substream `" + child +
                             "` was already used: substream(i) is a pure function of the "
                             "parent's seed, so interleaving parent and child draws couples "
                             "their sequences (DESIGN.md 6.1); finish parent draws before "
                             "deriving, or rederive the substream afterwards");
                    break;
                }
            }
        }
    }

    void check_stream_by_value(const func_info& fn, const stream_scope& s) {
        // (A) `rng a = b;` / `auto a = b;` where b is a known stream: a
        // silent fork — both sides replay the same sequence.
        for (std::size_t i = fn.body_begin + 1; i + 4 < fn.body_end; ++i) {
            if (!is_ident(ts_[i], "rng") && !is_ident(ts_[i], "auto")) continue;
            if (ts_[i + 1].kind != tok::identifier || !is_punct(ts_[i + 2], "=")) continue;
            if (ts_[i + 3].kind != tok::identifier || !is_punct(ts_[i + 4], ";")) continue;
            const std::string& src_name = ts_[i + 3].text;
            if (s.names.count(src_name) == 0) continue;
            flag(ts_[i].line, "stream-by-value",
                 "`" + ts_[i + 1].text + "` copy-initialized from stream `" + src_name +
                     "` forks it: both copies replay the same draw sequence; derive an "
                     "independent child with " + src_name +
                     ".substream(i), or std::move a stream you are handing over");
        }
        // (B) call-site fork: passing a stream you keep using into a
        // by-value rng parameter.
        for (std::size_t c = 0; c < my().calls.size(); ++c) {
            const call_info& call = my().calls[c];
            if (call.name_tok <= fn.body_begin || call.name_tok >= fn.body_end) continue;
            const auto& cands = model_.call_targets[tu_][c];
            if (cands.empty()) continue;
            for (std::size_t a = 0; a < call.arg_names.size(); ++a) {
                const std::string& v = call.arg_names[a];
                if (v.empty() || s.names.count(v) == 0) continue;
                const bool all_by_value = std::all_of(
                    cands.begin(), cands.end(), [&](const func_ref& r) {
                        const func_info& callee = model_.func(r);
                        return a < callee.params.size() && callee.params[a].is_rng &&
                               callee.params[a].by_value;
                    });
                if (!all_by_value) continue;
                bool used_later = false;
                for (std::size_t k = call.rparen + 1; k < fn.body_end; ++k) {
                    if (is_ident(ts_[k], v.c_str())) {
                        used_later = true;
                        break;
                    }
                }
                if (!used_later) continue;
                flag(call.line, "stream-by-value",
                     "stream `" + v + "` is passed by value to " + call.callee +
                         "() and used again afterwards: the callee's copy replays the same "
                         "draws as every later use here; make the parameter `const rng&` "
                         "and substream inside, or stop using the stream after handing it "
                         "over");
            }
        }
        // (C) returning a member / reference-parameter stream by value.
        if (fn.returns_rng) {
            for (std::size_t i = fn.body_begin + 1; i + 2 < fn.body_end; ++i) {
                if (!is_ident(ts_[i], "return") || ts_[i + 1].kind != tok::identifier ||
                    !is_punct(ts_[i + 2], ";")) {
                    continue;
                }
                const std::string& v = ts_[i + 1].text;
                if (model_.rng_member_names.count(v) == 0 && s.ref_params.count(v) == 0) {
                    continue;
                }
                flag(ts_[i].line, "stream-by-value",
                     "returning stream `" + v +
                         "` by value forks it: caller and owner replay the same sequence; "
                         "return a .substream(i) derivation instead");
            }
        }
    }

    // =======================================================================
    // Parallel-capture rules (shared-mutation-in-parallel,
    // nonassociative-parallel-reduction) — per task lambda, against the
    // linked model's parallel-region marking.

    void check_parallel_capture_rules() {
        if (path_ == "src/sim/thread_pool.h" || path_ == "src/sim/thread_pool.cpp") return;
        for (std::size_t l = 0; l < my().lambdas.size(); ++l) {
            if (!model_.lambda_is_task[tu_][l]) continue;
            analyze_task_lambda(my().lambdas[l]);
        }
    }

    bool captured_by_ref(const lambda_info& lm, const std::string& name,
                         std::size_t first_use) const {
        for (const std::string& r : lm.ref_captures) {
            if (r == name) return true;
        }
        if (!lm.capture_ref_default) return false;
        for (const std::string& p : lm.params) {
            if (p == name) return false;
        }
        for (const std::string& v : lm.val_captures) {
            if (v == name) return false;
        }
        // Declared inside the body? First occurrence preceded by a type-ish
        // token (identifier, '&', '*', '>').
        if (first_use > lm.body_begin + 1) {
            const token& before = ts_[first_use - 1];
            if (before.kind == tok::identifier || is_punct(before, "&") ||
                is_punct(before, "*") || is_punct(before, ">")) {
                return false;
            }
        }
        return true;
    }

    std::size_t first_occurrence(const lambda_info& lm, const std::string& name) const {
        for (std::size_t k = lm.body_begin + 1; k + 1 < lm.body_end; ++k) {
            if (is_ident(ts_[k], name.c_str())) return k;
        }
        return lm.body_begin;
    }

    bool subscript_uses_param(const lambda_info& lm, std::size_t open,
                              std::size_t close) const {
        for (std::size_t k = open + 1; k < close; ++k) {
            if (ts_[k].kind != tok::identifier) continue;
            for (const std::string& p : lm.params) {
                if (ts_[k].text == p) return true;
            }
        }
        return false;
    }

    void analyze_task_lambda(const lambda_info& lm) {
        if (!lm.capture_ref_default && lm.ref_captures.empty()) return;
        static const char* kGrowthCalls[] = {"push_back", "emplace_back", "insert", "erase",
                                             "clear",     "resize",       "pop_back"};
        static const char* kAtomicOps[] = {"store", "exchange", "fetch_add", "fetch_sub",
                                           "fetch_and", "fetch_or", "fetch_xor",
                                           "compare_exchange_weak", "compare_exchange_strong"};
        static const char* kAssignOps[] = {"=",  "+=", "-=", "*=",  "/=", "%=",
                                           "&=", "|=", "^=", "<<=", ">>="};
        // A lock taken anywhere before the write makes the write itself
        // defined (shared-mutation); it cannot fix float ordering.
        std::size_t lock_pos = lm.body_end;
        for (std::size_t k = lm.body_begin + 1; k + 1 < lm.body_end; ++k) {
            if (is_ident(ts_[k], "lock_guard") || is_ident(ts_[k], "scoped_lock") ||
                is_ident(ts_[k], "unique_lock")) {
                lock_pos = k;
                break;
            }
        }
        for (std::size_t k = lm.body_begin + 1; k + 1 < lm.body_end; ++k) {
            const token& t = ts_[k];
            if (t.kind != tok::identifier) continue;
            if (k > 0 && (is_punct(ts_[k - 1], ".") || is_punct(ts_[k - 1], "->") ||
                          is_punct(ts_[k - 1], "::"))) {
                continue;  // member of some receiver handled at its head
            }
            const std::string& name = t.text;
            std::size_t j = k + 1;
            bool indexed_by_param = false;
            if (j < lm.body_end && is_punct(ts_[j], "[")) {
                const std::size_t g = match_group(ts_, j);
                if (g == j) continue;
                indexed_by_param = subscript_uses_param(lm, j, g - 1);
                j = g;
            }
            // One member hop: obj.field = x writes obj; obj.push_back(...)
            // grows obj; obj.fetch_add(...) is atomic.
            bool growth = false;
            bool atomic_op = false;
            bool float_fetch_add = false;
            if (j + 1 < lm.body_end &&
                (is_punct(ts_[j], ".") || is_punct(ts_[j], "->")) &&
                ts_[j + 1].kind == tok::identifier) {
                const std::string& m = ts_[j + 1].text;
                const bool is_call =
                    j + 2 < lm.body_end && is_punct(ts_[j + 2], "(");
                if (is_call && std::any_of(std::begin(kGrowthCalls), std::end(kGrowthCalls),
                                           [&](const char* g) { return m == g; })) {
                    growth = true;
                } else if (is_call &&
                           std::any_of(std::begin(kAtomicOps), std::end(kAtomicOps),
                                       [&](const char* o) { return m == o; })) {
                    atomic_op = true;
                    float_fetch_add = (m == "fetch_add" || m == "fetch_sub") &&
                                      atomic_float_vars_.count(name) != 0;
                } else {
                    j += 2;  // plain field access: check for assignment after it
                }
            }
            bool assign = false;
            std::string op_text;
            if (!growth && !atomic_op && j < lm.body_end && ts_[j].kind == tok::punct) {
                for (const char* op : kAssignOps) {
                    if (ts_[j].text == op) {
                        assign = true;
                        op_text = op;
                        break;
                    }
                }
                if (!assign && (ts_[j].text == "++" || ts_[j].text == "--")) {
                    assign = true;
                    op_text = ts_[j].text;
                }
            }
            if (!assign && !growth && !atomic_op && k > lm.body_begin + 1 &&
                (is_punct(ts_[k - 1], "++") || is_punct(ts_[k - 1], "--"))) {
                assign = true;
                op_text = ts_[k - 1].text;
            }
            if (!assign && !growth && !float_fetch_add) continue;
            if (!captured_by_ref(lm, name, first_occurrence(lm, name))) continue;

            const bool float_acc =
                (float_fetch_add ||
                 ((op_text == "+=" || op_text == "-=") && float_vars_.count(name) != 0)) &&
                !indexed_by_param;
            if (float_acc) {
                flag(t.line, "nonassociative-parallel-reduction",
                     "floating-point accumulation into `" + name +
                         "` from a parallel task: the sum's value depends on task "
                         "completion order, so results change with thread count; write "
                         "per-task slots indexed by the task parameter and reduce in "
                         "index order afterwards");
                continue;
            }
            if (atomic_op || atomic_vars_.count(name) != 0) continue;
            if (indexed_by_param && !growth) continue;  // per-task slot
            if (lock_pos < k) continue;                 // mutex-guarded
            flag(t.line, "shared-mutation-in-parallel",
                 std::string(growth ? "container growth on" : "write to") + " by-reference "
                     "capture `" + name +
                     "` from a parallel task is a data race: tasks run concurrently on "
                     "the pool; use a per-task slot indexed by the task parameter, or "
                     "std::atomic for counters");
        }
    }

    const project_model& model_;
    const int tu_;
    const std::string& path_;
    const lexed_file& lf_;
    const tokens_t& ts_;
    const std::set<std::string>& unordered_calls_;
    std::set<std::string> unordered_vars_;
    std::set<std::string> float_vars_;
    std::set<std::string> atomic_vars_;
    std::set<std::string> atomic_float_vars_;
    std::vector<finding> findings_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

const std::vector<rule_info>& rules() { return registry(); }

bool known_rule(const std::string& id) {
    return std::any_of(registry().begin(), registry().end(),
                       [&](const rule_info& r) { return r.id == id; });
}

std::vector<finding> analyze(const project_model& model, int tu, const lexed_file& lf,
                             bool ignore_suppressions) {
    std::vector<finding> all = analysis(model, tu, lf).run();
    if (ignore_suppressions) return all;
    const suppression_map allowed = build_suppressions(lf);
    std::vector<finding> kept;
    kept.reserve(all.size());
    for (finding& f : all) {
        const auto it = allowed.find(f.line);
        if (it != allowed.end() && it->second.count(f.rule) != 0) continue;
        kept.push_back(std::move(f));
    }
    return kept;
}

}  // namespace levylint
