#include "tools/levylint/rules.h"

#include <algorithm>
#include <cstddef>
#include <map>
#include <sstream>

namespace levylint {
namespace {

// ---------------------------------------------------------------------------
// Registry

const std::vector<rule_info>& registry() {
    static const std::vector<rule_info> r = {
        {"nondeterministic-seed",
         "nondeterministic seeding (std::random_device, time(NULL), rand/srand) outside src/rng/",
         "Every trial's randomness must derive purely from (seed, trial index) so that\n"
         "Monte-Carlo results replay bit-identically for any thread count and chunk\n"
         "size. std::random_device, time(NULL)/time(nullptr)/time(0), and the C\n"
         "rand()/srand() pair all pull entropy from outside that derivation and\n"
         "silently break reproducibility.\n"
         "\n"
         "Fix: take an explicit seed (benches expose --seed) and derive streams with\n"
         "rng::seeded(seed).substream(index). Only src/rng/ — the substrate that\n"
         "*implements* seeding — is exempt.\n"},
        {"raw-thread",
         "raw std::thread/std::async/OpenMP outside src/sim/thread_pool.*",
         "All parallelism must route through sim::parallel_for, whose chunked dynamic\n"
         "queue guarantees results independent of the schedule. Raw std::thread,\n"
         "std::jthread, std::async, or OpenMP pragmas introduce their own work\n"
         "partitioning, which is exactly how per-thread-count result drift starts\n"
         "(and it bypasses the pool's exception capture and metrics).\n"
         "\n"
         "Fix: express the work as fn(i) for i in [0, n) and call\n"
         "sim::parallel_for(n, threads, fn). Querying\n"
         "std::thread::hardware_concurrency() is allowed — it spawns nothing.\n"},
        {"unordered-iteration",
         "iterating an unordered container (iteration order feeds results/output)",
         "std::unordered_map/set iteration order depends on the hash implementation,\n"
         "the insertion history, and the bucket count — none of which are part of the\n"
         "(seed, trial index) contract. Iterating one to build output, accumulate\n"
         "floating-point sums, or fill a vector makes CSVs differ across standard\n"
         "libraries and even across runs.\n"
         "\n"
         "Fix: copy keys (or key/value pairs) into a vector and sort it before\n"
         "iterating, or use std::map when the container is iterated at all. Unordered\n"
         "lookups (find/contains/operator[]) are fine and are not flagged. A\n"
         "provably order-insensitive fold (e.g. integer counter sums) may be\n"
         "suppressed with levylint:allow(unordered-iteration).\n"},
        {"float-equality",
         "float/double ==/!= comparison without an explicit tolerance",
         "Exact floating-point equality is almost always a latent bug: two\n"
         "mathematically equal expressions need not be bit-equal once optimization,\n"
         "FMA contraction, or summation order differ. In this repo such comparisons\n"
         "also threaten paper-vs-measured validation, which relies on stable\n"
         "statistics.\n"
         "\n"
         "Fix: compare with an explicit tolerance (std::abs(a - b) <= eps) or\n"
         "restructure to integer arithmetic (the grid substrate is exact for a\n"
         "reason). Intentional exact comparisons — sentinel values, comparisons\n"
         "against a value stored untouched — carry\n"
         "levylint:allow(float-equality) with a short justification.\n"},
        {"include-hygiene",
         "quoted includes must be repo-root-relative, unique, and free of '..'",
         "Every quoted include in this repo is written relative to the repository\n"
         "root (#include \"src/grid/point.h\"), so any file can be moved or read in\n"
         "isolation and include paths never depend on the including file's location.\n"
         "'..' segments and directory-relative paths break that, and duplicate\n"
         "includes are dead weight that hides real dependencies.\n"
         "\n"
         "Fix: spell the path from the repo root (src/..., bench/..., tools/...,\n"
         "include/..., examples/..., tests/...); delete duplicate includes.\n"},
        {"header-guard",
         "headers must open with #pragma once",
         "Repo convention: every header's first directive is #pragma once —\n"
         "before any other directive or declaration. Classic #ifndef guards are\n"
         "rejected too (one convention, zero guard-name collisions).\n"
         "\n"
         "Fix: put #pragma once on the first non-comment line of the header.\n"},
        {"unchecked-write",
         "std::ofstream written but its stream state is never checked",
         "An std::ofstream swallows I/O errors silently: a full disk, a yanked\n"
         "mount, or a permissions change just sets failbit and every subsequent\n"
         "`<<` becomes a no-op. A results file produced that way is truncated or\n"
         "empty with exit status 0 — the worst failure mode for a long sweep,\n"
         "and exactly what the crash-safe writers in src/sim/ exist to prevent.\n"
         "\n"
         "Fix: check the stream at least once after writing (`if (!out) ...`,\n"
         "out.good()/fail()/bad()), or route through sim::csv_writer /\n"
         "sim::atomic_write_file, which fsync, verify, and rename atomically. A\n"
         "genuinely loss-tolerant scratch file may carry\n"
         "levylint:allow(unchecked-write) on its declaration line.\n"},
        {"throwing-call-in-noexcept",
         "throw or container growth (resize/push_back/...) inside an explicitly-noexcept body",
         "An exception escaping a noexcept function does not propagate — it\n"
         "calls std::terminate, killing the whole sweep with no checkpoint\n"
         "flush and no partial results. `throw` is the obvious way to do that;\n"
         "the sneaky way is a container-growth call (resize, push_back,\n"
         "emplace_back, insert, reserve, assign) that can raise bad_alloc.\n"
         "stats::log2_histogram::add shipped exactly this bug: declared\n"
         "noexcept, grew its bucket vector on demand.\n"
         "\n"
         "Fix: drop the noexcept, pre-reserve so the hot path provably cannot\n"
         "allocate, or handle the exception locally (growth inside a try block\n"
         "is not flagged). A call proven non-allocating may carry\n"
         "levylint:allow(throwing-call-in-noexcept) with a justification.\n"},
    };
    return r;
}

// ---------------------------------------------------------------------------
// Small token-stream helpers

using tokens_t = std::vector<token>;

bool is_ident(const token& t, const char* text) {
    return t.kind == tok::identifier && t.text == text;
}

bool is_punct(const token& t, const char* text) {
    return t.kind == tok::punct && t.text == text;
}

const token* at(const tokens_t& ts, std::size_t i) { return i < ts.size() ? &ts[i] : nullptr; }

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const std::string& suffix) {
    return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Split a directive into whitespace-separated words, '#' stripped (handles
/// both "#pragma" and "# pragma").
std::vector<std::string> directive_words(const directive& d) {
    std::string body = d.text;
    const std::size_t hash = body.find('#');
    if (hash != std::string::npos) body = body.substr(hash + 1);
    std::vector<std::string> words;
    std::istringstream in(body);
    std::string w;
    while (in >> w) words.push_back(w);
    return words;
}

/// For `#include` directives: the include target, with <> or "" retained as
/// the first character ('<' or '"'); empty for non-include directives.
std::string include_target(const directive& d) {
    const auto words = directive_words(d);
    if (words.empty() || words[0] != "include") return {};
    std::string rest;
    for (std::size_t i = 1; i < words.size(); ++i) rest += words[i];
    if (rest.empty()) return {};
    if (rest[0] == '"') {
        const std::size_t close = rest.find('"', 1);
        return close == std::string::npos ? rest : rest.substr(0, close + 1);
    }
    if (rest[0] == '<') {
        const std::size_t close = rest.find('>', 1);
        return close == std::string::npos ? rest : rest.substr(0, close + 1);
    }
    return {};
}

/// Index just past a balanced <...> starting at `open` (which must point at
/// "<"); ">>" closes two levels. Returns `open` when no balanced close is
/// found within `limit` tokens (template-vs-comparison ambiguity: bail out).
std::size_t match_angles(const tokens_t& ts, std::size_t open, std::size_t limit = 128) {
    int depth = 0;
    for (std::size_t i = open; i < ts.size() && i < open + limit; ++i) {
        const token& t = ts[i];
        if (t.kind != tok::punct) continue;
        if (t.text == "<") ++depth;
        if (t.text == ">") {
            if (--depth == 0) return i + 1;
        }
        if (t.text == ">>") {
            depth -= 2;
            if (depth <= 0) return i + 1;
        }
        if (t.text == ";" || t.text == "{") break;  // not a template argument list
    }
    return open;
}

const char* kUnorderedNames[] = {"unordered_map", "unordered_set", "unordered_multimap",
                                 "unordered_multiset"};

bool is_unordered_name(const token& t) {
    if (t.kind != tok::identifier) return false;
    return std::any_of(std::begin(kUnorderedNames), std::end(kUnorderedNames),
                       [&](const char* n) { return t.text == n; });
}

// ---------------------------------------------------------------------------
// Suppressions

/// line -> set of rule ids allowed on that line.
using suppression_map = std::map<int, std::set<std::string>>;

void parse_allow_list(const std::string& text, std::set<std::string>& out) {
    const std::string marker = "levylint:allow(";
    std::size_t from = 0;
    while (true) {
        const std::size_t pos = text.find(marker, from);
        if (pos == std::string::npos) return;
        const std::size_t close = text.find(')', pos + marker.size());
        if (close == std::string::npos) return;
        std::string inside = text.substr(pos + marker.size(), close - pos - marker.size());
        std::replace(inside.begin(), inside.end(), ',', ' ');
        std::istringstream in(inside);
        std::string id;
        while (in >> id) out.insert(id);
        from = close + 1;
    }
}

suppression_map build_suppressions(const lexed_file& lf) {
    // Sorted list of lines that carry code (tokens or directives): an
    // own-line comment's allowance applies to the next such line.
    std::vector<int> code_lines;
    for (const token& t : lf.tokens) code_lines.push_back(t.line);
    for (const directive& d : lf.directives) code_lines.push_back(d.line);
    std::sort(code_lines.begin(), code_lines.end());

    suppression_map out;
    for (const comment& c : lf.comments) {
        std::set<std::string> allowed;
        parse_allow_list(c.text, allowed);
        if (allowed.empty()) continue;
        int target = c.line;
        if (c.own_line) {
            const auto it = std::upper_bound(code_lines.begin(), code_lines.end(), c.end_line);
            if (it == code_lines.end()) continue;
            target = *it;
        }
        out[target].insert(allowed.begin(), allowed.end());
    }
    return out;
}

// ---------------------------------------------------------------------------
// Per-rule checks

class analysis {
public:
    analysis(const std::string& rel_path, const lexed_file& lf, const project_symbols& proj)
        : path_(rel_path), lf_(lf), proj_(proj), ts_(lf.tokens) {}

    std::vector<finding> run() {
        check_nondeterministic_seed();
        check_raw_thread();
        collect_local_types();
        check_unordered_iteration();
        check_float_equality();
        check_include_hygiene();
        check_header_guard();
        check_unchecked_write();
        check_throwing_call_in_noexcept();
        std::stable_sort(findings_.begin(), findings_.end(),
                         [](const finding& a, const finding& b) { return a.line < b.line; });
        return std::move(findings_);
    }

private:
    void flag(int line, const char* rule, std::string message) {
        findings_.push_back({path_, line, rule, std::move(message)});
    }

    // --- nondeterministic-seed ---------------------------------------------

    void check_nondeterministic_seed() {
        if (starts_with(path_, "src/rng/")) return;  // the seeding substrate itself
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier) continue;
            const token* prev = i > 0 ? &ts_[i - 1] : nullptr;
            const bool member = prev != nullptr && (prev->text == "." || prev->text == "->");
            if (member) continue;
            // foo::rand() is someone else's rand; std::rand() and plain
            // rand() are the libc one.
            const bool foreign_qualified =
                prev != nullptr && is_punct(*prev, "::") && i >= 2 && !is_ident(ts_[i - 2], "std");
            if (foreign_qualified) continue;

            if (t.text == "random_device") {
                flag(t.line, "nondeterministic-seed",
                     "std::random_device draws entropy outside the (seed, trial) derivation; "
                     "take an explicit seed and use rng::seeded(seed).substream(i)");
            } else if ((t.text == "srand" || t.text == "rand") && at(ts_, i + 1) != nullptr &&
                       is_punct(ts_[i + 1], "(")) {
                flag(t.line, "nondeterministic-seed",
                     t.text + "() is unseeded global-state randomness; route all draws "
                              "through levy::rng streams");
            } else if (t.text == "time" && at(ts_, i + 3) != nullptr && is_punct(ts_[i + 1], "(") &&
                       is_punct(ts_[i + 3], ")") &&
                       (is_ident(ts_[i + 2], "NULL") || is_ident(ts_[i + 2], "nullptr") ||
                        (ts_[i + 2].kind == tok::number && ts_[i + 2].text == "0"))) {
                flag(t.line, "nondeterministic-seed",
                     "time(NULL)-style wall-clock seeding makes runs unreproducible; "
                     "take an explicit seed instead");
            }
        }
    }

    // --- raw-thread --------------------------------------------------------

    void check_raw_thread() {
        if (path_ == "src/sim/thread_pool.h" || path_ == "src/sim/thread_pool.cpp") return;
        for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "std") || !is_punct(ts_[i + 1], "::")) continue;
            const token& name = ts_[i + 2];
            if (name.kind != tok::identifier) continue;
            if (name.text == "thread") {
                // std::thread::hardware_concurrency() spawns nothing.
                if (at(ts_, i + 4) != nullptr && is_punct(ts_[i + 3], "::") &&
                    is_ident(ts_[i + 4], "hardware_concurrency")) {
                    continue;
                }
                flag(name.line, "raw-thread",
                     "raw std::thread bypasses the deterministic worker pool; use "
                     "sim::parallel_for (src/sim/thread_pool.*)");
            } else if (name.text == "jthread" || name.text == "async") {
                flag(name.line, "raw-thread",
                     "std::" + name.text + " bypasses the deterministic worker pool; use "
                                           "sim::parallel_for (src/sim/thread_pool.*)");
            }
        }
        for (const directive& d : lf_.directives) {
            const auto words = directive_words(d);
            if (words.size() >= 2 && words[0] == "pragma" && words[1] == "omp") {
                flag(d.line, "raw-thread",
                     "OpenMP pragmas schedule work outside the deterministic pool; use "
                     "sim::parallel_for");
            }
            if (include_target(d) == "<omp.h>") {
                flag(d.line, "raw-thread", "OpenMP is off-limits; use sim::parallel_for");
            }
        }
    }

    // --- local type tracking (shared by unordered-iteration / float-equality)

    void collect_local_types() {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            if (is_unordered_name(ts_[i]) && at(ts_, i + 1) != nullptr &&
                is_punct(ts_[i + 1], "<")) {
                const std::size_t past = match_angles(ts_, i + 1);
                if (past == i + 1) continue;
                const token* name = at(ts_, past);
                if (name != nullptr && name->kind == tok::identifier) {
                    const token* after = at(ts_, past + 1);
                    if (after != nullptr && is_punct(*after, "(")) {
                        continue;  // function returning unordered: collected project-wide
                    }
                    unordered_vars_.insert(name->text);
                }
            }
            if (is_ident(ts_[i], "double") || is_ident(ts_[i], "float")) {
                // Template arguments (static_cast<double>, span<const double>)
                // are naturally skipped: the next token is '>' not a name.
                std::size_t j = i + 1;
                while (at(ts_, j) != nullptr &&
                       (is_punct(ts_[j], "&") || is_punct(ts_[j], "*") || is_punct(ts_[j], "&&") ||
                        is_ident(ts_[j], "const"))) {
                    ++j;
                }
                const token* name = at(ts_, j);
                const token* after = at(ts_, j + 1);
                if (name != nullptr && name->kind == tok::identifier && after != nullptr &&
                    !is_punct(*after, "(")) {
                    float_vars_.insert(name->text);
                }
            }
            // auto var = some_unordered_returning_function(...)
            if (ts_[i].kind == tok::identifier &&
                proj_.unordered_returning_functions.count(ts_[i].text) != 0 &&
                at(ts_, i + 1) != nullptr && is_punct(ts_[i + 1], "(")) {
                // Walk back over the qualification chain to find `name =`.
                std::size_t j = i;
                while (j >= 2 && is_punct(ts_[j - 1], "::") && ts_[j - 2].kind == tok::identifier) {
                    j -= 2;
                }
                if (j >= 2 && is_punct(ts_[j - 1], "=") && ts_[j - 2].kind == tok::identifier) {
                    unordered_vars_.insert(ts_[j - 2].text);
                }
            }
        }
    }

    // --- unordered-iteration -----------------------------------------------

    bool expr_touches_unordered(std::size_t begin, std::size_t end) const {
        for (std::size_t i = begin; i < end && i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier) continue;
            if (unordered_vars_.count(t.text) != 0 ||
                proj_.unordered_returning_functions.count(t.text) != 0 || is_unordered_name(t)) {
                return true;
            }
        }
        return false;
    }

    void check_unordered_iteration() {
        for (std::size_t i = 0; i + 1 < ts_.size(); ++i) {
            // Range-for over an unordered container.
            if (is_ident(ts_[i], "for") && is_punct(ts_[i + 1], "(")) {
                int depth = 0;
                std::size_t colon = 0, close = 0;
                for (std::size_t j = i + 1; j < ts_.size() && j < i + 200; ++j) {
                    if (is_punct(ts_[j], "(")) ++depth;
                    if (is_punct(ts_[j], ")")) {
                        if (--depth == 0) {
                            close = j;
                            break;
                        }
                    }
                    if (depth == 1 && is_punct(ts_[j], ":") && colon == 0) colon = j;
                    if (is_punct(ts_[j], ";")) break;  // classic for loop
                }
                if (colon != 0 && close != 0 && expr_touches_unordered(colon + 1, close)) {
                    flag(ts_[i].line, "unordered-iteration",
                         "range-for over an unordered container: iteration order is not part "
                         "of the (seed, trial) contract; sort into a vector (or use std::map) "
                         "before results or output depend on it");
                }
            }
            // Explicit iterator walk: container.begin() / cbegin() / rbegin().
            if (ts_[i].kind == tok::identifier && unordered_vars_.count(ts_[i].text) != 0 &&
                is_punct(ts_[i + 1], ".") && at(ts_, i + 2) != nullptr) {
                const std::string& m = ts_[i + 2].text;
                if ((m == "begin" || m == "cbegin" || m == "rbegin") && at(ts_, i + 3) != nullptr &&
                    is_punct(ts_[i + 3], "(")) {
                    flag(ts_[i].line, "unordered-iteration",
                         "iterator walk over an unordered container: iteration order is "
                         "nondeterministic; sort keys into a vector first");
                }
            }
        }
    }

    // --- float-equality ----------------------------------------------------

    struct operand_evidence {
        bool float_literal = false;
        bool int_literal = false;
        bool tracked_var = false;
    };

    operand_evidence scan_operand(std::size_t begin, std::size_t end) const {
        operand_evidence ev;
        for (std::size_t i = begin; i < end && i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind == tok::number) (t.is_float ? ev.float_literal : ev.int_literal) = true;
            if (t.kind == tok::identifier && float_vars_.count(t.text) != 0) ev.tracked_var = true;
        }
        return ev;
    }

    void check_float_equality() {
        for (std::size_t i = 1; i + 1 < ts_.size(); ++i) {
            if (!is_punct(ts_[i], "==") && !is_punct(ts_[i], "!=")) continue;
            if (is_ident(ts_[i - 1], "operator")) continue;  // operator== definition
            // Left operand: a single token, or a balanced (...) group.
            std::size_t lbegin = i - 1, lend = i;
            if (is_punct(ts_[i - 1], ")")) {
                int depth = 0;
                for (std::size_t j = i - 1; j + 1 > 0 && j + 60 > i; --j) {
                    if (is_punct(ts_[j], ")")) ++depth;
                    if (is_punct(ts_[j], "(")) {
                        if (--depth == 0) {
                            lbegin = j;
                            break;
                        }
                    }
                    if (j == 0) break;
                }
            }
            // Right operand: skip unary sign; then a token, call, or group.
            std::size_t rbegin = i + 1;
            if (is_punct(ts_[rbegin], "-") || is_punct(ts_[rbegin], "+")) ++rbegin;
            std::size_t rend = rbegin + 1;
            const token* r0 = at(ts_, rbegin);
            const token* r1 = at(ts_, rbegin + 1);
            if (r0 != nullptr && is_punct(*r0, "(")) {
                int depth = 0;
                for (std::size_t j = rbegin; j < ts_.size() && j < rbegin + 60; ++j) {
                    if (is_punct(ts_[j], "(")) ++depth;
                    if (is_punct(ts_[j], ")") && --depth == 0) {
                        rend = j + 1;
                        break;
                    }
                }
            } else if (r0 != nullptr && r0->kind == tok::identifier && r1 != nullptr &&
                       is_punct(*r1, "(")) {
                rend = rbegin + 2;  // call: judge by the callee name only
            }
            const operand_evidence l = scan_operand(lbegin, lend);
            const operand_evidence r = scan_operand(rbegin, rend);
            // Float-literal evidence always fires. Tracked-variable evidence
            // alone does not fire against an integer literal: name tracking
            // is file-scoped, so `n == 0` in a function where some *other*
            // function has a double named n would be a false positive — and
            // genuine float-zero checks are written `== 0.0`.
            const bool int_literal = l.int_literal || r.int_literal;
            const bool fires = l.float_literal || r.float_literal ||
                               ((l.tracked_var || r.tracked_var) && !int_literal);
            if (fires) {
                flag(ts_[i].line, "float-equality",
                     "floating-point " + ts_[i].text +
                         " without a tolerance; compare std::abs(a - b) <= eps, or "
                         "levylint:allow(float-equality) for an intentional exact check");
            }
        }
    }

    // --- include-hygiene ---------------------------------------------------

    void check_include_hygiene() {
        static const char* kRoots[] = {"src/", "bench/", "tools/", "include/", "examples/",
                                       "tests/"};
        std::set<std::string> seen;
        for (const directive& d : lf_.directives) {
            const std::string target = include_target(d);
            if (target.empty()) continue;
            if (!seen.insert(target).second) {
                flag(d.line, "include-hygiene", "duplicate include of " + target);
            }
            if (target[0] != '"') continue;  // system/angle includes: not ours to police
            const std::string path = target.substr(1, target.size() - 2);
            if (path.find("..") != std::string::npos) {
                flag(d.line, "include-hygiene",
                     "'..' in include path defeats root-relative includes: \"" + path + "\"");
                continue;
            }
            const bool rooted = std::any_of(std::begin(kRoots), std::end(kRoots),
                                            [&](const char* r) { return starts_with(path, r); });
            if (!rooted) {
                flag(d.line, "include-hygiene",
                     "quoted include must be repo-root-relative (src/..., bench/..., ...): \"" +
                         path + "\"");
            }
        }
    }

    // --- header-guard ------------------------------------------------------

    void check_header_guard() {
        if (!ends_with(path_, ".h") && !ends_with(path_, ".hpp")) return;
        int first_code_line = 1;
        if (!lf_.directives.empty() && !ts_.empty()) {
            first_code_line = std::min(lf_.directives[0].line, ts_[0].line);
        } else if (!lf_.directives.empty()) {
            first_code_line = lf_.directives[0].line;
        } else if (!ts_.empty()) {
            first_code_line = ts_[0].line;
        }
        bool seen_pragma_once = false;
        for (std::size_t i = 0; i < lf_.directives.size(); ++i) {
            const auto words = directive_words(lf_.directives[i]);
            const bool is_once = words.size() >= 2 && words[0] == "pragma" && words[1] == "once";
            if (!is_once) continue;
            if (seen_pragma_once) {
                flag(lf_.directives[i].line, "header-guard", "duplicate #pragma once");
                continue;
            }
            seen_pragma_once = true;
            if (i != 0) {
                flag(lf_.directives[i].line, "header-guard",
                     "#pragma once must be the header's first directive");
            } else if (!ts_.empty() && ts_[0].line < lf_.directives[i].line) {
                flag(lf_.directives[i].line, "header-guard",
                     "#pragma once must precede all declarations");
            }
        }
        if (!seen_pragma_once) {
            flag(first_code_line, "header-guard",
                 "header is missing #pragma once (repo convention; #ifndef guards are "
                 "not used here)");
        }
    }

    // --- unchecked-write ---------------------------------------------------

    void check_unchecked_write() {
        // Direct std::ofstream objects only: a reference/parameter is owned —
        // and checked — by someone else.
        std::map<std::string, int> decl_line;
        for (std::size_t i = 0; i + 2 < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "ofstream")) continue;
            const token& name = ts_[i + 1];
            const token& after = ts_[i + 2];
            if (name.kind != tok::identifier) continue;
            if (is_punct(after, "(") || is_punct(after, "{") || is_punct(after, ";") ||
                is_punct(after, "=")) {
                decl_line.emplace(name.text, name.line);
            }
        }
        if (decl_line.empty()) return;

        static const char* kStateMembers[] = {"good",    "fail",    "bad",       "eof",
                                              "is_open", "rdstate", "exceptions"};
        std::set<std::string> written, checked;
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            const token& t = ts_[i];
            if (t.kind != tok::identifier || decl_line.count(t.text) == 0) continue;
            const token* prev = i > 0 ? &ts_[i - 1] : nullptr;
            if (prev != nullptr &&
                (is_punct(*prev, ".") || is_punct(*prev, "->") || is_punct(*prev, "::"))) {
                continue;  // member/qualified access to something else's `out`
            }
            const token* next = at(ts_, i + 1);
            const token* next2 = at(ts_, i + 2);
            const token* next3 = at(ts_, i + 3);
            if (next != nullptr && is_punct(*next, "<<")) {
                written.insert(t.text);
                continue;
            }
            if (next != nullptr && is_punct(*next, ".") && next2 != nullptr &&
                (next2->text == "write" || next2->text == "put") && next3 != nullptr &&
                is_punct(*next3, "(")) {
                written.insert(t.text);
                continue;
            }
            // Anything that observes stream state counts as a check: !out,
            // out.good()/fail()/..., out in a boolean context, or the stream
            // handed to another function (which can check it).
            if (prev != nullptr && is_punct(*prev, "!")) {
                checked.insert(t.text);
                continue;
            }
            if (next != nullptr && is_punct(*next, ".") && next2 != nullptr &&
                std::any_of(std::begin(kStateMembers), std::end(kStateMembers),
                            [&](const char* m) { return next2->text == m; })) {
                checked.insert(t.text);
                continue;
            }
            if (next != nullptr &&
                (is_punct(*next, "&&") || is_punct(*next, "||") || is_punct(*next, "?"))) {
                checked.insert(t.text);
                continue;
            }
            if (prev != nullptr && is_punct(*prev, "(") && i >= 2 &&
                (is_ident(ts_[i - 2], "if") || is_ident(ts_[i - 2], "while")) &&
                next != nullptr && is_punct(*next, ")")) {
                checked.insert(t.text);
                continue;
            }
            if (prev != nullptr && (is_punct(*prev, "(") || is_punct(*prev, ",")) &&
                next != nullptr && (is_punct(*next, ")") || is_punct(*next, ","))) {
                checked.insert(t.text);
            }
        }
        for (const auto& [name, line] : decl_line) {
            if (written.count(name) != 0 && checked.count(name) == 0) {
                flag(line, "unchecked-write",
                     "std::ofstream `" + name +
                         "` is written but its stream state is never checked — a full disk "
                         "truncates the file silently; test !" +
                         name + " (or .good()/.fail()) after writing, or use "
                                "sim::csv_writer / sim::atomic_write_file");
            }
        }
    }

    // --- throwing-call-in-noexcept -----------------------------------------

    /// Scan a noexcept function body starting at its opening '{'. Flags
    /// `throw` and container-growth member calls unless they sit inside a
    /// try block (the exception is then handled locally). A throw inside a
    /// *catch* block still fires: it escapes the handler.
    void scan_noexcept_body(std::size_t open) {
        static const char* kGrowthCalls[] = {"resize", "push_back", "emplace_back",
                                             "insert", "reserve",   "assign"};
        int depth = 0;
        std::vector<int> try_depths;  // body depth of each enclosing try block
        for (std::size_t j = open; j < ts_.size(); ++j) {
            const token& t = ts_[j];
            if (is_punct(t, "{")) {
                ++depth;
                continue;
            }
            if (is_punct(t, "}")) {
                --depth;
                if (!try_depths.empty() && depth < try_depths.back()) try_depths.pop_back();
                if (depth == 0) return;  // end of the noexcept body
                continue;
            }
            if (is_ident(t, "try") && at(ts_, j + 1) != nullptr && is_punct(ts_[j + 1], "{")) {
                try_depths.push_back(depth + 1);
                continue;
            }
            if (!try_depths.empty()) continue;  // handled locally
            if (is_ident(t, "throw")) {
                flag(t.line, "throwing-call-in-noexcept",
                     "throw inside a noexcept function calls std::terminate instead of "
                     "propagating; drop the noexcept or handle the exception locally");
                continue;
            }
            if ((is_punct(t, ".") || is_punct(t, "->")) && at(ts_, j + 2) != nullptr &&
                ts_[j + 1].kind == tok::identifier && is_punct(ts_[j + 2], "(")) {
                const std::string& m = ts_[j + 1].text;
                const bool grows =
                    std::any_of(std::begin(kGrowthCalls), std::end(kGrowthCalls),
                                [&](const char* g) { return m == g; });
                if (grows) {
                    flag(ts_[j + 1].line, "throwing-call-in-noexcept",
                         "." + m + "() can allocate and throw bad_alloc, which a noexcept "
                                   "function turns into std::terminate; drop the noexcept or "
                                   "pre-reserve so the call provably cannot allocate");
                }
            }
        }
    }

    void check_throwing_call_in_noexcept() {
        for (std::size_t i = 0; i < ts_.size(); ++i) {
            if (!is_ident(ts_[i], "noexcept")) continue;
            // `noexcept(expr)`: only noexcept(true) is an unconditional
            // promise. Conditional forms and noexcept(false) — and the
            // noexcept *operator* in expressions — promise nothing here.
            std::size_t after = i + 1;
            if (at(ts_, after) != nullptr && is_punct(ts_[after], "(")) {
                if (at(ts_, after + 2) == nullptr || !is_ident(ts_[after + 1], "true") ||
                    !is_punct(ts_[after + 2], ")")) {
                    continue;
                }
                after += 3;
            }
            // The specifier's body: a '{' before any ';' (pure declaration),
            // '=' (= default / deleted), or ':' (ctor init lists hold
            // brace-init tokens this token scan would misread — skip them).
            std::size_t open = 0;
            for (std::size_t j = after; j < ts_.size() && j < after + 32; ++j) {
                if (is_punct(ts_[j], "{")) {
                    open = j;
                    break;
                }
                if (is_punct(ts_[j], ";") || is_punct(ts_[j], "=") || is_punct(ts_[j], ":")) {
                    break;
                }
            }
            if (open != 0) scan_noexcept_body(open);
        }
    }

    const std::string& path_;
    const lexed_file& lf_;
    const project_symbols& proj_;
    const tokens_t& ts_;
    std::set<std::string> unordered_vars_;
    std::set<std::string> float_vars_;
    std::vector<finding> findings_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Public interface

const std::vector<rule_info>& rules() { return registry(); }

bool known_rule(const std::string& id) {
    return std::any_of(registry().begin(), registry().end(),
                       [&](const rule_info& r) { return r.id == id; });
}

void collect_symbols(const lexed_file& lf, project_symbols& proj) {
    const auto& ts = lf.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!is_unordered_name(ts[i]) || at(ts, i + 1) == nullptr || !is_punct(ts[i + 1], "<")) {
            continue;
        }
        const std::size_t past = match_angles(ts, i + 1);
        if (past == i + 1) continue;
        const token* name = at(ts, past);
        const token* after = at(ts, past + 1);
        if (name != nullptr && name->kind == tok::identifier && after != nullptr &&
            is_punct(*after, "(")) {
            proj.unordered_returning_functions.insert(name->text);
        }
    }
}

std::vector<finding> analyze(const std::string& rel_path, const lexed_file& lf,
                             const project_symbols& proj, bool ignore_suppressions) {
    std::vector<finding> all = analysis(rel_path, lf, proj).run();
    if (ignore_suppressions) return all;
    const suppression_map allowed = build_suppressions(lf);
    std::vector<finding> kept;
    kept.reserve(all.size());
    for (finding& f : all) {
        const auto it = allowed.find(f.line);
        if (it != allowed.end() && it->second.count(f.rule) != 0) continue;
        kept.push_back(std::move(f));
    }
    return kept;
}

}  // namespace levylint
