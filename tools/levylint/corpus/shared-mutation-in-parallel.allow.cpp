// Same writes, justified: the caller pins parallelism to one worker, so
// the "tasks" are sequential in this specific harness.
#include <cstddef>
#include <vector>

template <class F>
void parallel_for(std::size_t n, unsigned threads, F&& fn);

int sequential_census() {
    int count = 0;
    std::vector<int> log;
    parallel_for(100, /*threads=*/1, [&](std::size_t i) {
        // levylint:allow(shared-mutation-in-parallel) threads pinned to 1 above
        count += static_cast<int>(i);
        // levylint:allow(shared-mutation-in-parallel) threads pinned to 1 above
        log.push_back(static_cast<int>(i));
    });
    return count;
}
