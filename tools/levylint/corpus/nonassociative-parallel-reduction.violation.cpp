// Seeded violations: floating-point accumulation from parallel tasks —
// the sum's value follows task completion order, so results change with
// thread count even when the race itself is made atomic.
#include <atomic>
#include <cstddef>

template <class F>
void parallel_for(std::size_t n, unsigned threads, F&& fn);

double schedule_ordered_mean(unsigned threads) {
    double sum = 0.0;
    std::atomic<double> total{0.0};
    parallel_for(1000, threads, [&](std::size_t i) {
        sum += static_cast<double>(i) * 0.5;     // ordered by the schedule
        total.fetch_add(static_cast<double>(i));  // atomic, still unordered
    });
    return (sum + total.load()) / 1000.0;
}
