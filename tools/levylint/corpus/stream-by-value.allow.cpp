// Same forks, each justified as a deliberate replay (e.g. a coupling
// argument that reruns one walker against two path rules).
struct rng {
    double uniform();
    rng substream(unsigned long long i) const;
};

double consume(rng s);  // by-value sink

struct owner {
    rng stream_;
    // levylint:allow(stream-by-value) snapshot for coupled replay
    rng expose() { return stream_; }
};

double copy_forks(rng& main_stream) {
    // levylint:allow(stream-by-value) coupled replay: both sides must see the same draws
    rng fork = main_stream;
    // levylint:allow(stream-by-value) replay harness consumes a snapshot on purpose
    double a = consume(main_stream);
    a += fork.uniform();
    return a + main_stream.uniform();
}
