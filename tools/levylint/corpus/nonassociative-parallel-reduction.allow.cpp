// Same accumulations, justified: a progress estimate displayed to humans,
// never compared or persisted — low-bit drift is acceptable there.
#include <atomic>
#include <cstddef>

template <class F>
void parallel_for(std::size_t n, unsigned threads, F&& fn);

double progress_estimate(unsigned threads) {
    double sum = 0.0;
    std::atomic<double> total{0.0};
    parallel_for(1000, threads, [&](std::size_t i) {
        // levylint:allow(nonassociative-parallel-reduction) display-only progress estimate
        sum += static_cast<double>(i) * 0.5;
        // levylint:allow(nonassociative-parallel-reduction) display-only progress estimate
        total.fetch_add(static_cast<double>(i));
    });
    return (sum + total.load()) / 1000.0;
}
