// Seeded violations: every flavor of nondeterministic seeding the rule bans.
#include <cstdlib>
#include <ctime>
#include <random>

int entropy_soup() {
    std::random_device rd;            // hardware entropy: unreplayable
    srand(time(NULL));                // wall-clock seed + global state
    srand(static_cast<unsigned>(time(nullptr)));
    int x = rand();                   // unseeded global stream
    return x + static_cast<int>(rd());
}
