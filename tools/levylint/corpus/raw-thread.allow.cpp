// Same raw-threading violations, each suppressed with a justification.
#include <future>
// levylint:allow(raw-thread) fixture exercises the include form
#include <omp.h>
#include <thread>

void spawn_chaos() {
    std::thread t([] {});  // levylint:allow(raw-thread) fixture: suppression coverage
    auto f = std::async([] { return 1; });  // levylint:allow(raw-thread)
    // levylint:allow(raw-thread) preceding-line form
    std::jthread j([] {});
#pragma omp parallel for  // levylint:allow(raw-thread)
    for (int i = 0; i < 4; ++i) {
    }
    t.join();
    j.join();
    (void)f.get();
}
