// Seeded violations: (a) path stepping fed the main stream instead of a
// per-phase substream, (b) drawing from a parent stream after a substream
// derived from it was already used.
struct rng {
    double uniform();
    rng substream(unsigned long long i) const;
};

struct stepper {
    int advance(rng& g);  // draws the data-dependent tie coins through g
};

int walk_phase(rng& g, stepper& path) {
    int hits = path.advance(g);  // main stream walks the path
    rng sub = g.substream(7);
    double tie = sub.uniform();
    double len = g.uniform();  // parent drawn after its child
    return hits + static_cast<int>(tie + len);
}
