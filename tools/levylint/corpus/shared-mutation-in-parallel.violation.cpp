// Seeded violations: plain writes to by-reference captures from inside a
// pool task — tasks run concurrently, so these are data races.
#include <cstddef>
#include <vector>

template <class F>
void parallel_for(std::size_t n, unsigned threads, F&& fn);

int racy_census(unsigned threads) {
    int count = 0;
    std::vector<int> log;
    parallel_for(100, threads, [&](std::size_t i) {
        count += static_cast<int>(i);        // racy read-modify-write
        log.push_back(static_cast<int>(i));  // racy container growth
    });
    return count;
}
