// Same iterations, each justified as an order-insensitive fold.
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, std::uint64_t> make_census();

std::uint64_t commutative_folds() {
    std::unordered_map<int, std::uint64_t> census;
    std::unordered_set<int> visited;
    std::uint64_t total = 0;
    // levylint:allow(unordered-iteration) integer sum, order-insensitive
    for (const auto& kv : census) {
        total += kv.second;
    }
    for (int v : visited) {  // levylint:allow(unordered-iteration) integer sum
        total += static_cast<std::uint64_t>(v);
    }
    // levylint:allow(unordered-iteration) counting loop, order-insensitive
    for (auto it = census.begin(); it != census.end(); ++it) {
        ++total;
    }
    for (const auto& kv : make_census()) {  // levylint:allow(unordered-iteration) integer sum
        total += kv.second;
    }
    return total;
}
