// Same branch-dependent draws, each justified (e.g. a scalar-only tool
// whose draws never need to replay against the batch engine).
struct rng {
    double uniform();
    int coin();
    rng substream(unsigned long long i) const;
};

double biased_step(rng& g, bool flip) {
    double x = 1.5;
    if (flip) {
        x = g.uniform();  // levylint:allow(conditional-main-draw) scalar-only diagnostic
    }
    // levylint:allow(conditional-main-draw) rejection loop is the whole algorithm here
    while (g.coin() != 0) {
        x = x * 0.5;
    }
    // levylint:allow(conditional-main-draw) scalar-only diagnostic
    return flip ? g.uniform() : x;
}
