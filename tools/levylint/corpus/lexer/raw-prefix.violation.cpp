// Lexer regression: `ERR "boom"` must lex ERR as an identifier followed by
// a string, not as a raw-string prefix. A lexer that treats any short
// R-containing identifier as a raw prefix hunts for a )ERR" closer that
// never comes and swallows the rest of the file — including the seeded
// violation below, which this fixture requires to stay visible.
#include <random>

#define LOG(x) (void)sizeof(x)

void log_failure() { LOG(ERR "boom"); }

unsigned seed_entropy() {
    std::random_device rd;  // seeded nondeterministic-seed violation
    return rd();
}
