// Lexer regression: raw-string contents are data, not code. The seeding
// and threading tokens inside the literal must produce no findings.
const char* kForbiddenPatterns =
    R"(std::random_device rd; srand(7); time(NULL); std::thread t;)";

const char* kDelimited = R"doc(rand() inside a delimited raw string)doc";
