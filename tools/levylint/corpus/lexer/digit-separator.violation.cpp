// Lexer regression: the digit separator in 0xdead'beef must not open a
// character literal. A lexer that requires a *decimal* digit after the
// quote swallows everything up to the next quote — and with it the seeded
// violation below, which this fixture requires to stay visible.
#include <random>

unsigned mask() { return 0xdead'beef; }

unsigned seed_entropy() {
    std::random_device rd;  // seeded nondeterministic-seed violation
    return rd();
}
