// Seeded violations: exceptions that would escape an explicitly-noexcept
// body and hit std::terminate mid-sweep.
#include <stdexcept>
#include <vector>

void grow(std::vector<int>& v, int n) noexcept {
    v.resize(n);      // may allocate: bad_alloc through noexcept = std::terminate
    v.push_back(n);   // same
    v.reserve(2 * n); // same
}

int checked(int x) noexcept(true) {
    if (x < 0) throw std::invalid_argument("x");  // escapes: terminate
    return x;
}

// Growth handled locally is fine: the exception never escapes.
void guarded(std::vector<int>& v) noexcept {
    try {
        v.push_back(1);
    } catch (...) {
    }
}
