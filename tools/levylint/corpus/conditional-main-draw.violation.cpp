// Seeded violations: draws from the walker's main stream inside
// data-dependent control flow — the draw count then depends on the branch
// taken, desynchronizing scalar/batch replay.
struct rng {
    double uniform();
    int coin();
    rng substream(unsigned long long i) const;
};

double biased_step(rng& g, bool flip) {
    double x = 1.5;
    if (flip) {
        x = g.uniform();  // branch-dependent draw
    }
    while (g.coin() != 0) {  // condition re-draws on iterations 2+
        x = x * 0.5;
    }
    return flip ? g.uniform() : x;  // ternary-arm draw
}
