// levylint:allow(header-guard) third-party vendored header, guard kept as-is
#ifndef LEVYLINT_CORPUS_HEADER_GUARD_ALLOW_H
#define LEVYLINT_CORPUS_HEADER_GUARD_ALLOW_H

int the_nineties_called_again();

#endif
