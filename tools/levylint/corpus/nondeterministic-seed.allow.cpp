// Same seeded violations, every one carrying a justification comment.
#include <cstdlib>
#include <ctime>
#include <random>

int entropy_soup() {
    std::random_device rd;  // levylint:allow(nondeterministic-seed) fixture: suppression coverage
    srand(time(NULL));      // levylint:allow(nondeterministic-seed) both hits share this line
    // levylint:allow(nondeterministic-seed) preceding-line form
    srand(static_cast<unsigned>(time(nullptr)));
    int x = rand();  // levylint:allow(nondeterministic-seed)
    return x + static_cast<int>(rd());
}
