// Seeded violations: every include-hygiene failure mode.
#include "../sneaky/escape.h"
#include "grid/point.h"
#include "src/grid/point.h"
#include "src/grid/point.h"
#include <vector>
#include <vector>

int main() { return 0; }
