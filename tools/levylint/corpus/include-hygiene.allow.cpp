// Same include sins, suppressed line by line (e.g. mid-migration shims).
#include "../sneaky/escape.h"  // levylint:allow(include-hygiene) legacy path during migration
#include "grid/point.h"        // levylint:allow(include-hygiene) generated-code include style
#include "src/grid/point.h"
// levylint:allow(include-hygiene) duplicate kept while the shim forwards
#include "src/grid/point.h"
#include <vector>
#include <vector>  // levylint:allow(include-hygiene) duplicate, second is the real one

int main() { return 0; }
