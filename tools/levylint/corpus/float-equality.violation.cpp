// Seeded violations: exact floating-point equality, every operand shape.
bool exactness_theater(double measured, float ratio, int count) {
    const double expected = 0.25;
    bool bad = measured == expected;       // tracked double vs tracked double
    bad |= measured != 1.0;                // tracked double vs literal
    bad |= 0.5 == static_cast<double>(count);  // literal on the left
    bad |= ratio == 0.1f;                  // float literal
    bad |= (measured * 2.0) == 3.5;        // parenthesized left operand
    bad |= measured == -1.0;               // signed literal
    return bad;
}
