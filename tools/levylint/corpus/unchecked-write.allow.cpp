// Same seeded violations, each suppressed on its declaration line.
#include <fstream>
#include <string>

void dump_table(const std::string& path) {
    // levylint:allow(unchecked-write) scratch file: losing it is acceptable
    std::ofstream out(path);
    out << "alpha,p_hit\n";
    out << "2,1\n";
}

void dump_binary(const std::string& path, const char* bytes, long n) {
    std::ofstream blob(path, std::ios::binary);  // levylint:allow(unchecked-write) debug dump
    blob.write(bytes, n);
}
