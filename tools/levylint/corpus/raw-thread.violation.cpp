// Seeded violations: raw threading primitives outside the worker pool.
#include <future>
#include <omp.h>
#include <thread>

void spawn_chaos() {
    std::thread t([] {});            // raw thread: schedule-dependent results
    auto f = std::async([] { return 1; });
    std::jthread j([] {});
#pragma omp parallel for
    for (int i = 0; i < 4; ++i) {
    }
    t.join();
    j.join();
    (void)f.get();
}

unsigned fine_to_query() {
    // The exception: querying concurrency spawns nothing.
    return std::thread::hardware_concurrency();
}
