// Same seeded violations, each suppressed with a justification.
#include <stdexcept>
#include <vector>

void grow(std::vector<int>& v, int n) noexcept {
    v.resize(n);      // levylint:allow(throwing-call-in-noexcept) caller pre-reserved n
    v.push_back(n);   // levylint:allow(throwing-call-in-noexcept) capacity reserved above
    v.reserve(2 * n); // levylint:allow(throwing-call-in-noexcept) bounded by ctor reserve
}

int checked(int x) noexcept(true) {
    // levylint:allow(throwing-call-in-noexcept) contract-checked: x >= 0 by precondition
    if (x < 0) throw std::invalid_argument("x");
    return x;
}
