// Same comparisons, each annotated as an intentional exact check.
bool sentinel_checks(double measured, float ratio, int count) {
    const double expected = 0.25;
    // levylint:allow(float-equality) sentinel: value stored untouched
    bool ok = measured == expected;
    ok &= measured != 1.0;  // levylint:allow(float-equality) sentinel
    ok &= 0.5 == static_cast<double>(count);  // levylint:allow(float-equality) exact by construction
    ok &= ratio == 0.1f;  // levylint:allow(float-equality) bit-compare against stored constant
    // levylint:allow(float-equality) product of exact powers of two
    ok &= (measured * 2.0) == 3.5;
    ok &= measured == -1.0;  // levylint:allow(float-equality) sentinel value
    return ok;
}
