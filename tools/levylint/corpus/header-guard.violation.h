// A header without #pragma once (classic guards are also rejected).
#ifndef LEVYLINT_CORPUS_HEADER_GUARD_VIOLATION_H
#define LEVYLINT_CORPUS_HEADER_GUARD_VIOLATION_H

int the_nineties_called();

#endif
