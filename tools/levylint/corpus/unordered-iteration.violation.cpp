// Seeded violations: iteration order of unordered containers leaking out.
#include <cstdint>
#include <iostream>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, std::uint64_t> make_census();

void leak_order() {
    std::unordered_map<int, std::uint64_t> census;
    std::unordered_set<int> visited;
    for (const auto& kv : census) {  // order feeds output
        std::cout << kv.first << "," << kv.second << "\n";
    }
    for (int v : visited) {  // order feeds output
        std::cout << v << "\n";
    }
    for (auto it = census.begin(); it != census.end(); ++it) {
        std::cout << it->first << "\n";
    }
    for (const auto& kv : make_census()) {  // unordered-returning call
        std::cout << kv.first << "\n";
    }
}
