// Seeded violations: stream copies fork the draw sequence — both copies
// then replay identical randomness.
struct rng {
    double uniform();
    rng substream(unsigned long long i) const;
};

double consume(rng s);  // by-value sink

struct owner {
    rng stream_;
    rng expose() { return stream_; }  // returning the member forks it
};

double copy_forks(rng& main_stream) {
    rng fork = main_stream;           // copy-init fork
    double a = consume(main_stream);  // by-value pass...
    a += fork.uniform();
    return a + main_stream.uniform();  // ...and the stream is used again here
}
