// Seeded violations: results streamed to disk with no stream-state check.
#include <fstream>
#include <string>

void dump_table(const std::string& path) {
    std::ofstream out(path);
    out << "alpha,p_hit\n";  // a full disk sets failbit and this becomes a no-op
    out << "2,1\n";
    // ...function returns, exit status 0, file silently truncated or empty.
}

void dump_binary(const std::string& path, const char* bytes, long n) {
    std::ofstream blob(path, std::ios::binary);
    blob.write(bytes, n);  // .write() is just as silent as <<
}
