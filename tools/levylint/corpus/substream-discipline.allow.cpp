// Same violations, justified: a scalar baseline walker that deliberately
// walks on its main stream and never replays against the batch engine.
struct rng {
    double uniform();
    rng substream(unsigned long long i) const;
};

struct stepper {
    int advance(rng& g);  // draws the data-dependent tie coins through g
};

int walk_phase(rng& g, stepper& path) {
    // levylint:allow(substream-discipline) scalar baseline: main-stream walk by design
    int hits = path.advance(g);
    rng sub = g.substream(7);
    double tie = sub.uniform();
    // levylint:allow(substream-discipline) diagnostic draw; sequence never replayed
    double len = g.uniform();
    return hits + static_cast<int>(tie + len);
}
