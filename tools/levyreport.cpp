// levyreport — cross-run summary and schema check for the structured bench
// results (BENCH_<id>.json, schema "levy-bench" v1) written by the
// experiment binaries under --json/--json-dir.
//
//   levyreport DIR              summary table: one line per experiment with
//                               trials/sec, utilization, censored count, and
//                               the worst paper-vs-fit drift in its rows
//   levyreport DIR BASELINE     adds trials/sec and drift deltas vs the same
//                               experiments loaded from BASELINE
//   levyreport --check DIR      validate every document against schema v1;
//                               exit 1 (listing the problems) on any failure
//   --fail-on-regression=PCT    with a BASELINE: exit 1 when any experiment's
//                               trials/s dropped more than PCT percent below
//                               its baseline (the CI bench-smoke gate)
//
// Paper drift is noise-aware: when a measured/fit cell carries a "± h" 95%
// interval (the benches' CI columns), only the part of |measured - paper|
// beyond h counts as drift — a value inside its own interval reports 0.
//
// Exit codes: 0 clean, 1 validation failure / regression / bad usage,
// 2 I/O error.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.h"
#include "src/obs/report.h"
#include "src/stats/table.h"

namespace {

namespace fs = std::filesystem;
using levy::obs::json;

struct loaded_doc {
    std::string file;
    json doc;
};

std::vector<loaded_doc> load_dir(const std::string& dir) {
    std::vector<loaded_doc> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (!entry.is_regular_file() || name.rfind("BENCH_", 0) != 0 ||
            entry.path().extension() != ".json") {
            continue;
        }
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream ss;
        ss << in.rdbuf();
        if (!in.good() && !in.eof()) {
            throw std::runtime_error("cannot read " + entry.path().string());
        }
        out.push_back({name, json::parse(ss.str())});
    }
    std::sort(out.begin(), out.end(),
              [](const loaded_doc& a, const loaded_doc& b) { return a.file < b.file; });
    return out;
}

/// Leading numeric value of a table cell ("-0.515", "2.50 (=-alpha)",
/// "0.1234 ± 0.01"); nullopt when the cell has no leading number.
std::optional<double> leading_number(const std::string& cell) {
    try {
        std::size_t used = 0;
        const double v = std::stod(cell, &used);
        return used > 0 ? std::optional<double>(v) : std::nullopt;
    } catch (...) {
        return std::nullopt;
    }
}

/// Half-width of a "value ± half" cell (stats::fmt_pm writes the UTF-8 ±);
/// nullopt when the cell carries no interval.
std::optional<double> pm_half_width(const std::string& cell) {
    const std::size_t pm = cell.find("\xc2\xb1");  // "±"
    if (pm == std::string::npos) return std::nullopt;
    return leading_number(cell.substr(pm + 2));
}

bool contains_ci(const std::string& haystack, const std::string& needle) {
    const auto it = std::search(haystack.begin(), haystack.end(), needle.begin(), needle.end(),
                                [](char a, char b) {
                                    return std::tolower(static_cast<unsigned char>(a)) ==
                                           std::tolower(static_cast<unsigned char>(b));
                                });
    return it != haystack.end();
}

/// Worst |measured - paper| over the document's rows, pairing each "paper"
/// column with the row's measured/fit column. The benches label their
/// prediction columns with "paper" and the regression outputs with "fit" /
/// "measured"/"slope", so this needs no per-experiment schema knowledge.
/// A measured cell with a "± h" interval only contributes the part of the
/// gap beyond h: sampling noise inside the estimator's own 95% CI is not
/// drift.
std::optional<double> paper_drift(const json& doc) {
    std::optional<double> worst;
    for (const json& row : doc.at("rows").elements()) {
        const json& values = row.at("values");
        std::optional<double> paper;
        std::optional<double> measured;
        double half_width = 0.0;
        for (const auto& [column, cell] : values.members()) {
            if (!cell.is_string()) continue;
            const auto v = leading_number(cell.as_string());
            if (!v) continue;
            if (contains_ci(column, "paper")) {
                paper = v;
            } else if (contains_ci(column, "fit") || contains_ci(column, "measured") ||
                       contains_ci(column, "slope")) {
                measured = v;
                half_width = pm_half_width(cell.as_string()).value_or(0.0);
            }
        }
        if (paper && measured) {
            const double drift =
                std::max(0.0, std::fabs(*measured - *paper) - half_width);
            if (!worst || drift > *worst) worst = drift;
        }
    }
    return worst;
}

std::string fmt_opt(const std::optional<double>& v, int precision) {
    return v ? levy::stats::fmt(*v, precision) : "-";
}

int check(const std::vector<loaded_doc>& docs) {
    int failures = 0;
    for (const auto& [file, doc] : docs) {
        const std::vector<std::string> errors = levy::obs::validate_bench_json(doc);
        if (errors.empty()) {
            std::cout << file << ": ok\n";
        } else {
            ++failures;
            std::cout << file << ": INVALID\n";
            for (const std::string& e : errors) std::cout << "  - " << e << '\n';
        }
    }
    std::cout << docs.size() << " document(s), " << failures << " invalid\n";
    return failures == 0 ? 0 : 1;
}

struct summary {
    double trials = 0.0;
    double trials_per_sec = 0.0;
    std::optional<double> utilization;
    double censored = 0.0;
    std::optional<double> drift;
};

summary summarize(const json& doc) {
    const json& m = doc.at("metrics");
    summary s;
    s.trials = m.at("trials").as_number();
    s.trials_per_sec = m.at("trials_per_sec").as_number();
    if (m.at("utilization").is_number()) s.utilization = m.at("utilization").as_number();
    s.censored = m.at("censored").as_number();
    s.drift = paper_drift(doc);
    return s;
}

int report(const std::vector<loaded_doc>& docs,
           const std::map<std::string, summary>& baseline,
           std::optional<double> fail_on_regression_pct) {
    std::vector<std::string> header = {"experiment", "trials", "trials/s", "util", "censored",
                                       "paper drift"};
    const bool compare = !baseline.empty();
    if (compare) {
        header.push_back("delta trials/s");
        header.push_back("delta drift");
    }
    levy::stats::text_table table(std::move(header));
    std::vector<std::string> regressions;
    for (const auto& [file, doc] : docs) {
        std::string id = doc.at("experiment").as_string();
        const json* interrupted = doc.find("interrupted");
        if (interrupted != nullptr && interrupted->is_bool() && interrupted->as_bool()) {
            id += " (interrupted)";
        }
        const summary s = summarize(doc);
        std::vector<std::string> row = {
            id,
            levy::stats::fmt(s.trials, 0),
            levy::stats::fmt(s.trials_per_sec, 0),
            s.utilization ? levy::stats::fmt(*s.utilization * 100.0, 0) + "%" : "n/a",
            levy::stats::fmt(s.censored, 0),
            fmt_opt(s.drift, 4),
        };
        if (compare) {
            const auto base = baseline.find(id);
            if (base == baseline.end()) {
                row.push_back("new");
                row.push_back("new");
            } else {
                const double base_rate = base->second.trials_per_sec;
                const double delta_pct =
                    base_rate > 0.0 ? (s.trials_per_sec / base_rate - 1.0) * 100.0 : 0.0;
                row.push_back(base_rate > 0.0 ? levy::stats::fmt(delta_pct, 1) + "%" : "-");
                row.push_back(s.drift && base->second.drift
                                  ? levy::stats::fmt(*s.drift - *base->second.drift, 4)
                                  : "-");
                if (fail_on_regression_pct && -delta_pct > *fail_on_regression_pct) {
                    regressions.push_back(id + ": " + levy::stats::fmt(-delta_pct, 1) +
                                          "% slower than baseline (tolerance " +
                                          levy::stats::fmt(*fail_on_regression_pct, 1) +
                                          "%)");
                }
            }
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    for (const std::string& r : regressions) {
        std::cerr << "levyreport: throughput regression — " << r << '\n';
    }
    return regressions.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    bool check_mode = false;
    std::optional<double> fail_on_regression_pct;
    std::vector<std::string> dirs;
    constexpr const char* kUsage =
        "usage: levyreport [--check] [--fail-on-regression=PCT] DIR [BASELINE_DIR]\n";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--check") {
            check_mode = true;
        } else if (arg.rfind("--fail-on-regression=", 0) == 0) {
            const auto pct = leading_number(arg.substr(std::string("--fail-on-regression=").size()));
            if (!pct || *pct < 0.0) {
                std::cerr << "levyreport: --fail-on-regression needs a percentage >= 0\n";
                return 1;
            }
            fail_on_regression_pct = pct;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << kUsage;
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "levyreport: unknown flag " << arg << '\n';
            return 1;
        } else {
            dirs.push_back(arg);
        }
    }
    if (dirs.empty() || dirs.size() > 2 || (check_mode && dirs.size() != 1) ||
        (fail_on_regression_pct && dirs.size() != 2)) {
        if (fail_on_regression_pct && dirs.size() != 2) {
            std::cerr << "levyreport: --fail-on-regression requires a BASELINE_DIR\n";
        }
        std::cerr << kUsage;
        return 1;
    }
    try {
        const std::vector<loaded_doc> docs = load_dir(dirs[0]);
        if (docs.empty()) {
            std::cerr << "levyreport: no BENCH_*.json in " << dirs[0] << '\n';
            return check_mode ? 1 : 0;
        }
        if (check_mode) return check(docs);
        std::map<std::string, summary> baseline;
        if (dirs.size() == 2) {
            for (const auto& [file, doc] : load_dir(dirs[1])) {
                baseline.emplace(doc.at("experiment").as_string(), summarize(doc));
            }
        }
        return report(docs, baseline, fail_on_regression_pct);
    } catch (const std::exception& e) {
        std::cerr << "levyreport: " << e.what() << '\n';
        return 2;
    }
}
