#include <gtest/gtest.h>

#include "src/stats/proportion.h"

namespace levy::stats {
namespace {

TEST(Wilson, PointEstimate) {
    const auto p = wilson_interval(30, 100);
    EXPECT_DOUBLE_EQ(p.estimate(), 0.3);
    EXPECT_EQ(p.successes, 30u);
    EXPECT_EQ(p.trials, 100u);
}

TEST(Wilson, IntervalContainsEstimate) {
    const auto p = wilson_interval(30, 100);
    EXPECT_LT(p.lo, p.estimate());
    EXPECT_GT(p.hi, p.estimate());
}

TEST(Wilson, BoundsStayInUnitInterval) {
    EXPECT_GE(wilson_interval(0, 10).lo, 0.0);
    EXPECT_LE(wilson_interval(10, 10).hi, 1.0);
}

TEST(Wilson, ZeroSuccessesStillInformative) {
    // Rule-of-three flavor: with 0/100, the upper bound is small but not 0.
    const auto p = wilson_interval(0, 100);
    EXPECT_DOUBLE_EQ(p.lo, 0.0);
    EXPECT_GT(p.hi, 0.0);
    EXPECT_LT(p.hi, 0.06);
}

TEST(Wilson, AllSuccessesMirrorsZero) {
    const auto p = wilson_interval(100, 100);
    EXPECT_DOUBLE_EQ(p.hi, 1.0);
    EXPECT_GT(p.lo, 0.94);
}

TEST(Wilson, WidthShrinksWithSampleSize) {
    const auto small = wilson_interval(30, 100);
    const auto large = wilson_interval(3000, 10000);
    EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
}

TEST(Wilson, HigherZWidensInterval) {
    const auto z95 = wilson_interval(30, 100, 1.96);
    const auto z99 = wilson_interval(30, 100, 2.58);
    EXPECT_LT(z95.hi - z95.lo, z99.hi - z99.lo);
}

TEST(Wilson, KnownValue) {
    // Classical check: 50/100 at z=1.96 → approximately [0.404, 0.596].
    const auto p = wilson_interval(50, 100);
    EXPECT_NEAR(p.lo, 0.4038, 0.001);
    EXPECT_NEAR(p.hi, 0.5962, 0.001);
}

TEST(Wilson, Errors) {
    EXPECT_THROW((void)wilson_interval(1, 0), std::invalid_argument);
    EXPECT_THROW((void)wilson_interval(11, 10), std::invalid_argument);
}

TEST(Proportion, DefaultIsEmpty) {
    const proportion p{};
    EXPECT_DOUBLE_EQ(p.estimate(), 0.0);
}

}  // namespace
}  // namespace levy::stats
