#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/rng/rng_stream.h"
#include "src/stats/goodness_of_fit.h"

namespace levy::stats {
namespace {

TEST(KsStatistic, ZeroForIdenticalSamples) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(ks_statistic(xs, xs), 0.0);
}

TEST(KsStatistic, OneForDisjointSupports) {
    const std::vector<double> a = {1.0, 2.0, 3.0};
    const std::vector<double> b = {10.0, 11.0};
    EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KsStatistic, KnownSmallCase) {
    const std::vector<double> a = {1.0, 3.0};
    const std::vector<double> b = {2.0, 4.0};
    // F_a jumps to 0.5 at 1, 1.0 at 3; F_b to 0.5 at 2, 1.0 at 4.
    // Max gap: at x in [1,2): |0.5 - 0| = 0.5.
    EXPECT_DOUBLE_EQ(ks_statistic(a, b), 0.5);
}

TEST(KsPValue, HighForSameDistribution) {
    rng g = rng::seeded(1);
    std::vector<double> a, b;
    for (int i = 0; i < 2000; ++i) {
        a.push_back(g.uniform());
        b.push_back(g.uniform());
    }
    EXPECT_GT(ks_p_value(a, b), 0.01);
}

TEST(KsPValue, LowForShiftedDistribution) {
    rng g = rng::seeded(2);
    std::vector<double> a, b;
    for (int i = 0; i < 2000; ++i) {
        a.push_back(g.uniform());
        b.push_back(g.uniform() + 0.2);
    }
    EXPECT_LT(ks_p_value(a, b), 1e-6);
}

TEST(KsStatistic, Errors) {
    const std::vector<double> empty, one = {1.0};
    EXPECT_THROW((void)ks_statistic(empty, one), std::invalid_argument);
}

TEST(ChiSquareUpperTail, KnownQuantiles) {
    // Chi-square with 1 df: P(X > 3.841) ≈ 0.05; 2 df: P(X > 5.991) ≈ 0.05.
    EXPECT_NEAR(chi_square_upper_tail(3.841, 1), 0.05, 0.001);
    EXPECT_NEAR(chi_square_upper_tail(5.991, 2), 0.05, 0.001);
    EXPECT_NEAR(chi_square_upper_tail(0.0, 3), 1.0, 1e-12);
}

TEST(ChiSquareTest, FairDieLooksFair) {
    rng g = rng::seeded(3);
    std::vector<std::uint64_t> counts(6, 0);
    const std::uint64_t n = 60000;
    for (std::uint64_t i = 0; i < n; ++i) ++counts[g.below(6)];
    const std::vector<double> probs(6, 1.0 / 6.0);
    const auto result = chi_square_test(counts, probs, n);
    EXPECT_EQ(result.degrees_of_freedom, 5u);
    EXPECT_GT(result.p_value, 0.001);
}

TEST(ChiSquareTest, LoadedDieIsDetected) {
    // Simulate a die that favors face 0 by 10%.
    rng g = rng::seeded(4);
    std::vector<std::uint64_t> counts(6, 0);
    const std::uint64_t n = 60000;
    for (std::uint64_t i = 0; i < n; ++i) {
        ++counts[g.bernoulli(0.25) ? 0 : g.below(6)];
    }
    const std::vector<double> probs(6, 1.0 / 6.0);
    const auto result = chi_square_test(counts, probs, n);
    EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquareTest, PoolsOverflowCell) {
    // Listed cells cover only part of the distribution; the remainder is
    // pooled. Counts: 50 in cell A, 50 elsewhere; expected 0.5/0.5.
    const std::vector<std::uint64_t> observed = {50};
    const std::vector<double> probs = {0.5};
    const auto result = chi_square_test(observed, probs, 100);
    EXPECT_EQ(result.degrees_of_freedom, 1u);
    EXPECT_NEAR(result.statistic, 0.0, 1e-12);
    EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(ChiSquareTest, Errors) {
    const std::vector<std::uint64_t> obs = {1, 2};
    const std::vector<double> probs = {0.5};
    EXPECT_THROW((void)chi_square_test(obs, probs, 3), std::invalid_argument);
    const std::vector<double> zero = {0.0, 1.0};
    EXPECT_THROW((void)chi_square_test(obs, zero, 3), std::invalid_argument);
    EXPECT_THROW((void)chi_square_upper_tail(1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace levy::stats
