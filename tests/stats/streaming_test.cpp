#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "src/stats/streaming.h"
#include "src/stats/summary.h"

namespace levy::stats {
namespace {

TEST(NormalInterval, MatchesBatchSummaryToTolerance) {
    std::mt19937_64 gen(42);
    std::lognormal_distribution<double> dist(2.0, 1.5);
    std::vector<double> xs;
    running_summary stream;
    for (int i = 0; i < 5000; ++i) {
        const double x = dist(gen);
        xs.push_back(x);
        stream.add(x);
    }
    const running_summary batch = summarize(xs);
    // The streaming accumulator IS the batch path internally, so agreement
    // is exact; 1e-12 relative bounds any future reimplementation.
    EXPECT_NEAR(stream.mean(), batch.mean(), 1e-12 * std::fabs(batch.mean()));
    EXPECT_NEAR(stream.variance(), batch.variance(), 1e-12 * batch.variance());
    EXPECT_NEAR(stream.std_error(), batch.std_error(), 1e-12 * batch.std_error());
    const confidence_interval ci = normal_interval(stream);
    EXPECT_DOUBLE_EQ(ci.estimate, stream.mean());
    EXPECT_NEAR(ci.half_width(), 1.96 * stream.std_error(), 1e-12);
    EXPECT_LT(ci.lo, ci.estimate);
    EXPECT_GT(ci.hi, ci.estimate);
}

TEST(NormalInterval, MergedShardsMatchSingleAccumulator) {
    std::mt19937_64 gen(7);
    std::exponential_distribution<double> dist(0.125);
    running_summary whole;
    std::vector<running_summary> shards(5);
    for (int i = 0; i < 4000; ++i) {
        const double x = dist(gen);
        whole.add(x);
        shards[static_cast<std::size_t>(i) % shards.size()].add(x);
    }
    running_summary merged;
    for (const running_summary& s : shards) merged.merge(s);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * std::fabs(whole.mean()));
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-12 * whole.variance());
}

TEST(NormalInterval, DegenerateInputsCollapseToPoint) {
    running_summary one;
    one.add(3.5);
    const confidence_interval ci = normal_interval(one);
    EXPECT_DOUBLE_EQ(ci.estimate, 3.5);
    EXPECT_DOUBLE_EQ(ci.lo, 3.5);
    EXPECT_DOUBLE_EQ(ci.hi, 3.5);
    EXPECT_DOUBLE_EQ(ci.half_width(), 0.0);
    const confidence_interval direct = normal_interval(1.0, 0.0);
    EXPECT_DOUBLE_EQ(direct.lo, direct.hi);
}

TEST(Log2Sketch, BucketsMatchLogLayout) {
    log2_sketch s;
    s.add(0);
    s.add(1);
    s.add(2);
    s.add(3);
    s.add(1024);
    EXPECT_EQ(s.total(), 5u);
    EXPECT_EQ(s.count(0), 1u);  // zeros
    EXPECT_EQ(s.count(1), 1u);  // [1, 2)
    EXPECT_EQ(s.count(2), 2u);  // [2, 4)
    EXPECT_EQ(s.count(11), 1u); // [1024, 2048)
}

TEST(Log2Sketch, QuantileDomainAndMonotonicity) {
    log2_sketch s;
    for (std::uint64_t x = 1; x <= 1000; ++x) s.add(x);
    // Full [0, 1] domain, monotone in q, endpoints inside the data's span.
    double prev = -1.0;
    for (double q = 0.0; q <= 1.0; q += 0.05) {
        const double v = s.quantile(q);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_GE(s.quantile(0.0), 1.0);
    EXPECT_LE(s.quantile(1.0), 1024.0);  // top bucket edge
    // Median of 1..1000 within its bucket's factor-2 envelope.
    EXPECT_GE(s.median(), 256.0);
    EXPECT_LE(s.median(), 1024.0);
    EXPECT_THROW((void)s.quantile(-0.01), std::invalid_argument);
    EXPECT_THROW((void)s.quantile(1.01), std::invalid_argument);
    EXPECT_THROW((void)log2_sketch{}.quantile(0.5), std::invalid_argument);
}

TEST(Log2Sketch, MergeIsExactAndOrderInvariant) {
    std::mt19937_64 gen(99);
    std::uniform_int_distribution<std::uint64_t> dist(0, std::uint64_t{1} << 40);
    std::vector<std::uint64_t> xs(3000);
    for (auto& x : xs) x = dist(gen);

    log2_sketch serial;
    for (std::uint64_t x : xs) serial.add(x);

    // Partition as 2, 3, and 7 "threads" and merge in different orders; the
    // result must be bit-identical every time (operator== compares buckets).
    for (const std::size_t parts : {2u, 3u, 7u}) {
        std::vector<log2_sketch> shards(parts);
        for (std::size_t i = 0; i < xs.size(); ++i) shards[i % parts].add(xs[i]);
        log2_sketch forward;
        for (const auto& s : shards) forward.merge(s);
        log2_sketch backward;
        for (auto it = shards.rbegin(); it != shards.rend(); ++it) backward.merge(*it);
        EXPECT_TRUE(forward == serial);
        EXPECT_TRUE(backward == serial);
    }
}

TEST(Log2Sketch, QuantileInterpolatesInsideBucket) {
    log2_sketch s;
    for (int i = 0; i < 100; ++i) s.add(2);  // all mass in [2, 4)
    EXPECT_GE(s.quantile(0.0), 2.0);
    EXPECT_LE(s.quantile(1.0), 4.0);
    EXPECT_LT(s.quantile(0.25), s.quantile(0.75));
}

TEST(Log2Sketch, ZerosArePointMass) {
    log2_sketch s;
    s.add(0);
    s.add(0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
}

}  // namespace
}  // namespace levy::stats
