#include <gtest/gtest.h>

#include <vector>

#include "src/stats/ecdf.h"
#include "src/stats/summary.h"

namespace levy::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
    const std::vector<double> xs = {3.0, 1.0, 2.0};
    const ecdf f(xs);
    EXPECT_DOUBLE_EQ(f(0.5), 0.0);
    EXPECT_DOUBLE_EQ(f(1.0), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(f(1.5), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(f(2.0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(f(3.0), 1.0);
    EXPECT_DOUBLE_EQ(f(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
    const std::vector<double> xs = {2.0, 2.0, 2.0, 5.0};
    const ecdf f(xs);
    EXPECT_DOUBLE_EQ(f(2.0), 0.75);
    EXPECT_DOUBLE_EQ(f(1.9), 0.0);
}

TEST(Ecdf, QuantileInverse) {
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    const ecdf f(xs);
    EXPECT_DOUBLE_EQ(f.quantile(0.25), 10.0);
    EXPECT_DOUBLE_EQ(f.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(f.quantile(0.75), 30.0);
    EXPECT_DOUBLE_EQ(f.quantile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(f.quantile(0.1), 10.0);
}

TEST(Ecdf, SortedSamplesExposed) {
    const std::vector<double> xs = {3.0, 1.0, 2.0};
    const ecdf f(xs);
    EXPECT_EQ(f.sorted_samples(), (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(f.size(), 3u);
}

// Regression: the quantile domain is [0, 1] in both ecdf::quantile and
// stats::quantile — q = 0 used to throw here while stats::quantile accepted
// it, so code moving between the two tripped on the boundary.
TEST(Ecdf, QuantileDomainMatchesStatsQuantile) {
    const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    const ecdf f(xs);
    EXPECT_DOUBLE_EQ(f.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(f.quantile(1.0), 40.0);
    EXPECT_DOUBLE_EQ(f.quantile(0.0), quantile(xs, 0.0));
    EXPECT_DOUBLE_EQ(f.quantile(1.0), quantile(xs, 1.0));
}

TEST(Ecdf, Errors) {
    const std::vector<double> empty;
    EXPECT_THROW(ecdf{empty}, std::invalid_argument);
    const std::vector<double> xs = {1.0};
    const ecdf f(xs);
    EXPECT_DOUBLE_EQ(f.quantile(0.0), 1.0);  // boundary is in-domain now
    EXPECT_THROW((void)f.quantile(-0.01), std::invalid_argument);
    EXPECT_THROW((void)f.quantile(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace levy::stats
