#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/stats/regression.h"

namespace levy::stats {
namespace {

TEST(LinearFit, ExactLineRecovered) {
    const std::vector<double> xs = {0.0, 1.0, 2.0, 3.0};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(2.5 * x - 1.0);
    const auto fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.5, 1e-12);
    EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineApproximated) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> ys = {2.1, 3.9, 6.2, 7.8, 10.1};
    const auto fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 2.0, 0.1);
    EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, FlatLine) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    const std::vector<double> ys = {7.0, 7.0, 7.0};
    const auto fit = linear_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 0.0, 1e-12);
    EXPECT_NEAR(fit.intercept, 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);  // convention: zero variance → perfect
}

TEST(LinearFit, Errors) {
    const std::vector<double> one = {1.0};
    EXPECT_THROW((void)linear_fit(one, one), std::invalid_argument);
    const std::vector<double> xs = {2.0, 2.0};
    const std::vector<double> ys = {1.0, 3.0};
    EXPECT_THROW((void)linear_fit(xs, ys), std::invalid_argument);
    const std::vector<double> mismatched = {1.0, 2.0, 3.0};
    const std::vector<double> two = {1.0, 2.0};
    EXPECT_THROW((void)linear_fit(mismatched, two), std::invalid_argument);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
    // y = 3 x^{-1.7}: the regression slope is the scaling exponent — the
    // exact pattern the benches use to validate Θ(ℓ^c) claims.
    std::vector<double> xs, ys;
    for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
        xs.push_back(x);
        ys.push_back(3.0 * std::pow(x, -1.7));
    }
    const auto fit = loglog_fit(xs, ys);
    EXPECT_NEAR(fit.slope, -1.7, 1e-10);
    EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(LogLogFit, SkipsNonPositivePoints) {
    const std::vector<double> xs = {1.0, 2.0, 0.0, 4.0, 8.0};
    const std::vector<double> ys = {1.0, 2.0, 5.0, 4.0, 8.0};  // y = x where valid
    const auto fit = loglog_fit(xs, ys);
    EXPECT_NEAR(fit.slope, 1.0, 1e-12);
}

TEST(LogLogFit, ThrowsWhenTooFewUsablePoints) {
    const std::vector<double> xs = {0.0, -1.0, 3.0};
    const std::vector<double> ys = {1.0, 1.0, 1.0};
    EXPECT_THROW((void)loglog_fit(xs, ys), std::invalid_argument);
}

}  // namespace
}  // namespace levy::stats
