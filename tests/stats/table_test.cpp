#include <gtest/gtest.h>

#include <sstream>

#include "src/stats/table.h"

namespace levy::stats {
namespace {

TEST(TextTable, BasicLayout) {
    text_table t({"a", "bb"});
    t.add_row({"1", "2"});
    t.add_row({"333", "4"});
    std::ostringstream ss;
    t.print(ss);
    const std::string out = ss.str();
    EXPECT_NE(out.find("|   a | bb |"), std::string::npos) << out;
    EXPECT_NE(out.find("| 333 |  4 |"), std::string::npos) << out;
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, SeparatorRendersLine) {
    text_table t({"x"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    std::ostringstream ss;
    t.print(ss);
    // header line + top/bottom + separator = at least 4 ruled lines.
    int ruled = 0;
    std::istringstream in(ss.str());
    std::string line;
    while (std::getline(in, line)) ruled += (line[0] == '+');
    EXPECT_EQ(ruled, 4);
}

TEST(TextTable, RejectsMismatchedRow) {
    text_table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, RejectsEmptyHeader) {
    EXPECT_THROW(text_table({}), std::invalid_argument);
}

TEST(Fmt, Doubles) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Integers) {
    EXPECT_EQ(fmt(42), "42");
    EXPECT_EQ(fmt(std::uint64_t{18446744073709551615ULL}), "18446744073709551615");
    EXPECT_EQ(fmt(std::int64_t{-7}), "-7");
}

TEST(Fmt, PlusMinus) {
    EXPECT_EQ(fmt_pm(1.5, 0.25, 2), "1.50 ± 0.25");
}

TEST(Fmt, Scientific) {
    EXPECT_EQ(fmt_sci(12345.0, 2), "1.23e+04");
    EXPECT_EQ(fmt_sci(0.00123, 1), "1.2e-03");
}

}  // namespace
}  // namespace levy::stats
