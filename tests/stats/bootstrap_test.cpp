#include <gtest/gtest.h>

#include <vector>

#include "src/stats/bootstrap.h"
#include "src/stats/summary.h"

namespace levy::stats {
namespace {

double sample_mean(std::span<const double> xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

TEST(Bootstrap, PointEstimateIsStatisticOnOriginal) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    rng g = rng::seeded(1);
    const auto ci = bootstrap_ci(xs, sample_mean, g, 200);
    EXPECT_DOUBLE_EQ(ci.point, 2.5);
}

TEST(Bootstrap, IntervalBracketsPointForWellBehavedData) {
    std::vector<double> xs;
    rng data = rng::seeded(7);
    for (int i = 0; i < 200; ++i) xs.push_back(data.uniform(0.0, 1.0));
    rng g = rng::seeded(2);
    const auto ci = bootstrap_ci(xs, sample_mean, g, 500);
    EXPECT_LE(ci.lo, ci.point);
    EXPECT_GE(ci.hi, ci.point);
    // ±4/√n-ish width for U(0,1).
    EXPECT_LT(ci.hi - ci.lo, 0.2);
}

TEST(Bootstrap, DeterministicGivenSeed) {
    const std::vector<double> xs = {5.0, 1.0, 8.0, 2.0, 9.0};
    rng g1 = rng::seeded(3), g2 = rng::seeded(3);
    const auto a = bootstrap_ci(xs, sample_mean, g1, 300);
    const auto b = bootstrap_ci(xs, sample_mean, g2, 300);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, DegenerateSampleGivesZeroWidth) {
    const std::vector<double> xs = {4.0, 4.0, 4.0};
    rng g = rng::seeded(4);
    const auto ci = bootstrap_ci(xs, sample_mean, g, 100);
    EXPECT_DOUBLE_EQ(ci.lo, 4.0);
    EXPECT_DOUBLE_EQ(ci.hi, 4.0);
}

TEST(Bootstrap, WiderLevelWidensInterval) {
    std::vector<double> xs;
    rng data = rng::seeded(8);
    for (int i = 0; i < 100; ++i) xs.push_back(data.uniform(0.0, 10.0));
    rng g1 = rng::seeded(5), g2 = rng::seeded(5);
    const auto narrow = bootstrap_ci(xs, sample_mean, g1, 800, 0.5);
    const auto wide = bootstrap_ci(xs, sample_mean, g2, 800, 0.99);
    EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, Errors) {
    const std::vector<double> empty;
    rng g = rng::seeded(6);
    EXPECT_THROW((void)bootstrap_ci(empty, sample_mean, g), std::invalid_argument);
    const std::vector<double> xs = {1.0};
    EXPECT_THROW((void)bootstrap_ci(xs, sample_mean, g, 10, 0.0), std::invalid_argument);
    EXPECT_THROW((void)bootstrap_ci(xs, sample_mean, g, 10, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace levy::stats
