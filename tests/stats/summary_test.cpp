#include <gtest/gtest.h>

#include <vector>

#include "src/stats/summary.h"

namespace levy::stats {
namespace {

TEST(RunningSummary, EmptyIsZeroed) {
    running_summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.std_error(), 0.0);
}

TEST(RunningSummary, SingleValue) {
    running_summary s;
    s.add(4.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningSummary, KnownMoments) {
    running_summary s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningSummary, MergeEqualsConcatenation) {
    running_summary all, left, right;
    const std::vector<double> xs = {1.5, -2.0, 3.25, 0.0, 10.0, -7.5, 2.0};
    for (std::size_t i = 0; i < xs.size(); ++i) {
        all.add(xs[i]);
        (i < 3 ? left : right).add(xs[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningSummary, MergeWithEmptyIsIdentity) {
    running_summary a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    EXPECT_EQ(a.count(), 2u);

    running_summary b;
    b.merge(a);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(RunningSummary, StdErrorShrinksWithN) {
    running_summary s;
    for (int i = 0; i < 100; ++i) s.add(i % 2 == 0 ? 1.0 : -1.0);
    EXPECT_NEAR(s.std_error(), s.stddev() / 10.0, 1e-12);
}

TEST(Summarize, MatchesIncremental) {
    const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
    const auto s = summarize(xs);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.8);
}

TEST(Quantile, EdgeAndMidpoints) {
    const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);  // interpolated
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, UnsortedInputHandled) {
    const std::vector<double> xs = {9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(median(xs), 5.0);
}

TEST(Quantile, Errors) {
    const std::vector<double> empty;
    EXPECT_THROW((void)quantile(empty, 0.5), std::invalid_argument);
    const std::vector<double> xs = {1.0};
    EXPECT_THROW((void)quantile(xs, -0.1), std::invalid_argument);
    EXPECT_THROW((void)quantile(xs, 1.1), std::invalid_argument);
}

TEST(Quantiles, BatchMatchesSingles) {
    const std::vector<double> xs = {2.0, 8.0, 6.0, 4.0, 0.0};
    const std::vector<double> qs = {0.25, 0.5, 0.75};
    const auto batch = quantiles(xs, qs);
    ASSERT_EQ(batch.size(), 3u);
    for (std::size_t i = 0; i < qs.size(); ++i) {
        EXPECT_DOUBLE_EQ(batch[i], quantile(xs, qs[i]));
    }
}

}  // namespace
}  // namespace levy::stats
