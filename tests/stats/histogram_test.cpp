#include <gtest/gtest.h>

#include <random>

#include "src/stats/histogram.h"
#include "src/stats/summary.h"

namespace levy::stats {
namespace {

TEST(Histogram, BinAssignment) {
    histogram h(0.0, 10.0, 5);  // bins [0,2) [2,4) [4,6) [6,8) [8,10)
    h.add(0.0);
    h.add(1.99);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
    histogram h(0.0, 1.0, 2);
    h.add(-0.5);
    h.add(1.0);  // right edge is exclusive → overflow
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, EdgesAndMass) {
    histogram h(1.0, 3.0, 4);
    EXPECT_DOUBLE_EQ(h.edge(0), 1.0);
    EXPECT_DOUBLE_EQ(h.edge(2), 2.0);
    EXPECT_DOUBLE_EQ(h.edge(4), 3.0);
    EXPECT_DOUBLE_EQ(h.width(), 0.5);
    h.add(1.1);
    h.add(1.2);
    h.add(2.9);
    h.add(-5.0);  // excluded from mass normalization
    EXPECT_DOUBLE_EQ(h.mass(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.mass(3), 1.0 / 3.0);
}

TEST(Histogram, DensityIsMassOverWidth) {
    // Bins are 0.5 wide, so a bin's probability *density* is twice its
    // mass. (The old implementation returned the mass from density(), so
    // this test fails against it — the regression this suite pins.)
    histogram h(1.0, 3.0, 4);
    h.add(1.1);
    h.add(1.2);
    h.add(2.9);
    EXPECT_DOUBLE_EQ(h.density(0), (2.0 / 3.0) / 0.5);
    EXPECT_DOUBLE_EQ(h.density(3), (1.0 / 3.0) / 0.5);
}

TEST(Histogram, DensityIntegratesToOne) {
    histogram h(-2.0, 2.0, 16);
    std::mt19937_64 g(42);
    std::normal_distribution<double> normal(0.0, 0.5);
    for (int i = 0; i < 10000; ++i) h.add(normal(g));
    double integral = 0.0;
    for (std::size_t b = 0; b < h.bins(); ++b) integral += h.density(b) * h.width();
    EXPECT_NEAR(integral, 1.0, 1e-12);  // exact up to rounding: mass sums to 1
}

TEST(Histogram, TopEdgeOverflows) {
    // x == hi lands in overflow: bins are half-open [edge, next_edge), and
    // hi is the first value past the last bin.
    histogram h(0.0, 10.0, 5);
    h.add(10.0);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.count(4), 0u);
    h.add(std::nextafter(10.0, 0.0));  // just below hi: last bin
    EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, CountInvariant) {
    histogram h(0.0, 1.0, 8);
    std::mt19937_64 g(7);
    std::uniform_real_distribution<double> wide(-1.0, 2.0);
    for (int i = 0; i < 5000; ++i) h.add(wide(g));
    std::uint64_t in_bins = 0;
    for (std::size_t b = 0; b < h.bins(); ++b) in_bins += h.count(b);
    EXPECT_EQ(h.underflow() + h.overflow() + in_bins, h.total());
    EXPECT_GT(h.underflow(), 0u);
    EXPECT_GT(h.overflow(), 0u);
}

TEST(Histogram, Errors) {
    EXPECT_THROW(histogram(1.0, 1.0, 3), std::invalid_argument);
    EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
    histogram h(0.0, 1.0, 2);
    EXPECT_THROW((void)h.edge(5), std::out_of_range);
}

TEST(Log2Histogram, BucketBoundaries) {
    log2_histogram h;
    h.add(1);   // bucket 0: [1,2)
    h.add(2);   // bucket 1: [2,4)
    h.add(3);   // bucket 1
    h.add(4);   // bucket 2: [4,8)
    h.add(1024);  // bucket 10
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(10), 1u);
    EXPECT_EQ(h.buckets(), 11u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, ZerosCountedSeparately) {
    log2_histogram h;
    h.add(0);
    h.add(0);
    h.add(1);
    EXPECT_EQ(h.zeros(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Log2Histogram, QueryBeyondBucketsIsZero) {
    log2_histogram h;
    h.add(1);
    EXPECT_EQ(h.count(40), 0u);
}

TEST(Log2Histogram, HugeSampleGrowsToTopBucket) {
    // The 2^63 sample forces the largest possible growth (64 buckets) in
    // one call — the allocation that made the old noexcept add() a
    // terminate() trap under memory pressure.
    log2_histogram h;
    h.add(std::uint64_t{1} << 63);
    EXPECT_EQ(h.buckets(), 64u);
    EXPECT_EQ(h.count(63), 1u);
}

TEST(RunningSummary, MergeMatchesOnePass) {
    // Chan et al. pairwise merge must agree with a single-stream pass over
    // the concatenation — the property the sharded Monte-Carlo reducers
    // rely on.
    std::mt19937_64 g(99);
    std::lognormal_distribution<double> skewed(0.0, 1.5);
    running_summary one_pass;
    running_summary left, right;
    for (int i = 0; i < 4000; ++i) {
        const double x = skewed(g);
        one_pass.add(x);
        (i < 1500 ? left : right).add(x);
    }
    running_summary merged = left;
    merged.merge(right);
    EXPECT_EQ(merged.count(), one_pass.count());
    EXPECT_NEAR(merged.mean(), one_pass.mean(), 1e-9 * std::abs(one_pass.mean()));
    EXPECT_NEAR(merged.variance(), one_pass.variance(), 1e-9 * one_pass.variance());
    EXPECT_DOUBLE_EQ(merged.min(), one_pass.min());
    EXPECT_DOUBLE_EQ(merged.max(), one_pass.max());
}

}  // namespace
}  // namespace levy::stats
