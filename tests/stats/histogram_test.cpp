#include <gtest/gtest.h>

#include "src/stats/histogram.h"

namespace levy::stats {
namespace {

TEST(Histogram, BinAssignment) {
    histogram h(0.0, 10.0, 5);  // bins [0,2) [2,4) [4,6) [6,8) [8,10)
    h.add(0.0);
    h.add(1.99);
    h.add(2.0);
    h.add(9.99);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
    histogram h(0.0, 1.0, 2);
    h.add(-0.5);
    h.add(1.0);  // right edge is exclusive → overflow
    h.add(2.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, EdgesAndDensity) {
    histogram h(1.0, 3.0, 4);
    EXPECT_DOUBLE_EQ(h.edge(0), 1.0);
    EXPECT_DOUBLE_EQ(h.edge(2), 2.0);
    EXPECT_DOUBLE_EQ(h.edge(4), 3.0);
    h.add(1.1);
    h.add(1.2);
    h.add(2.9);
    h.add(-5.0);  // excluded from density normalization
    EXPECT_DOUBLE_EQ(h.density(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.density(3), 1.0 / 3.0);
}

TEST(Histogram, Errors) {
    EXPECT_THROW(histogram(1.0, 1.0, 3), std::invalid_argument);
    EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
    histogram h(0.0, 1.0, 2);
    EXPECT_THROW((void)h.edge(5), std::out_of_range);
}

TEST(Log2Histogram, BucketBoundaries) {
    log2_histogram h;
    h.add(1);   // bucket 0: [1,2)
    h.add(2);   // bucket 1: [2,4)
    h.add(3);   // bucket 1
    h.add(4);   // bucket 2: [4,8)
    h.add(1024);  // bucket 10
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(2), 1u);
    EXPECT_EQ(h.count(10), 1u);
    EXPECT_EQ(h.buckets(), 11u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(Log2Histogram, ZerosCountedSeparately) {
    log2_histogram h;
    h.add(0);
    h.add(0);
    h.add(1);
    EXPECT_EQ(h.zeros(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Log2Histogram, QueryBeyondBucketsIsZero) {
    log2_histogram h;
    h.add(1);
    EXPECT_EQ(h.count(40), 0u);
}

}  // namespace
}  // namespace levy::stats
