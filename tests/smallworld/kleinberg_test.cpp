#include <gtest/gtest.h>

#include <map>

#include "src/smallworld/kleinberg_grid.h"

namespace levy::smallworld {
namespace {

TEST(KleinbergGrid, WrapCanonicalizes) {
    const kleinberg_grid g(10, 2.0, 1);
    EXPECT_EQ(g.wrap({10, 10}), origin);
    EXPECT_EQ(g.wrap({-1, -1}), (point{9, 9}));
    EXPECT_EQ(g.wrap({23, -13}), (point{3, 7}));
}

TEST(KleinbergGrid, TorusDistance) {
    const kleinberg_grid g(10, 2.0, 1);
    EXPECT_EQ(g.distance({0, 0}, {9, 0}), 1);   // wraps
    EXPECT_EQ(g.distance({0, 0}, {5, 5}), 10);  // antipodal
    EXPECT_EQ(g.distance({2, 3}, {2, 3}), 0);
    EXPECT_EQ(g.distance({0, 0}, {3, 8}), 3 + 2);
}

TEST(KleinbergGrid, GridNeighborsAreAtDistanceOne) {
    const kleinberg_grid g(8, 2.0, 2);
    for (const point u : {point{0, 0}, point{7, 7}, point{3, 0}}) {
        for (const point v : g.grid_neighbors(u)) {
            EXPECT_EQ(g.distance(u, v), 1);
        }
    }
}

TEST(KleinbergGrid, ContactIsDeterministicPerNode) {
    const kleinberg_grid g(32, 2.0, 3);
    const point u{5, 11};
    EXPECT_EQ(g.contact(u), g.contact(u));
    // And invariant under coordinate wrapping of the query.
    EXPECT_EQ(g.contact(u), g.contact(u + point{32, -32}));
}

TEST(KleinbergGrid, ContactNeverSelf) {
    const kleinberg_grid g(16, 1.5, 4);
    for (std::int64_t x = 0; x < 16; ++x) {
        for (std::int64_t y = 0; y < 16; ++y) {
            EXPECT_NE(g.contact({x, y}), (point{x, y}));
        }
    }
}

TEST(KleinbergGrid, ContactsDifferAcrossSeeds) {
    const kleinberg_grid a(32, 2.0, 5), b(32, 2.0, 6);
    int same = 0, total = 0;
    for (std::int64_t x = 0; x < 32; x += 3) {
        for (std::int64_t y = 0; y < 32; y += 3) {
            same += (a.contact({x, y}) == b.contact({x, y}));
            ++total;
        }
    }
    EXPECT_LT(same, total / 4);
}

TEST(KleinbergGrid, SmallBetaFavorsLongContacts) {
    // β = 0.5 is tilted toward long range; β = 3.5 toward short.
    const std::int64_t n = 64;
    const kleinberg_grid near(n, 3.5, 7), far(n, 0.5, 7);
    double near_sum = 0.0, far_sum = 0.0;
    int count = 0;
    for (std::int64_t x = 0; x < n; x += 2) {
        for (std::int64_t y = 0; y < n; y += 2) {
            const point u{x, y};
            near_sum += static_cast<double>(near.distance(u, near.contact(u)));
            far_sum += static_cast<double>(far.distance(u, far.contact(u)));
            ++count;
        }
    }
    EXPECT_LT(near_sum / count, far_sum / count / 2.0);
}

TEST(KleinbergGrid, RandomNodeInRange) {
    const kleinberg_grid g(12, 2.0, 8);
    rng r = rng::seeded(9);
    for (int i = 0; i < 1000; ++i) {
        const point u = g.random_node(r);
        EXPECT_GE(u.x, 0);
        EXPECT_LT(u.x, 12);
        EXPECT_GE(u.y, 0);
        EXPECT_LT(u.y, 12);
    }
}

TEST(KleinbergGrid, RejectsBadArguments) {
    EXPECT_THROW(kleinberg_grid(3, 2.0, 1), std::invalid_argument);
    EXPECT_THROW(kleinberg_grid(10, 0.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace levy::smallworld
