#include <gtest/gtest.h>

#include "src/smallworld/greedy_routing.h"

namespace levy::smallworld {
namespace {

TEST(GreedyRouting, TrivialRouteIsZeroHops) {
    const kleinberg_grid g(16, 2.0, 1);
    const auto r = greedy_route(g, {3, 3}, {3, 3}, 100);
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.hops, 0u);
}

TEST(GreedyRouting, AlwaysDeliversWithGenerousBudget) {
    // Grid moves alone guarantee progress, so 2n hops always suffice.
    const std::int64_t n = 32;
    const kleinberg_grid g(n, 2.0, 2);
    rng r = rng::seeded(3);
    for (int i = 0; i < 100; ++i) {
        const point s = g.random_node(r), t = g.random_node(r);
        const auto route = greedy_route(g, s, t, static_cast<std::uint64_t>(2 * n));
        ASSERT_TRUE(route.delivered);
        ASSERT_GE(route.hops, static_cast<std::uint64_t>(g.distance(s, t)) > 0 ? 1u : 0u);
    }
}

TEST(GreedyRouting, HopsNeverExceedTorusDistanceWithoutShortcutsHelp) {
    // Greedy progress ≥ 1 per hop: hops ≤ initial distance.
    const kleinberg_grid g(24, 2.0, 4);
    rng r = rng::seeded(5);
    for (int i = 0; i < 200; ++i) {
        const point s = g.random_node(r), t = g.random_node(r);
        const auto route = greedy_route(g, s, t, 1000);
        ASSERT_TRUE(route.delivered);
        ASSERT_LE(route.hops, static_cast<std::uint64_t>(g.distance(s, t)));
    }
}

TEST(GreedyRouting, BudgetExhaustionReportsFailure) {
    const kleinberg_grid g(32, 2.0, 6);
    const auto route = greedy_route(g, {0, 0}, {16, 16}, 2);
    EXPECT_FALSE(route.delivered);
    EXPECT_EQ(route.hops, 2u);
}

TEST(GreedyRouting, ShortcutsBeatPlainGridOnAverage) {
    // With β = 2 the average greedy route across a 64-torus is much shorter
    // than the ~n/2 grid-only distance.
    const std::int64_t n = 64;
    const kleinberg_grid g(n, 2.0, 7);
    rng r = rng::seeded(8);
    double hops = 0.0, dist = 0.0;
    const int routes = 300;
    for (int i = 0; i < routes; ++i) {
        const point s = g.random_node(r), t = g.random_node(r);
        dist += static_cast<double>(g.distance(s, t));
        hops += static_cast<double>(greedy_route(g, s, t, 10000).hops);
    }
    EXPECT_LT(hops, 0.7 * dist);
}

}  // namespace
}  // namespace levy::smallworld
