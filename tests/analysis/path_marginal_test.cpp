#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/analysis/path_marginal.h"
#include "src/grid/direct_path.h"
#include "src/grid/ring.h"
#include "src/rng/rng_stream.h"

namespace levy::analysis {
namespace {

TEST(PathNodeLaw, EndpointsAreDeterministic) {
    const auto start = path_node_law({2, 3}, {7, 6}, 0);
    ASSERT_EQ(start.size(), 1u);
    EXPECT_EQ(start[0].node, (point{2, 3}));
    EXPECT_DOUBLE_EQ(start[0].probability, 1.0);

    const auto end = path_node_law({2, 3}, {7, 6}, 8);
    ASSERT_EQ(end.size(), 1u);
    EXPECT_EQ(end[0].node, (point{7, 6}));
    EXPECT_DOUBLE_EQ(end[0].probability, 1.0);
}

TEST(PathNodeLaw, MassSumsToOne) {
    for (std::int64_t i = 0; i <= 12; ++i) {
        double total = 0.0;
        for (const auto& [node, p] : path_node_law({0, 0}, {7, 5}, i)) {
            EXPECT_EQ(l1_norm(node), i);  // u_i ∈ R_i
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-12) << "i=" << i;
    }
}

TEST(PathNodeLaw, DiagonalFirstStepIsFairTie) {
    const auto law = path_node_law({0, 0}, {1, 1}, 1);
    ASSERT_EQ(law.size(), 2u);
    std::map<std::pair<std::int64_t, std::int64_t>, double> m;
    for (const auto& [node, p] : law) m[{node.x, node.y}] = p;
    EXPECT_DOUBLE_EQ((m[{1, 0}]), 0.5);
    EXPECT_DOUBLE_EQ((m[{0, 1}]), 0.5);
}

TEST(PathNodeLaw, AxisPathIsDeterministic) {
    for (std::int64_t i = 0; i <= 6; ++i) {
        const auto law = path_node_law({0, 0}, {0, -6}, i);
        ASSERT_EQ(law.size(), 1u);
        EXPECT_EQ(law[0].node, (point{0, -i}));
    }
}

TEST(PathNodeLaw, MatchesStepperEmpirically) {
    // The DP must reproduce the stepper's actual sampling distribution.
    const point to{5, 3};
    const std::int64_t i = 4;
    const int n = 200000;
    rng g = rng::seeded(0xd1ce);
    std::map<std::pair<std::int64_t, std::int64_t>, int> counts;
    for (int trial = 0; trial < n; ++trial) {
        direct_path_stepper s(origin, to);
        point u = origin;
        for (std::int64_t step = 0; step < i; ++step) u = s.advance(g);
        ++counts[{u.x, u.y}];
    }
    for (const auto& [node, p] : path_node_law(origin, to, i)) {
        const double observed =
            static_cast<double>(counts[{node.x, node.y}]) / static_cast<double>(n);
        const double sigma = std::sqrt(p * (1.0 - p) / n);
        EXPECT_NEAR(observed, p, 5.0 * sigma + 1e-9)
            << "node (" << node.x << "," << node.y << ")";
    }
}

TEST(Lemma32Marginal, ExactlyUniformWhenIDividesD) {
    // For i | d the Lemma 3.2 band collapses: P(u_i = w) = 1/(4i) exactly.
    for (const auto& [d, i] : {std::pair<std::int64_t, std::int64_t>{12, 3},
                              {12, 4}, {12, 6}, {10, 5}, {8, 2}}) {
        const auto marginal = lemma32_marginal(d, i);
        const double uniform = 1.0 / static_cast<double>(ring_size(i));
        for (std::size_t j = 0; j < marginal.size(); ++j) {
            EXPECT_NEAR(marginal[j], uniform, 1e-12) << "d=" << d << " i=" << i << " j=" << j;
        }
    }
}

TEST(Lemma32Marginal, ExactLawStaysInsideTheBand) {
    // The lemma verified EXACTLY — no statistics: every ring node's mass is
    // within [(i/d)⌊d/i⌋/4i, (i/d)⌈d/i⌉/4i].
    for (const std::int64_t d : {9L, 12L, 13L, 17L}) {
        for (std::int64_t i = 1; i < d; ++i) {
            const auto marginal = lemma32_marginal(d, i);
            const auto band = lemma32_bounds(d, i);
            for (std::size_t j = 0; j < marginal.size(); ++j) {
                ASSERT_GE(marginal[j], band.lo - 1e-12)
                    << "d=" << d << " i=" << i << " j=" << j;
                ASSERT_LE(marginal[j], band.hi + 1e-12)
                    << "d=" << d << " i=" << i << " j=" << j;
            }
        }
    }
}

TEST(Lemma32Marginal, TotalsOne) {
    const auto marginal = lemma32_marginal(11, 7);
    double sum = 0.0;
    for (const double p : marginal) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Lemma32Marginal, RejectsBadArguments) {
    EXPECT_THROW(lemma32_marginal(5, 0), std::invalid_argument);
    EXPECT_THROW(lemma32_marginal(5, 5), std::invalid_argument);
    EXPECT_THROW(lemma32_marginal(1, 1), std::invalid_argument);
    EXPECT_THROW(path_node_law(origin, {3, 3}, 7), std::invalid_argument);
}

}  // namespace
}  // namespace levy::analysis
