#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/occupancy.h"
#include "src/grid/ring.h"
#include "src/core/levy_flight.h"
#include "src/sim/monte_carlo.h"

namespace levy::analysis {
namespace {

TEST(FlightOccupancy, StartsConcentratedAtOrigin) {
    flight_occupancy occ(2.5, 8);
    EXPECT_DOUBLE_EQ(occ.probability(origin), 1.0);
    EXPECT_DOUBLE_EQ(occ.escaped(), 0.0);
    EXPECT_EQ(occ.steps(), 0u);
}

TEST(FlightOccupancy, MassIsConservedExactly) {
    flight_occupancy occ(2.2, 10);
    for (int t = 1; t <= 5; ++t) {
        occ.step();
        EXPECT_NEAR(occ.in_window_mass() + occ.escaped(), 1.0, 1e-12) << "t=" << t;
    }
}

TEST(FlightOccupancy, OneStepMatchesJumpKernelExactly) {
    // After one step: P(origin) = 1/2, P(ring-d node) = pmf(d)/(4d).
    flight_occupancy occ(2.5, 12);
    occ.step();
    const jump_distribution jd(2.5);
    EXPECT_NEAR(occ.probability(origin), 0.5, 1e-14);
    for (std::int64_t d = 1; d <= 6; ++d) {
        const double expected = jd.pmf(static_cast<std::uint64_t>(d)) /
                                static_cast<double>(ring_size(d));
        EXPECT_NEAR(occ.probability({d, 0}), expected, 1e-14) << "d=" << d;
        EXPECT_NEAR(occ.probability({0, -d}), expected, 1e-14) << "d=" << d;
        // Non-corner ring node.
        if (d >= 2) {
            EXPECT_NEAR(occ.probability({d - 1, 1}), expected, 1e-14) << "d=" << d;
        }
    }
}

TEST(FlightOccupancy, DihedralSymmetryHolds) {
    flight_occupancy occ(2.3, 8);
    occ.advance(3);
    for (std::int64_t x = 0; x <= 8; ++x) {
        for (std::int64_t y = 0; y <= x; ++y) {
            // Summation order differs between symmetric nodes, so equality
            // holds only up to accumulated rounding (~1e-15 per term).
            const double p = occ.probability({x, y});
            EXPECT_NEAR(occ.probability({y, x}), p, 1e-12);
            EXPECT_NEAR(occ.probability({-x, y}), p, 1e-12);
            EXPECT_NEAR(occ.probability({x, -y}), p, 1e-12);
            EXPECT_NEAR(occ.probability({-x, -y}), p, 1e-12);
        }
    }
}

TEST(FlightOccupancy, MonotonicityLemmaHoldsExactly) {
    // Lemma 3.9, verified without Monte-Carlo noise: for every pair with
    // ‖v‖∞ ≥ ‖u‖₁ inside a window where truncation loss is far below the
    // probability gap.
    flight_occupancy occ(2.2, 16);
    occ.advance(4);
    const double slack = occ.escaped();  // worst-case truncation distortion
    int comparable = 0;
    for (std::int64_t ux = -5; ux <= 5; ++ux) {
        for (std::int64_t uy = -5; uy <= 5; ++uy) {
            for (std::int64_t vx = -8; vx <= 8; ++vx) {
                for (std::int64_t vy = -8; vy <= 8; ++vy) {
                    const point u{ux, uy}, v{vx, vy};
                    if (u == v || linf_norm(v) < l1_norm(u)) continue;
                    ++comparable;
                    ASSERT_GE(occ.probability(u) + slack, occ.probability(v))
                        << "u=(" << ux << "," << uy << ") v=(" << vx << "," << vy << ")";
                }
            }
        }
    }
    EXPECT_GT(comparable, 1000);
}

TEST(FlightOccupancy, AgreesWithMonteCarlo) {
    const double alpha = 2.5;
    flight_occupancy occ(alpha, 12);
    occ.advance(3);
    const std::size_t trials = 400000;
    const auto hits = sim::monte_carlo_collect(
        {.trials = trials, .threads = 0, .seed = 99}, [&](std::size_t, rng& g) {
            levy_flight f(alpha, g);
            for (int i = 0; i < 3; ++i) f.step();
            return f.position();
        });
    for (const point probe : {point{0, 0}, point{1, 0}, point{2, 2}, point{0, 5}}) {
        std::uint64_t count = 0;
        for (const point p : hits) count += (p == probe);
        const double mc = static_cast<double>(count) / static_cast<double>(trials);
        const double exact = occ.probability(probe);
        const double sigma = std::sqrt(exact / static_cast<double>(trials)) + 1e-9;
        EXPECT_NEAR(mc, exact, 5.0 * sigma + occ.escaped())
            << "probe (" << probe.x << "," << probe.y << ")";
    }
}

TEST(FlightOccupancy, CapChangesKernel) {
    flight_occupancy uncapped(2.5, 10);
    flight_occupancy capped(2.5, 10, /*cap=*/2);
    uncapped.step();
    capped.step();
    // With the cap, the conditional pmf is renormalized upward.
    EXPECT_GT(capped.probability({1, 0}), uncapped.probability({1, 0}));
    // And nothing lands beyond the cap.
    EXPECT_DOUBLE_EQ(capped.probability({3, 0}), 0.0);
}

TEST(FlightOccupancy, OriginVisitAccumulatorMatchesLemma413Scale) {
    // a_t(α) stays small and bounded for α in the middle of (2,3).
    flight_occupancy occ(2.5, 24);
    occ.advance(12);
    EXPECT_GT(occ.expected_origin_visits(), 0.5);
    EXPECT_LT(occ.expected_origin_visits(), 4.0);
    EXPECT_LT(occ.escaped(), 0.2);
}

TEST(FlightOccupancy, RejectsBadRadius) {
    EXPECT_THROW(flight_occupancy(2.5, 0), std::invalid_argument);
    EXPECT_THROW(flight_occupancy(2.5, 100), std::invalid_argument);
}

}  // namespace
}  // namespace levy::analysis
