#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/sim/monte_carlo.h"

namespace levy::sim {
namespace {

TEST(ParallelFor, CoversEveryIndexOnce) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    parallel_for(n, 4, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroItemsIsNoop) {
    bool called = false;
    parallel_for(0, 4, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleThreadFallback) {
    std::vector<int> order;
    parallel_for(5, 1, [&](std::size_t i) { order.push_back(static_cast<int>(i)); });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResolveThreads, ZeroMeansHardware) {
    EXPECT_GE(resolve_threads(0), 1u);
    EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ParallelFor, ReportsRunMetrics) {
    const auto m = parallel_for(512, 4, [](std::size_t) {}, /*chunk=*/8);
    EXPECT_EQ(m.items, 512u);
    EXPECT_EQ(m.chunk, 8u);
    EXPECT_GE(m.workers, 1u);
    EXPECT_GE(m.wall_seconds, 0.0);
}

TEST(ParallelFor, PropagatesWorkerExceptions) {
    EXPECT_THROW(parallel_for(100, 4,
                              [](std::size_t i) {
                                  if (i == 42) throw std::runtime_error("worker exception");
                              }),
                 std::runtime_error);
}

TEST(MonteCarlo, ResultsIndependentOfThreadCount) {
    // The core reproducibility guarantee: same seed → same per-trial values,
    // regardless of parallel schedule.
    mc_options opts1{.trials = 64, .threads = 1, .seed = 99};
    mc_options opts8{.trials = 64, .threads = 8, .seed = 99};
    const auto f = [](std::size_t, rng& g) { return g(); };
    EXPECT_EQ(monte_carlo_collect(opts1, f), monte_carlo_collect(opts8, f));
}

TEST(MonteCarlo, TrialsGetIndependentStreams) {
    mc_options opts{.trials = 32, .threads = 2, .seed = 7};
    const auto values = monte_carlo_collect(opts, [](std::size_t, rng& g) { return g(); });
    const std::set<std::uint64_t> distinct(values.begin(), values.end());
    EXPECT_EQ(distinct.size(), values.size());
}

TEST(MonteCarlo, SeedChangesResults) {
    const auto f = [](std::size_t, rng& g) { return g(); };
    mc_options a{.trials = 8, .threads = 1, .seed = 1};
    mc_options b{.trials = 8, .threads = 1, .seed = 2};
    EXPECT_NE(monte_carlo_collect(a, f), monte_carlo_collect(b, f));
}

TEST(MonteCarlo, TrialIndexIsPassedThrough) {
    mc_options opts{.trials = 10, .threads = 3, .seed = 5};
    const auto values =
        monte_carlo_collect(opts, [](std::size_t i, rng&) { return i * 10; });
    for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(values[i], i * 10);
}

TEST(EstimateProbability, RecoversBernoulliParameter) {
    mc_options opts{.trials = 20000, .threads = 0, .seed = 42};
    const auto p = estimate_probability(opts, [](std::size_t, rng& g) {
        return g.bernoulli(0.37);
    });
    EXPECT_EQ(p.trials, 20000u);
    EXPECT_GT(p.estimate(), 0.35);
    EXPECT_LT(p.estimate(), 0.39);
    EXPECT_LE(p.lo, 0.37);
    EXPECT_GE(p.hi, 0.37);
}

TEST(EstimateProbability, DeterministicAcrossThreadCounts) {
    const auto pred = [](std::size_t, rng& g) { return g.coin(); };
    mc_options a{.trials = 500, .threads = 1, .seed = 3};
    mc_options b{.trials = 500, .threads = 6, .seed = 3};
    EXPECT_EQ(estimate_probability(a, pred).successes, estimate_probability(b, pred).successes);
}

}  // namespace
}  // namespace levy::sim
