// Streaming-vs-batch parity: the SoA engine (sim/walk_engine) must return
// bit-identical results to the scalar levy_walk loop for every config, seed,
// budget edge, and epoch quantum. These tests are the determinism contract
// of DESIGN.md §"Batched walk engine".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "src/core/hitting.h"
#include "src/core/levy_walk.h"
#include "src/core/parallel_search.h"
#include "src/core/strategy.h"
#include "src/grid/point.h"
#include "src/rng/rng_stream.h"
#include "src/sim/trial.h"
#include "src/sim/walk_engine.h"

namespace levy::sim {
namespace {

hit_result scalar_single(double alpha, point target, std::uint64_t budget, rng stream,
                         std::uint64_t cap) {
    levy_walk walk(alpha, stream, origin, cap);
    return hit_within(walk, target, budget);
}

void expect_single_parity(walk_engine& engine, double alpha, point target,
                          std::uint64_t budget, rng stream, std::uint64_t cap) {
    const hit_result scalar = scalar_single(alpha, target, budget, stream, cap);
    const hit_result batch = engine.run_single(alpha, target, budget, stream, cap);
    EXPECT_EQ(scalar, batch) << "alpha=" << alpha << " target=(" << target.x << ","
                             << target.y << ") budget=" << budget << " cap=" << cap
                             << " seed=" << stream.seed();
}

void expect_parallel_parity(walk_engine& engine, std::size_t k,
                            const exponent_strategy& strategy, point target,
                            std::uint64_t budget, rng stream, std::uint64_t cap) {
    const parallel_result scalar = parallel_hit(k, strategy, target, budget, stream, cap);
    const parallel_result batch = engine.run_parallel(k, strategy, target, budget, stream, cap);
    EXPECT_EQ(scalar.hit, batch.hit) << "k=" << k << " budget=" << budget;
    EXPECT_EQ(scalar.time, batch.time) << "k=" << k << " budget=" << budget;
    EXPECT_EQ(scalar.winner, batch.winner) << "k=" << k << " budget=" << budget;
    if (scalar.hit) {
        // Bit-exact replay of the winning exponent, not merely approximate.
        EXPECT_EQ(scalar.winner_alpha, batch.winner_alpha);
    } else {
        EXPECT_TRUE(std::isnan(batch.winner_alpha));
    }
}

TEST(WalkEngineSingle, ParityAcrossSeedsAlphasAndBudgets) {
    walk_engine engine;
    const std::uint64_t caps[] = {kNoCap, 3, 64, 1024};
    const double alphas[] = {1.2, 2.05, 2.5, 2.97, 3.5};
    for (const double alpha : alphas) {
        for (const std::uint64_t cap : caps) {
            for (std::uint64_t seed = 1; seed <= 40; ++seed) {
                expect_single_parity(engine, alpha, point{9, -4}, 700,
                                     rng::seeded(seed * 977 + 13), cap);
            }
        }
    }
}

TEST(WalkEngineSingle, BudgetEdges) {
    walk_engine engine;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const rng stream = rng::seeded(seed);
        // Budget 0: no phase is ever begun; only the t=0 check runs.
        expect_single_parity(engine, 2.5, point{5, 5}, 0, stream, kNoCap);
        // Budget 1: at most one step.
        expect_single_parity(engine, 2.5, point{1, 0}, 1, stream, kNoCap);
        // Target at the start: hitting time 0 regardless of budget.
        expect_single_parity(engine, 2.5, origin, 0, stream, kNoCap);
        expect_single_parity(engine, 2.5, origin, 100, stream, kNoCap);
    }
}

TEST(WalkEngineSingle, StayPutHeavyCapParity) {
    // cap = 1 makes half of all phases d = 0 (stay-put) and the rest d = 1;
    // cap = 2 adds two-step phases. Exercises the "one step, one phase"
    // stay-put accounting in both engines, per the Def. 3.4 semantics.
    walk_engine engine;
    for (const std::uint64_t cap : {1ULL, 2ULL, 3ULL}) {
        for (std::uint64_t seed = 1; seed <= 60; ++seed) {
            expect_single_parity(engine, 2.2, point{2, 1}, 200, rng::seeded(seed * 31 + 7),
                                 cap);
        }
    }
}

TEST(WalkEngineSingle, StayPutPhaseCountsOneStepAndOnePhase) {
    // Direct scalar check of the Def. 3.4 stay-put accounting the parity
    // tests above rely on: a d=0 phase advances steps by 1 and phases by 1.
    rng stream = rng::seeded(404);
    levy_walk walk(2.5, stream, origin, /*cap=*/1);
    std::uint64_t stay_puts = 0;
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t phases_before = walk.phases();
        const std::uint64_t steps_before = walk.steps();
        const point before = walk.position();
        const point after = walk.step();
        EXPECT_EQ(walk.steps(), steps_before + 1);
        if (walk.current_jump_length() == 0) {
            ++stay_puts;
            EXPECT_EQ(after, before);
            EXPECT_EQ(walk.phases(), phases_before + 1);
            EXPECT_FALSE(walk.in_phase());
        }
    }
    // With cap=1, d=0 happens with probability 1/2 per phase.
    EXPECT_GT(stay_puts, 100u);
}

TEST(WalkEngineParallel, ParityFixedStrategy) {
    walk_engine engine;
    for (const std::size_t k : {1, 2, 7, 32}) {
        for (std::uint64_t seed = 1; seed <= 30; ++seed) {
            expect_parallel_parity(engine, k, fixed_exponent(2.4), point{12, 3}, 900,
                                   rng::seeded(seed * 131), kNoCap);
        }
    }
}

TEST(WalkEngineParallel, ParityRandomizedAndRoundRobinStrategies) {
    // Strategies that draw from the walker stream shift every subsequent
    // draw; parity proves the engine consumes the stream identically.
    walk_engine engine;
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        expect_parallel_parity(engine, 16, uniform_exponent(), point{10, -10}, 800,
                               rng::seeded(seed * 193 + 5), kNoCap);
        expect_parallel_parity(engine, 16, round_robin_exponent(), point{-8, 6}, 800,
                               rng::seeded(seed * 389 + 1), 128);
    }
}

TEST(WalkEngineParallel, ParityEdgeCases) {
    walk_engine engine;
    const rng stream = rng::seeded(99);
    // k = 0: vacuous miss with time = budget.
    expect_parallel_parity(engine, 0, fixed_exponent(2.5), point{3, 3}, 50, stream, kNoCap);
    // Budget 0.
    expect_parallel_parity(engine, 4, fixed_exponent(2.5), point{3, 3}, 0, stream, kNoCap);
    // Target at the origin: winner must be walker 0 at time 0.
    expect_parallel_parity(engine, 4, fixed_exponent(2.5), origin, 50, stream, kNoCap);
    // Tiny caps: stay-put-heavy fleets.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        expect_parallel_parity(engine, 8, fixed_exponent(2.1), point{2, 0}, 300,
                               rng::seeded(seed), 1);
        expect_parallel_parity(engine, 8, fixed_exponent(2.1), point{2, 0}, 300,
                               rng::seeded(seed), 2);
    }
}

TEST(WalkEngineParallel, ResultsInvariantUnderEpochQuantum) {
    // Retirement/compaction order varies wildly with the epoch quantum
    // (quantum 1 suspends every walker each step; large quanta run whole
    // phases); results must not.
    const point target{11, -2};
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        const rng stream = rng::seeded(seed * 7919);
        walk_engine whole;  // default: full phase per epoch
        const parallel_result base =
            whole.run_parallel(12, uniform_exponent(), target, 600, stream, kNoCap);
        for (const std::uint64_t quantum : {1ULL, 3ULL, 64ULL}) {
            walk_engine chunked(engine_options{.epoch_steps = quantum});
            const parallel_result r =
                chunked.run_parallel(12, uniform_exponent(), target, 600, stream, kNoCap);
            EXPECT_EQ(base.hit, r.hit) << "quantum=" << quantum;
            EXPECT_EQ(base.time, r.time) << "quantum=" << quantum;
            EXPECT_EQ(base.winner, r.winner) << "quantum=" << quantum;
        }
    }
}

TEST(WalkEngineSingle, ResultsInvariantUnderEpochQuantum) {
    for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        const rng stream = rng::seeded(seed * 104729);
        walk_engine whole;
        const hit_result base = whole.run_single(2.3, point{7, 7}, 500, stream, 64);
        for (const std::uint64_t quantum : {1ULL, 3ULL, 64ULL}) {
            walk_engine chunked(engine_options{.epoch_steps = quantum});
            EXPECT_EQ(base, chunked.run_single(2.3, point{7, 7}, 500, stream, 64))
                << "quantum=" << quantum;
        }
    }
}

TEST(WalkEngineTrial, TrialDispatchAgreesBetweenEngines) {
    // The public trial API must give byte-identical outcomes for
    // --engine=scalar and --engine=batch, including watchdog censoring.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        single_walk_config s;
        s.alpha = 2.4;
        s.ell = 6;
        s.budget = 400;
        s.max_steps = 150;  // watchdog truncates: censoring must agree too
        s.engine = engine_kind::scalar;
        const hit_result rs = single_walk_trial(s, rng::seeded(seed));
        s.engine = engine_kind::batch;
        const hit_result rb = single_walk_trial(s, rng::seeded(seed));
        EXPECT_EQ(rs, rb);

        parallel_walk_config p;
        p.k = 6;
        p.strategy = uniform_exponent();
        p.ell = 8;
        p.budget = 500;
        p.max_steps = 200;
        p.engine = engine_kind::scalar;
        const parallel_result ps = parallel_walk_trial(p, rng::seeded(seed + 1000));
        p.engine = engine_kind::batch;
        const parallel_result pb = parallel_walk_trial(p, rng::seeded(seed + 1000));
        EXPECT_EQ(ps.hit, pb.hit);
        EXPECT_EQ(ps.time, pb.time);
        EXPECT_EQ(ps.winner, pb.winner);
        EXPECT_EQ(ps.censored, pb.censored);
    }
}

TEST(WalkEnginePool, LocalEngineIsReusableAcrossConfigs) {
    // The pooled thread-local engine must give the same answers as a fresh
    // instance even when runs alternate caps and alphas (cache churn).
    walk_engine& pooled = walk_engine::local();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        for (const std::uint64_t cap : {kNoCap, std::uint64_t{16}, std::uint64_t{512}}) {
            walk_engine fresh;
            const rng stream = rng::seeded(seed * 37 + cap % 97);
            EXPECT_EQ(fresh.run_single(2.6, point{4, 4}, 300, stream, cap),
                      pooled.run_single(2.6, point{4, 4}, 300, stream, cap));
        }
    }
}

}  // namespace
}  // namespace levy::sim
