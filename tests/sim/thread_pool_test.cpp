#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/monte_carlo.h"
#include "src/sim/thread_pool.h"

namespace levy::sim {
namespace {

TEST(ThreadPool, RunsEveryIndexOnce) {
    const std::size_t n = 1000;
    std::vector<std::atomic<int>> counts(n);
    thread_pool::instance().run(n, 4, 7, [&](std::size_t i) { counts[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPool, WorkersPersistAcrossRuns) {
    auto& pool = thread_pool::instance();
    std::atomic<int> hits{0};
    pool.run(64, 4, 0, [&](std::size_t) { hits.fetch_add(1); });
    const unsigned after_first = pool.spawned_workers();
    for (int round = 0; round < 20; ++round) {
        pool.run(64, 4, 0, [&](std::size_t) { hits.fetch_add(1); });
    }
    // Reuse, not respawn: the worker count is unchanged after 20 more runs.
    EXPECT_EQ(pool.spawned_workers(), after_first);
    EXPECT_EQ(hits.load(), 64 * 21);
}

TEST(ThreadPool, FirstExceptionPropagatesToCaller) {
    EXPECT_THROW(
        thread_pool::instance().run(256, 4, 1,
                                    [&](std::size_t i) {
                                        if (i == 97) throw std::runtime_error("trial 97 failed");
                                    }),
        std::runtime_error);
}

TEST(ThreadPool, ExceptionMessageSurvives) {
    try {
        thread_pool::instance().run(64, 4, 1, [&](std::size_t i) {
            if (i == 5) throw std::runtime_error("bad parameter row");
        });
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "bad parameter row");
    }
}

TEST(ThreadPool, ExceptionCancelsRemainingChunks) {
    const std::size_t n = 1 << 16;
    std::atomic<std::size_t> executed{0};
    try {
        thread_pool::instance().run(n, 2, 1, [&](std::size_t i) {
            // Whichever thread claims the first chunk throws immediately;
            // every other item burns ~1us so a broken cancellation path
            // would take visibly long and execute nearly all of n.
            if (i == 0) throw std::runtime_error("abort early");
            volatile std::uint64_t sink = 0;
            for (int spin = 0; spin < 200; ++spin) sink = sink + spin;
            executed.fetch_add(1);
        });
        FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error&) {
    }
    // Workers stop claiming chunks once cancelled; the bulk of the items
    // must never run (generous margin for scheduling delay on loaded CI).
    EXPECT_LT(executed.load(), n / 2);
}

TEST(ThreadPool, UsableAfterException) {
    auto& pool = thread_pool::instance();
    EXPECT_THROW(pool.run(32, 4, 1, [](std::size_t) { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    std::atomic<int> ok{0};
    pool.run(32, 4, 1, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 32);
}

TEST(ThreadPool, SerialPathPropagatesExceptionToo) {
    EXPECT_THROW(
        thread_pool::instance().run(8, 1, 0,
                                    [](std::size_t i) {
                                        if (i == 3) throw std::invalid_argument("serial");
                                    }),
        std::invalid_argument);
}

TEST(ThreadPool, NestedRunFallsBackToSerial) {
    // A trial that itself calls the pool must not deadlock.
    std::atomic<int> inner{0};
    thread_pool::instance().run(4, 4, 1, [&](std::size_t) {
        thread_pool::instance().run(8, 4, 1, [&](std::size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(inner.load(), 4 * 8);
}

TEST(ThreadPool, MetricsCountItemsAndWorkers) {
    const auto m = thread_pool::instance().run(128, 4, 4, [](std::size_t) {});
    EXPECT_EQ(m.items, 128u);
    EXPECT_EQ(m.chunk, 4u);
    EXPECT_GE(m.workers, 1u);
    EXPECT_LE(m.workers, 4u);
    EXPECT_GE(m.wall_seconds, 0.0);
    EXPECT_GE(m.utilization(), 0.0);
}

TEST(ThreadPool, AutoChunkStaysInBounds) {
    EXPECT_EQ(thread_pool::auto_chunk(0, 4), 1u);
    EXPECT_EQ(thread_pool::auto_chunk(10, 4), 1u);
    EXPECT_EQ(thread_pool::auto_chunk(3200, 4), 100u);
    EXPECT_EQ(thread_pool::auto_chunk(std::size_t{1} << 40, 4), 1024u);
}

TEST(MonteCarlo, ThrowingTrialPropagatesFromCollect) {
    mc_options opts{.trials = 200, .threads = 4, .seed = 11};
    EXPECT_THROW(monte_carlo_collect(opts,
                                     [](std::size_t i, rng&) -> int {
                                         if (i == 123) throw std::domain_error("row 123");
                                         return 0;
                                     }),
                 std::domain_error);
}

TEST(MonteCarlo, CollectReusesPoolAcrossCalls) {
    mc_options opts{.trials = 128, .threads = 4, .seed = 21};
    const auto f = [](std::size_t, rng& g) { return g(); };
    const auto first = monte_carlo_collect(opts, f);
    const unsigned workers = thread_pool::instance().spawned_workers();
    for (int round = 0; round < 10; ++round) {
        EXPECT_EQ(monte_carlo_collect(opts, f), first);
    }
    EXPECT_EQ(thread_pool::instance().spawned_workers(), workers);
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCountsAndChunks) {
    const auto f = [](std::size_t i, rng& g) { return g() ^ i; };
    mc_options base{.trials = 257, .threads = 1, .seed = 0xfeed};
    const auto reference = monte_carlo_collect(base, f);
    for (unsigned threads : {2u, 8u}) {
        for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{16}}) {
            mc_options opts{.trials = 257, .threads = threads, .seed = 0xfeed, .chunk = chunk};
            EXPECT_EQ(monte_carlo_collect(opts, f), reference)
                << "threads=" << threads << " chunk=" << chunk;
        }
    }
}

TEST(MonteCarlo, EstimateProbabilityRejectsZeroTrials) {
    mc_options opts{.trials = 0, .threads = 1, .seed = 1};
    EXPECT_THROW(estimate_probability(opts, [](std::size_t, rng&) { return true; }),
                 std::invalid_argument);
}

TEST(MonteCarlo, MetricsAccumulateAcrossRuns) {
    reset_metrics();
    mc_options opts{.trials = 100, .threads = 2, .seed = 9};
    const auto f = [](std::size_t, rng& g) { return g(); };
    (void)monte_carlo_collect(opts, f);
    (void)monte_carlo_collect(opts, f);
    const auto m = metrics_snapshot();
    EXPECT_EQ(m.trials, 200u);
    EXPECT_GE(m.wall_seconds, 0.0);
    EXPECT_GE(m.max_workers, 1u);
    reset_metrics();
    EXPECT_EQ(metrics_snapshot().trials, 0u);
}

}  // namespace
}  // namespace levy::sim
