#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/core/contracts.h"
#include "src/sim/experiment.h"

namespace levy::sim {
namespace {

std::vector<char*> argv_of(std::vector<std::string>& args) {
    std::vector<char*> argv;
    argv.push_back(nullptr);  // program name slot
    static std::string prog = "test";
    argv[0] = prog.data();
    for (auto& a : args) argv.push_back(a.data());
    return argv;
}

TEST(RunOptions, DefaultsWhenNoArgs) {
    std::vector<std::string> args;
    auto argv = argv_of(args);
    const auto opts = parse_run_options(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.trials, 0u);
    EXPECT_DOUBLE_EQ(opts.scale, 1.0);
    EXPECT_EQ(opts.threads, 0u);
    EXPECT_EQ(opts.chunk, 0u);
    EXPECT_EQ(opts.seed, kDefaultSeed);
    EXPECT_TRUE(opts.csv_path.empty());
}

TEST(RunOptions, ParsesAllFlags) {
    std::vector<std::string> args = {"--trials=500", "--scale=2.5", "--threads=3",
                                     "--chunk=16",   "--seed=777",  "--csv=/tmp/out.csv",
                                     "--checkpoint=/tmp/ckpt", "--checkpoint-interval=17",
                                     "--max-steps-per-trial=4096"};
    auto argv = argv_of(args);
    const auto opts = parse_run_options(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.trials, 500u);
    EXPECT_DOUBLE_EQ(opts.scale, 2.5);
    EXPECT_EQ(opts.threads, 3u);
    EXPECT_EQ(opts.chunk, 16u);
    EXPECT_EQ(opts.seed, 777u);
    EXPECT_EQ(opts.csv_path, "/tmp/out.csv");
    EXPECT_EQ(opts.checkpoint_dir, "/tmp/ckpt");
    EXPECT_EQ(opts.checkpoint_interval, 17u);
    EXPECT_EQ(opts.max_trial_steps, 4096u);
}

TEST(RunOptions, ParsesProgressAndMetricsPort) {
    std::vector<std::string> args = {"--progress", "--metrics-port=9464"};
    auto argv = argv_of(args);
    const auto opts = parse_run_options(static_cast<int>(argv.size()), argv.data());
    EXPECT_DOUBLE_EQ(opts.progress_seconds, 2.0);  // bare flag: default cadence
    EXPECT_EQ(opts.metrics_port, 9464);

    std::vector<std::string> args2 = {"--progress=0.5", "--metrics-port=0"};
    auto argv2 = argv_of(args2);
    const auto opts2 = parse_run_options(static_cast<int>(argv2.size()), argv2.data());
    EXPECT_DOUBLE_EQ(opts2.progress_seconds, 0.5);
    EXPECT_EQ(opts2.metrics_port, 0);  // 0 = ephemeral port

    std::vector<std::string> none;
    auto argv3 = argv_of(none);
    const auto opts3 = parse_run_options(static_cast<int>(argv3.size()), argv3.data());
    EXPECT_DOUBLE_EQ(opts3.progress_seconds, 0.0);  // off by default
    EXPECT_EQ(opts3.metrics_port, -1);
}

TEST(RunOptions, RejectsBadProgressAndMetricsPort) {
    for (const char* bad : {"--progress=0", "--progress=-1", "--metrics-port=65536",
                            "--metrics-port=-2", "--metrics-port=x"}) {
        std::vector<std::string> args = {bad};
        auto argv = argv_of(args);
        EXPECT_THROW((void)parse_run_options(static_cast<int>(argv.size()), argv.data()),
                     std::invalid_argument)
            << bad;
    }
    std::vector<std::string> dup = {"--progress", "--progress=3"};
    auto argv = argv_of(dup);
    EXPECT_THROW((void)parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, McForwardsChunk) {
    run_options opts;
    opts.chunk = 32;
    EXPECT_EQ(opts.mc(10).chunk, 32u);
}

TEST(FormatThroughput, EmptyWithoutTrials) {
    EXPECT_TRUE(format_throughput(run_metrics{}).empty());
}

TEST(FormatThroughput, MentionsTrialsAndWorkers) {
    run_metrics m;
    m.trials = 1000;
    m.wall_seconds = 2.0;
    m.busy_seconds = 3.0;
    m.max_workers = 2;
    const std::string line = format_throughput(m);
    EXPECT_NE(line.find("1000 trials"), std::string::npos);
    EXPECT_NE(line.find("500 trials/s"), std::string::npos);
    EXPECT_NE(line.find("2 workers"), std::string::npos);
    EXPECT_NE(line.find("75% utilization"), std::string::npos);
}

TEST(RunOptions, RejectsUnknownFlag) {
    std::vector<std::string> args = {"--bogus=1"};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, RejectsMalformedNumbers) {
    std::vector<std::string> args = {"--trials=abc"};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, RejectsNonPositiveScale) {
    for (const char* bad : {"--scale=0", "--scale=-1.5"}) {
        std::vector<std::string> args = {bad};
        auto argv = argv_of(args);
        EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                     std::invalid_argument)
            << bad;
    }
}

TEST(RunOptions, RejectsDuplicateFlags) {
    std::vector<std::string> args = {"--trials=10", "--trials=20"};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, RejectsEmptyValue) {
    std::vector<std::string> args = {"--seed="};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, RejectsZeroCheckpointInterval) {
    std::vector<std::string> args = {"--checkpoint-interval=0"};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, ParsesServeFlags) {
    std::vector<std::string> args = {"--deadline-ms=250", "--queue-capacity=32"};
    auto argv = argv_of(args);
    const auto opts = parse_run_options(static_cast<int>(argv.size()), argv.data());
    EXPECT_EQ(opts.deadline_ms, 250u);
    EXPECT_EQ(opts.queue_capacity, 32u);

    std::vector<std::string> none;
    auto argv2 = argv_of(none);
    const auto defaults = parse_run_options(static_cast<int>(argv2.size()), argv2.data());
    EXPECT_EQ(defaults.deadline_ms, 0u);      // 0 = server default
    EXPECT_EQ(defaults.queue_capacity, 0u);
}

// Each rejection must name the offending flag — a 2 a.m. operator staring
// at a failed service start should not have to guess which knob was wrong.
TEST(RunOptions, RejectsNonPositiveDeadlineMsNamingTheFlag) {
    for (const char* bad : {"--deadline-ms=0", "--deadline-ms=-5"}) {
        std::vector<std::string> args = {bad};
        auto argv = argv_of(args);
        try {
            (void)parse_run_options(static_cast<int>(argv.size()), argv.data());
            FAIL() << bad << " was accepted";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("--deadline-ms"), std::string::npos)
                << bad << " -> " << e.what();
        }
    }
}

TEST(RunOptions, RejectsNonPositiveQueueCapacityNamingTheFlag) {
    for (const char* bad : {"--queue-capacity=0", "--queue-capacity=-5"}) {
        std::vector<std::string> args = {bad};
        auto argv = argv_of(args);
        try {
            (void)parse_run_options(static_cast<int>(argv.size()), argv.data());
            FAIL() << bad << " was accepted";
        } catch (const std::invalid_argument& e) {
            EXPECT_NE(std::string(e.what()).find("--queue-capacity"), std::string::npos)
                << bad << " -> " << e.what();
        }
    }
}

TEST(RunOptions, DescribeIncludesServeFlagsOnlyWhenSet) {
    std::vector<std::string> none;
    auto argv = argv_of(none);
    const auto defaults = parse_run_options(static_cast<int>(argv.size()), argv.data());
    for (const auto& [key, value] : describe_options(defaults)) {
        EXPECT_NE(key, "deadline-ms") << value;
        EXPECT_NE(key, "queue-capacity") << value;
    }

    std::vector<std::string> args = {"--deadline-ms=100", "--queue-capacity=8"};
    auto argv2 = argv_of(args);
    const auto opts = parse_run_options(static_cast<int>(argv2.size()), argv2.data());
    bool saw_deadline = false;
    bool saw_capacity = false;
    for (const auto& [key, value] : describe_options(opts)) {
        if (key == "deadline-ms") {
            saw_deadline = true;
            EXPECT_EQ(value, "100");
        }
        if (key == "queue-capacity") {
            saw_capacity = true;
            EXPECT_EQ(value, "8");
        }
    }
    EXPECT_TRUE(saw_deadline);
    EXPECT_TRUE(saw_capacity);
}

TEST(RunOptions, HelpThrowsUsage) {
    std::vector<std::string> args = {"--help"};
    auto argv = argv_of(args);
    EXPECT_THROW(parse_run_options(static_cast<int>(argv.size()), argv.data()),
                 std::invalid_argument);
}

TEST(RunOptions, McUsesDefaultTrialsUnlessOverridden) {
    run_options opts;
    EXPECT_EQ(opts.mc(1234).trials, 1234u);
    opts.trials = 99;
    EXPECT_EQ(opts.mc(1234).trials, 99u);
}

TEST(RunOptions, McSaltChangesSeed) {
    run_options opts;
    EXPECT_NE(opts.mc(10, 1).seed, opts.mc(10, 2).seed);
    EXPECT_EQ(opts.mc(10, 0).seed, opts.seed);
}

TEST(RunOptions, McDerivesPerPhaseCheckpointPath) {
    run_options opts;
    EXPECT_TRUE(opts.mc(10).checkpoint_path.empty());
    opts.checkpoint_dir = "/tmp/ckpts";
    opts.checkpoint_interval = 11;
    const auto a = opts.mc(10, /*salt=*/1);
    EXPECT_EQ(a.checkpoint_path.rfind("/tmp/ckpts/mc-", 0), 0u);
    EXPECT_EQ(a.checkpoint_interval, 11u);
    // Distinct phases (salt or trial count) journal to distinct files.
    EXPECT_NE(a.checkpoint_path, opts.mc(10, /*salt=*/2).checkpoint_path);
    EXPECT_NE(a.checkpoint_path, opts.mc(20, /*salt=*/1).checkpoint_path);
    // The same phase maps to the same file on a rerun.
    EXPECT_EQ(a.checkpoint_path, opts.mc(10, /*salt=*/1).checkpoint_path);
}

TEST(CsvWriter, InactiveByDefault) {
    csv_writer w;
    EXPECT_FALSE(w.active());
    w.row({"never", "written"});  // must not crash
}

TEST(CsvWriter, WritesQuotedCells) {
    const std::string path = "/tmp/levy_csv_test.csv";
    {
        csv_writer w(path);
        EXPECT_TRUE(w.active());
        w.header({"a", "b"});
        w.row({"1", "with,comma"});
        w.row({"quote\"inside", "plain"});
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "a,b\n1,\"with,comma\"\n\"quote\"\"inside\",plain\n");
    std::remove(path.c_str());
}

TEST(CsvWriter, MissingParentDirectoryViolatesPrecondition) {
    EXPECT_THROW(csv_writer("/nonexistent_dir_xyz/file.csv"), contract_violation);
}

TEST(CsvWriter, StreamsToTempAndRenamesOnClose) {
    const std::string path = "/tmp/levy_csv_atomic_test.csv";
    std::remove(path.c_str());
    {
        csv_writer w(path);
        w.header({"a"});
        w.row({"1"});
        // Mid-run: only the temp file exists; the final path appears atomically.
        EXPECT_TRUE(std::filesystem::exists(path + ".tmp"));
        EXPECT_FALSE(std::filesystem::exists(path));
        w.close();
        EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
        EXPECT_TRUE(std::filesystem::exists(path));
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "a\n1\n");
    std::remove(path.c_str());
}

}  // namespace
}  // namespace levy::sim
